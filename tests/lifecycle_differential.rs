//! Differential test for the sans-IO tile lifecycle: replay identical
//! event traces through the runtime driver's time mapping
//! (`Instant`-roundtripped abstract seconds) and the simulator driver's
//! (identity), and assert the decision sequences — dispatch/re-dispatch
//! targets, zero-fill sets, rate-update attribution, completion — are
//! byte-identical. This is the contract that makes a deployment plan
//! validated in `adcnn-netsim` trustworthy on `adcnn-runtime`: both sides
//! drive the same `adcnn_core::lifecycle::TileLifecycle`, and neither
//! side's clock plumbing may perturb a single decision.
//!
//! Trace timestamps are millisecond-grain so the runtime's
//! `f64 → Duration → f64` roundtrip is bit-exact.

use adcnn_core::lifecycle::{Event, LifecyclePolicy, TimerPolicy};

fn policy() -> LifecyclePolicy {
    LifecyclePolicy { t_l: 0.030, ..Default::default() }
}

/// Replay through all three drivers and assert byte-identical decisions:
/// the runtime's in-process driver, the simulator's, and the runtime
/// driver fed through a real loopback-TCP connection (the trace is
/// serialized as length-prefixed `EVENT` frames, decoded on the far side,
/// and `Instant`-roundtripped exactly like live transport results). A
/// socket in the event path may not perturb a single decision.
fn assert_identical(
    policy: LifecyclePolicy,
    d: usize,
    alloc: &[u32],
    speeds: &[f64],
    live: &[bool],
    trace: &[Event],
) -> Vec<String> {
    let rt = adcnn_runtime::central::replay_lifecycle_trace(policy, d, alloc, speeds, live, trace);
    let sim = adcnn_netsim::replay_lifecycle_trace(policy, d, alloc, speeds, live, trace);
    assert_eq!(rt, sim, "runtime and simulator drivers disagree on a decision sequence");
    let tcp = adcnn_runtime::transport::replay_lifecycle_trace_loopback(
        policy, d, alloc, speeds, live, trace,
    );
    assert_eq!(rt, tcp, "a loopback-TCP event transport perturbed the decision sequence");
    assert!(!rt.is_empty(), "a non-trivial trace must produce decisions");
    rt
}

/// Replay through both drivers' observability plumbing and assert the
/// emitted `ObsEvent` sequences (schema, ordering, every field) are
/// byte-identical. A trace viewer or metrics pipeline built against one
/// driver must read the other without translation.
fn assert_identical_events(
    policy: LifecyclePolicy,
    d: usize,
    alloc: &[u32],
    speeds: &[f64],
    live: &[bool],
    trace: &[Event],
) -> Vec<String> {
    let rt = adcnn_runtime::central::replay_lifecycle_events(policy, d, alloc, speeds, live, trace);
    let sim = adcnn_netsim::replay_lifecycle_events(policy, d, alloc, speeds, live, trace);
    assert_eq!(rt, sim, "runtime and simulator emit different observability event sequences");
    assert!(!rt.is_empty(), "a non-trivial trace must emit events");
    rt
}

/// Replay through both drivers' attribution plumbing and assert the
/// per-image critical-path reports — phase decomposition, critical tile,
/// dominant phase — are byte-identical as canonical JSON. A Table 3
/// breakdown computed against the simulator must be the breakdown the
/// runtime would have reported for the same trace.
fn assert_identical_report(
    policy: LifecyclePolicy,
    d: usize,
    alloc: &[u32],
    speeds: &[f64],
    live: &[bool],
    trace: &[Event],
) -> String {
    let rt = adcnn_runtime::central::replay_lifecycle_report(policy, d, alloc, speeds, live, trace);
    let sim = adcnn_netsim::replay_lifecycle_report(policy, d, alloc, speeds, live, trace);
    assert_eq!(rt, sim, "runtime and simulator drivers disagree on an ImageReport");
    let report = rt.expect("trace must finish the image and yield a report");
    assert!(adcnn_core::obs::json::is_well_formed(&report), "malformed report JSON: {report}");
    report
}

#[test]
fn healthy_trace_emits_identical_event_sequences() {
    let trace = [
        Event::TileDelivered { tile: 0 },
        Event::TileDelivered { tile: 1 },
        Event::SendComplete { at: 0.004 },
        Event::ResultArrived { at: 0.020, tile: 0, worker: 0, ok: true },
        Event::ResultArrived { at: 0.021, tile: 1, worker: 1, ok: true },
    ];
    let events = assert_identical_events(policy(), 2, &[1, 1], &[1.0, 1.0], &[true, true], &trace);
    assert!(events[0].starts_with("ImageStart"), "{events:?}");
    assert_eq!(events.iter().filter(|e| e.starts_with("TileDispatch")).count(), 2);
    assert_eq!(events.iter().filter(|e| e.starts_with("TileArrival")).count(), 2);
    assert_eq!(events.iter().filter(|e| e.starts_with("RateUpdate")).count(), 2);
    assert!(events.last().unwrap().starts_with("ImageFinish"), "{events:?}");
}

#[test]
fn faulty_trace_emits_identical_event_sequences() {
    // Same scenario as `dead_worker_redispatch_then_zero_fill_is_identical`:
    // a death, a recovery round, a zero-fill — the full fault taxonomy must
    // come out of both drivers in the same order with the same fields.
    let p = LifecyclePolicy { max_redispatch_rounds: 1, ..policy() };
    let dl1 = 0.010 + 0.010 * p.slack + p.t_l;
    let dl2 = dl1 + 0.010 * p.slack * 2.0 + p.t_l;
    let trace = [
        Event::TileDelivered { tile: 0 },
        Event::TileDelivered { tile: 1 },
        Event::TileDelivered { tile: 2 },
        Event::TileDelivered { tile: 3 },
        Event::SendComplete { at: 0.004 },
        Event::ResultArrived { at: 0.010, tile: 1, worker: 1, ok: true },
        Event::ResultArrived { at: 0.012, tile: 3, worker: 1, ok: true },
        Event::WorkerDied { worker: 0 },
        Event::DeadlineFired { at: dl1 },
        // Timestamps between the deadlines are literals (not float sums):
        // the event stream carries `at` fields, so every time must survive
        // the runtime's nanosecond-grain Duration roundtrip bit-exactly.
        Event::ResultArrived { at: 0.055, tile: 0, worker: 1, ok: true },
        Event::DeadlineFired { at: dl2 },
        // one corrupt straggler after completion: Late, not Accept
        Event::ResultArrived { at: 0.110, tile: 2, worker: 0, ok: false },
    ];
    let events = assert_identical_events(p, 4, &[2, 2], &[1.0, 5.0], &[true, true], &trace);
    for kind in
        ["WorkerDead", "DeadlineFired", "TileRedispatch", "TileZeroFill", "TileLate", "ImageFinish"]
    {
        assert!(events.iter().any(|e| e.starts_with(kind)), "missing {kind}: {events:?}");
    }
}

#[test]
fn healthy_trace_produces_identical_image_reports() {
    let trace = [
        Event::TileDelivered { tile: 0 },
        Event::TileDelivered { tile: 1 },
        Event::SendComplete { at: 0.004 },
        Event::ResultArrived { at: 0.020, tile: 0, worker: 0, ok: true },
        Event::ResultArrived { at: 0.021, tile: 1, worker: 1, ok: true },
    ];
    let report = assert_identical_report(policy(), 2, &[1, 1], &[1.0, 1.0], &[true, true], &trace);
    // Tile 1 arrives last: it is the critical path on both drivers.
    assert!(report.contains("\"critical_tile\":1"), "{report}");
    assert!(report.contains("\"zero_filled\":0"), "{report}");
}

#[test]
fn faulty_trace_produces_identical_image_reports() {
    // The fault taxonomy trace: a death, a recovery round, a zero-fill.
    // The attribution layer must make the same critical-path call — the
    // zero-filled tile's open wait dominates — on both drivers.
    let p = LifecyclePolicy { max_redispatch_rounds: 1, ..policy() };
    let dl1 = 0.010 + 0.010 * p.slack + p.t_l;
    let dl2 = dl1 + 0.010 * p.slack * 2.0 + p.t_l;
    let trace = [
        Event::TileDelivered { tile: 0 },
        Event::TileDelivered { tile: 1 },
        Event::TileDelivered { tile: 2 },
        Event::TileDelivered { tile: 3 },
        Event::SendComplete { at: 0.004 },
        Event::ResultArrived { at: 0.010, tile: 1, worker: 1, ok: true },
        Event::ResultArrived { at: 0.012, tile: 3, worker: 1, ok: true },
        Event::WorkerDied { worker: 0 },
        Event::DeadlineFired { at: dl1 },
        Event::ResultArrived { at: 0.055, tile: 0, worker: 1, ok: true },
        Event::DeadlineFired { at: dl2 },
        Event::ResultArrived { at: 0.110, tile: 2, worker: 0, ok: false },
    ];
    let report = assert_identical_report(p, 4, &[2, 2], &[1.0, 5.0], &[true, true], &trace);
    assert!(report.contains("\"zero_filled\":1"), "{report}");
    assert!(report.contains("\"redispatched\":2"), "{report}");
    // Tile 2 never came back: the zero-fill at dl2 closes the image, and
    // its open queue wait is the dominant phase.
    assert!(report.contains("\"critical_tile\":2"), "{report}");
    assert!(report.contains("\"dominant_phase\":\"queue_wait\""), "{report}");
}

#[test]
fn healthy_completion_is_identical() {
    let trace = [
        Event::TileDelivered { tile: 0 },
        Event::TileDelivered { tile: 1 },
        Event::TileDelivered { tile: 2 },
        Event::TileDelivered { tile: 3 },
        Event::SendComplete { at: 0.004 },
        Event::ResultArrived { at: 0.020, tile: 0, worker: 0, ok: true },
        Event::ResultArrived { at: 0.021, tile: 1, worker: 1, ok: true },
        Event::ResultArrived { at: 0.030, tile: 2, worker: 0, ok: true },
        Event::ResultArrived { at: 0.032, tile: 3, worker: 1, ok: true },
    ];
    let log = assert_identical(policy(), 4, &[2, 2], &[1.0, 1.0], &[true, true], &trace);
    // dispatch round-robin, one Accept per tile, rates for both, Complete
    assert_eq!(log.iter().filter(|l| l.starts_with("Dispatch")).count(), 4);
    assert_eq!(log.iter().filter(|l| l.starts_with("Accept")).count(), 4);
    assert_eq!(log.iter().filter(|l| l.starts_with("RecordRate")).count(), 2);
    assert_eq!(log.last().unwrap(), "Complete");
}

#[test]
fn dead_worker_redispatch_then_zero_fill_is_identical() {
    // Worker 0 never answers; the deadline re-dispatches its tiles to
    // worker 1, one recovery succeeds, the next deadline zero-fills the
    // rest. Deadline times are computed from the policy formula so the
    // machine treats them as live, not stale.
    let p = LifecyclePolicy { max_redispatch_rounds: 1, ..policy() };
    // first result at 10 ms → span = pu*slack*(max_alloc-1) + t_l
    let dl1 = 0.010 + 0.010 * p.slack + p.t_l;
    // re-dispatch of 2 tiles to 1 candidate → span = pu*slack*2 + t_l
    let dl2 = dl1 + 0.010 * p.slack * 2.0 + p.t_l;
    let trace = [
        Event::TileDelivered { tile: 0 },
        Event::TileDelivered { tile: 1 },
        Event::TileDelivered { tile: 2 },
        Event::TileDelivered { tile: 3 },
        Event::SendComplete { at: 0.004 },
        Event::ResultArrived { at: 0.010, tile: 1, worker: 1, ok: true },
        Event::ResultArrived { at: 0.012, tile: 3, worker: 1, ok: true },
        Event::WorkerDied { worker: 0 },
        Event::DeadlineFired { at: dl1 },
        Event::ResultArrived { at: dl1 + 0.005, tile: 0, worker: 1, ok: true },
        Event::DeadlineFired { at: dl2 },
    ];
    let log = assert_identical(p, 4, &[2, 2], &[1.0, 5.0], &[true, true], &trace);
    assert_eq!(log.iter().filter(|l| l.starts_with("Redispatch")).count(), 2);
    assert!(log.iter().any(|l| l.starts_with("ZeroFill")), "{log:?}");
    assert_eq!(log.last().unwrap(), "Complete");
}

#[test]
fn send_rejection_reroute_is_identical() {
    // Worker 2's queue refuses both of its tiles; they must hop to the
    // fastest untried live workers in the same order on both drivers.
    let trace = [
        Event::SendRejected { tile: 2, worker: 2 },
        Event::SendRejected { tile: 5, worker: 2 },
        Event::SendComplete { at: 0.003 },
        Event::ResultArrived { at: 0.011, tile: 0, worker: 0, ok: true },
        Event::ResultArrived { at: 0.012, tile: 1, worker: 1, ok: true },
        Event::ResultArrived { at: 0.013, tile: 2, worker: 1, ok: true },
        Event::ResultArrived { at: 0.014, tile: 3, worker: 0, ok: true },
        Event::ResultArrived { at: 0.015, tile: 4, worker: 1, ok: true },
        Event::ResultArrived { at: 0.016, tile: 5, worker: 1, ok: true },
    ];
    let log =
        assert_identical(policy(), 6, &[2, 2, 2], &[1.0, 2.0, 0.5], &[true, true, true], &trace);
    // the two rejected tiles are re-dispatched as fresh Dispatch actions
    assert_eq!(log.iter().filter(|l| l.starts_with("Dispatch")).count(), 8);
    assert_eq!(log.last().unwrap(), "Complete");
}

#[test]
fn duplicate_and_corrupt_handling_is_identical() {
    let trace = [
        Event::TileDelivered { tile: 0 },
        Event::TileDelivered { tile: 1 },
        Event::SendComplete { at: 0.002 },
        // corrupt first copy: tile stays open
        Event::ResultArrived { at: 0.010, tile: 0, worker: 0, ok: false },
        // good copy accepted
        Event::ResultArrived { at: 0.014, tile: 0, worker: 0, ok: true },
        // duplicate from the other worker: counted, no action
        Event::ResultArrived { at: 0.015, tile: 0, worker: 1, ok: true },
        Event::ResultArrived { at: 0.016, tile: 1, worker: 1, ok: true },
    ];
    let log = assert_identical(policy(), 2, &[1, 1], &[1.0, 1.0], &[true, true], &trace);
    assert_eq!(log.iter().filter(|l| l.starts_with("Accept")).count(), 2);
    assert_eq!(log.last().unwrap(), "Complete");
}

#[test]
fn after_send_and_wait_all_policies_are_identical() {
    // AfterSend: T_L fires before anything returns → everything zero-fills.
    let p = LifecyclePolicy { timer: TimerPolicy::AfterSend, ..policy() };
    let trace = [
        Event::SendComplete { at: 0.005 },
        Event::DeadlineFired { at: 0.035 },
        Event::ResultArrived { at: 0.040, tile: 0, worker: 0, ok: true }, // late
    ];
    let log = assert_identical(p, 2, &[1, 1], &[1.0, 1.0], &[true, true], &trace);
    assert!(log.iter().any(|l| l.starts_with("ZeroFill")));

    // WaitAll: a pre-hard-timeout fire is ignored; the hard timeout closes.
    let p = LifecyclePolicy { timer: TimerPolicy::WaitAll, hard_timeout: 2.0, ..policy() };
    let trace = [
        Event::SendComplete { at: 0.005 },
        Event::ResultArrived { at: 0.020, tile: 0, worker: 0, ok: true },
        Event::DeadlineFired { at: 1.0 }, // ignored: WaitAll never arms
        Event::DeadlineFired { at: 2.0 }, // the hard timeout
    ];
    let log = assert_identical(p, 2, &[1, 1], &[1.0, 1.0], &[true, true], &trace);
    assert!(log.iter().any(|l| l.starts_with("ZeroFill")));
    assert_eq!(log.last().unwrap(), "Complete");
}

/// Replay an interleaved multi-image trace — `(image, event)` pairs, the
/// shape the pipelined collector demultiplexes — through both drivers and
/// assert the tagged decision sequences are byte-identical.
fn assert_identical_multi(
    policy: LifecyclePolicy,
    d: usize,
    allocs: &[Vec<u32>],
    speeds: &[f64],
    live: &[bool],
    trace: &[(usize, Event)],
) -> Vec<String> {
    let rt = adcnn_runtime::central::replay_lifecycle_trace_multi(
        policy, d, allocs, speeds, live, trace,
    );
    let sim = adcnn_netsim::replay_lifecycle_trace_multi(policy, d, allocs, speeds, live, trace);
    assert_eq!(rt, sim, "runtime and simulator drivers disagree on a multi-image trace");
    assert!(!rt.is_empty(), "a non-trivial multi-image trace must produce decisions");
    rt
}

#[test]
fn interleaved_multi_image_trace_is_identical() {
    // Two images in flight at once, their events interleaved the way the
    // pipelined collector sees them: image 1's dispatches land while image
    // 0 is still waiting on results, image 0 loses a worker and zero-fills
    // while image 1 completes cleanly. Every decision must stay attributed
    // to its own machine on both drivers — no cross-image bleed.
    let p = LifecyclePolicy { max_redispatch_rounds: 0, ..policy() };
    let dl0 = 0.010 + 0.010 * p.slack + p.t_l;
    let trace: Vec<(usize, Event)> = vec![
        (0, Event::TileDelivered { tile: 0 }),
        (0, Event::TileDelivered { tile: 1 }),
        (0, Event::SendComplete { at: 0.002 }),
        (1, Event::TileDelivered { tile: 0 }),
        (1, Event::TileDelivered { tile: 1 }),
        (1, Event::SendComplete { at: 0.004 }),
        (0, Event::ResultArrived { at: 0.010, tile: 0, worker: 0, ok: true }),
        (1, Event::ResultArrived { at: 0.011, tile: 0, worker: 0, ok: true }),
        (0, Event::WorkerDied { worker: 1 }),
        (1, Event::ResultArrived { at: 0.013, tile: 1, worker: 1, ok: true }),
        (0, Event::DeadlineFired { at: dl0 }),
    ];
    let log =
        assert_identical_multi(p, 2, &[vec![1, 1], vec![1, 1]], &[1.0, 1.0], &[true, true], &trace);
    // Image 0 zero-fills its lost tile; image 1 never does.
    assert!(log.iter().any(|l| l.starts_with("[0] ZeroFill")), "{log:?}");
    assert!(!log.iter().any(|l| l.starts_with("[1] ZeroFill")), "{log:?}");
    assert_eq!(log.iter().filter(|l| l.ends_with("Complete")).count(), 2, "{log:?}");
}

#[test]
fn interleaved_multi_image_events_are_identical() {
    // Same interleaving through the observability plumbing: the shared
    // sink sees both images' events tagged with the right image id, in the
    // same order, from both drivers.
    let trace: Vec<(usize, Event)> = vec![
        (0, Event::TileDelivered { tile: 0 }),
        (0, Event::TileDelivered { tile: 1 }),
        (0, Event::SendComplete { at: 0.002 }),
        (1, Event::TileDelivered { tile: 0 }),
        (1, Event::TileDelivered { tile: 1 }),
        (1, Event::SendComplete { at: 0.004 }),
        (1, Event::ResultArrived { at: 0.010, tile: 0, worker: 0, ok: true }),
        (0, Event::ResultArrived { at: 0.011, tile: 0, worker: 0, ok: true }),
        (1, Event::ResultArrived { at: 0.012, tile: 1, worker: 1, ok: true }),
        (0, Event::ResultArrived { at: 0.013, tile: 1, worker: 1, ok: true }),
    ];
    let rt = adcnn_runtime::central::replay_lifecycle_events_multi(
        policy(),
        2,
        &[vec![1, 1], vec![1, 1]],
        &[1.0, 1.0],
        &[true, true],
        &trace,
    );
    let sim = adcnn_netsim::replay_lifecycle_events_multi(
        policy(),
        2,
        &[vec![1, 1], vec![1, 1]],
        &[1.0, 1.0],
        &[true, true],
        &trace,
    );
    assert_eq!(rt, sim, "drivers emit different multi-image observability sequences");
    // Both images start, both finish, and image 1 finishes first (its last
    // result lands at 0.012, before image 0's at 0.013).
    assert_eq!(rt.iter().filter(|e| e.starts_with("ImageStart")).count(), 2, "{rt:?}");
    let finishes: Vec<&String> = rt.iter().filter(|e| e.starts_with("ImageFinish")).collect();
    assert_eq!(finishes.len(), 2, "{rt:?}");
    assert!(finishes[0].contains("image: 1"), "out-of-order completion lost: {finishes:?}");
    assert!(finishes[1].contains("image: 0"), "out-of-order completion lost: {finishes:?}");
}

#[test]
fn storage_shortfall_and_abort_are_identical() {
    // Σ alloc = 2 < d = 4 (storage caps): the shortfall is abandoned; an
    // abort then zero-fills whatever is still open.
    let trace = [
        Event::SendComplete { at: 0.002 },
        Event::ResultArrived { at: 0.010, tile: 0, worker: 0, ok: true },
        Event::Abort,
    ];
    let log = assert_identical(policy(), 4, &[1, 1], &[1.0, 1.0], &[true, true], &trace);
    assert_eq!(log.iter().filter(|l| l.starts_with("Dispatch")).count(), 2);
    assert!(log.iter().any(|l| l.starts_with("ZeroFill")));
    assert_eq!(log.last().unwrap(), "Complete");
}
