//! End-to-end forensic-observability contract, on both drivers:
//!
//! (a) every zero-filled tile in a fault-injected run yields a
//!     [`ForensicReport`](adcnn::core::report::ForensicReport) naming the
//!     tile, its owning worker, the re-dispatch rounds consumed and the
//!     deadline/timer values in force, and
//! (b) the per-image attribution phase sums are within tolerance of the
//!     measured wall-clock image latency (the lifecycle span excludes the
//!     Central suffix forward, which the drivers account separately).

use adcnn::core::fdsp::TileGrid;
use adcnn::core::obs::{json, SinkHandle};
use adcnn::core::report::{Anomaly, AttributionSink, FlightRecorderSink, ImageReport};
use adcnn::core::ClippedRelu;
use adcnn::netsim::{AdcnnSim, AdcnnSimConfig, ThrottleSchedule};
use adcnn::nn::layer::QuantizeSte;
use adcnn::nn::small::shapes_cnn;
use adcnn::nn::zoo;
use adcnn::retrain::PartitionedModel;
use adcnn::runtime::{AdcnnRuntime, RuntimeConfig, WorkerOptions};
use adcnn::tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn build_model(seed: u64, grid: TileGrid) -> PartitionedModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let cr = ClippedRelu::new(0.0, 2.0);
    PartitionedModel::fdsp(shapes_cnn(6, &mut rng), grid)
        .with_crelu(cr)
        .with_quant(QuantizeSte::new(4, cr.range()))
}

fn rand_image(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn([1, 3, 32, 32], 0.5, &mut rng)
}

/// Shared per-report checks: every zero-filled tile must map to a
/// well-formed forensic dump naming tile / owner / rounds / deadline.
fn check_forensics(report: &ImageReport, recorder: &FlightRecorderSink, owner: u32) {
    for t in report.tiles.iter().filter(|t| t.zero_filled) {
        let f = recorder
            .report_for_tile(report.image, t.tile)
            .unwrap_or_else(|| panic!("zero-filled tile {} has no forensic dump", t.tile));
        assert_eq!(f.trigger, Anomaly::ZeroFill);
        assert_eq!(f.image, report.image);
        assert_eq!(f.tile, Some(t.tile));
        assert_eq!(f.worker, Some(owner), "dump must name the owning worker");
        assert_eq!(f.rounds, t.rounds, "dump must name the re-dispatch rounds consumed");
        assert!(f.deadline_at.is_some(), "dump must carry the deadline in force");
        assert!(f.deadline_span.is_some(), "dump must carry the timer span in force");
        assert!(!f.events.is_empty(), "dump must snapshot the surrounding events");
        let js = f.to_json();
        assert!(json::is_well_formed(&js), "malformed forensic JSON: {js}");
    }
}

/// The critical tile's phase decomposition plus merge must reproduce the
/// image latency exactly when the critical tile went out in round 0 (no
/// re-dispatch in these zero-fill runs).
fn check_decomposition(report: &ImageReport) {
    let crit = report.critical().expect("finished image must name a critical tile");
    assert_eq!(crit.rounds, 0, "zero-fill runs never re-dispatch");
    let attributed = crit.total_s() + report.merge_s;
    assert!(
        (attributed - report.latency_s).abs() < 1e-6,
        "phase sums ({attributed}) must reproduce the image latency ({})",
        report.latency_s
    );
}

#[test]
fn runtime_zero_fills_yield_forensics_and_consistent_attribution() {
    // The paper's pure zero-fill policy with a silent worker: every one of
    // worker 1's tiles is dropped at the deadline.
    let grid = TileGrid::new(4, 4);
    let model = build_model(9, grid);
    let opts = [
        WorkerOptions::default(),
        WorkerOptions { fail_after_tiles: Some(0), ..Default::default() },
    ];
    let recorder = Arc::new(FlightRecorderSink::new(1024));
    let attr = Arc::new(AttributionSink::new());
    let cfg = RuntimeConfig::builder()
        .t_l(Duration::from_millis(50))
        .max_redispatch_rounds(0)
        .sink(SinkHandle::new(recorder.clone()))
        .attribution(attr.clone())
        .build()
        .unwrap();
    let mut rt = AdcnnRuntime::launch(model, &opts, cfg);
    let out = rt.infer(&rand_image(1));
    rt.shutdown();

    assert!(out.zero_filled > 0, "fault injection must actually drop tiles");
    let report = out.report.expect("attribution was enabled");
    assert_eq!(report.zero_filled, out.zero_filled);
    let zf = report.tiles.iter().filter(|t| t.zero_filled).count() as u32;
    assert_eq!(zf, out.zero_filled, "report must name every zero-filled tile");

    check_forensics(&report, &recorder, 1);
    check_decomposition(&report);

    // The lifecycle latency is the wall-clock latency minus the Central
    // suffix forward (plus scheduling noise): never larger, close below.
    let wall = out.latency.as_secs_f64();
    assert!(report.latency_s <= wall + 1e-6, "{} > {wall}", report.latency_s);
    assert!(wall - report.latency_s < 0.5, "attribution lost {}s", wall - report.latency_s);

    // The same image is retrievable from the shared sink handle, and the
    // run aggregate folded it.
    assert_eq!(attr.report_for(report.image), Some(report));
    assert_eq!(attr.aggregate().zero_filled, out.zero_filled as u64);
}

#[test]
fn netsim_zero_fills_yield_forensics_and_consistent_attribution() {
    // Same contract over the simulator: node 3 dies at t=0 under the pure
    // zero-fill policy, in virtual time.
    let mut cfg = AdcnnSimConfig::paper_testbed(zoo::vgg16(), 4);
    cfg.images = 6;
    cfg.pipeline = false;
    cfg.policy.max_redispatch_rounds = 0;
    cfg.nodes[3].throttle = ThrottleSchedule::throttle_at(0.0, 0.0);
    let recorder = Arc::new(FlightRecorderSink::new(4096));
    let attr = Arc::new(AttributionSink::new());
    cfg.sink = SinkHandle::new(recorder.clone()).tee(attr.clone());
    let s = AdcnnSim::new(cfg).run();

    assert!(s.images.iter().any(|i| i.dropped > 0), "dead node must cause drops");
    let reports = attr.reports();
    assert_eq!(reports.len(), 6, "one report per simulated image");
    for (report, img) in reports.iter().zip(&s.images) {
        let zf = report.tiles.iter().filter(|t| t.zero_filled).count() as u32;
        assert_eq!(zf, img.dropped, "image {}: report must name every drop", report.image);
        check_forensics(report, &recorder, 3);
        if zf > 0 {
            check_decomposition(report);
        }
        // Simulated wall clock = lifecycle span + Central suffix.
        assert!(report.latency_s <= img.latency_s + 1e-9);
        assert!(
            img.latency_s - report.latency_s <= img.suffix_s + 1e-6,
            "image {}: unattributed gap {} exceeds the suffix {}",
            report.image,
            img.latency_s - report.latency_s,
            img.suffix_s
        );
    }
}
