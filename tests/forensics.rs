//! End-to-end forensic-observability contract, on both drivers:
//!
//! (a) every zero-filled tile in a fault-injected run yields a
//!     [`ForensicReport`](adcnn::core::report::ForensicReport) naming the
//!     tile, its owning worker, the re-dispatch rounds consumed and the
//!     deadline/timer values in force, and
//! (b) the per-image attribution phase sums are within tolerance of the
//!     measured wall-clock image latency (the lifecycle span excludes the
//!     Central suffix forward, which the drivers account separately).

use adcnn::core::fdsp::TileGrid;
use adcnn::core::obs::{json, SinkHandle};
use adcnn::core::report::{Anomaly, AttributionSink, FlightRecorderSink, ImageReport};
use adcnn::core::ClippedRelu;
use adcnn::netsim::{AdcnnSim, AdcnnSimConfig, ThrottleSchedule};
use adcnn::nn::layer::QuantizeSte;
use adcnn::nn::small::shapes_cnn;
use adcnn::nn::zoo;
use adcnn::retrain::PartitionedModel;
use adcnn::runtime::{AdcnnRuntime, RuntimeConfig, WorkerOptions};
use adcnn::tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn build_model(seed: u64, grid: TileGrid) -> PartitionedModel {
    let mut rng = StdRng::seed_from_u64(seed);
    let cr = ClippedRelu::new(0.0, 2.0);
    PartitionedModel::fdsp(shapes_cnn(6, &mut rng), grid)
        .with_crelu(cr)
        .with_quant(QuantizeSte::new(4, cr.range()))
}

fn rand_image(seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    Tensor::randn([1, 3, 32, 32], 0.5, &mut rng)
}

/// Shared per-report checks: every zero-filled tile must map to a
/// well-formed forensic dump naming tile / owner / rounds / deadline.
fn check_forensics(report: &ImageReport, recorder: &FlightRecorderSink, owner: u32) {
    for t in report.tiles.iter().filter(|t| t.zero_filled) {
        let f = recorder
            .report_for_tile(report.image, t.tile)
            .unwrap_or_else(|| panic!("zero-filled tile {} has no forensic dump", t.tile));
        assert_eq!(f.trigger, Anomaly::ZeroFill);
        assert_eq!(f.image, report.image);
        assert_eq!(f.tile, Some(t.tile));
        assert_eq!(f.worker, Some(owner), "dump must name the owning worker");
        assert_eq!(f.rounds, t.rounds, "dump must name the re-dispatch rounds consumed");
        assert!(f.deadline_at.is_some(), "dump must carry the deadline in force");
        assert!(f.deadline_span.is_some(), "dump must carry the timer span in force");
        assert!(!f.events.is_empty(), "dump must snapshot the surrounding events");
        let js = f.to_json();
        assert!(json::is_well_formed(&js), "malformed forensic JSON: {js}");
    }
}

/// The critical tile's phase decomposition plus merge must reproduce the
/// image latency exactly when the critical tile went out in round 0 (no
/// re-dispatch in these zero-fill runs).
fn check_decomposition(report: &ImageReport) {
    let crit = report.critical().expect("finished image must name a critical tile");
    assert_eq!(crit.rounds, 0, "zero-fill runs never re-dispatch");
    let attributed = crit.total_s() + report.merge_s;
    assert!(
        (attributed - report.latency_s).abs() < 1e-6,
        "phase sums ({attributed}) must reproduce the image latency ({})",
        report.latency_s
    );
}

#[test]
fn runtime_zero_fills_yield_forensics_and_consistent_attribution() {
    // The paper's pure zero-fill policy with a silent worker: every one of
    // worker 1's tiles is dropped at the deadline.
    let grid = TileGrid::new(4, 4);
    let model = build_model(9, grid);
    let opts = [
        WorkerOptions::default(),
        WorkerOptions { fail_after_tiles: Some(0), ..Default::default() },
    ];
    let recorder = Arc::new(FlightRecorderSink::new(1024));
    let attr = Arc::new(AttributionSink::new());
    let cfg = RuntimeConfig::builder()
        .t_l(Duration::from_millis(50))
        .max_redispatch_rounds(0)
        .sink(SinkHandle::new(recorder.clone()))
        .attribution(attr.clone())
        .build()
        .unwrap();
    let mut rt = AdcnnRuntime::launch(model, &opts, cfg);
    let out = rt.infer(&rand_image(1));
    rt.shutdown();

    assert!(out.zero_filled > 0, "fault injection must actually drop tiles");
    let report = out.report.expect("attribution was enabled");
    assert_eq!(report.zero_filled, out.zero_filled);
    let zf = report.tiles.iter().filter(|t| t.zero_filled).count() as u32;
    assert_eq!(zf, out.zero_filled, "report must name every zero-filled tile");

    check_forensics(&report, &recorder, 1);
    check_decomposition(&report);

    // The lifecycle latency is the wall-clock latency minus the Central
    // suffix forward (plus scheduling noise): never larger, close below.
    let wall = out.latency.as_secs_f64();
    assert!(report.latency_s <= wall + 1e-6, "{} > {wall}", report.latency_s);
    assert!(wall - report.latency_s < 0.5, "attribution lost {}s", wall - report.latency_s);

    // The same image is retrievable from the shared sink handle, and the
    // run aggregate folded it.
    assert_eq!(attr.report_for(report.image), Some(report));
    assert_eq!(attr.aggregate().zero_filled, out.zero_filled as u64);
}

#[test]
fn runtime_deep_pipeline_attribution_reconciles_per_image() {
    // Four images in flight at once over a silently failing worker: each
    // image's phase sums must reconcile with *its own* wall-clock latency,
    // and every zero-filled tile's forensic dump must name the image that
    // actually lost it — overlap must not bleed attribution across images.
    let grid = TileGrid::new(4, 4);
    let model = build_model(9, grid);
    let opts = [
        WorkerOptions::default(),
        WorkerOptions { fail_after_tiles: Some(0), ..Default::default() },
    ];
    let recorder = Arc::new(FlightRecorderSink::new(4096));
    let attr = Arc::new(AttributionSink::new());
    let cfg = RuntimeConfig::builder()
        .t_l(Duration::from_millis(50))
        .max_redispatch_rounds(0)
        .pipeline_depth(4)
        .intake_cap(8)
        .sink(SinkHandle::new(recorder.clone()))
        .attribution(attr.clone())
        .build()
        .unwrap();
    let rt = AdcnnRuntime::launch(model, &opts, cfg);
    let handles: Vec<_> = (0..6).map(|i| rt.submit(&rand_image(i + 1))).collect();
    // Wait in reverse submission order: completion resolution must not
    // depend on the order handles are consumed.
    let mut outs: Vec<_> = handles.into_iter().rev().map(|h| h.wait()).collect();
    outs.sort_by_key(|o| o.image);
    rt.shutdown();

    // The first image predates any EWMA learning, so it must allocate to
    // (and lose tiles on) the silently dead worker. Later images may
    // legitimately starve it to zero tiles — that is Algorithm 2 working,
    // not the fault injection failing.
    assert!(outs[0].zero_filled > 0, "image 0: fault injection must drop tiles");
    let mut total_zf = 0u64;
    for out in &outs {
        total_zf += out.zero_filled as u64;
        let report = out.report.as_ref().expect("attribution was enabled");
        assert_eq!(report.image, out.image, "report attributed to the wrong image");
        let zf = report.tiles.iter().filter(|t| t.zero_filled).count() as u32;
        assert_eq!(zf, out.zero_filled, "image {}: report must name every drop", out.image);
        check_forensics(report, &recorder, 1);
        check_decomposition(report);
        // Reconcile against this image's own wall clock (measured from
        // admission, so queue wait never inflates a neighbour's phases).
        let wall = out.latency.as_secs_f64();
        assert!(report.latency_s <= wall + 1e-6, "{} > {wall}", report.latency_s);
        assert!(wall - report.latency_s < 0.5, "attribution lost {}s", wall - report.latency_s);
        assert_eq!(attr.report_for(out.image).as_ref(), Some(report));
    }
    // The aggregate folded exactly the six images — nothing double-counted
    // across the overlapping lifecycles.
    assert_eq!(attr.reports().len(), 6);
    assert_eq!(attr.aggregate().zero_filled, total_zf);
}

#[test]
fn netsim_deep_pipeline_attribution_reconciles_per_image() {
    // The simulator's mirror of the deep-pipeline contract: window of 4
    // images over a dead node, every report reconciling against its own
    // simulated wall clock. Reports and image stats are both in
    // completion order, so they zip.
    let mut cfg = AdcnnSimConfig::paper_testbed(zoo::vgg16(), 4);
    cfg.images = 8;
    cfg.pipeline_depth = 4;
    cfg.policy.max_redispatch_rounds = 0;
    cfg.nodes[3].throttle = ThrottleSchedule::throttle_at(0.0, 0.0);
    let recorder = Arc::new(FlightRecorderSink::new(8192));
    let attr = Arc::new(AttributionSink::new());
    cfg.sink = SinkHandle::new(recorder.clone()).tee(attr.clone());
    let s = AdcnnSim::new(cfg).run();

    assert!(s.images.iter().any(|i| i.dropped > 0), "dead node must cause drops");
    let reports = attr.reports();
    assert_eq!(reports.len(), 8, "one report per simulated image");
    let mut seen = std::collections::HashSet::new();
    for (report, img) in reports.iter().zip(&s.images) {
        assert!(seen.insert(report.image), "image {} attributed twice", report.image);
        let zf = report.tiles.iter().filter(|t| t.zero_filled).count() as u32;
        assert_eq!(zf, img.dropped, "image {}: report must name its own drops", report.image);
        check_forensics(report, &recorder, 3);
        if zf > 0 {
            check_decomposition(report);
        }
        assert!(report.latency_s <= img.latency_s + 1e-9);
        // The unattributed tail is the Central suffix plus central-CPU
        // queueing: with a window of 4 this image's suffix can wait behind
        // up to three neighbours' suffixes (partition work shares the same
        // FIFO but is a comparatively tiny memcpy).
        assert!(
            img.latency_s - report.latency_s <= 4.0 * img.suffix_s + 0.01,
            "image {}: unattributed gap {} exceeds the windowed suffix bound {}",
            report.image,
            img.latency_s - report.latency_s,
            4.0 * img.suffix_s
        );
    }
}

#[test]
fn netsim_zero_fills_yield_forensics_and_consistent_attribution() {
    // Same contract over the simulator: node 3 dies at t=0 under the pure
    // zero-fill policy, in virtual time.
    let mut cfg = AdcnnSimConfig::paper_testbed(zoo::vgg16(), 4);
    cfg.images = 6;
    cfg.pipeline_depth = 1;
    cfg.policy.max_redispatch_rounds = 0;
    cfg.nodes[3].throttle = ThrottleSchedule::throttle_at(0.0, 0.0);
    let recorder = Arc::new(FlightRecorderSink::new(4096));
    let attr = Arc::new(AttributionSink::new());
    cfg.sink = SinkHandle::new(recorder.clone()).tee(attr.clone());
    let s = AdcnnSim::new(cfg).run();

    assert!(s.images.iter().any(|i| i.dropped > 0), "dead node must cause drops");
    let reports = attr.reports();
    assert_eq!(reports.len(), 6, "one report per simulated image");
    for (report, img) in reports.iter().zip(&s.images) {
        let zf = report.tiles.iter().filter(|t| t.zero_filled).count() as u32;
        assert_eq!(zf, img.dropped, "image {}: report must name every drop", report.image);
        check_forensics(report, &recorder, 3);
        if zf > 0 {
            check_decomposition(report);
        }
        // Simulated wall clock = lifecycle span + Central suffix.
        assert!(report.latency_s <= img.latency_s + 1e-9);
        assert!(
            img.latency_s - report.latency_s <= img.suffix_s + 1e-6,
            "image {}: unattributed gap {} exceeds the suffix {}",
            report.image,
            img.latency_s - report.latency_s,
            img.suffix_s
        );
    }
}
