//! Cross-crate integration tests: the full pipeline from training through
//! the compression wire format to the distributed runtime and the
//! simulator, exercised together.

use adcnn::core::compress::{compress, decompress, Quantizer};
use adcnn::core::fdsp::TileGrid;
use adcnn::core::wire::{make_result, TileKey};
use adcnn::core::ClippedRelu;
use adcnn::nn::layer::QuantizeSte;
use adcnn::nn::small::shapes_cnn;
use adcnn::retrain::data::shapes;
use adcnn::retrain::progressive::{progressive_retrain, RetrainConfig};
use adcnn::retrain::trainer::{evaluate, train, TrainConfig};
use adcnn::retrain::PartitionedModel;
use adcnn::runtime::{AdcnnRuntime, RuntimeConfig, WorkerOptions};
use adcnn::tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};

/// The training-graph quantizer (`QuantizeSte`) and the wire quantizer
/// (`compress::Quantizer`) must place values on the same grid, otherwise
/// the model the Central node retrained is not the model the cluster
/// serves.
#[test]
fn training_and_wire_quantizers_agree() {
    let range = 1.7f32;
    let ste = QuantizeSte::new(4, range);
    let wire = Quantizer::new(4, range);
    for i in 0..1000 {
        let x = i as f32 * range / 999.0;
        let a = ste.apply(x);
        let b = wire.value(wire.level(x));
        assert!((a - b).abs() < 1e-6, "grids disagree at {x}: {a} vs {b}");
    }
}

/// Tile extraction → per-tile compression → wire → decode → reassembly must
/// reproduce the clipped/quantized boundary map exactly (not just within
/// tolerance: both paths land on identical quantization levels).
#[test]
fn tile_wire_roundtrip_reassembles_boundary() {
    let mut rng = StdRng::seed_from_u64(3);
    let boundary = Tensor::randn([1, 8, 16, 16], 1.0, &mut rng);
    let cr = ClippedRelu::new(0.1, 1.3);
    let q = Quantizer::paper_default(cr);
    let grid = TileGrid::new(4, 4);

    // reference: clip + quantize the whole map
    let reference = cr.forward(&boundary).map(|v| q.value(q.level(v)));

    // distributed path: per tile
    let mut assembled = Tensor::zeros([1, 8, 16, 16]);
    for (t, tile) in grid.extract(&boundary).into_iter().enumerate() {
        let clipped = cr.forward(&tile);
        let res = make_result(TileKey { image_id: 0, tile_id: t as u32 }, &clipped, q);
        let decoded = res.to_tensor().expect("decode");
        let (gr, gc) = grid.tile_pos(t);
        assembled.paste_spatial(&decoded, gr * 4, gc * 4);
    }
    assert!(assembled.approx_eq(&reference, 1e-6), "wire path diverged");
}

/// Train → Algorithm 1 retrain → serve distributed: the cluster's accuracy
/// must match the local retrained model's accuracy on the same data.
#[test]
fn retrained_model_serves_correctly_on_cluster() {
    let data = shapes(240, 80, 32, 55);
    let mut rng = StdRng::seed_from_u64(55);
    let mut original = PartitionedModel::unpartitioned(shapes_cnn(data.classes, &mut rng));
    train(
        &mut original,
        &data,
        &TrainConfig { epochs: 20, target_accuracy: 0.9, ..Default::default() },
    );
    let small = adcnn::nn::small::SmallModel {
        net: original.net,
        name: "ShapesCNN",
        input: (3, 32, 32),
        classes: data.classes,
        separable_prefix: 2,
        prefix_scale: (2, 2),
    };
    let cfg = RetrainConfig { tolerance: 0.03, max_epochs_per_stage: 5, ..Default::default() };
    let (mut retrained, report) = progressive_retrain(small, &data, TileGrid::new(2, 2), &cfg);
    assert!(report.final_accuracy > 0.7, "retraining failed: {report:?}");

    let local_acc = evaluate(&mut retrained, &data);
    let mut rt =
        AdcnnRuntime::launch(retrained, &[WorkerOptions::default(); 3], RuntimeConfig::default());
    let dims = data.test_x.dims().to_vec();
    let stride: usize = dims[1..].iter().product();
    let mut correct = 0usize;
    let n = 40.min(data.test_len());
    for i in 0..n {
        let img = Tensor::from_vec(
            [1, dims[1], dims[2], dims[3]],
            data.test_x.as_slice()[i * stride..(i + 1) * stride].to_vec(),
        );
        let out = rt.infer(&img);
        assert_eq!(out.zero_filled, 0);
        let row = out.output.as_slice();
        let pred = (0..row.len()).max_by(|&a, &b| row[a].total_cmp(&row[b])).unwrap();
        if pred == data.test_y[i] {
            correct += 1;
        }
    }
    rt.shutdown();
    let dist_acc = correct as f64 / n as f64;
    assert!(
        (dist_acc - local_acc).abs() < 0.15,
        "distributed accuracy {dist_acc} far from local {local_acc}"
    );
}

/// A trained model served by a cluster whose worker dies mid-stream: the
/// tile lifecycle manager must recover every tile through re-dispatch (no
/// zero-fill, no accuracy cliff), well before the hard timeout, and the
/// supervisor must starve the dead worker out of subsequent allocations.
#[test]
fn cluster_survives_worker_death_without_losing_tiles() {
    let mut rng = StdRng::seed_from_u64(91);
    let cr = ClippedRelu::new(0.0, 2.0);
    let build = |rng: &mut StdRng| {
        PartitionedModel::fdsp(shapes_cnn(6, rng), TileGrid::new(4, 4))
            .with_crelu(cr)
            .with_quant(QuantizeSte::new(4, cr.range()))
    };
    let mut local = build(&mut StdRng::seed_from_u64(91));
    let model = build(&mut StdRng::seed_from_u64(91));
    // Worker 1 dies after three tiles; worker 2 after ten.
    let opts = [
        WorkerOptions::default(),
        WorkerOptions { fail_after_tiles: Some(3), ..Default::default() },
        WorkerOptions { fail_after_tiles: Some(10), ..Default::default() },
    ];
    let cfg = RuntimeConfig::builder()
        .t_l(std::time::Duration::from_millis(50))
        .build()
        .expect("valid runtime config");
    let mut rt = AdcnnRuntime::launch(model, &opts, cfg.clone());
    let images: Vec<Tensor> =
        (0..8).map(|_| Tensor::randn([1, 3, 32, 32], 0.5, &mut rng)).collect();
    let want: Vec<Tensor> = images.iter().map(|x| local.infer(x)).collect();
    let start = std::time::Instant::now();
    let got = rt.infer_stream(&images);
    let elapsed = start.elapsed();
    assert!(got.iter().all(|o| o.zero_filled == 0), "tiles were lost");
    assert!(got.iter().any(|o| o.redispatched > 0), "deaths must trigger re-dispatch");
    for (g, w) in got.iter().zip(&want) {
        assert!(g.output.approx_eq(w, 2e-3), "recovered output diverged from local model");
    }
    // Recovery must come from the deadline machinery, not the hard timeout.
    assert!(
        elapsed.as_secs_f64() < cfg.policy.hard_timeout,
        "stream of 8 images took {elapsed:?}; recovery waited for the hard timeout"
    );
    // Supervision: both dead workers end up starved and no longer needed.
    let last = got.last().unwrap();
    assert_eq!(last.alloc[1], 0, "dead worker 1 still allocated: {:?}", last.alloc);
    assert_eq!(last.alloc[2], 0, "dead worker 2 still allocated: {:?}", last.alloc);
    assert_eq!(last.redispatched, 0, "steady state should not need recovery");
    rt.shutdown();
}

/// Every counter a `MetricsSink` accumulates must reconcile exactly with
/// the per-image `InferOutcome`s the caller saw — under fault injection
/// (a worker death plus a corrupting worker), not just on the happy path.
/// The metrics pipeline and the API results are two views of the same
/// run; if they drift, one of them is lying.
#[test]
fn metrics_snapshot_reconciles_with_infer_outcomes_under_faults() {
    use adcnn::core::obs::MetricsSink;
    use adcnn::runtime::SinkHandle;
    use std::sync::Arc;

    let cr = ClippedRelu::new(0.0, 2.0);
    let model =
        PartitionedModel::fdsp(shapes_cnn(6, &mut StdRng::seed_from_u64(17)), TileGrid::new(4, 4))
            .with_crelu(cr)
            .with_quant(QuantizeSte::new(4, cr.range()));
    let opts = [
        WorkerOptions::default(),
        WorkerOptions::builder().fail_after_tiles(5).disconnect_on_fail(true).build().unwrap(),
        WorkerOptions::builder().corrupt_prob(0.3).fault_seed(99).build().unwrap(),
    ];
    let metrics = Arc::new(MetricsSink::new());
    let cfg = RuntimeConfig::builder()
        .t_l(std::time::Duration::from_millis(40))
        .sink(SinkHandle::new(metrics.clone()))
        .build()
        .unwrap();
    let mut rt = AdcnnRuntime::launch(model, &opts, cfg);
    let mut rng = StdRng::seed_from_u64(18);
    let images: Vec<Tensor> =
        (0..6).map(|_| Tensor::randn([1, 3, 32, 32], 0.5, &mut rng)).collect();
    let got = rt.infer_stream(&images);
    rt.shutdown();

    let snap = metrics.snapshot();
    let n = images.len() as u64;
    let d = 16u64; // 4x4 grid
    assert_eq!(snap.images_started, n);
    assert_eq!(snap.images_finished, n);
    assert_eq!(snap.image_latency_us.count, n);

    let received: u64 = got.iter().map(|o| o.received.iter().map(|&r| r as u64).sum::<u64>()).sum();
    let zero_filled: u64 = got.iter().map(|o| o.zero_filled as u64).sum();
    let redispatched: u64 = got.iter().map(|o| o.redispatched as u64).sum();
    assert_eq!(snap.tiles_arrived, received);
    assert_eq!(snap.tiles_zero_filled, zero_filled);
    // The event stream records every recovery *send attempt*; the outcome
    // counter nets out attempts whose send was rejected (a dead worker's
    // closed queue) before the tile was re-routed.
    assert!(
        snap.tiles_redispatched >= redispatched,
        "{} redispatch events < {redispatched} net redispatches",
        snap.tiles_redispatched
    );
    // Every tile is accounted for exactly once: accepted or zero-filled.
    assert_eq!(snap.tiles_arrived + snap.tiles_zero_filled, n * d);
    // Round-0 dispatches cover every tile; send rejections re-route as
    // fresh dispatches, so the count can only exceed n*d.
    assert!(snap.tiles_dispatched >= n * d, "{} dispatches", snap.tiles_dispatched);

    // The injected faults actually showed up in the metrics stream.
    assert!(snap.workers_died >= 1, "worker death not observed");
    assert!(snap.tiles_corrupt > 0, "corruption not observed");
    assert!(redispatched > 0, "death must force re-dispatch");

    // Worker-side spans: one compute + one compress per computed tile, and
    // every accepted result was computed by someone.
    assert_eq!(snap.compute_us.count, snap.compress_us.count);
    assert!(snap.compute_us.count >= snap.tiles_arrived);
    assert!(snap.compressed_bytes > 0);
    assert!(snap.compute_us.mean().unwrap_or(0.0) > 0.0);
}

/// The §4 pipeline is lossless for level values and bounded-error for
/// arbitrary activations, across a range of shapes and sparsities.
#[test]
fn compression_error_bound_holds_at_scale() {
    let mut rng = StdRng::seed_from_u64(7);
    for &(c, h, w) in &[(4usize, 8usize, 8usize), (16, 28, 28), (3, 17, 31)] {
        let x = Tensor::randn([1, c, h, w], 1.0, &mut rng);
        let cr = ClippedRelu::new(0.5, 2.0);
        let clipped = cr.forward(&x);
        let q = Quantizer::paper_default(cr);
        let comp = compress(clipped.as_slice(), q);
        let back = decompress(&comp).expect("decode");
        for (a, b) in clipped.as_slice().iter().zip(&back) {
            assert!((a - b).abs() <= q.max_error() + 1e-6);
        }
        // byte accounting is self-consistent
        assert_eq!(comp.wire_bits() % 8, 0);
    }
}

/// FDSP processing through the real trained prefix equals whole-image
/// processing away from tile borders: the property §3.2 rests on, checked
/// on a *trained* model rather than random weights.
#[test]
fn fdsp_interior_equivalence_on_trained_model() {
    let data = shapes(120, 40, 32, 66);
    let mut rng = StdRng::seed_from_u64(66);
    let mut m = PartitionedModel::unpartitioned(shapes_cnn(data.classes, &mut rng));
    train(&mut m, &data, &TrainConfig { epochs: 4, ..Default::default() });

    let x = Tensor::randn([1, 3, 32, 32], 0.5, &mut rng);
    // full-map boundary (prefix has one pool, so 16x16 out)
    let full = m.boundary_activations(&x);
    // tiled boundary
    m.grid = TileGrid::new(2, 2);
    let tiled = m.boundary_activations(&x);
    assert_eq!(full.dims(), tiled.dims());

    // Interior of each 8x8 output tile (≥2 px from the internal cut at 8,
    // to cover the receptive field through 2 convs + pool) must agree.
    let (_, c, hh, ww) = full.shape().nchw();
    let mut checked = 0;
    for ci in 0..c {
        for r in 0..hh {
            for cc in 0..ww {
                let dr = if r < 8 { 7 - r } else { r - 8 };
                let dc = if cc < 8 { 7 - cc } else { cc - 8 };
                if dr >= 2 && dc >= 2 {
                    let a = full.at(&[0, ci, r, cc]);
                    let b = tiled.at(&[0, ci, r, cc]);
                    assert!(
                        (a - b).abs() < 1e-3,
                        "interior mismatch at ({ci},{r},{cc}): {a} vs {b}"
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 100);
}
