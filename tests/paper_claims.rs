//! The paper's headline qualitative claims, asserted against the full
//! stack (descriptors + cost model + simulator + schemes). These are the
//! invariants EXPERIMENTS.md reports on; if a refactor breaks one of them,
//! the reproduction is no longer reproducing.

use adcnn::netsim::schemes::{aofl, neurosurgeon, remote_cloud, single_device};
use adcnn::netsim::{AdcnnSim, AdcnnSimConfig, LinkParams, ThrottleSchedule};
use adcnn::nn::cost::DeviceProfile;
use adcnn::nn::zoo;

fn latency(cfg: AdcnnSimConfig) -> f64 {
    AdcnnSim::new(cfg).run().steady_latency_s()
}

fn base_cfg(model: adcnn::nn::zoo::ModelSpec, k: usize) -> AdcnnSimConfig {
    AdcnnSimConfig::builder(model, k)
        .images(20)
        .pipeline_depth(1)
        .build()
        .expect("valid sim config")
}

/// Figure 11: ADCNN beats the single-device scheme. At the paper's stated
/// (shallow) splits our calibration gives strict wins on 4 of 5 models,
/// with ResNet34 a statistical tie (its prefix is a small FLOP share);
/// the deep split wins strictly everywhere (next test).
#[test]
fn claim_adcnn_beats_single_device() {
    let pi = DeviceProfile::raspberry_pi3();
    let mut strict_wins = 0;
    for m in zoo::all_models() {
        let adcnn = latency(base_cfg(m.clone(), 8));
        let single = single_device(&m, &pi).latency_s;
        assert!(
            adcnn < single * 1.05,
            "{}: ADCNN {adcnn} catastrophically worse than single {single}",
            m.name
        );
        if adcnn < single {
            strict_wins += 1;
        }
    }
    assert!(strict_wins >= 4, "only {strict_wins}/5 strict wins");
}

/// Figure 11 at the deep split: strict wins on every model.
#[test]
fn claim_deep_split_beats_single_device_everywhere() {
    let pi = DeviceProfile::raspberry_pi3();
    for m in zoo::all_models() {
        let mut cfg = base_cfg(m.clone(), 8);
        cfg.prefix = m.blocks.len();
        let adcnn = latency(cfg);
        let single = single_device(&m, &pi).latency_s;
        assert!(adcnn < single, "{}: deep ADCNN {adcnn} !< single {single}", m.name);
    }
}

/// Figure 11 (cloud side): with the deep split, ADCNN also beats the
/// remote-cloud scheme on every model.
#[test]
fn claim_deep_split_beats_remote_cloud() {
    let v100 = DeviceProfile::cloud_v100();
    for m in zoo::all_models() {
        let mut cfg = base_cfg(m.clone(), 8);
        cfg.prefix = m.blocks.len();
        let adcnn = latency(cfg);
        let cloud = remote_cloud(&m, &v100, LinkParams::cloud_uplink()).latency_s;
        assert!(adcnn < cloud, "{}: deep ADCNN {adcnn} !< cloud {cloud}", m.name);
    }
}

/// Figure 12: pruning always helps, and helps more on the slow link.
#[test]
fn claim_pruning_gain_grows_as_bandwidth_shrinks() {
    for m in [zoo::vgg16(), zoo::fcn()] {
        let mut gains = Vec::new();
        for link in [LinkParams::wifi_fast(), LinkParams::wifi_slow()] {
            let mut pruned = base_cfg(m.clone(), 8);
            pruned.link = link;
            let mut raw = pruned.clone();
            raw.compression = None;
            let lp = latency(pruned);
            let lr = latency(raw);
            assert!(lp <= lr, "{}: pruning hurt on {} bps", m.name, link.bandwidth_bps);
            gains.push((lr - lp) / lr);
        }
        assert!(gains[1] > gains[0], "{}: slow-link gain not larger: {gains:?}", m.name);
    }
}

/// Figure 13: latency decreases monotonically in cluster size, with
/// diminishing returns.
#[test]
fn claim_scalability_monotone_with_diminishing_returns() {
    let m = zoo::vgg16();
    let l: Vec<f64> = [2usize, 4, 8].iter().map(|&k| latency(base_cfg(m.clone(), k))).collect();
    assert!(l[1] < l[0] && l[2] < l[1], "{l:?}");
    assert!(l[0] / l[1] > l[1] / l[2], "no diminishing returns: {l:?}");
}

/// Figure 14: with the deep split, ADCNN beats both Neurosurgeon and AOFL
/// on all three compared models.
#[test]
fn claim_deep_split_beats_neurosurgeon_and_aofl() {
    let pi = DeviceProfile::raspberry_pi3();
    let v100 = DeviceProfile::cloud_v100();
    for m in [zoo::yolo(), zoo::vgg16(), zoo::resnet34()] {
        let mut cfg = base_cfg(m.clone(), 8);
        cfg.prefix = m.blocks.len();
        let adcnn = latency(cfg);
        let ns = neurosurgeon(&m, &pi, &v100, LinkParams::cloud_uplink()).latency_s;
        let ao = aofl(&m, 8, &pi, LinkParams::wifi_fast()).latency_s;
        assert!(adcnn < ns, "{}: {adcnn} !< Neurosurgeon {ns}", m.name);
        assert!(adcnn < ao, "{}: {adcnn} !< AOFL {ao}", m.name);
    }
}

/// §7.4: AOFL prefers fusing many early layers on big-feature-map models.
#[test]
fn claim_aofl_fuses_early_layers() {
    let pi = DeviceProfile::raspberry_pi3();
    for (m, min_fuse) in [(zoo::vgg16(), 5), (zoo::yolo(), 5)] {
        let r = aofl(&m, 8, &pi, LinkParams::wifi_fast());
        let fuse: usize = r.detail.split(' ').next().unwrap().parse().unwrap();
        assert!(fuse >= min_fuse, "{}: fused only {fuse} ({})", m.name, r.detail);
    }
}

/// §7.4: Neurosurgeon's latency is dominated by the edge→cloud transfer
/// (the paper measures 67% on average).
#[test]
fn claim_neurosurgeon_transfer_dominated() {
    let pi = DeviceProfile::raspberry_pi3();
    let v100 = DeviceProfile::cloud_v100();
    for m in [zoo::vgg16(), zoo::yolo()] {
        let r = neurosurgeon(&m, &pi, &v100, LinkParams::cloud_uplink());
        let frac = r.transmission_s / r.latency_s;
        assert!(frac > 0.5, "{}: transfer only {:.0}%", m.name, frac * 100.0);
    }
}

/// §7.3 / Figure 15: after mid-run throttling the allocator shifts tiles to
/// the fast nodes and steady-state drops return to zero, while a static
/// allocation keeps dropping results forever.
#[test]
fn claim_adaptation_restores_losslessness() {
    let m = zoo::vgg16();
    let mut cfg = base_cfg(m, 8);
    cfg.images = 40;
    for i in 4..8 {
        cfg.nodes[i].throttle = ThrottleSchedule::throttle_at(5.0, 0.24);
    }
    let adaptive = AdcnnSim::new(cfg.clone()).run();
    let mut static_cfg = cfg;
    static_cfg.adaptive = false;
    let fixed = AdcnnSim::new(static_cfg).run();

    let tail_drops = |r: &adcnn::netsim::SimSummary| {
        r.images[r.images.len() - 10..].iter().map(|i| i.dropped as u64).sum::<u64>()
    };
    assert_eq!(tail_drops(&adaptive), 0, "adaptive cluster still dropping");
    assert!(tail_drops(&fixed) > 0, "static control unexpectedly lossless");
    // and the fast nodes carry more tiles than the slow ones
    let alloc = &adaptive.images.last().unwrap().alloc;
    let fast: u32 = alloc[..4].iter().sum();
    let slow: u32 = alloc[4..].iter().sum();
    assert!(fast > slow, "allocation did not shift: {alloc:?}");
}

/// Table 2: the calibrated compression lands within 20% of every paper
/// ratio.
#[test]
fn claim_table2_ratios_match() {
    use adcnn::core::compress::wire_bits_estimate;
    use adcnn::netsim::profiles::{model_sparsity, table2_ratio};
    for m in zoo::all_models() {
        let (c, h, w) = m.block_inputs()[m.separable_prefix];
        let elems = (c * h * w) as u64;
        let s = model_sparsity(&m.name);
        let got = wire_bits_estimate(elems, s, 4) as f64 / (elems as f64 * 32.0);
        let want = table2_ratio(&m.name);
        assert!((got - want).abs() / want < 0.2, "{}: ratio {got} vs paper {want}", m.name);
    }
}
