//! Counting-allocator proof of the zero-allocation inference hot path.
//!
//! The Conv-node steady-state tile loop is: prefix forward
//! (`Network::forward_infer_with`) + clip/quantize/RLE
//! (`clip_and_compress_into`), all through per-worker scratch. After a
//! warm-up pass on the tile shape, repeating that loop must hit the global
//! allocator **zero** times. The only per-tile allocation left in the full
//! worker is the final `Bytes` payload copy at the wire boundary, which is
//! measured separately and bounded.
//!
//! The network is sized so every internal GEMM stays under the parallel
//! dispatch threshold — the loop runs on this thread only, so the counter
//! observes exactly the hot path.

use adcnn::core::compress::{clip_and_compress_into, CompressScratch, Quantizer};
use adcnn::core::wire::{make_result_from_parts, TileKey};
use adcnn::nn::infer::InferScratch;
use adcnn::nn::{Block, Layer, Network};
use adcnn::tensor::activ::ClippedRelu;
use adcnn::tensor::conv::Conv2dParams;
use adcnn::tensor::pool::Pool2dParams;
use adcnn::tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocator hit (alloc + realloc; dealloc is free to the
/// "zero allocation" claim but counted for completeness).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A representative Conv-node prefix: conv→BN→ReLU→pool→conv→ReLU. Small
/// enough (all GEMMs < the parallel-dispatch threshold) to stay serial.
fn prefix_net(rng: &mut StdRng) -> Network {
    Network::new(vec![
        Block::Seq(vec![
            Layer::conv2d(3, 8, 3, Conv2dParams::same(3), rng),
            Layer::batch_norm(8),
            Layer::Relu,
            Layer::MaxPool(Pool2dParams::non_overlapping(2)),
        ]),
        Block::Residual {
            body: vec![Layer::conv2d(8, 8, 3, Conv2dParams::same(3), rng), Layer::Relu],
            shortcut: vec![],
        },
    ])
}

#[test]
fn steady_state_tile_loop_is_allocation_free() {
    let mut rng = StdRng::seed_from_u64(42);
    let net = prefix_net(&mut rng);
    let tile = Tensor::randn([1, 3, 16, 16], 0.5, &mut rng);
    let cr = ClippedRelu::new(0.1, 1.1);
    let q = Quantizer::paper_default(cr);

    let mut scratch = InferScratch::new();
    let mut cs = CompressScratch::new();

    // Warm-up: grow every arena/buffer to its steady-state size.
    for _ in 0..3 {
        let out = net.forward_infer_with(&tile, &mut scratch);
        let _ = clip_and_compress_into(out.as_slice(), cr, q, &mut cs);
    }

    let before = allocs();
    for _ in 0..10 {
        let out = net.forward_infer_with(&tile, &mut scratch);
        let enc = clip_and_compress_into(out.as_slice(), cr, q, &mut cs);
        assert!(!enc.is_empty());
    }
    let hot_path_allocs = allocs() - before;
    assert_eq!(
        hot_path_allocs, 0,
        "steady-state forward + compress must not allocate (got {hot_path_allocs} allocations \
         over 10 tiles)"
    );
}

/// The observability layer's zero-cost-when-disabled contract, proven at
/// the allocator: the exact hot loop of the first test, now emitting the
/// worker's per-tile `TileCompute`/`TileCompress` events through a
/// disabled [`NullSink`] handle, must still hit the allocator zero times.
/// (`emit_with` never runs the constructor closure when the sink is
/// disabled, so the events cost a branch, not an allocation.)
#[test]
fn steady_state_tile_loop_with_null_sink_is_allocation_free() {
    use adcnn::core::obs::{NullSink, ObsEvent, SinkHandle};

    let mut rng = StdRng::seed_from_u64(44);
    let net = prefix_net(&mut rng);
    let tile = Tensor::randn([1, 3, 16, 16], 0.5, &mut rng);
    let cr = ClippedRelu::new(0.1, 1.1);
    let q = Quantizer::paper_default(cr);

    let sink = SinkHandle::of(NullSink);
    assert!(!sink.enabled());

    let mut scratch = InferScratch::new();
    let mut cs = CompressScratch::new();
    for _ in 0..3 {
        let out = net.forward_infer_with(&tile, &mut scratch);
        let _ = clip_and_compress_into(out.as_slice(), cr, q, &mut cs);
    }

    let before = allocs();
    for i in 0..10u64 {
        let out = net.forward_infer_with(&tile, &mut scratch);
        let elems = out.numel();
        let enc = clip_and_compress_into(out.as_slice(), cr, q, &mut cs);
        assert!(!enc.is_empty());
        sink.emit_with(|| ObsEvent::TileCompute {
            at: i as f64 * 1e-3,
            image: 0,
            tile: i as u32,
            worker: 0,
            dur: 1e-3,
        });
        sink.emit_with(|| ObsEvent::TileCompress {
            at: i as f64 * 1e-3,
            image: 0,
            tile: i as u32,
            worker: 0,
            dur: 1e-4,
            bytes: enc.len() as u64,
            ratio: (enc.len() as u64 * 8) as f64 / (elems as f64 * 32.0),
        });
    }
    let hot_path_allocs = allocs() - before;
    assert_eq!(
        hot_path_allocs, 0,
        "a disabled sink must keep the hot path allocation-free (got {hot_path_allocs} \
         allocations over 10 tiles)"
    );
}

/// The fan-out path must preserve the contract: a [`TeeSink`] whose
/// children are all disabled reports itself disabled, so a `SinkHandle`
/// wrapping it never runs the event constructor — the tee adds a branch,
/// not an allocation, to the hot loop.
#[test]
fn steady_state_tile_loop_with_disabled_tee_is_allocation_free() {
    use adcnn::core::obs::{NullSink, ObsEvent, SinkHandle, TeeSink};
    use std::sync::Arc;

    let mut rng = StdRng::seed_from_u64(45);
    let net = prefix_net(&mut rng);
    let tile = Tensor::randn([1, 3, 16, 16], 0.5, &mut rng);
    let cr = ClippedRelu::new(0.1, 1.1);
    let q = Quantizer::paper_default(cr);

    let tee = TeeSink::new(vec![Arc::new(NullSink) as _, Arc::new(NullSink) as _]);
    let sink = SinkHandle::of(tee);
    assert!(!sink.enabled(), "a tee of disabled sinks must be disabled");

    let mut scratch = InferScratch::new();
    let mut cs = CompressScratch::new();
    for _ in 0..3 {
        let out = net.forward_infer_with(&tile, &mut scratch);
        let _ = clip_and_compress_into(out.as_slice(), cr, q, &mut cs);
    }

    let before = allocs();
    for i in 0..10u64 {
        let out = net.forward_infer_with(&tile, &mut scratch);
        let enc = clip_and_compress_into(out.as_slice(), cr, q, &mut cs);
        assert!(!enc.is_empty());
        sink.emit_with(|| ObsEvent::TileCompute {
            at: i as f64 * 1e-3,
            image: 0,
            tile: i as u32,
            worker: 0,
            dur: 1e-3,
        });
    }
    let hot_path_allocs = allocs() - before;
    assert_eq!(
        hot_path_allocs, 0,
        "a tee of disabled sinks must keep the hot path allocation-free (got \
         {hot_path_allocs} allocations over 10 tiles)"
    );
}

#[test]
fn wire_boundary_allocations_are_bounded() {
    let mut rng = StdRng::seed_from_u64(43);
    let net = prefix_net(&mut rng);
    let tile = Tensor::randn([1, 3, 16, 16], 0.5, &mut rng);
    let cr = ClippedRelu::new(0.1, 1.1);
    let q = Quantizer::paper_default(cr);

    let mut scratch = InferScratch::new();
    let mut cs = CompressScratch::new();
    for _ in 0..3 {
        let out = net.forward_infer_with(&tile, &mut scratch);
        let _ = clip_and_compress_into(out.as_slice(), cr, q, &mut cs);
    }

    // The full per-tile result construction: the one unavoidable allocation
    // is the Bytes payload copy handed to the channel (plus its drop).
    let iters = 10u64;
    let before = allocs();
    for i in 0..iters {
        let out = net.forward_infer_with(&tile, &mut scratch);
        let dims = out.dims();
        let shape = [dims[0], dims[1], dims[2], dims[3]];
        let elems = out.numel();
        let enc = clip_and_compress_into(out.as_slice(), cr, q, &mut cs);
        let res = make_result_from_parts(
            TileKey { image_id: 0, tile_id: i as u32 },
            shape,
            elems,
            enc,
            q,
        );
        assert_eq!(res.payload.elems, elems);
    }
    let per_tile = (allocs() - before) as f64 / iters as f64;
    assert!(
        per_tile <= 2.0,
        "expected at most the Bytes payload copy per tile, got {per_tile} allocations/tile"
    );
}
