//! Shared reporting helpers for the experiment harnesses.
//!
//! Each `benches/figXX_*.rs` / `benches/tableX_*.rs` binary regenerates one
//! artifact of the paper's evaluation section: it prints the same rows or
//! series the paper reports and writes a machine-readable copy under
//! `results/` (workspace root) for EXPERIMENTS.md provenance.

use serde::Serialize;
use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// Print a fixed-width table with a title.
pub fn print_table<H: Display, C: Display>(title: &str, headers: &[H], rows: &[Vec<C>]) {
    println!("\n=== {title} ===");
    let headers: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let rows: Vec<Vec<String>> =
        rows.iter().map(|r| r.iter().map(|c| c.to_string()).collect()).collect();
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in &rows {
        assert_eq!(r.len(), cols, "ragged table row");
        for (w, c) in widths.iter_mut().zip(r) {
            *w = (*w).max(c.len());
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (c, w) in cells.iter().zip(&widths) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(&headers);
    println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * cols));
    for r in &rows {
        line(r);
    }
}

/// Workspace-root `results/` directory (created on demand).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the workspace root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("results");
    fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Serialize an experiment's data to `results/<name>.json`.
pub fn emit_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize experiment");
    fs::write(&path, json).expect("write experiment json");
    println!("[written {path:?}]");
}

/// Write a pre-rendered JSON document to `results/<name>.json`.
///
/// For harnesses that build their document with `adcnn_core::obs::json`
/// instead of serde — same destination and logging as [`emit_json`].
pub fn emit_raw_json(name: &str, json: &str) {
    let path = results_dir().join(format!("{name}.json"));
    fs::write(&path, json).expect("write experiment json");
    println!("[written {path:?}]");
}

/// Format seconds as milliseconds with 1 decimal.
pub fn ms(s: f64) -> String {
    format!("{:.1}", s * 1e3)
}

/// Format a ratio as `x.yz×`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printing_does_not_panic() {
        print_table("t", &["a", "bb"], &[vec!["1".to_string(), "2".into()]]);
    }

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(0.1234), "123.4");
        assert_eq!(times(2.5), "2.50x");
    }
}
