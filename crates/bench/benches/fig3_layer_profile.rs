//! Figure 3: per-layer-block execution time and ifmap size on a Raspberry
//! Pi, for VGG16, ResNet18, FCN and CharCNN.
//!
//! Paper's observations to reproduce: execution time and ifmap size surge
//! after the first layer block and decay afterwards; early blocks dominate
//! (first four VGG16 blocks ≈ 41% of total); FC is negligible.

use adcnn_bench::{emit_json, print_table};
use adcnn_nn::cost::{layer_profile, model_time_s, DeviceProfile};
use adcnn_nn::zoo;
use serde::Serialize;

#[derive(Serialize)]
struct Panel {
    model: String,
    rows: Vec<(String, f64, f64)>, // label, time_ms, ifmap_kb
    total_ms: f64,
    first_four_fraction: f64,
}

fn main() {
    let pi = DeviceProfile::raspberry_pi3();
    let mut panels = Vec::new();
    for m in [zoo::vgg16(), zoo::resnet18(), zoo::fcn(), zoo::charcnn()] {
        let rows = layer_profile(&m, &pi);
        let total_ms = model_time_s(&m, &pi) * 1e3;
        let first_four: f64 = rows.iter().take(4).map(|r| r.time_ms).sum();
        let panel = Panel {
            model: m.name.clone(),
            rows: rows.iter().map(|r| (r.label.clone(), r.time_ms, r.ifmap_kb)).collect(),
            total_ms,
            first_four_fraction: first_four / total_ms,
        };
        print_table(
            &format!("Figure 3 — {} on {} (total {:.0} ms)", m.name, pi.name, total_ms),
            &["block", "time (ms)", "ifmap (KB)"],
            &panel
                .rows
                .iter()
                .map(|(l, t, k)| vec![l.clone(), format!("{t:.1}"), format!("{k:.0}")])
                .collect::<Vec<_>>(),
        );
        println!(
            "first four blocks: {:.1}% of total (paper: 41.4% for VGG16, 57% for FCN)",
            panel.first_four_fraction * 100.0
        );
        panels.push(panel);
    }
    emit_json("fig3_layer_profile", &panels);
}
