//! Figure 15: impact of node-performance variation. Mid-run, four of the
//! eight Conv nodes are throttled (−55% on nodes 5–6, −76% on nodes 7–8,
//! matching §7.3); the latency jumps, Algorithm 2's statistics notice, and
//! Algorithm 3 shifts tiles to the fast nodes, clawing back part of the
//! loss (paper: 241 → 392 → 351 ms; allocation 8/8/…/8 → 12/12/12/12 and
//! 5/5/3/3).

use adcnn_bench::{emit_json, print_table, results_dir};
use adcnn_core::fdsp::TileGrid;
use adcnn_core::obs::{json, MetricsSink, MetricsSnapshot};
use adcnn_core::report::{AttributionAggregate, AttributionSink, FlightRecorderSink, Reporter};
use adcnn_netsim::{AdcnnSim, AdcnnSimConfig, LinkParams, SinkHandle, ThrottleSchedule};
use adcnn_nn::cost::DeviceProfile;
use adcnn_nn::zoo;
use serde::Serialize;
use std::sync::Arc;

/// The stable flat schema `results/BENCH_runtime.json` accumulates across
/// PRs — the runtime perf trajectory, read straight off the adaptive
/// run's [`MetricsSnapshot`]. Field names are load-bearing: downstream
/// tooling diffs them release over release. The flat fields stay the
/// depth-1 adaptive run (comparable back to the pre-pipeline baselines);
/// `depth_sweep` records the admission-window scaling on the serving
/// cluster.
#[derive(Serialize)]
struct RuntimeBench {
    images: u64,
    images_per_s: f64,
    p50_latency_us: f64,
    p99_latency_us: f64,
    zero_fill_rate: f64,
    redispatch_rate: f64,
    compressed_bytes_per_tile: f64,
    depth_sweep: Vec<DepthPoint>,
}

/// One depth of the pipeline sweep: a clean (fault-free) run of the
/// serving cluster at a fixed admission window.
#[derive(Serialize)]
struct DepthPoint {
    depth: usize,
    images: u64,
    images_per_s: f64,
    p50_latency_us: f64,
    p99_latency_us: f64,
    zero_fill_rate: f64,
}

/// One clean serving-cluster run at admission window `depth`.
///
/// The paper's 8-Pi testbed is compute-dominated (Table 3: ~850 ms of
/// computation vs ~58 ms of transmission), so overlapping images barely
/// helps there. The regime the pipeline targets — the ROADMAP's
/// multi-user serving — is a cluster whose send / conv-compute / suffix
/// stages are comparable: 16 Pi Conv nodes on a Wi-Fi 6 AP with a
/// GPU-class Central, VGG16 split at a 4×4 grid after block 6. Each stage
/// lands near ~50 ms per image, so throughput scales until the window
/// covers all three. `T_L` is relaxed: this is a throughput benchmark
/// with no fault injection, and a tight grace would count send-queue
/// delays of deep windows as drops.
fn depth_point(depth: usize) -> DepthPoint {
    let metrics = Arc::new(MetricsSink::new());
    let mut cfg = AdcnnSimConfig::paper_testbed(zoo::vgg16(), 16);
    cfg.grid = TileGrid::new(4, 4);
    cfg.prefix = 6;
    cfg.central = DeviceProfile::cloud_v100();
    cfg.link = LinkParams::wifi6();
    cfg.images = 100;
    cfg.pipeline_depth = depth;
    cfg.policy.t_l = 0.5;
    cfg.sink = SinkHandle::new(metrics.clone());
    let run = AdcnnSim::new(cfg).run();
    let live = Reporter::new().sample(&metrics.snapshot(), run.sim_end_s);
    DepthPoint {
        depth,
        images: live.images,
        images_per_s: live.images_per_s,
        p50_latency_us: live.p50_latency_us.unwrap_or(0.0),
        p99_latency_us: live.p99_latency_us.unwrap_or(0.0),
        zero_fill_rate: live.zero_fill_rate,
    }
}

#[derive(Serialize)]
struct Output {
    throttle_at_image: usize,
    latency_before_ms: f64,
    latency_spike_ms: f64,
    latency_recovered_ms: f64,
    alloc_before: Vec<u32>,
    alloc_after: Vec<u32>,
    drops_during_transition: u32,
    redispatched_during_transition: u32,
    steady_drops_per_image_adaptive: f64,
    steady_drops_per_image_static: f64,
    steady_redispatched_per_image_adaptive: f64,
    steady_redispatched_per_image_static: f64,
    static_latency_ms: f64,
    timeline: Vec<(usize, f64)>,
    metrics: MetricsSnapshot,
    attribution: AttributionAggregate,
    forensic_dumps: usize,
}

fn main() {
    let m = zoo::vgg16();
    let images = 100usize;
    let throttle_img = 50usize;

    // First pass at full speed to find the wall-clock time of image 50.
    let warm = AdcnnSimConfig::builder(m.clone(), 8)
        .images(images)
        .pipeline_depth(1)
        .build()
        .expect("valid sim config");
    let warm_run = AdcnnSim::new(warm.clone()).run();
    let t_half = warm_run.images[throttle_img].done_at;

    // The adaptive run carries the full forensic-observability stack —
    // metrics + per-image attribution + flight recorder, tee'd onto one
    // handle — so the emitted record includes the run's counters and
    // histograms, the Table 3 phase aggregate, and the anomaly dumps the
    // throttling provokes, alongside the figure's latency numbers.
    let metrics = Arc::new(MetricsSink::new());
    let attribution = Arc::new(AttributionSink::with_retention(images));
    let recorder = Arc::new(FlightRecorderSink::new(4096));
    let mut cfg = warm;
    cfg.sink = SinkHandle::new(metrics.clone()).tee(attribution.clone()).tee(recorder.clone());
    for i in 4..6 {
        cfg.nodes[i].throttle = ThrottleSchedule::throttle_at(t_half, 0.45);
    }
    for i in 6..8 {
        cfg.nodes[i].throttle = ThrottleSchedule::throttle_at(t_half, 0.24);
    }
    let run = AdcnnSim::new(cfg.clone()).run();
    // No-adaptation control: identical throttling, static equal allocation.
    // Drop the sink so the control run does not pollute the adaptive
    // run's counters.
    let mut static_cfg = cfg;
    static_cfg.adaptive = false;
    static_cfg.sink = SinkHandle::null();
    let static_run = AdcnnSim::new(static_cfg).run();

    let mean = |range: std::ops::Range<usize>| {
        let xs = &run.images[range];
        xs.iter().map(|i| i.latency_s).sum::<f64>() / xs.len() as f64 * 1e3
    };
    let before = mean(20..throttle_img);
    let spike = mean(throttle_img..throttle_img + 6);
    let recovered = mean(images - 20..images);
    let alloc_before = run.images[throttle_img - 2].alloc.clone();
    let alloc_after = run.images[images - 1].alloc.clone();
    let drops: u32 = run.images[throttle_img..throttle_img + 15].iter().map(|i| i.dropped).sum();
    let redispatched: u32 =
        run.images[throttle_img..throttle_img + 15].iter().map(|i| i.redispatched).sum();
    let steady = |r: &[adcnn_netsim::ImageStats]| {
        let tail = &r[images - 20..];
        tail.iter().map(|i| i.dropped as f64).sum::<f64>() / tail.len() as f64
    };
    let steady_re = |r: &[adcnn_netsim::ImageStats]| {
        let tail = &r[images - 20..];
        tail.iter().map(|i| i.redispatched as f64).sum::<f64>() / tail.len() as f64
    };
    let steady_adaptive = steady(&run.images);
    let steady_static = steady(&static_run.images);
    let steady_re_adaptive = steady_re(&run.images);
    let steady_re_static = steady_re(&static_run.images);
    let static_lat =
        static_run.images[images - 20..].iter().map(|i| i.latency_s).sum::<f64>() / 20.0 * 1e3;

    let timeline: Vec<(usize, f64)> =
        run.images.iter().enumerate().step_by(5).map(|(i, s)| (i, s.latency_s * 1e3)).collect();

    print_table(
        "Figure 15 — latency timeline (every 5th image)",
        &["image", "latency (ms)"],
        &timeline.iter().map(|(i, l)| vec![i.to_string(), format!("{l:.1}")]).collect::<Vec<_>>(),
    );
    print_table(
        "Figure 15(c) — tile allocation per node",
        &["when", "n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8"],
        &[
            std::iter::once("before".to_string())
                .chain(alloc_before.iter().map(|x| x.to_string()))
                .collect::<Vec<_>>(),
            std::iter::once("after".to_string())
                .chain(alloc_after.iter().map(|x| x.to_string()))
                .collect::<Vec<_>>(),
        ],
    );
    println!(
        "latency: {before:.1} ms -> spike {spike:.1} ms -> recovered {recovered:.1} ms \
         (paper: 241 -> 392 -> 351); transition: {drops} drops, {redispatched} tile \
         re-dispatches"
    );
    println!(
        "adaptation benefit: steady drops/image {steady_adaptive:.1} + re-dispatches \
         {steady_re_adaptive:.1} (adaptive) vs {steady_static:.1} + {steady_re_static:.1} \
         (static allocation at {static_lat:.1} ms) — with the lifecycle manager a \
         straggler costs recovery latency instead of accuracy; Algorithms 2+3 \
         eliminate even that steady-state recovery traffic"
    );
    let snap = metrics.snapshot();
    println!(
        "observability (adaptive run): {} tiles dispatched + {} re-dispatched, {} arrived \
         ({} late, {} zero-filled); {} deadlines fired; {} rate updates; mean compute \
         {:.1} us, mean transfer {:.1} us over {} spans",
        snap.tiles_dispatched,
        snap.tiles_redispatched,
        snap.tiles_arrived,
        snap.tiles_late,
        snap.tiles_zero_filled,
        snap.deadlines_fired,
        snap.rate_updates,
        snap.compute_us.mean().unwrap_or(0.0),
        snap.transfer_us.mean().unwrap_or(0.0),
        snap.compute_us.count,
    );
    // Live-reporting view of the same snapshot (rates over simulated time),
    // plus the attribution/forensics the throttled phase produced.
    let live = Reporter::new().sample(&snap, run.sim_end_s);
    println!("{}", live.line());
    let agg = attribution.aggregate();
    let dumps = recorder.reports();
    println!(
        "attribution: {} images folded, mean latency {:.1} ms, critical-path queue/compute/\
         transfer {:.1}/{:.1}/{:.1} ms total; {} forensic dumps filed",
        agg.images,
        agg.mean_latency_s().unwrap_or(0.0) * 1e3,
        agg.queue_wait_s * 1e3,
        agg.compute_s * 1e3,
        agg.transfer_s * 1e3,
        dumps.len(),
    );
    // Pipeline depth sweep on the serving cluster: images/s must scale
    // with the admission window while the per-image tail stays flat.
    let sweep: Vec<DepthPoint> = [1usize, 2, 4, 8].iter().map(|&d| depth_point(d)).collect();
    print_table(
        "Pipeline depth sweep — serving cluster (16 Pi + GPU Central, Wi-Fi 6)",
        &["depth", "images/s", "p50 (ms)", "p99 (ms)", "zero-fill"],
        &sweep
            .iter()
            .map(|p| {
                vec![
                    p.depth.to_string(),
                    format!("{:.2}", p.images_per_s),
                    format!("{:.1}", p.p50_latency_us / 1e3),
                    format!("{:.1}", p.p99_latency_us / 1e3),
                    format!("{:.4}", p.zero_fill_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let d1 = &sweep[0];
    let d4 = sweep.iter().find(|p| p.depth == 4).expect("sweep includes depth 4");
    let speedup = d4.images_per_s / d1.images_per_s;
    let p99_ratio = d4.p99_latency_us / d1.p99_latency_us;
    println!(
        "depth 4 vs depth 1: {speedup:.2}x images/s, p99 {p99_ratio:.2}x, zero-fill \
         {:.4} -> {:.4}",
        d1.zero_fill_rate, d4.zero_fill_rate
    );
    assert!(
        speedup >= 2.5,
        "pipeline depth 4 must deliver >= 2.5x the depth-1 throughput, got {speedup:.2}x"
    );
    assert!(
        p99_ratio <= 1.5,
        "pipeline depth 4 must keep p99 within 1.5x of depth 1, got {p99_ratio:.2}x"
    );
    assert!(
        (d4.zero_fill_rate - d1.zero_fill_rate).abs() < 1e-12,
        "deepening the window must not change the zero-fill rate: {} vs {}",
        d1.zero_fill_rate,
        d4.zero_fill_rate
    );

    emit_json(
        "BENCH_runtime",
        &RuntimeBench {
            images: live.images,
            images_per_s: live.images_per_s,
            p50_latency_us: live.p50_latency_us.unwrap_or(0.0),
            p99_latency_us: live.p99_latency_us.unwrap_or(0.0),
            zero_fill_rate: live.zero_fill_rate,
            redispatch_rate: live.redispatch_rate,
            compressed_bytes_per_tile: snap.compressed_tile_bytes.mean().unwrap_or(0.0),
            depth_sweep: sweep,
        },
    );
    // The emitted record is machine-read downstream: fail the bench (and
    // ci.sh with it) if the JSON on disk is not well formed.
    let written = std::fs::read_to_string(results_dir().join("BENCH_runtime.json"))
        .expect("BENCH_runtime.json was just written");
    assert!(json::is_well_formed(&written), "malformed BENCH_runtime.json:\n{written}");
    emit_json(
        "fig15_dynamic_adaptation",
        &Output {
            throttle_at_image: throttle_img,
            latency_before_ms: before,
            latency_spike_ms: spike,
            latency_recovered_ms: recovered,
            alloc_before,
            alloc_after,
            drops_during_transition: drops,
            redispatched_during_transition: redispatched,
            steady_drops_per_image_adaptive: steady_adaptive,
            steady_drops_per_image_static: steady_static,
            steady_redispatched_per_image_adaptive: steady_re_adaptive,
            steady_redispatched_per_image_static: steady_re_static,
            static_latency_ms: static_lat,
            timeline,
            metrics: snap,
            attribution: agg,
            forensic_dumps: dumps.len(),
        },
    );
}
