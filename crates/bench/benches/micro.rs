//! Criterion micro-benchmarks: the hot primitives underneath the system —
//! convolution/gemm throughput, the compression codec, FDSP tile
//! plumbing, and the scheduler inner loops.

use adcnn_core::compress::{compress, Quantizer, RleCodec};
use adcnn_core::fdsp::TileGrid;
use adcnn_core::sched::{StatsCollector, TileAllocator};
use adcnn_tensor::conv::{conv2d, Conv2dParams};
use adcnn_tensor::gemm::gemm;
use adcnn_tensor::Tensor;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (m, k, n) = (128, 256, 196);
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut g = c.benchmark_group("gemm");
    g.throughput(Throughput::Elements((2 * m * k * n) as u64));
    g.bench_function("128x256x196", |bench| {
        bench.iter_batched(
            || vec![0.0f32; m * n],
            |mut out| {
                gemm(m, k, n, &a, &b, &mut out, 0.0);
                black_box(out)
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::randn([1, 16, 56, 56], 1.0, &mut rng);
    let w = Tensor::randn([32, 16, 3, 3], 0.1, &mut rng);
    let bias = vec![0.0f32; 32];
    let p = Conv2dParams::same(3);
    let flops = 2u64 * 32 * 56 * 56 * 16 * 9;
    let mut g = c.benchmark_group("conv2d");
    g.throughput(Throughput::Elements(flops));
    g.bench_function("16->32ch_56x56_k3", |bench| {
        bench.iter(|| black_box(conv2d(&x, &w, &bias, p)))
    });
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 100_352; // one VGG16 tile boundary (512*28*28/4)
    let xs: Vec<f32> = (0..n)
        .map(|_| if rng.gen_bool(0.95) { 0.0 } else { rng.gen_range(0.0..1.0f32) })
        .collect();
    let q = Quantizer::new(4, 1.0);
    let mut g = c.benchmark_group("compress");
    g.throughput(Throughput::Bytes((n * 4) as u64));
    g.bench_function("pipeline_95pct_sparse", |bench| {
        bench.iter(|| black_box(compress(&xs, q)))
    });
    let levels = q.quantize(&xs);
    let encoded = RleCodec.encode(&levels);
    g.bench_function("rle_decode", |bench| {
        bench.iter(|| black_box(RleCodec.decode(&encoded, n).unwrap()))
    });
    g.finish();
}

fn bench_fdsp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let x = Tensor::randn([1, 3, 224, 224], 1.0, &mut rng);
    let grid = TileGrid::new(8, 8);
    let mut g = c.benchmark_group("fdsp");
    g.bench_function("stack_8x8_224", |bench| bench.iter(|| black_box(grid.stack(&x))));
    let stacked = grid.stack(&x);
    g.bench_function("unstack_8x8_224", |bench| {
        bench.iter(|| black_box(grid.unstack_assemble(&stacked)))
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let speeds: Vec<f64> = (0..8).map(|i| 1.0 + i as f64 * 0.5).collect();
    let alloc = TileAllocator::unbounded(8);
    let mut g = c.benchmark_group("scheduler");
    g.bench_function("allocate_64_tiles_8_nodes", |bench| {
        let mut rng = StdRng::seed_from_u64(5);
        bench.iter(|| black_box(alloc.allocate(64, &speeds, &mut rng)))
    });
    g.bench_function("stats_update", |bench| {
        let mut sc = StatsCollector::new(8, 0.9);
        let counts = [8u32, 8, 8, 8, 5, 5, 3, 3];
        bench.iter(|| {
            sc.record_image(&counts);
            black_box(sc.speed(0))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_conv2d, bench_compression, bench_fdsp, bench_scheduler
}
criterion_main!(benches);
