//! Criterion micro-benchmarks: the hot primitives underneath the system —
//! convolution/gemm throughput, the compression codec, FDSP tile
//! plumbing, and the scheduler inner loops.

use adcnn_core::compress::{
    clip_and_compress_into, compress, CompressScratch, Quantizer, RleCodec,
};
use adcnn_core::fdsp::TileGrid;
use adcnn_core::sched::{StatsCollector, TileAllocator};
use adcnn_nn::infer::InferScratch;
use adcnn_nn::{Block, Layer, Network};
use adcnn_tensor::activ::ClippedRelu;
use adcnn_tensor::conv::{conv2d, conv2d_into, Conv2dParams};
use adcnn_tensor::gemm::{gemm, gemm_unpacked, FusedAct};
use adcnn_tensor::{ActBuf, Scratch, Tensor};
use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (m, k, n) = (128, 256, 196);
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut g = c.benchmark_group("gemm");
    g.throughput(Throughput::Elements((2 * m * k * n) as u64));
    g.bench_function("128x256x196", |bench| {
        bench.iter_batched(
            || vec![0.0f32; m * n],
            |mut out| {
                gemm(m, k, n, &a, &b, &mut out, 0.0);
                black_box(out)
            },
            BatchSize::LargeInput,
        )
    });
    // The baseline-vs-packed pair used for BENCH_gemm.json.
    let (m, k, n) = (256, 256, 256);
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    g.throughput(Throughput::Elements((2 * m * k * n) as u64));
    g.bench_function("packed_256x256x256", |bench| {
        bench.iter_batched(
            || vec![0.0f32; m * n],
            |mut out| {
                gemm(m, k, n, &a, &b, &mut out, 0.0);
                black_box(out)
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("unpacked_256x256x256", |bench| {
        bench.iter_batched(
            || vec![0.0f32; m * n],
            |mut out| {
                gemm_unpacked(m, k, n, &a, &b, &mut out, 0.0);
                black_box(out)
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::randn([1, 16, 56, 56], 1.0, &mut rng);
    let w = Tensor::randn([32, 16, 3, 3], 0.1, &mut rng);
    let bias = vec![0.0f32; 32];
    let p = Conv2dParams::same(3);
    let flops = 2u64 * 32 * 56 * 56 * 16 * 9;
    let mut g = c.benchmark_group("conv2d");
    g.throughput(Throughput::Elements(flops));
    g.bench_function("16->32ch_56x56_k3", |bench| {
        bench.iter(|| black_box(conv2d(&x, &w, &bias, p)))
    });
    g.bench_function("16->32ch_56x56_k3_into", |bench| {
        let mut scratch = Scratch::new();
        let mut out = ActBuf::new();
        bench.iter(|| {
            conv2d_into(
                x.as_slice(),
                (1, 16, 56, 56),
                &w,
                &bias,
                p,
                FusedAct::Relu,
                &mut scratch,
                &mut out,
            );
            black_box(out.as_slice()[0])
        })
    });
    g.finish();
}

/// The Conv-node steady-state tile loop: prefix forward + clip + quantize +
/// RLE, all through reusable scratch (the zero-allocation path).
fn bench_tile_pipeline(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let net = Network::new(vec![Block::Seq(vec![
        Layer::conv2d(3, 16, 3, Conv2dParams::same(3), &mut rng),
        Layer::batch_norm(16),
        Layer::Relu,
        Layer::conv2d(16, 16, 3, Conv2dParams::same(3), &mut rng),
        Layer::Relu,
    ])]);
    let tile = Tensor::randn([1, 3, 16, 16], 0.5, &mut rng);
    let cr = ClippedRelu::new(0.1, 1.1);
    let q = Quantizer::paper_default(cr);
    let mut g = c.benchmark_group("tile_pipeline");
    g.bench_function("prefix_forward_clip_compress", |bench| {
        let mut scratch = InferScratch::new();
        let mut cs = CompressScratch::new();
        bench.iter(|| {
            let out = net.forward_infer_with(&tile, &mut scratch);
            let enc = clip_and_compress_into(out.as_slice(), cr, q, &mut cs);
            black_box(enc.len())
        })
    });
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 100_352; // one VGG16 tile boundary (512*28*28/4)
    let xs: Vec<f32> =
        (0..n).map(|_| if rng.gen_bool(0.95) { 0.0 } else { rng.gen_range(0.0..1.0f32) }).collect();
    let q = Quantizer::new(4, 1.0);
    let mut g = c.benchmark_group("compress");
    g.throughput(Throughput::Bytes((n * 4) as u64));
    g.bench_function("pipeline_95pct_sparse", |bench| bench.iter(|| black_box(compress(&xs, q))));
    let levels = q.quantize(&xs);
    let encoded = RleCodec.encode(&levels);
    g.bench_function("rle_decode", |bench| {
        bench.iter(|| black_box(RleCodec.decode(&encoded, n).unwrap()))
    });
    g.finish();
}

fn bench_fdsp(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let x = Tensor::randn([1, 3, 224, 224], 1.0, &mut rng);
    let grid = TileGrid::new(8, 8);
    let mut g = c.benchmark_group("fdsp");
    g.bench_function("stack_8x8_224", |bench| bench.iter(|| black_box(grid.stack(&x))));
    let stacked = grid.stack(&x);
    g.bench_function("unstack_8x8_224", |bench| {
        bench.iter(|| black_box(grid.unstack_assemble(&stacked)))
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let speeds: Vec<f64> = (0..8).map(|i| 1.0 + i as f64 * 0.5).collect();
    let alloc = TileAllocator::unbounded(8);
    let mut g = c.benchmark_group("scheduler");
    g.bench_function("allocate_64_tiles_8_nodes", |bench| {
        let mut rng = StdRng::seed_from_u64(5);
        bench.iter(|| black_box(alloc.allocate(64, &speeds, &mut rng)))
    });
    g.bench_function("stats_update", |bench| {
        let mut sc = StatsCollector::new(8, 0.9);
        let counts = [8u32, 8, 8, 8, 5, 5, 3, 3];
        bench.iter(|| {
            sc.record_image(&counts);
            black_box(sc.speed(0))
        })
    });
    g.finish();
}

/// Best-of-N wall-clock seconds for one invocation of `f`.
fn best_secs(mut f: impl FnMut(), reps: usize) -> f64 {
    // Warm-up: populate thread-local pack buffers, fault in pages.
    f();
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Record the packed-vs-seed GEMM speedup on 256x256x256 to
/// `results/BENCH_gemm.json` (the PR's acceptance baseline). JSON is
/// hand-formatted so the file is stable regardless of serializer.
fn record_gemm_baseline() {
    let (m, k, n) = (256usize, 256, 256);
    let mut rng = StdRng::seed_from_u64(7);
    let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut out = vec![0.0f32; m * n];
    let flops = (2 * m * k * n) as f64;

    let seed_s = best_secs(
        || {
            gemm_unpacked(m, k, n, &a, &b, &mut out, 0.0);
            black_box(out[0]);
        },
        9,
    );
    let packed_s = best_secs(
        || {
            gemm(m, k, n, &a, &b, &mut out, 0.0);
            black_box(out[0]);
        },
        9,
    );
    let speedup = seed_s / packed_s;
    let json = format!(
        "{{\n  \"bench\": \"gemm_256x256x256\",\n  \"seed_kernel_s\": {seed_s:.6},\n  \
         \"packed_kernel_s\": {packed_s:.6},\n  \"seed_gflops\": {:.3},\n  \
         \"packed_gflops\": {:.3},\n  \"speedup\": {speedup:.3},\n  \
         \"threads\": {}\n}}\n",
        flops / seed_s / 1e9,
        flops / packed_s / 1e9,
        rayon_threads(),
    );
    let path = adcnn_bench::results_dir().join("BENCH_gemm.json");
    std::fs::write(&path, json).expect("write BENCH_gemm.json");
    println!(
        "gemm 256x256x256: seed {:.2} GFLOP/s, packed {:.2} GFLOP/s, {speedup:.2}x [written {path:?}]",
        flops / seed_s / 1e9,
        flops / packed_s / 1e9,
    );
}

fn rayon_threads() -> usize {
    // The gemm dispatches through rayon; report the pool it actually used.
    adcnn_tensor::gemm::current_threads()
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_conv2d, bench_tile_pipeline, bench_compression, bench_fdsp, bench_scheduler
}

// Custom main (instead of `criterion_main!`): record the acceptance
// baseline first, then run the criterion groups as usual.
fn main() {
    record_gemm_baseline();
    benches();
    Criterion::default().configure_from_args().final_summary();
}
