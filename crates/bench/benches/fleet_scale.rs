//! Fleet-scale netsim benchmark: throughput, latency quantiles and
//! zero-fill across cluster sizes (16 → 256 Conv nodes) and offered load,
//! plus a churn-on multi-tenant scenario and a bounded-memory
//! million-request run. Emits `results/BENCH_netsim.json`.
//!
//! The document is built with `adcnn_core::obs::json` (not serde), so the
//! emitted file is identical no matter which serde backs the workspace.
//! The top-level `fleet` key is load-bearing: ci.sh greps for it.
//!
//! `FLEET_SMOKE=1` shrinks every scenario to a seconds-of-wall-time smoke
//! (the ci.sh entry): the 64-node / 2-model / churn-on scenario still runs
//! ~50k virtual requests.

use adcnn_bench::{emit_raw_json, print_table, results_dir};
use adcnn_core::fdsp::TileGrid;
use adcnn_core::obs::json::{self, array, Obj};
use adcnn_netsim::{ArrivalSpec, ChurnPlan, FleetConfig, FleetSim, SimNode, TenantSpec};
use adcnn_nn::cost::DeviceProfile;
use adcnn_nn::zoo;
use std::time::Instant;

/// One cluster size in the closed-loop VGG16 sweep.
struct SizePoint {
    nodes: usize,
    requests: usize,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    zero_fill_rate: f64,
    channel_utilization: f64,
    wall_ms: f64,
}

impl SizePoint {
    fn to_json(&self) -> String {
        Obj::new()
            .u64("nodes", self.nodes as u64)
            .u64("requests", self.requests as u64)
            .f64("throughput_rps", self.throughput_rps)
            .f64("p50_ms", self.p50_ms)
            .f64("p99_ms", self.p99_ms)
            .f64("zero_fill_rate", self.zero_fill_rate)
            .f64("channel_utilization", self.channel_utilization)
            .f64("wall_ms", self.wall_ms)
            .finish()
    }
}

/// One offered-load level in the Poisson sweep at fixed cluster size.
struct LoadPoint {
    load_factor: f64,
    offered_rps: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_queue_wait_ms: f64,
    zero_fill_rate: f64,
}

impl LoadPoint {
    fn to_json(&self) -> String {
        Obj::new()
            .f64("load_factor", self.load_factor)
            .f64("offered_rps", self.offered_rps)
            .f64("throughput_rps", self.throughput_rps)
            .f64("p50_ms", self.p50_ms)
            .f64("p99_ms", self.p99_ms)
            .f64("mean_queue_wait_ms", self.mean_queue_wait_ms)
            .f64("zero_fill_rate", self.zero_fill_rate)
            .finish()
    }
}

/// Two models sharing a churning 64-node cluster under open-loop load.
struct TenantScenario {
    nodes: usize,
    requests_total: u64,
    churn: bool,
    events_processed: u64,
    peak_events_pending: u64,
    throughput_rps: f64,
    p99_ms: f64,
    tenants: Vec<TenantPoint>,
    wall_ms: f64,
}

struct TenantPoint {
    name: String,
    weight: f64,
    requests: u64,
    p50_ms: f64,
    p99_ms: f64,
    mean_queue_wait_ms: f64,
    zero_fill_rate: f64,
}

impl TenantScenario {
    fn to_json(&self) -> String {
        Obj::new()
            .u64("nodes", self.nodes as u64)
            .u64("requests_total", self.requests_total)
            .bool("churn", self.churn)
            .u64("events_processed", self.events_processed)
            .u64("peak_events_pending", self.peak_events_pending)
            .f64("throughput_rps", self.throughput_rps)
            .f64("p99_ms", self.p99_ms)
            .raw(
                "tenants",
                array(self.tenants.iter().map(|t| {
                    Obj::new()
                        .str("name", &t.name)
                        .f64("weight", t.weight)
                        .u64("requests", t.requests)
                        .f64("p50_ms", t.p50_ms)
                        .f64("p99_ms", t.p99_ms)
                        .f64("mean_queue_wait_ms", t.mean_queue_wait_ms)
                        .f64("zero_fill_rate", t.zero_fill_rate)
                        .finish()
                })),
            )
            .f64("wall_ms", self.wall_ms)
            .finish()
    }
}

/// Million-request run with per-image retention off: peak RSS stays flat,
/// the streaming aggregates carry the whole latency surface.
struct MemoryRun {
    requests: usize,
    events_processed: u64,
    peak_events_pending: u64,
    retained_images: usize,
    peak_rss_mib: Option<f64>,
    wall_ms: f64,
}

impl MemoryRun {
    fn to_json(&self) -> String {
        Obj::new()
            .u64("requests", self.requests as u64)
            .u64("events_processed", self.events_processed)
            .u64("peak_events_pending", self.peak_events_pending)
            .u64("retained_images", self.retained_images as u64)
            .raw("peak_rss_mib", self.peak_rss_mib.map_or("null".into(), |m| format!("{m:.1}")))
            .f64("wall_ms", self.wall_ms)
            .finish()
    }
}

fn pis(k: usize) -> Vec<SimNode> {
    (0..k).map(|_| SimNode::pi()).collect()
}

fn ms(s: Option<f64>) -> f64 {
    s.unwrap_or(0.0) * 1e3
}

/// Peak resident set (VmHWM) of this process, MiB, where /proc exists.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn size_point(nodes: usize, requests: usize) -> SizePoint {
    let mut tenant = TenantSpec::new(zoo::vgg16());
    tenant.requests = requests;
    // 16×16 tiles so even the 256-node fleet has one tile per node; a
    // V100-class central keeps the suffix stage off the critical path so
    // the sweep measures the Conv fleet, not the aggregator.
    tenant.grid = TileGrid::new(16, 16);
    let mut cfg = FleetConfig::new(pis(nodes), vec![tenant]);
    cfg.central = DeviceProfile::cloud_v100();
    cfg.pipeline_depth = 4;
    let wall = Instant::now();
    let fs = FleetSim::new(cfg).run();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fs.completed as usize, requests);
    SizePoint {
        nodes,
        requests,
        throughput_rps: fs.throughput_rps(),
        p50_ms: ms(fs.p50_latency_s()),
        p99_ms: ms(fs.p99_latency_s()),
        zero_fill_rate: fs.zero_fill_rate(),
        channel_utilization: fs.channel_utilization,
        wall_ms,
    }
}

fn load_point(nodes: usize, requests: usize, capacity_rps: f64, load: f64) -> LoadPoint {
    let offered = capacity_rps * load;
    let mut tenant = TenantSpec::new(zoo::vgg16());
    tenant.requests = requests;
    tenant.grid = TileGrid::new(16, 16);
    tenant.arrivals = ArrivalSpec::Poisson { rate_per_s: offered };
    let mut cfg = FleetConfig::new(pis(nodes), vec![tenant]);
    cfg.central = DeviceProfile::cloud_v100();
    cfg.pipeline_depth = 4;
    let fs = FleetSim::new(cfg).run();
    assert_eq!(fs.completed as usize, requests);
    let t = &fs.tenants[0];
    LoadPoint {
        load_factor: load,
        offered_rps: offered,
        throughput_rps: fs.throughput_rps(),
        p50_ms: ms(fs.p50_latency_s()),
        p99_ms: ms(fs.p99_latency_s()),
        mean_queue_wait_ms: t.mean_queue_wait_s() * 1e3,
        zero_fill_rate: fs.zero_fill_rate(),
    }
}

/// The headline scenario (and ci.sh's smoke): 64 nodes, two models at 2:1
/// weights under Poisson load, join/leave churn plus a diurnal capacity
/// curve on every node.
fn multi_tenant(requests_each: usize) -> TenantScenario {
    let nodes_n = 64;
    // Calibrate offered load against the churn-free closed-loop capacity
    // so the open-loop scenario is busy but stable.
    let mut cal = TenantSpec::new(zoo::vgg16());
    cal.grid = TileGrid::new(4, 4);
    cal.requests = 2_000;
    let mut cal_cfg = FleetConfig::new(pis(nodes_n), vec![cal]);
    cal_cfg.pipeline_depth = 4;
    let capacity = FleetSim::new(cal_cfg).run().throughput_rps();

    let mut a = TenantSpec::new(zoo::vgg16());
    a.grid = TileGrid::new(4, 4);
    a.weight = 2.0;
    a.requests = requests_each;
    a.arrivals = ArrivalSpec::Poisson { rate_per_s: capacity * 0.6 };
    let mut b = TenantSpec::new(zoo::resnet34());
    b.grid = TileGrid::new(4, 4);
    b.weight = 1.0;
    b.requests = requests_each;
    b.arrivals = ArrivalSpec::Poisson { rate_per_s: capacity * 0.3 };

    let horizon = requests_each as f64 / (capacity * 0.3) * 1.5;
    let mut nodes = pis(nodes_n);
    ChurnPlan::new(horizon, 2024)
        .join_leave(horizon / 8.0, horizon / 40.0)
        .diurnal(horizon / 4.0, 0.5)
        .apply(&mut nodes);

    let mut cfg = FleetConfig::new(nodes, vec![a, b]);
    cfg.pipeline_depth = 4;
    cfg.seed = 7;
    let wall = Instant::now();
    let fs = FleetSim::new(cfg).run();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fs.completed as usize, 2 * requests_each);

    TenantScenario {
        nodes: nodes_n,
        requests_total: fs.completed,
        churn: true,
        events_processed: fs.events_processed,
        peak_events_pending: fs.peak_events_pending,
        throughput_rps: fs.throughput_rps(),
        p99_ms: ms(fs.p99_latency_s()),
        tenants: fs
            .tenants
            .iter()
            .map(|t| TenantPoint {
                name: t.name.clone(),
                weight: t.weight,
                requests: t.requests,
                p50_ms: ms(t.p50_latency_s()),
                p99_ms: ms(t.p99_latency_s()),
                mean_queue_wait_ms: t.mean_queue_wait_s() * 1e3,
                zero_fill_rate: t.zero_fill_rate(),
            })
            .collect(),
        wall_ms,
    }
}

fn bounded_memory(requests: usize) -> MemoryRun {
    let mut tenant = TenantSpec::new(zoo::vgg16());
    tenant.grid = TileGrid::new(2, 2);
    tenant.requests = requests;
    let mut cfg = FleetConfig::new(pis(4), vec![tenant]);
    cfg.pipeline_depth = 4;
    // retain_images defaults to 0: no per-image records at all.
    let wall = Instant::now();
    let fs = FleetSim::new(cfg).run();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fs.completed as usize, requests);
    assert!(fs.retained.is_empty(), "retention off must keep no per-image records");
    assert_eq!(fs.latency_us.count as usize, requests, "aggregates must see every request");
    let rss = peak_rss_mib();
    if let Some(mib) = rss {
        assert!(
            mib < 512.0,
            "peak RSS {mib:.0} MiB — per-request state is leaking into the {requests}-request run"
        );
    }
    MemoryRun {
        requests,
        events_processed: fs.events_processed,
        peak_events_pending: fs.peak_events_pending,
        retained_images: fs.retained.len(),
        peak_rss_mib: rss,
        wall_ms,
    }
}

fn main() {
    let smoke = std::env::var("FLEET_SMOKE").is_ok();
    let (size_req, load_req, mt_each, mem_req) =
        if smoke { (300, 400, 25_000, 100_000) } else { (1_200, 1_500, 60_000, 1_000_000) };

    let sizes = [16usize, 64, 128, 256];
    let size_sweep: Vec<SizePoint> = sizes.iter().map(|&k| size_point(k, size_req)).collect();
    print_table(
        "Fleet size sweep — closed-loop VGG16, depth 4",
        &["nodes", "req/s", "p50 (ms)", "p99 (ms)", "zero-fill", "chan util", "wall (ms)"],
        &size_sweep
            .iter()
            .map(|p| {
                vec![
                    p.nodes.to_string(),
                    format!("{:.2}", p.throughput_rps),
                    format!("{:.1}", p.p50_ms),
                    format!("{:.1}", p.p99_ms),
                    format!("{:.4}", p.zero_fill_rate),
                    format!("{:.3}", p.channel_utilization),
                    format!("{:.0}", p.wall_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    for p in &size_sweep {
        assert!(p.throughput_rps > 0.0);
        assert!(p.p99_ms >= p.p50_ms, "p99 {} < p50 {} at k={}", p.p99_ms, p.p50_ms, p.nodes);
        assert!(
            p.zero_fill_rate < 0.01,
            "healthy closed-loop cluster dropped tiles: {} at k={}",
            p.zero_fill_rate,
            p.nodes
        );
    }
    // Scaling up a link-shared fleet must never cost throughput.
    assert!(
        size_sweep.last().unwrap().throughput_rps >= size_sweep[0].throughput_rps * 0.95,
        "throughput regressed as the fleet grew"
    );

    // Offered-load sweep at 64 nodes, rates anchored to measured capacity.
    let capacity = size_sweep[1].throughput_rps;
    let load_sweep: Vec<LoadPoint> =
        [0.5, 0.8, 1.0, 1.2].iter().map(|&l| load_point(64, load_req, capacity, l)).collect();
    print_table(
        "Offered-load sweep — 64 nodes, Poisson arrivals",
        &["load", "offered r/s", "served r/s", "p50 (ms)", "p99 (ms)", "queue wait (ms)"],
        &load_sweep
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}x", p.load_factor),
                    format!("{:.2}", p.offered_rps),
                    format!("{:.2}", p.throughput_rps),
                    format!("{:.1}", p.p50_ms),
                    format!("{:.1}", p.p99_ms),
                    format!("{:.1}", p.mean_queue_wait_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let (under, over) = (&load_sweep[0], &load_sweep[3]);
    assert!(
        over.mean_queue_wait_ms > under.mean_queue_wait_ms,
        "overload must queue more than underload: {} vs {}",
        over.mean_queue_wait_ms,
        under.mean_queue_wait_ms
    );

    let mt = multi_tenant(mt_each);
    print_table(
        "Multi-tenant churn scenario — 64 nodes, join/leave + diurnal",
        &["tenant", "weight", "requests", "p50 (ms)", "p99 (ms)", "queue wait (ms)", "zero-fill"],
        &mt.tenants
            .iter()
            .map(|t| {
                vec![
                    t.name.clone(),
                    format!("{:.0}", t.weight),
                    t.requests.to_string(),
                    format!("{:.1}", t.p50_ms),
                    format!("{:.1}", t.p99_ms),
                    format!("{:.1}", t.mean_queue_wait_ms),
                    format!("{:.4}", t.zero_fill_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "multi-tenant: {} requests over {} nodes (churn {}), {} events ({} peak pending), \
         {:.2} req/s, p99 {:.1} ms, wall {:.1} s",
        mt.requests_total,
        mt.nodes,
        if mt.churn { "on" } else { "off" },
        mt.events_processed,
        mt.peak_events_pending,
        mt.throughput_rps,
        mt.p99_ms,
        mt.wall_ms / 1e3,
    );

    let mem = bounded_memory(mem_req);
    println!(
        "bounded memory: {} requests, {} events ({} peak pending), {} retained, \
         peak RSS {} MiB, {:.1} s wall",
        mem.requests,
        mem.events_processed,
        mem.peak_events_pending,
        mem.retained_images,
        mem.peak_rss_mib.map_or("n/a".into(), |m| format!("{m:.0}")),
        mem.wall_ms / 1e3,
    );

    let doc = Obj::new()
        .raw(
            "fleet",
            Obj::new()
                .bool("smoke", smoke)
                .raw("size_sweep", array(size_sweep.iter().map(|p| p.to_json())))
                .raw("load_sweep", array(load_sweep.iter().map(|p| p.to_json())))
                .raw("multi_tenant", mt.to_json())
                .raw("bounded_memory", mem.to_json())
                .finish(),
        )
        .finish();
    // The emitted record is machine-read downstream: fail the bench (and
    // ci.sh with it) if the JSON on disk is not well formed.
    assert!(json::is_well_formed(&doc), "malformed fleet document:\n{doc}");
    emit_raw_json("BENCH_netsim", &doc);
    let written = std::fs::read_to_string(results_dir().join("BENCH_netsim.json"))
        .expect("BENCH_netsim.json was just written");
    assert!(json::is_well_formed(&written), "malformed BENCH_netsim.json:\n{written}");
}
