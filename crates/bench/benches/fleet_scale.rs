//! Fleet-scale netsim benchmark: throughput, latency quantiles and
//! zero-fill across cluster sizes (16 → 256 Conv nodes) and offered load,
//! plus a churn-on multi-tenant scenario and a bounded-memory
//! million-request run. Emits `results/BENCH_netsim.json`.
//!
//! The document is built with `adcnn_core::obs::json` (not serde), so the
//! emitted file is identical no matter which serde backs the workspace.
//! The top-level `fleet` key is load-bearing: ci.sh greps for it.
//!
//! `FLEET_SMOKE=1` shrinks every scenario to a seconds-of-wall-time smoke
//! (the ci.sh entry): the 64-node / 2-model / churn-on scenario still runs
//! ~50k virtual requests.

use adcnn_bench::{emit_raw_json, print_table, results_dir};
use adcnn_core::fdsp::TileGrid;
use adcnn_core::obs::json::{self, array, Obj};
use adcnn_netsim::{
    AllNodesPlacement, ArrivalSpec, ChurnAwarePlacement, ChurnPlan, FleetConfig, FleetSim,
    GreedyPlacement, LabeledMetricsRegistry, PlacementPolicy, SimNode, SinkHandle, SloReport,
    SloSpec, TenantSpec,
};
use adcnn_nn::cost::DeviceProfile;
use adcnn_nn::zoo;
use std::sync::Arc;
use std::time::Instant;

/// One cluster size in the closed-loop VGG16 sweep.
struct SizePoint {
    nodes: usize,
    requests: usize,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    zero_fill_rate: f64,
    channel_utilization: f64,
    wall_ms: f64,
}

impl SizePoint {
    fn to_json(&self) -> String {
        Obj::new()
            .u64("nodes", self.nodes as u64)
            .u64("requests", self.requests as u64)
            .f64("throughput_rps", self.throughput_rps)
            .f64("p50_ms", self.p50_ms)
            .f64("p99_ms", self.p99_ms)
            .f64("zero_fill_rate", self.zero_fill_rate)
            .f64("channel_utilization", self.channel_utilization)
            .f64("wall_ms", self.wall_ms)
            .finish()
    }
}

/// One offered-load level in the Poisson sweep at fixed cluster size.
struct LoadPoint {
    load_factor: f64,
    offered_rps: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    mean_queue_wait_ms: f64,
    zero_fill_rate: f64,
}

impl LoadPoint {
    fn to_json(&self) -> String {
        Obj::new()
            .f64("load_factor", self.load_factor)
            .f64("offered_rps", self.offered_rps)
            .f64("throughput_rps", self.throughput_rps)
            .f64("p50_ms", self.p50_ms)
            .f64("p99_ms", self.p99_ms)
            .f64("mean_queue_wait_ms", self.mean_queue_wait_ms)
            .f64("zero_fill_rate", self.zero_fill_rate)
            .finish()
    }
}

/// Two models sharing a churning 64-node cluster under open-loop load.
struct TenantScenario {
    nodes: usize,
    requests_total: u64,
    churn: bool,
    events_processed: u64,
    peak_events_pending: u64,
    throughput_rps: f64,
    p99_ms: f64,
    tenants: Vec<TenantPoint>,
    /// Labeled Prometheus series counts from the fleet-stream registry
    /// (tenant shards, node shards, total non-comment series rendered).
    labeled_tenant_series: u64,
    labeled_node_series: u64,
    labeled_series_total: u64,
    wall_ms: f64,
}

struct TenantPoint {
    name: String,
    weight: f64,
    requests: u64,
    p50_ms: f64,
    p99_ms: f64,
    mean_queue_wait_ms: f64,
    zero_fill_rate: f64,
    slo: Option<SloReport>,
}

impl TenantScenario {
    fn to_json(&self) -> String {
        Obj::new()
            .u64("nodes", self.nodes as u64)
            .u64("requests_total", self.requests_total)
            .bool("churn", self.churn)
            .u64("events_processed", self.events_processed)
            .u64("peak_events_pending", self.peak_events_pending)
            .f64("throughput_rps", self.throughput_rps)
            .f64("p99_ms", self.p99_ms)
            .raw(
                "tenants",
                array(self.tenants.iter().map(|t| {
                    let o = Obj::new()
                        .str("name", &t.name)
                        .f64("weight", t.weight)
                        .u64("requests", t.requests)
                        .f64("p50_ms", t.p50_ms)
                        .f64("p99_ms", t.p99_ms)
                        .f64("mean_queue_wait_ms", t.mean_queue_wait_ms)
                        .f64("zero_fill_rate", t.zero_fill_rate);
                    match &t.slo {
                        Some(s) => o.raw("slo", s.to_json()),
                        None => o.raw("slo", "null"),
                    }
                    .finish()
                })),
            )
            .raw(
                "labeled_metrics",
                Obj::new()
                    .u64("tenant_series", self.labeled_tenant_series)
                    .u64("node_series", self.labeled_node_series)
                    .u64("series_total", self.labeled_series_total)
                    .finish(),
            )
            .f64("wall_ms", self.wall_ms)
            .finish()
    }
}

/// One placement policy's showing on the headline multi-tenant churn
/// scenario: same fleet, same tenants, same churn, same seed — only the
/// tenant-to-node placement differs.
struct PlacementPoint {
    policy: &'static str,
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    zero_fill_rate: f64,
    redispatched_tiles: u64,
    replacements: u64,
    /// Initial decision: (tenant, placed-node count).
    tenant_nodes: Vec<(String, usize)>,
    wall_ms: f64,
}

impl PlacementPoint {
    fn to_json(&self, base: &PlacementPoint) -> String {
        Obj::new()
            .str("policy", self.policy)
            .f64("throughput_rps", self.throughput_rps)
            .f64("p50_ms", self.p50_ms)
            .f64("p99_ms", self.p99_ms)
            .f64("zero_fill_rate", self.zero_fill_rate)
            .u64("redispatched_tiles", self.redispatched_tiles)
            .u64("replacements", self.replacements)
            .raw(
                "tenant_nodes",
                array(
                    self.tenant_nodes
                        .iter()
                        .map(|(t, k)| Obj::new().str("tenant", t).u64("nodes", *k as u64).finish()),
                ),
            )
            .f64("throughput_gain_pct", gain_pct(self.throughput_rps, base.throughput_rps))
            .f64("p99_reduction_pct", gain_pct(base.p99_ms, self.p99_ms))
            .f64("wall_ms", self.wall_ms)
            .finish()
    }
}

/// Relative improvement of `new` over `base`, percent (positive = better
/// when larger-is-better; call with swapped args for smaller-is-better).
fn gain_pct(new: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

fn placement_point(
    policy: &'static str,
    requests_each: usize,
    capacity: f64,
    pol: Arc<dyn PlacementPolicy>,
) -> PlacementPoint {
    let cfg = multi_tenant_cfg(requests_each, capacity, pol);
    let wall = Instant::now();
    let fs = FleetSim::new(cfg).run();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fs.completed as usize, 2 * requests_each);
    PlacementPoint {
        policy,
        throughput_rps: fs.throughput_rps(),
        p50_ms: ms(fs.p50_latency_s()),
        p99_ms: ms(fs.p99_latency_s()),
        zero_fill_rate: fs.zero_fill_rate(),
        redispatched_tiles: fs.tenants.iter().map(|t| t.redispatched_tiles).sum(),
        replacements: fs.replacements,
        tenant_nodes: fs
            .placement
            .assignments
            .iter()
            .map(|a| (a.tenant.clone(), a.nodes.len()))
            .collect(),
        wall_ms,
    }
}

/// Million-request run with per-image retention off: peak RSS stays flat,
/// the streaming aggregates carry the whole latency surface.
struct MemoryRun {
    requests: usize,
    events_processed: u64,
    peak_events_pending: u64,
    retained_images: usize,
    peak_rss_mib: Option<f64>,
    wall_ms: f64,
}

impl MemoryRun {
    fn to_json(&self) -> String {
        Obj::new()
            .u64("requests", self.requests as u64)
            .u64("events_processed", self.events_processed)
            .u64("peak_events_pending", self.peak_events_pending)
            .u64("retained_images", self.retained_images as u64)
            .raw("peak_rss_mib", self.peak_rss_mib.map_or("null".into(), |m| format!("{m:.1}")))
            .f64("wall_ms", self.wall_ms)
            .finish()
    }
}

fn pis(k: usize) -> Vec<SimNode> {
    (0..k).map(|_| SimNode::pi()).collect()
}

fn ms(s: Option<f64>) -> f64 {
    s.unwrap_or(0.0) * 1e3
}

/// Peak resident set (VmHWM) of this process, MiB, where /proc exists.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn size_point(nodes: usize, requests: usize) -> SizePoint {
    // 16×16 tiles so even the 256-node fleet has one tile per node; a
    // V100-class central keeps the suffix stage off the critical path so
    // the sweep measures the Conv fleet, not the aggregator.
    let tenant = TenantSpec::builder(zoo::vgg16())
        .requests(requests)
        .grid(TileGrid::new(16, 16))
        .build()
        .expect("valid sweep tenant");
    let cfg = FleetConfig::builder(pis(nodes))
        .tenant(tenant)
        .central(DeviceProfile::cloud_v100())
        .pipeline_depth(4)
        .build()
        .expect("valid sweep fleet");
    let wall = Instant::now();
    let fs = FleetSim::new(cfg).run();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fs.completed as usize, requests);
    SizePoint {
        nodes,
        requests,
        throughput_rps: fs.throughput_rps(),
        p50_ms: ms(fs.p50_latency_s()),
        p99_ms: ms(fs.p99_latency_s()),
        zero_fill_rate: fs.zero_fill_rate(),
        channel_utilization: fs.channel_utilization,
        wall_ms,
    }
}

fn load_point(nodes: usize, requests: usize, capacity_rps: f64, load: f64) -> LoadPoint {
    let offered = capacity_rps * load;
    let tenant = TenantSpec::builder(zoo::vgg16())
        .requests(requests)
        .grid(TileGrid::new(16, 16))
        .arrivals(ArrivalSpec::poisson(offered).expect("positive offered load"))
        .build()
        .expect("valid load tenant");
    let cfg = FleetConfig::builder(pis(nodes))
        .tenant(tenant)
        .central(DeviceProfile::cloud_v100())
        .pipeline_depth(4)
        .build()
        .expect("valid load fleet");
    let fs = FleetSim::new(cfg).run();
    assert_eq!(fs.completed as usize, requests);
    let t = &fs.tenants[0];
    LoadPoint {
        load_factor: load,
        offered_rps: offered,
        throughput_rps: fs.throughput_rps(),
        p50_ms: ms(fs.p50_latency_s()),
        p99_ms: ms(fs.p99_latency_s()),
        mean_queue_wait_ms: t.mean_queue_wait_s() * 1e3,
        zero_fill_rate: fs.zero_fill_rate(),
    }
}

/// Churn-free closed-loop capacity of a `nodes_n`-node fleet — the anchor
/// the open-loop scenarios calibrate their offered load against.
fn fleet_capacity(nodes_n: usize) -> f64 {
    let cal = TenantSpec::builder(zoo::vgg16())
        .grid(TileGrid::new(4, 4))
        .requests(2_000)
        .build()
        .expect("valid calibration tenant");
    let cfg = FleetConfig::builder(pis(nodes_n))
        .tenant(cal)
        .pipeline_depth(4)
        .build()
        .expect("valid calibration fleet");
    FleetSim::new(cfg).run().throughput_rps()
}

/// The headline scenario's config: 64 nodes, two models at 2:1 weights
/// under Poisson load, join/leave churn plus a diurnal capacity curve on
/// every node — parameterized by the placement policy so the placement
/// sweep runs the *same* fleet under each policy.
fn multi_tenant_cfg(
    requests_each: usize,
    capacity: f64,
    placement: Arc<dyn PlacementPolicy>,
) -> FleetConfig {
    let nodes_n = 64;
    let a = TenantSpec::builder(zoo::vgg16())
        .grid(TileGrid::new(4, 4))
        .weight(2.0)
        .requests(requests_each)
        .arrivals(ArrivalSpec::poisson(capacity * 0.6).expect("positive offered load"))
        .build()
        .expect("valid tenant a");
    let b = TenantSpec::builder(zoo::resnet34())
        .grid(TileGrid::new(4, 4))
        .weight(1.0)
        .requests(requests_each)
        .arrivals(ArrivalSpec::poisson(capacity * 0.3).expect("positive offered load"))
        .build()
        .expect("valid tenant b");

    let horizon = requests_each as f64 / (capacity * 0.3) * 1.5;
    let mut nodes = pis(nodes_n);
    ChurnPlan::builder(horizon, 2024)
        .join_leave(horizon / 8.0, horizon / 40.0)
        .diurnal(horizon / 4.0, 0.5)
        .build()
        .expect("valid churn plan")
        .apply(&mut nodes);

    FleetConfig::builder(nodes)
        .tenants(vec![a, b])
        .pipeline_depth(4)
        .seed(7)
        .placement(placement)
        .build()
        .expect("valid multi-tenant fleet")
}

/// The headline scenario (and ci.sh's smoke) under the default all-nodes
/// placement.
fn multi_tenant(requests_each: usize, capacity: f64) -> TenantScenario {
    let mut cfg = multi_tenant_cfg(requests_each, capacity, Arc::new(AllNodesPlacement));
    // The headline scenario also drives the observability plane: per-
    // tenant SLOs plus a labeled metrics registry on the fleet stream.
    cfg.tenants[0].slo = Some(SloSpec::new(2.5, 0.02));
    cfg.tenants[1].slo = Some(SloSpec::new(3.5, 0.02));
    let registry = Arc::new(LabeledMetricsRegistry::new(
        &cfg.tenants.iter().map(|t| t.name.as_str()).collect::<Vec<_>>(),
        cfg.nodes.len(),
    ));
    let nodes_n = cfg.nodes.len() as u64;
    cfg.fleet_sink = SinkHandle::new(registry.clone());
    let wall = Instant::now();
    let fs = FleetSim::new(cfg).run();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fs.completed as usize, 2 * requests_each);

    // The labeled shards must reconcile: per-tenant image counts sum to
    // the fleet's global completed counter.
    let per_tenant: Vec<u64> = (0..fs.tenants.len())
        .map(|t| {
            registry.tenant(t).expect("registry covers every tenant").snapshot().images_finished
        })
        .collect();
    assert_eq!(
        per_tenant.iter().sum::<u64>(),
        fs.completed,
        "labeled tenant shards must sum to the global completed counter"
    );
    let prom = registry.to_prometheus();
    let series_total = prom.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count() as u64;
    assert!(
        prom.contains(r#"adcnn_images_finished_total{tenant="#),
        "registry must render tenant-labeled series"
    );

    TenantScenario {
        nodes: 64,
        requests_total: fs.completed,
        churn: true,
        events_processed: fs.events_processed,
        peak_events_pending: fs.peak_events_pending,
        throughput_rps: fs.throughput_rps(),
        p99_ms: ms(fs.p99_latency_s()),
        tenants: fs
            .tenants
            .iter()
            .map(|t| TenantPoint {
                name: t.name.clone(),
                weight: t.weight,
                requests: t.requests,
                p50_ms: ms(t.p50_latency_s()),
                p99_ms: ms(t.p99_latency_s()),
                mean_queue_wait_ms: t.mean_queue_wait_s() * 1e3,
                zero_fill_rate: t.zero_fill_rate(),
                slo: t.slo.clone(),
            })
            .collect(),
        labeled_tenant_series: fs.tenants.len() as u64,
        labeled_node_series: nodes_n,
        labeled_series_total: series_total,
        wall_ms,
    }
}

fn bounded_memory(requests: usize) -> MemoryRun {
    let tenant = TenantSpec::builder(zoo::vgg16())
        .grid(TileGrid::new(2, 2))
        .requests(requests)
        .build()
        .expect("valid bulk tenant");
    // retain_images defaults to 0: no per-image records at all.
    let cfg = FleetConfig::builder(pis(4))
        .tenant(tenant)
        .pipeline_depth(4)
        .build()
        .expect("valid bulk fleet");
    let wall = Instant::now();
    let fs = FleetSim::new(cfg).run();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    assert_eq!(fs.completed as usize, requests);
    assert!(fs.retained.is_empty(), "retention off must keep no per-image records");
    assert_eq!(fs.latency_us.count as usize, requests, "aggregates must see every request");
    let rss = peak_rss_mib();
    if let Some(mib) = rss {
        assert!(
            mib < 512.0,
            "peak RSS {mib:.0} MiB — per-request state is leaking into the {requests}-request run"
        );
    }
    MemoryRun {
        requests,
        events_processed: fs.events_processed,
        peak_events_pending: fs.peak_events_pending,
        retained_images: fs.retained.len(),
        peak_rss_mib: rss,
        wall_ms,
    }
}

fn main() {
    let smoke = std::env::var("FLEET_SMOKE").is_ok();
    let (size_req, load_req, mt_each, mem_req) =
        if smoke { (300, 400, 25_000, 100_000) } else { (1_200, 1_500, 60_000, 1_000_000) };

    let sizes = [16usize, 64, 128, 256];
    let size_sweep: Vec<SizePoint> = sizes.iter().map(|&k| size_point(k, size_req)).collect();
    print_table(
        "Fleet size sweep — closed-loop VGG16, depth 4",
        &["nodes", "req/s", "p50 (ms)", "p99 (ms)", "zero-fill", "chan util", "wall (ms)"],
        &size_sweep
            .iter()
            .map(|p| {
                vec![
                    p.nodes.to_string(),
                    format!("{:.2}", p.throughput_rps),
                    format!("{:.1}", p.p50_ms),
                    format!("{:.1}", p.p99_ms),
                    format!("{:.4}", p.zero_fill_rate),
                    format!("{:.3}", p.channel_utilization),
                    format!("{:.0}", p.wall_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    for p in &size_sweep {
        assert!(p.throughput_rps > 0.0);
        assert!(p.p99_ms >= p.p50_ms, "p99 {} < p50 {} at k={}", p.p99_ms, p.p50_ms, p.nodes);
        assert!(
            p.zero_fill_rate < 0.01,
            "healthy closed-loop cluster dropped tiles: {} at k={}",
            p.zero_fill_rate,
            p.nodes
        );
    }
    // Scaling up a link-shared fleet must never cost throughput.
    assert!(
        size_sweep.last().unwrap().throughput_rps >= size_sweep[0].throughput_rps * 0.95,
        "throughput regressed as the fleet grew"
    );

    // Offered-load sweep at 64 nodes, rates anchored to measured capacity.
    let capacity = size_sweep[1].throughput_rps;
    let load_sweep: Vec<LoadPoint> =
        [0.5, 0.8, 1.0, 1.2].iter().map(|&l| load_point(64, load_req, capacity, l)).collect();
    print_table(
        "Offered-load sweep — 64 nodes, Poisson arrivals",
        &["load", "offered r/s", "served r/s", "p50 (ms)", "p99 (ms)", "queue wait (ms)"],
        &load_sweep
            .iter()
            .map(|p| {
                vec![
                    format!("{:.1}x", p.load_factor),
                    format!("{:.2}", p.offered_rps),
                    format!("{:.2}", p.throughput_rps),
                    format!("{:.1}", p.p50_ms),
                    format!("{:.1}", p.p99_ms),
                    format!("{:.1}", p.mean_queue_wait_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let (under, over) = (&load_sweep[0], &load_sweep[3]);
    assert!(
        over.mean_queue_wait_ms > under.mean_queue_wait_ms,
        "overload must queue more than underload: {} vs {}",
        over.mean_queue_wait_ms,
        under.mean_queue_wait_ms
    );

    // The headline scenario calibrates its offered load against the
    // churn-free closed-loop capacity so the open-loop runs are busy but
    // stable — measured once, shared with the placement sweep below.
    let mt_capacity = fleet_capacity(64);
    let mt = multi_tenant(mt_each, mt_capacity);
    print_table(
        "Multi-tenant churn scenario — 64 nodes, join/leave + diurnal",
        &["tenant", "weight", "requests", "p50 (ms)", "p99 (ms)", "queue wait (ms)", "zero-fill"],
        &mt.tenants
            .iter()
            .map(|t| {
                vec![
                    t.name.clone(),
                    format!("{:.0}", t.weight),
                    t.requests.to_string(),
                    format!("{:.1}", t.p50_ms),
                    format!("{:.1}", t.p99_ms),
                    format!("{:.1}", t.mean_queue_wait_ms),
                    format!("{:.4}", t.zero_fill_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "multi-tenant: {} requests over {} nodes (churn {}), {} events ({} peak pending), \
         {:.2} req/s, p99 {:.1} ms, wall {:.1} s",
        mt.requests_total,
        mt.nodes,
        if mt.churn { "on" } else { "off" },
        mt.events_processed,
        mt.peak_events_pending,
        mt.throughput_rps,
        mt.p99_ms,
        mt.wall_ms / 1e3,
    );

    // Placement sweep: the same 64-node two-model churn scenario under
    // each placement policy — all_nodes is the PR-8 baseline (identity
    // placement), greedy packs for throughput against the shared-channel
    // saturation model, churn_aware additionally prices in each node's
    // availability over the churn horizon.
    let psweep: Vec<PlacementPoint> = vec![
        placement_point("all_nodes", mt_each, mt_capacity, Arc::new(AllNodesPlacement)),
        placement_point("greedy", mt_each, mt_capacity, Arc::new(GreedyPlacement::default())),
        placement_point(
            "churn_aware",
            mt_each,
            mt_capacity,
            Arc::new(ChurnAwarePlacement::default()),
        ),
    ];
    let base = &psweep[0];
    print_table(
        "Placement sweep — 64 nodes, 2 models, churn on",
        &["policy", "req/s", "p50 (ms)", "p99 (ms)", "zero-fill", "redisp", "re-place", "wall"],
        &psweep
            .iter()
            .map(|p| {
                vec![
                    p.policy.to_string(),
                    format!("{:.2}", p.throughput_rps),
                    format!("{:.1}", p.p50_ms),
                    format!("{:.1}", p.p99_ms),
                    format!("{:.4}", p.zero_fill_rate),
                    p.redispatched_tiles.to_string(),
                    p.replacements.to_string(),
                    format!("{:.0}", p.wall_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let placement_gain = |p: &PlacementPoint| {
        gain_pct(p.throughput_rps, base.throughput_rps).max(gain_pct(base.p99_ms, p.p99_ms))
    };
    let best =
        psweep[1..].iter().max_by(|a, b| placement_gain(a).total_cmp(&placement_gain(b))).unwrap();
    println!(
        "placement: {} vs all_nodes — throughput {:+.2}%, p99 {:+.2}%, \
         zero-fill {:.4} vs {:.4}",
        best.policy,
        gain_pct(best.throughput_rps, base.throughput_rps),
        gain_pct(base.p99_ms, best.p99_ms),
        best.zero_fill_rate,
        base.zero_fill_rate,
    );
    assert!(
        placement_gain(best) > 0.0,
        "no placement policy beat all_nodes on throughput or p99 \
         (best {} at {:+.3}%)",
        best.policy,
        placement_gain(best)
    );

    let mem = bounded_memory(mem_req);
    println!(
        "bounded memory: {} requests, {} events ({} peak pending), {} retained, \
         peak RSS {} MiB, {:.1} s wall",
        mem.requests,
        mem.events_processed,
        mem.peak_events_pending,
        mem.retained_images,
        mem.peak_rss_mib.map_or("n/a".into(), |m| format!("{m:.0}")),
        mem.wall_ms / 1e3,
    );

    let doc = Obj::new()
        .raw(
            "fleet",
            Obj::new()
                .bool("smoke", smoke)
                .raw("size_sweep", array(size_sweep.iter().map(|p| p.to_json())))
                .raw("load_sweep", array(load_sweep.iter().map(|p| p.to_json())))
                .raw("multi_tenant", mt.to_json())
                .raw(
                    "placement",
                    Obj::new()
                        .u64("nodes", 64)
                        .u64("requests_each", mt_each as u64)
                        .str("baseline", "all_nodes")
                        .raw("policies", array(psweep.iter().map(|p| p.to_json(base))))
                        .str("best_policy", best.policy)
                        .f64(
                            "best_throughput_gain_pct",
                            gain_pct(best.throughput_rps, base.throughput_rps),
                        )
                        .f64("best_p99_reduction_pct", gain_pct(base.p99_ms, best.p99_ms))
                        .finish(),
                )
                .raw("bounded_memory", mem.to_json())
                .finish(),
        )
        .finish();
    // The emitted record is machine-read downstream: fail the bench (and
    // ci.sh with it) if the JSON on disk is not well formed.
    assert!(json::is_well_formed(&doc), "malformed fleet document:\n{doc}");
    emit_raw_json("BENCH_netsim", &doc);
    let written = std::fs::read_to_string(results_dir().join("BENCH_netsim.json"))
        .expect("BENCH_netsim.json was just written");
    assert!(json::is_well_formed(&written), "malformed BENCH_netsim.json:\n{written}");
}
