//! Table 3: latency breakdown (input/output transmission vs computation)
//! of ADCNN, single-device and remote-cloud on VGG16.

use adcnn_bench::{emit_json, ms, print_table};
use adcnn_netsim::schemes::{remote_cloud, single_device};
use adcnn_netsim::{AdcnnSim, AdcnnSimConfig, LinkParams};
use adcnn_nn::cost::DeviceProfile;
use adcnn_nn::zoo;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheme: String,
    transmission_ms: f64,
    computation_ms: f64,
    paper_transmission_ms: f64,
    paper_computation_ms: f64,
}

fn main() {
    let m = zoo::vgg16();
    let mut cfg = AdcnnSimConfig::paper_testbed(m.clone(), 8);
    cfg.images = 40;
    cfg.pipeline_depth = 1;
    let sim = AdcnnSim::new(cfg).run();
    let single = single_device(&m, &DeviceProfile::raspberry_pi3());
    let cloud = remote_cloud(&m, &DeviceProfile::cloud_v100(), LinkParams::cloud_uplink());

    let rows = vec![
        Row {
            scheme: "ADCNN".into(),
            transmission_ms: sim.mean_transmission_s * 1e3,
            computation_ms: sim.mean_computation_s * 1e3,
            paper_transmission_ms: 37.14,
            paper_computation_ms: 202.88,
        },
        Row {
            scheme: "Single-device".into(),
            transmission_ms: single.transmission_s * 1e3,
            computation_ms: single.computation_s * 1e3,
            paper_transmission_ms: 0.0,
            paper_computation_ms: 1586.53,
        },
        Row {
            scheme: "Remote-cloud".into(),
            transmission_ms: cloud.transmission_s * 1e3,
            computation_ms: cloud.computation_s * 1e3,
            paper_transmission_ms: 502.21,
            paper_computation_ms: 98.94,
        },
    ];

    print_table(
        "Table 3 — VGG16 latency breakdown (measured | paper)",
        &["scheme", "transmission (ms)", "computation (ms)", "paper trans", "paper comp"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scheme.clone(),
                    ms(r.transmission_ms / 1e3),
                    ms(r.computation_ms / 1e3),
                    ms(r.paper_transmission_ms / 1e3),
                    ms(r.paper_computation_ms / 1e3),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "shape checks: ADCNN transmission < cloud transmission: {} | single compute is largest: {}",
        rows[0].transmission_ms < rows[2].transmission_ms,
        rows[1].computation_ms > rows[0].computation_ms
            && rows[1].computation_ms > rows[2].computation_ms,
    );
    emit_json("table3_breakdown", &rows);
}
