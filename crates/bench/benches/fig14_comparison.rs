//! Figure 14: ADCNN versus Neurosurgeon and AOFL on YOLO, VGG16 and
//! ResNet34. The paper reports ADCNN ahead by 2.8× (Neurosurgeon) and 1.6×
//! (AOFL) on average, with Neurosurgeon dominated by its edge→cloud
//! transfer (67% of its latency) and AOFL fusing most early layers.

use adcnn_bench::{emit_json, print_table, times};
use adcnn_netsim::schemes::{aofl, neurosurgeon};
use adcnn_netsim::{AdcnnSim, AdcnnSimConfig, LinkParams};
use adcnn_nn::cost::DeviceProfile;
use adcnn_nn::zoo;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    adcnn_ms: f64,
    adcnn_deep_ms: f64,
    neurosurgeon_ms: f64,
    neurosurgeon_detail: String,
    neurosurgeon_transfer_frac: f64,
    aofl_ms: f64,
    aofl_detail: String,
    vs_neurosurgeon: f64,
    vs_aofl: f64,
}

fn main() {
    let pi = DeviceProfile::raspberry_pi3();
    let v100 = DeviceProfile::cloud_v100();
    let mut rows = Vec::new();
    for m in [zoo::yolo(), zoo::vgg16(), zoo::resnet34()] {
        let mut cfg = AdcnnSimConfig::paper_testbed(m.clone(), 8);
        cfg.images = 30;
        cfg.pipeline_depth = 1;
        let adcnn = AdcnnSim::new(cfg.clone()).run().steady_latency_s();
        // Deep split: distribute every conv block. AOFL itself fuses 10+
        // layers when profitable, so the apples-to-apples ADCNN point is
        // the deepest accuracy-tolerable split (see EXPERIMENTS.md).
        let mut deep = cfg;
        deep.prefix = m.blocks.len();
        let adcnn_deep = AdcnnSim::new(deep).run().steady_latency_s();
        let ns = neurosurgeon(&m, &pi, &v100, LinkParams::cloud_uplink());
        let ao = aofl(&m, 8, &pi, LinkParams::wifi_fast());
        rows.push(Row {
            model: m.name.clone(),
            adcnn_ms: adcnn * 1e3,
            adcnn_deep_ms: adcnn_deep * 1e3,
            neurosurgeon_ms: ns.latency_s * 1e3,
            neurosurgeon_transfer_frac: ns.transmission_s / ns.latency_s,
            neurosurgeon_detail: ns.detail,
            aofl_ms: ao.latency_s * 1e3,
            aofl_detail: ao.detail,
            vs_neurosurgeon: ns.latency_s / adcnn_deep,
            vs_aofl: ao.latency_s / adcnn_deep,
        });
    }

    print_table(
        "Figure 14 — ADCNN vs Neurosurgeon vs AOFL (paper: 2.8x / 1.6x on average)",
        &[
            "model",
            "ADCNN (ms)",
            "ADCNN-deep (ms)",
            "Neurosurgeon (ms)",
            "AOFL (ms)",
            "deep vs NS",
            "deep vs AOFL",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    format!("{:.1}", r.adcnn_ms),
                    format!("{:.1}", r.adcnn_deep_ms),
                    format!("{:.1}", r.neurosurgeon_ms),
                    format!("{:.1}", r.aofl_ms),
                    times(r.vs_neurosurgeon),
                    times(r.vs_aofl),
                ]
            })
            .collect::<Vec<_>>(),
    );
    for r in &rows {
        println!(
            "{}: Neurosurgeon {} ({:.0}% of its latency is transfer; paper: 67%); AOFL {}",
            r.model,
            r.neurosurgeon_detail,
            r.neurosurgeon_transfer_frac * 100.0,
            r.aofl_detail
        );
    }
    emit_json("fig14_comparison", &rows);
}
