//! Figure 12: effect of pruning (clipped ReLU + quantization + RLE) on
//! latency under the two measured transmission rates (87.72 and 12.66
//! Mbps). The paper reports 10.73% / 31.2% average latency reductions.

use adcnn_bench::{emit_json, print_table};
use adcnn_netsim::{AdcnnSim, AdcnnSimConfig, LinkParams};
use adcnn_nn::zoo;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    bandwidth_mbps: f64,
    pruned_ms: f64,
    raw_ms: f64,
    reduction_pct: f64,
}

fn run(model: &adcnn_nn::zoo::ModelSpec, link: LinkParams, pruned: bool) -> f64 {
    let mut cfg = AdcnnSimConfig::paper_testbed(model.clone(), 8);
    cfg.images = 30;
    cfg.pipeline_depth = 1;
    cfg.link = link;
    if !pruned {
        cfg.compression = None;
    }
    AdcnnSim::new(cfg).run().steady_latency_s()
}

fn main() {
    let mut rows = Vec::new();
    for m in zoo::all_models() {
        for link in [LinkParams::wifi_fast(), LinkParams::wifi_slow()] {
            let pruned = run(&m, link, true);
            let raw = run(&m, link, false);
            rows.push(Row {
                model: m.name.clone(),
                bandwidth_mbps: link.bandwidth_bps / 1e6,
                pruned_ms: pruned * 1e3,
                raw_ms: raw * 1e3,
                reduction_pct: (raw - pruned) / raw * 100.0,
            });
        }
    }

    print_table(
        "Figure 12 — latency with vs without pruning (paper: −10.73% @87.72, −31.2% @12.66)",
        &["model", "link (Mbps)", "pruned (ms)", "raw (ms)", "reduction"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    format!("{:.2}", r.bandwidth_mbps),
                    format!("{:.1}", r.pruned_ms),
                    format!("{:.1}", r.raw_ms),
                    format!("{:.1}%", r.reduction_pct),
                ]
            })
            .collect::<Vec<_>>(),
    );
    for bw in [87.72, 12.66] {
        let sel: Vec<&Row> = rows.iter().filter(|r| (r.bandwidth_mbps - bw).abs() < 0.01).collect();
        let mean = sel.iter().map(|r| r.reduction_pct).sum::<f64>() / sel.len() as f64;
        println!("mean reduction @ {bw} Mbps: {mean:.1}%");
    }
    emit_json("fig12_pruning_bandwidth", &rows);
}
