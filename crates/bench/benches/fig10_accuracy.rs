//! Figure 10: accuracy of the original CNN versus the FDSP-retrained CNN
//! across spatial partition options.
//!
//! The paper trains VGG16/ResNet34/YOLO/FCN/CharCNN on ImageNet-class
//! datasets and reports <1–1.3% degradation for partitions from 2×2 up to
//! 8×8. We reproduce the experiment's *shape* on the laptop-trainable
//! stand-ins (see DESIGN.md): an image CNN on the procedural shapes task, a
//! residual CNN, and a 1-D char CNN, each retrained with Algorithm 1 for
//! every partition option.

use adcnn_bench::{emit_json, print_table};
use adcnn_core::fdsp::TileGrid;
use adcnn_nn::small::{shapes_cnn, small_charcnn, small_fcn, small_resnet, SmallModel};
use adcnn_retrain::data::{
    char_seqs, shapes, shapes_seg, CHAR_ALPHABET, CHAR_CLASSES, SHAPE_CLASSES,
};
use adcnn_retrain::progressive::{progressive_retrain, RetrainConfig};
use adcnn_retrain::trainer::{evaluate_dense, train, train_dense, TrainConfig};
use adcnn_retrain::{Dataset, PartitionedModel};
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct GridResult {
    grid: String,
    original: f64,
    retrained: f64,
    drop: f64,
    epochs: usize,
}

#[derive(Serialize)]
struct ModelResult {
    model: String,
    grids: Vec<GridResult>,
}

fn train_original(mut m: SmallModel, data: &Dataset, seed: u64) -> (SmallModel, f64) {
    let _ = seed;
    let mut part = PartitionedModel::unpartitioned(SmallModel {
        net: std::mem::replace(&mut m.net, adcnn_nn::Network::new(vec![])),
        ..m
    });
    let tc = TrainConfig { epochs: 30, target_accuracy: 0.95, ..Default::default() };
    let rep = train(&mut part, data, &tc);
    let acc = rep.final_accuracy();
    (SmallModel { net: part.net, ..m }, acc)
}

fn run_model(
    name: &str,
    build: impl Fn(&mut StdRng) -> SmallModel,
    data: &Dataset,
    grids: &[TileGrid],
    seed: u64,
) -> ModelResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let (original, base_acc) = train_original(build(&mut rng), data, seed);
    let mut grids_out = Vec::new();
    for &grid in grids {
        // fresh copy of the converged original for each partition option
        let copy = SmallModel { net: original.net.clone(), ..original };
        let cfg = RetrainConfig {
            tolerance: 0.01,
            max_epochs_per_stage: 8,
            target_sparsity: 0.9,
            ..Default::default()
        };
        let (_, report) = progressive_retrain(copy, data, grid, &cfg);
        grids_out.push(GridResult {
            grid: grid.to_string(),
            original: base_acc,
            retrained: report.final_accuracy,
            drop: base_acc - report.final_accuracy,
            epochs: report.total_epochs(),
        });
    }
    ModelResult { model: name.to_string(), grids: grids_out }
}

fn main() {
    let image_grids =
        [TileGrid::new(2, 2), TileGrid::new(4, 4), TileGrid::new(4, 8), TileGrid::new(8, 8)];
    let char_grids = [TileGrid::new(1, 2), TileGrid::new(1, 4), TileGrid::new(1, 8)];

    let shapes_data = shapes(480, 240, 32, 1001);
    let char_data = char_seqs(360, 180, 64, 1002);

    let mut results = Vec::new();
    results.push(run_model(
        "ShapesCNN (VGG16/FCN stand-in)",
        |rng| shapes_cnn(SHAPE_CLASSES, rng),
        &shapes_data,
        &image_grids,
        11,
    ));
    results.push(run_model(
        "SmallResNet (ResNet34 stand-in)",
        |rng| small_resnet(SHAPE_CLASSES, rng),
        &shapes_data,
        &image_grids,
        13,
    ));
    results.push(run_model(
        "SmallCharCNN (CharCNN stand-in)",
        |rng| small_charcnn(CHAR_ALPHABET, CHAR_CLASSES, rng),
        &char_data,
        &char_grids,
        17,
    ));

    // FCN stand-in: dense prediction with the paper's FCN metrics (mean
    // IoU + pixel accuracy). FDSP is applied and the model retrained per
    // grid (the dense path has its own trainer, so Algorithm 1's stage
    // machinery is exercised in its classification form above and the
    // FDSP-retraining essence here).
    {
        let seg = shapes_seg(360, 160, 32, 1003);
        let mut rng = StdRng::seed_from_u64(19);
        let mut original = PartitionedModel::unpartitioned(small_fcn(seg.classes, &mut rng));
        let tc = TrainConfig { epochs: 14, target_accuracy: 0.97, lr: 0.1, ..Default::default() };
        train_dense(&mut original, &seg, &tc);
        let (base_acc, base_iou) = evaluate_dense(&mut original, &seg);
        let mut grids_out = Vec::new();
        for grid in image_grids {
            let mut m = PartitionedModel {
                net: original.net.clone(),
                prefix: original.prefix,
                grid,
                boundary_crelu: None,
                boundary_quant: None,
                input: original.input,
                classes: original.classes,
            };
            let tc = TrainConfig {
                epochs: 6,
                target_accuracy: base_acc - 0.01,
                lr: 0.05,
                ..Default::default()
            };
            let rep = train_dense(&mut m, &seg, &tc);
            let (acc, iou) = evaluate_dense(&mut m, &seg);
            let _ = iou;
            grids_out.push(GridResult {
                grid: grid.to_string(),
                original: base_acc,
                retrained: acc,
                drop: base_acc - acc,
                epochs: rep.epochs_used,
            });
        }
        println!("\n(SmallFCN baseline: pixel acc {base_acc:.3}, mean IoU {base_iou:.3})");
        results.push(ModelResult { model: "SmallFCN (dense, pixel acc)".into(), grids: grids_out });
    }

    for r in &results {
        print_table(
            &format!("Figure 10 — {} (paper: <1–1.3% drop at every partition)", r.model),
            &["partition", "original", "retrained", "drop", "extra epochs"],
            &r.grids
                .iter()
                .map(|g| {
                    vec![
                        g.grid.clone(),
                        format!("{:.3}", g.original),
                        format!("{:.3}", g.retrained),
                        format!("{:+.3}", g.drop),
                        g.epochs.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }
    emit_json("fig10_accuracy", &results);
}
