//! Loopback-TCP transport overhead: the same serving cluster run twice —
//! Conv workers as in-process threads vs. real sockets through the
//! transport layer — at the same pipeline depth, on the same images.
//!
//! Appends a `loopback_tcp` entry to the stable
//! `results/BENCH_runtime.json` schema (the flat fields written by
//! `fig15_dynamic_adaptation` stay untouched): images/s and p50/p99
//! latency for both modes, plus the throughput ratio. The entry is merged
//! with the hand-rolled `adcnn_core::obs::json` builder so the document
//! stays one self-contained object.

use adcnn_bench::{print_table, results_dir};
use adcnn_core::fdsp::TileGrid;
use adcnn_core::obs::json::{self, Obj};
use adcnn_runtime::transport::{spawn_loopback_worker, Endpoint, RemoteModelSpec, WorkerListener};
use adcnn_runtime::{AdcnnRuntime, RuntimeConfig, WorkerOptions};
use adcnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs;
use std::time::{Duration, Instant};

const WORKERS: usize = 4;
const DEPTH: usize = 2;
const IMAGES: usize = 60;

struct Measured {
    images_per_s: f64,
    p50_ms: f64,
    p99_ms: f64,
    zero_filled: u64,
}

fn spec() -> RemoteModelSpec {
    RemoteModelSpec::paper_default(6, 5, TileGrid::new(2, 2))
}

fn config() -> RuntimeConfig {
    RuntimeConfig::builder().pipeline_depth(DEPTH).build().expect("valid config")
}

fn images() -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..IMAGES).map(|_| Tensor::randn([1, 3, 32, 32], 0.5, &mut rng)).collect()
}

fn measure(rt: &mut AdcnnRuntime, images: &[Tensor]) -> Measured {
    // Warm-up outside the window: first-touch allocation and the EWMA
    // settling are not transport effects.
    for x in &images[..WORKERS.min(images.len())] {
        rt.infer(x);
    }
    let t0 = Instant::now();
    let outcomes = rt.infer_stream(images);
    let wall = t0.elapsed();
    let mut lat: Vec<f64> = outcomes.iter().map(|o| o.latency.as_secs_f64() * 1e3).collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| lat[((lat.len() - 1) as f64 * p).round() as usize];
    Measured {
        images_per_s: images.len() as f64 / wall.as_secs_f64(),
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        zero_filled: outcomes.iter().map(|o| o.zero_filled as u64).sum(),
    }
}

fn run_in_process(images: &[Tensor]) -> Measured {
    let mut rt =
        AdcnnRuntime::launch(spec().build(), &[WorkerOptions::default(); WORKERS], config());
    let m = measure(&mut rt, images);
    rt.shutdown();
    m
}

fn run_loopback_tcp(images: &[Tensor]) -> Measured {
    let listener = WorkerListener::bind(&Endpoint::parse("tcp://127.0.0.1:0").unwrap()).unwrap();
    let endpoint = listener.endpoint().clone();
    let workers: Vec<_> = (0..WORKERS).map(|_| spawn_loopback_worker(endpoint.clone())).collect();
    let mut rt =
        AdcnnRuntime::launch_remote(spec(), WORKERS, config(), listener, Duration::from_secs(10))
            .expect("loopback workers failed to join");
    let m = measure(&mut rt, images);
    rt.shutdown();
    for w in workers {
        w.join().expect("worker thread").expect("worker exited cleanly");
    }
    m
}

/// Merge `"loopback_tcp": entry` into `results/BENCH_runtime.json`,
/// preserving whatever the fig15 harness wrote. The entry is always the
/// last key, so a re-run replaces the previous one in place.
fn merge_into_bench_runtime(entry: &str) {
    let path = results_dir().join("BENCH_runtime.json");
    let mut doc = match fs::read_to_string(&path) {
        Ok(existing) if json::is_well_formed(&existing) => existing.trim_end().to_string(),
        _ => String::from("{}"),
    };
    if let Some(i) = doc.find("\"loopback_tcp\"") {
        doc.truncate(i);
        doc = doc.trim_end().trim_end_matches(',').trim_end().to_string();
    } else {
        doc = doc.strip_suffix('}').expect("BENCH_runtime.json is a JSON object").to_string();
        doc = doc.trim_end().to_string();
    }
    let sep = if doc.ends_with('{') { "" } else { "," };
    let merged = format!("{doc}{sep}\n  \"loopback_tcp\": {entry}\n}}");
    assert!(json::is_well_formed(&merged), "malformed merged BENCH_runtime.json:\n{merged}");
    fs::write(&path, merged).expect("write BENCH_runtime.json");
    println!("[merged loopback_tcp into {path:?}]");
}

fn main() {
    let images = images();
    let local = run_in_process(&images);
    let tcp = run_loopback_tcp(&images);
    assert_eq!(local.zero_filled, 0, "clean in-process run must not zero-fill");
    assert_eq!(tcp.zero_filled, 0, "clean loopback run must not zero-fill");

    let fmt = |m: &Measured| {
        vec![
            format!("{:.1}", m.images_per_s),
            format!("{:.2}", m.p50_ms),
            format!("{:.2}", m.p99_ms),
        ]
    };
    print_table(
        &format!("loopback TCP vs in-process ({WORKERS} workers, depth {DEPTH}, {IMAGES} images)"),
        &["mode", "images/s", "p50 ms", "p99 ms"],
        &[
            {
                let mut r = vec!["in-process".to_string()];
                r.extend(fmt(&local));
                r
            },
            {
                let mut r = vec!["loopback-tcp".to_string()];
                r.extend(fmt(&tcp));
                r
            },
        ],
    );

    let entry = Obj::new()
        .u64("workers", WORKERS as u64)
        .u64("pipeline_depth", DEPTH as u64)
        .u64("images", IMAGES as u64)
        .f64("images_per_s", tcp.images_per_s)
        .f64("p50_latency_ms", tcp.p50_ms)
        .f64("p99_latency_ms", tcp.p99_ms)
        .f64("in_process_images_per_s", local.images_per_s)
        .f64("in_process_p50_latency_ms", local.p50_ms)
        .f64("in_process_p99_latency_ms", local.p99_ms)
        .f64("throughput_vs_in_process", tcp.images_per_s / local.images_per_s)
        .finish();
    merge_into_bench_runtime(&entry);
}
