//! Figure 13: scalability of ADCNN on VGG16 — speedup over single device,
//! plus per-Conv-node energy and memory, as the cluster grows from 2 to 8
//! nodes. The paper reports 1.8×→6.2× speedup with diminishing returns,
//! and falling per-node energy/memory.

use adcnn_bench::{emit_json, print_table};
use adcnn_netsim::power::{
    conv_node_memory_bytes, node_energy, single_device_energy_per_image, single_device_memory_bytes,
};
use adcnn_netsim::{AdcnnSim, AdcnnSimConfig};
use adcnn_nn::cost::{model_time_s, DeviceProfile};
use adcnn_nn::zoo;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    nodes: usize,
    latency_ms: f64,
    deep_latency_ms: f64,
    speedup: f64,
    deep_speedup: f64,
    energy_per_image_j: f64,
    node_memory_mb: f64,
}

fn main() {
    let m = zoo::vgg16();
    let pi = DeviceProfile::raspberry_pi3();
    let single_latency = model_time_s(&m, &pi);
    let single_energy = single_device_energy_per_image(&pi, single_latency);
    let single_mem = single_device_memory_bytes(&m) as f64 / 1e6;

    let mut rows = Vec::new();
    for k in [2usize, 4, 6, 8] {
        let mut cfg = AdcnnSimConfig::paper_testbed(m.clone(), k);
        cfg.images = 30;
        cfg.pipeline_depth = 1;
        let sim = AdcnnSim::new(cfg.clone()).run();
        let latency = sim.steady_latency_s();
        let mut deep = cfg;
        deep.prefix = m.blocks.len();
        let deep_latency = AdcnnSim::new(deep).run().steady_latency_s();
        // energy of one (representative) Conv node over the run
        let busy = sim.node_busy_s[0];
        let e = node_energy(&pi, busy, sim.total_time_s, sim.images.len());
        // memory: tiles held per node in steady state
        let tiles_held = sim.images.last().unwrap().alloc[0];
        let mem = conv_node_memory_bytes(&m, m.separable_prefix, 64, tiles_held) as f64 / 1e6;
        rows.push(Row {
            nodes: k,
            latency_ms: latency * 1e3,
            deep_latency_ms: deep_latency * 1e3,
            speedup: single_latency / latency,
            deep_speedup: single_latency / deep_latency,
            energy_per_image_j: e.per_image_j,
            node_memory_mb: mem,
        });
    }

    print_table(
        &format!(
            "Figure 13 — VGG16 scalability (single device: {:.0} ms, {:.1} J/img, {:.0} MB)",
            single_latency * 1e3,
            single_energy,
            single_mem
        ),
        &[
            "Conv nodes",
            "latency (ms)",
            "speedup",
            "deep latency (ms)",
            "deep speedup",
            "energy/img (J)",
            "node mem (MB)",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.nodes.to_string(),
                    format!("{:.1}", r.latency_ms),
                    format!("{:.2}x", r.speedup),
                    format!("{:.1}", r.deep_latency_ms),
                    format!("{:.2}x", r.deep_speedup),
                    format!("{:.2}", r.energy_per_image_j),
                    format!("{:.1}", r.node_memory_mb),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "paper: speedup 1.8x -> 6.2x from 2 -> 8 nodes with diminishing growth; \
         per-node energy and memory decrease with cluster size"
    );
    emit_json("fig13_scalability", &rows);
}
