//! Table 2: Conv-node output size before and after pruning (clipped ReLU +
//! 4-bit quantization + RLE) for the 8×8 partition.
//!
//! Two parts:
//! 1. the calibrated analytic pipeline on the full-size zoo models (the
//!    ratios the simulator uses), checked against the paper's reported
//!    ratios;
//! 2. the *real* codec run end-to-end on synthetic activations at each
//!    model's calibrated sparsity, validating that the analytic model and
//!    the byte-exact implementation agree.

use adcnn_bench::{emit_json, print_table};
use adcnn_core::compress::{compress, wire_bits_estimate, Quantizer};
use adcnn_core::ClippedRelu;
use adcnn_netsim::profiles::{model_sparsity, table2_ratio};
use adcnn_nn::zoo;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    boundary_elems: u64,
    sparsity: f64,
    paper_ratio: f64,
    analytic_ratio: f64,
    real_codec_ratio: f64,
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);
    let mut rows = Vec::new();
    for m in zoo::all_models() {
        let (c, h, w) = m.block_inputs()[m.separable_prefix];
        let elems = (c * h * w) as u64;
        let sparsity = model_sparsity(&m.name);
        let analytic = wire_bits_estimate(elems, sparsity, 4) as f64 / (elems as f64 * 32.0);

        // real pipeline on synthetic activations at that sparsity
        let cr = ClippedRelu::new(0.0, 1.0);
        let n = (elems as usize).min(400_000);
        let acts: Vec<f32> = (0..n)
            .map(|_| if rng.gen_bool(sparsity) { 0.0 } else { rng.gen_range(0.05..1.0) })
            .collect();
        let compressed = compress(&acts, Quantizer::paper_default(cr));
        let real = compressed.ratio_vs_f32();

        rows.push(Row {
            model: m.name.clone(),
            boundary_elems: elems,
            sparsity,
            paper_ratio: table2_ratio(&m.name),
            analytic_ratio: analytic,
            real_codec_ratio: real,
        });
    }

    print_table(
        "Table 2 — Conv-node output size after pruning (fraction of raw f32)",
        &["model", "boundary elems", "sparsity", "paper", "analytic", "real codec"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.boundary_elems.to_string(),
                    format!("{:.3}", r.sparsity),
                    format!("{:.3}x", r.paper_ratio),
                    format!("{:.3}x", r.analytic_ratio),
                    format!("{:.3}x", r.real_codec_ratio),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let mean: f64 = rows.iter().map(|r| 1.0 / r.real_codec_ratio).sum::<f64>() / rows.len() as f64;
    println!("mean reduction: {mean:.1}x (paper: 33x on average)");
    emit_json("table2_compression", &rows);
}
