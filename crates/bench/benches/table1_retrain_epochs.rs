//! Table 1: number of epochs needed for each modification during
//! progressive retraining (the paper reports 5–13 total epochs per model at
//! 8×8, versus hundreds for training from scratch).
//!
//! Also runs the §5 ablation: the one-shot ("direct") retraining strategy
//! with the same total epoch budget, which the paper says plateaus below
//! the original accuracy.

use adcnn_bench::{emit_json, print_table};
use adcnn_core::fdsp::TileGrid;
use adcnn_nn::small::{shapes_cnn, small_charcnn};
use adcnn_retrain::data::{char_seqs, shapes, CHAR_ALPHABET, CHAR_CLASSES, SHAPE_CLASSES};
use adcnn_retrain::progressive::{direct_retrain, progressive_retrain, RetrainConfig};
use adcnn_retrain::trainer::{train, TrainConfig};
use adcnn_retrain::PartitionedModel;
use rand::{rngs::StdRng, SeedableRng};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    fdsp_epochs: usize,
    crelu_epochs: usize,
    quant_epochs: usize,
    total: usize,
    original_acc: f64,
    progressive_acc: f64,
    direct_acc: f64,
}

fn main() {
    let mut rows = Vec::new();

    // --- image model at the paper's 8x8 partition ---------------------
    {
        let data = shapes(480, 240, 32, 2001);
        let mut rng = StdRng::seed_from_u64(31);
        let m = shapes_cnn(SHAPE_CLASSES, &mut rng);
        let mut part = PartitionedModel::unpartitioned(m);
        let tc = TrainConfig { epochs: 30, target_accuracy: 0.95, ..Default::default() };
        train(&mut part, &data, &tc);
        let original = adcnn_nn::small::SmallModel {
            net: part.net,
            name: "ShapesCNN",
            input: (3, 32, 32),
            classes: SHAPE_CLASSES,
            separable_prefix: 2,
            prefix_scale: (2, 2),
        };
        let cfg = RetrainConfig { max_epochs_per_stage: 8, ..Default::default() };
        let grid = TileGrid::new(8, 8);
        let copy = adcnn_nn::small::SmallModel { net: original.net.clone(), ..original };
        let (_, prog) = progressive_retrain(copy, &data, grid, &cfg);
        let (_, direct) = direct_retrain(original, &data, grid, &cfg);
        rows.push(Row {
            model: "ShapesCNN 8x8".into(),
            fdsp_epochs: prog.stages[0].epochs,
            crelu_epochs: prog.stages[1].epochs,
            quant_epochs: prog.stages[2].epochs,
            total: prog.total_epochs(),
            original_acc: prog.original_accuracy,
            progressive_acc: prog.final_accuracy,
            direct_acc: direct.final_accuracy,
        });
    }

    // --- char model at 1x8 (CharCNN row of Table 1) -------------------
    {
        let data = char_seqs(360, 180, 64, 2002);
        let mut rng = StdRng::seed_from_u64(37);
        let m = small_charcnn(CHAR_ALPHABET, CHAR_CLASSES, &mut rng);
        let mut part = PartitionedModel::unpartitioned(m);
        let tc = TrainConfig { epochs: 30, target_accuracy: 0.95, ..Default::default() };
        train(&mut part, &data, &tc);
        let original = adcnn_nn::small::SmallModel {
            net: part.net,
            name: "SmallCharCNN",
            input: (CHAR_ALPHABET, 1, 64),
            classes: CHAR_CLASSES,
            separable_prefix: 2,
            prefix_scale: (1, 1),
        };
        let cfg = RetrainConfig { max_epochs_per_stage: 8, ..Default::default() };
        let grid = TileGrid::new(1, 8);
        let copy = adcnn_nn::small::SmallModel { net: original.net.clone(), ..original };
        let (_, prog) = progressive_retrain(copy, &data, grid, &cfg);
        let (_, direct) = direct_retrain(original, &data, grid, &cfg);
        rows.push(Row {
            model: "SmallCharCNN 1x8".into(),
            fdsp_epochs: prog.stages[0].epochs,
            crelu_epochs: prog.stages[1].epochs,
            quant_epochs: prog.stages[2].epochs,
            total: prog.total_epochs(),
            original_acc: prog.original_accuracy,
            progressive_acc: prog.final_accuracy,
            direct_acc: direct.final_accuracy,
        });
    }

    print_table(
        "Table 1 — progressive retraining epochs per modification (paper: 5–13 total)",
        &["model", "FDSP", "ClippedReLU", "Quant", "total", "orig acc", "prog acc", "direct acc"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    r.fdsp_epochs.to_string(),
                    r.crelu_epochs.to_string(),
                    r.quant_epochs.to_string(),
                    r.total.to_string(),
                    format!("{:.3}", r.original_acc),
                    format!("{:.3}", r.progressive_acc),
                    format!("{:.3}", r.direct_acc),
                ]
            })
            .collect::<Vec<_>>(),
    );
    emit_json("table1_retrain_epochs", &rows);
}
