//! Figure 11: end-to-end inference latency of ADCNN (8 Conv nodes) versus
//! the single-device and remote-cloud schemes, for all five CNNs.
//!
//! Paper's claims: ADCNN wins everywhere; on average 6.68× over single
//! device and 4.42× over remote cloud. (Our calibrated reproduction keeps
//! the ordering; the factors are smaller because the paper's own numbers
//! are not reachable from its stated 7-block VGG16 split — see
//! EXPERIMENTS.md.)

use adcnn_bench::{emit_json, ms, print_table, times};
use adcnn_netsim::schemes::{remote_cloud, single_device};
use adcnn_netsim::{AdcnnSim, AdcnnSimConfig, LinkParams};
use adcnn_nn::cost::DeviceProfile;
use adcnn_nn::zoo;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    adcnn_ms: f64,
    adcnn_deep_ms: f64,
    single_ms: f64,
    cloud_ms: f64,
    speedup_vs_single: f64,
    speedup_vs_cloud: f64,
}

fn main() {
    let pi = DeviceProfile::raspberry_pi3();
    let v100 = DeviceProfile::cloud_v100();
    let mut rows = Vec::new();
    for m in zoo::all_models() {
        let mut cfg = AdcnnSimConfig::paper_testbed(m.clone(), 8);
        cfg.images = 40;
        cfg.pipeline_depth = 1; // per-image latency, not pipelined throughput
        let sim = AdcnnSim::new(cfg.clone()).run();
        let adcnn = sim.steady_latency_s();
        // System upper bound: distribute every conv block (only FC / the
        // detection head stays central). Shows how much of the gap to the
        // paper's headline factors is the stated shallow split.
        let mut deep_cfg = cfg;
        deep_cfg.prefix = m.blocks.len();
        let adcnn_deep = AdcnnSim::new(deep_cfg).run().steady_latency_s();
        let single = single_device(&m, &pi).latency_s;
        let cloud = remote_cloud(&m, &v100, LinkParams::cloud_uplink()).latency_s;
        rows.push(Row {
            model: m.name.clone(),
            adcnn_ms: adcnn * 1e3,
            adcnn_deep_ms: adcnn_deep * 1e3,
            single_ms: single * 1e3,
            cloud_ms: cloud * 1e3,
            speedup_vs_single: single / adcnn,
            speedup_vs_cloud: cloud / adcnn,
        });
    }

    print_table(
        "Figure 11 — latency: ADCNN (8 Conv nodes) vs single device vs remote cloud",
        &[
            "model",
            "ADCNN (ms)",
            "ADCNN-deep (ms)",
            "single (ms)",
            "cloud (ms)",
            "vs single",
            "vs cloud",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.model.clone(),
                    ms(r.adcnn_ms / 1e3),
                    ms(r.adcnn_deep_ms / 1e3),
                    ms(r.single_ms / 1e3),
                    ms(r.cloud_ms / 1e3),
                    times(r.speedup_vs_single),
                    times(r.speedup_vs_cloud),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let gm = |f: fn(&Row) -> f64| {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    println!(
        "geo-mean speedups: {} vs single (paper 6.68x), {} vs cloud (paper 4.42x)",
        times(gm(|r| r.speedup_vs_single)),
        times(gm(|r| r.speedup_vs_cloud)),
    );
    emit_json("fig11_latency_baselines", &rows);
}
