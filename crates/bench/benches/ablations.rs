//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. tile allocator policy (greedy min-makespan vs round-robin vs
//!    speed-proportional) under heterogeneity;
//! 2. Algorithm 2 decay γ sensitivity (adaptation lag after throttling);
//! 3. quantizer bit-width (wire size vs quantization error);
//! 4. encoding scheme (RLE vs dense 4-bit vs bitmap + packed values);
//! 5. Figure 9 pipelining on/off (throughput).

use adcnn_bench::{emit_json, print_table};
use adcnn_core::compress::{compress, Quantizer};
use adcnn_core::sched::{allocate_proportional, allocate_round_robin, TileAllocator};
use adcnn_netsim::{AdcnnSim, AdcnnSimConfig, ThrottleSchedule};
use adcnn_nn::zoo;
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

#[derive(Serialize, Default)]
struct Ablations {
    allocator: Vec<(String, f64)>,
    gamma: Vec<(f64, f64)>,
    quant_bits: Vec<(u8, f64, f64)>,
    encodings: Vec<(String, f64)>,
    pipelining: Vec<(String, f64)>,
}

fn allocator_ablation(out: &mut Ablations) {
    // heterogeneous speeds, 64 tiles
    let speeds = [8.0, 8.0, 8.0, 8.0, 3.6, 3.6, 1.9, 1.9];
    let mut rng = StdRng::seed_from_u64(1);
    let greedy = TileAllocator::unbounded(8).allocate(64, &speeds, &mut rng);
    let rr = allocate_round_robin(64, 8);
    let prop = allocate_proportional(64, &speeds, &mut rng);
    for (name, x) in [("greedy (Alg 3)", greedy), ("round-robin", rr), ("proportional", prop)] {
        out.allocator.push((name.to_string(), TileAllocator::makespan(&x, &speeds)));
    }
    print_table(
        "Ablation 1 — allocator makespan on a 4-fast/2-mid/2-slow cluster (lower = better)",
        &["policy", "makespan (tiles/speed-unit)"],
        &out.allocator.iter().map(|(n, m)| vec![n.clone(), format!("{m:.2}")]).collect::<Vec<_>>(),
    );
}

fn gamma_ablation(out: &mut Ablations) {
    // γ controls how fast Algorithm 2 tracks a change; measure the
    // adaptation lag — images (and dropped results) between the throttle
    // and the first lossless image.
    let m = zoo::vgg16();
    for gamma in [0.3, 0.9, 0.99] {
        let mut cfg = AdcnnSimConfig::paper_testbed(m.clone(), 8);
        cfg.images = 80;
        cfg.pipeline_depth = 1;
        cfg.gamma = gamma;
        let warm = AdcnnSim::new(cfg.clone()).run();
        let t_half = warm.images[40].done_at;
        for i in 4..8 {
            cfg.nodes[i].throttle = ThrottleSchedule::throttle_at(t_half, 0.24);
        }
        let run = AdcnnSim::new(cfg).run();
        let total_drops: u32 = run.images[40..].iter().map(|i| i.dropped).sum();
        out.gamma.push((gamma, total_drops as f64));
    }
    print_table(
        "Ablation 2 — Algorithm 2 decay γ vs adaptation cost (total dropped tiles after throttle)",
        &["gamma", "dropped tiles"],
        &out.gamma.iter().map(|(g, l)| vec![g.to_string(), format!("{l:.0}")]).collect::<Vec<_>>(),
    );
}

fn quant_ablation(out: &mut Ablations) {
    let mut rng = StdRng::seed_from_u64(7);
    let n = 100_000usize;
    let xs: Vec<f32> =
        (0..n).map(|_| if rng.gen_bool(0.95) { 0.0 } else { rng.gen_range(0.0..1.0f32) }).collect();
    for bits in [2u8, 3, 4] {
        let q = Quantizer::new(bits, 1.0);
        let c = compress(&xs, q);
        let err: f32 = xs.iter().map(|&x| (q.value(q.level(x)) - x).abs()).fold(0.0, f32::max);
        out.quant_bits.push((bits, c.ratio_vs_f32(), err as f64));
    }
    print_table(
        "Ablation 3 — quantizer bit width (95% sparse activations)",
        &["bits", "wire ratio", "max abs error"],
        &out.quant_bits
            .iter()
            .map(|(b, r, e)| vec![b.to_string(), format!("{r:.4}x"), format!("{e:.4}")])
            .collect::<Vec<_>>(),
    );
}

fn encoding_ablation(out: &mut Ablations) {
    let mut rng = StdRng::seed_from_u64(9);
    let n = 200_000usize;
    let sparsity = 0.95;
    let xs: Vec<f32> = (0..n)
        .map(|_| if rng.gen_bool(sparsity) { 0.0 } else { rng.gen_range(0.05..1.0f32) })
        .collect();
    let q = Quantizer::new(4, 1.0);
    let rle_bits = compress(&xs, q).wire_bits() as f64;
    // dense 4-bit: one nibble per element, no run encoding
    let dense_bits = (n as f64) * 4.0;
    // bitmap: 1 bit presence mask + 4 bits per non-zero
    let nonzero = xs.iter().filter(|&&x| x != 0.0).count() as f64;
    let bitmap_bits = n as f64 + nonzero * 4.0;
    let raw_bits = n as f64 * 32.0;
    for (name, bits) in [
        ("raw f32", raw_bits),
        ("dense 4-bit", dense_bits),
        ("bitmap + 4-bit", bitmap_bits),
        ("RLE 4-bit (paper)", rle_bits),
    ] {
        out.encodings.push((name.to_string(), bits / raw_bits));
    }
    print_table(
        "Ablation 4 — encoding scheme at 95% sparsity (fraction of raw f32)",
        &["encoding", "ratio"],
        &out.encodings.iter().map(|(n, r)| vec![n.clone(), format!("{r:.4}x")]).collect::<Vec<_>>(),
    );
}

fn pipelining_ablation(out: &mut Ablations) {
    let m = zoo::vgg16();
    for (name, depth) in [("serial", 1), ("pipelined (Fig 9)", 2), ("deep (depth 4)", 4)] {
        let mut cfg = AdcnnSimConfig::paper_testbed(m.clone(), 8);
        cfg.images = 30;
        cfg.pipeline_depth = depth;
        let run = AdcnnSim::new(cfg).run();
        let throughput = run.images.len() as f64 / run.total_time_s;
        out.pipelining.push((name.to_string(), throughput));
    }
    print_table(
        "Ablation 5 — pipelining vs throughput (images/s)",
        &["mode", "throughput"],
        &out.pipelining.iter().map(|(n, t)| vec![n.clone(), format!("{t:.2}")]).collect::<Vec<_>>(),
    );
}

fn main() {
    let mut out = Ablations::default();
    allocator_ablation(&mut out);
    gamma_ablation(&mut out);
    quant_ablation(&mut out);
    encoding_ablation(&mut out);
    pipelining_ablation(&mut out);
    emit_json("ablations", &out);
}
