//! Partition-strategy analysis (§3.1) and receptive-field/halo arithmetic.
//!
//! The paper motivates FDSP by costing the alternatives on real model
//! shapes; this module reproduces that arithmetic from the zoo descriptors,
//! and provides the halo-growth computation that both the naive
//! spatial-partition analysis and the AOFL baseline (fused-layer tiles with
//! overlapped inputs) are built on.

use crate::fdsp::TileGrid;
use adcnn_nn::zoo::ModelSpec;
use serde::{Deserialize, Serialize};

/// The CNN partitioning strategies discussed in §3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Whole images batched across nodes: helps throughput, not latency.
    Batch,
    /// Feature maps split along channels; every layer requires exchanging
    /// partial ofmaps.
    Channel,
    /// Spatial tiles with halo exchange each layer.
    SpatialHalo,
    /// The paper's Fully Decomposable Spatial Partition: zero cross-tile
    /// traffic.
    Fdsp,
}

/// Per-layer cross-node communication (bits) for one strategy over `k`
/// nodes, at layer block `i` of `m` (traffic to produce block `i+1`'s
/// input, 32-bit activations).
pub fn layer_comm_bits(m: &ModelSpec, i: usize, strategy: Strategy, k: usize) -> u64 {
    assert!(k >= 1, "need at least one node");
    if k == 1 {
        return 0;
    }
    let (oc, oh, ow) = m.block_output(i);
    match strategy {
        // Batch partitioning never communicates between layers.
        Strategy::Batch => 0,
        // §3.1: each node holds partial sums over its channel slice and must
        // all-reduce the full ofmap; per node-pair the traffic is the ofmap
        // divided by k (the paper's 2-device example: 224·224·64/2 · 32 bit).
        Strategy::Channel => ((oc * oh * ow) as u64 * 32) / k as u64,
        // Spatial with halo: each tile sends its border ring of width
        // halo = k_w/2 to each neighbour. Cost grows with the tile perimeter.
        Strategy::SpatialHalo => {
            let grid = square_grid(k);
            let halo = m.blocks[i].conv.kw / 2;
            if halo == 0 {
                return 0;
            }
            let th = oh / grid.rows.max(1);
            let tw = ow / grid.cols.max(1);
            // internal edges: (rows-1)*cols horizontal + rows*(cols-1) vertical
            let h_edges = (grid.rows - 1) * grid.cols;
            let v_edges = grid.rows * (grid.cols - 1);
            let per_h_edge = tw * halo * oc; // a strip of halo rows
            let per_v_edge = th * halo * oc;
            // each edge exchanged in both directions
            (2 * (h_edges * per_h_edge + v_edges * per_v_edge)) as u64 * 32
        }
        // FDSP: by construction, zero cross-tile traffic.
        Strategy::Fdsp => 0,
    }
}

/// Total cross-node traffic (bits) over the separable prefix.
pub fn prefix_comm_bits(m: &ModelSpec, prefix: usize, strategy: Strategy, k: usize) -> u64 {
    (0..prefix).map(|i| layer_comm_bits(m, i, strategy, k)).sum()
}

/// The most-square grid with `k` tiles (used to lay `k` nodes out
/// spatially for the halo analysis).
pub fn square_grid(k: usize) -> TileGrid {
    let mut rows = (k as f64).sqrt() as usize;
    while rows > 1 && !k.is_multiple_of(rows) {
        rows -= 1;
    }
    TileGrid::new(rows.max(1), k / rows.max(1))
}

/// Halo growth of a fused stack of layer blocks `[start, end)`: how many
/// extra input pixels (per side) a tile needs so that its outputs are exact
/// despite no cross-tile exchange. This is the receptive-field overhang
/// AOFL pays for (§7.4): each conv adds `k/2` scaled by the cumulative
/// stride, and pooling multiplies the stride.
pub fn fused_halo(m: &ModelSpec, start: usize, end: usize) -> usize {
    let mut halo = 0usize;
    let mut scale = 1usize;
    for b in &m.blocks[start..end.min(m.blocks.len())] {
        halo += (b.conv.kw / 2) * scale;
        scale *= b.conv.stride;
        if let Some((_, pw)) = b.pool {
            scale *= pw;
        }
    }
    halo
}

/// FLOPs for one *extended* tile of blocks `[start, end)` under AOFL-style
/// fusion: the tile is grown by the halo needed by the *remaining* fused
/// depth at each layer, so deeper fusion means more redundant computation.
pub fn fused_tile_flops(m: &ModelSpec, start: usize, end: usize, grid: TileGrid) -> u64 {
    let dims = m.block_inputs();
    let mut total = 0u64;
    let mut scale = 1usize;
    #[allow(clippy::needless_range_loop)]
    for i in start..end.min(m.blocks.len()) {
        let (_, h, w) = dims[i];
        // Halo this layer's input tile must carry so the *final* fused
        // output is exact: contributions of layers i..end.
        let halo_in = fused_halo(m, i, end);
        let th = (h / grid.rows).max(1) + 2 * halo_in / scale.max(1);
        let tw = (w / grid.cols).max(1) + 2 * halo_in / scale.max(1);
        let frac = (th * tw) as f64 / (h * w) as f64;
        total += (m.block_flops(i) as f64 * frac.min(4.0)) as u64;
        scale *= m.blocks[i].conv.stride;
        if let Some((_, pw)) = m.blocks[i].pool {
            scale *= pw;
        }
    }
    total
}

/// One row of the strategy-comparison table (used by docs/benches).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StrategyRow {
    /// Strategy compared.
    pub strategy: Strategy,
    /// Cross-node traffic over the separable prefix, megabits.
    pub prefix_comm_mbits: f64,
    /// Whether tiles/shards are independent (schedulable without
    /// cross-node synchronization).
    pub independent: bool,
}

/// Compare all four strategies on model `m` with `k` nodes.
pub fn compare_strategies(m: &ModelSpec, k: usize) -> Vec<StrategyRow> {
    [Strategy::Batch, Strategy::Channel, Strategy::SpatialHalo, Strategy::Fdsp]
        .iter()
        .map(|&s| StrategyRow {
            strategy: s,
            prefix_comm_mbits: prefix_comm_bits(m, m.separable_prefix, s, k) as f64 / 1e6,
            independent: matches!(s, Strategy::Batch | Strategy::Fdsp),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcnn_nn::zoo;

    #[test]
    fn channel_partition_matches_paper_example() {
        // §3.1: VGG16 first layer block, 2 devices: 224·224·64/2·32 bits
        // = 51.38 Mbit.
        let m = zoo::vgg16();
        let bits = layer_comm_bits(&m, 0, Strategy::Channel, 2);
        assert_eq!(bits, 51_380_224);
    }

    #[test]
    fn fdsp_and_batch_are_free() {
        let m = zoo::vgg16();
        for i in 0..m.blocks.len() {
            assert_eq!(layer_comm_bits(&m, i, Strategy::Fdsp, 8), 0);
            assert_eq!(layer_comm_bits(&m, i, Strategy::Batch, 8), 0);
        }
    }

    #[test]
    fn halo_exchange_much_cheaper_than_channel() {
        // §3.1: "spatial partition incurs much lower communication overhead
        // because only the neurons in the halos are transmitted."
        let m = zoo::vgg16();
        let halo = prefix_comm_bits(&m, 7, Strategy::SpatialHalo, 4);
        let channel = prefix_comm_bits(&m, 7, Strategy::Channel, 4);
        assert!(halo * 4 < channel, "halo {halo} vs channel {channel}");
        assert!(halo > 0);
    }

    #[test]
    fn single_node_never_communicates() {
        let m = zoo::vgg16();
        for s in [Strategy::Channel, Strategy::SpatialHalo, Strategy::Fdsp] {
            assert_eq!(prefix_comm_bits(&m, 7, s, 1), 0);
        }
    }

    #[test]
    fn square_grid_factors() {
        assert_eq!(square_grid(8).tiles(), 8);
        assert_eq!(square_grid(4), TileGrid::new(2, 2));
        assert_eq!(square_grid(9), TileGrid::new(3, 3));
        assert_eq!(square_grid(7).tiles(), 7);
    }

    #[test]
    fn fused_halo_grows_with_depth() {
        let m = zoo::vgg16();
        let mut prev = 0;
        for end in 1..=10 {
            let h = fused_halo(&m, 0, end);
            assert!(h >= prev, "halo must be monotone in fused depth");
            prev = h;
        }
        // one 3x3 layer: halo 1; two: 2 (no pooling before block 2's conv)
        assert_eq!(fused_halo(&m, 0, 1), 1);
        assert_eq!(fused_halo(&m, 0, 2), 2);
        // pooling after block 2 doubles the scale of later halos
        assert_eq!(fused_halo(&m, 0, 3), 2 + 2);
    }

    #[test]
    fn fused_tile_flops_exceed_plain_share() {
        // AOFL's overlapped tiles always cost more FLOPs than the plain
        // 1/tiles share, and the overhead grows with fused depth.
        let m = zoo::vgg16();
        let g = TileGrid::new(2, 4);
        let plain: u64 = (0..7).map(|i| m.block_flops(i)).sum::<u64>() / g.tiles() as u64;
        let fused = fused_tile_flops(&m, 0, 7, g);
        assert!(fused > plain, "fused {fused} <= plain {plain}");
        let fused_shallow = fused_tile_flops(&m, 0, 2, g);
        let plain_shallow: u64 = (0..2).map(|i| m.block_flops(i)).sum::<u64>() / g.tiles() as u64;
        let deep_overhead = fused as f64 / plain as f64;
        let shallow_overhead = fused_shallow as f64 / plain_shallow as f64;
        assert!(deep_overhead > shallow_overhead, "{deep_overhead} vs {shallow_overhead}");
    }

    #[test]
    fn compare_strategies_ranks_fdsp_best() {
        let rows = compare_strategies(&zoo::vgg16(), 8);
        let by = |s: Strategy| rows.iter().find(|r| r.strategy == s).unwrap();
        assert_eq!(by(Strategy::Fdsp).prefix_comm_mbits, 0.0);
        assert!(
            by(Strategy::Channel).prefix_comm_mbits > by(Strategy::SpatialHalo).prefix_comm_mbits
        );
        assert!(by(Strategy::Fdsp).independent);
        assert!(!by(Strategy::SpatialHalo).independent);
    }
}
