//! Typed configuration validation shared by every public config surface.
//!
//! The builders (`LifecyclePolicy::builder()` here,
//! `RuntimeConfig::builder()` / `WorkerOptions::builder()` in
//! `adcnn-runtime`, `AdcnnSimConfig::builder()` in `adcnn-netsim`)
//! reject nonsense at construction time with a [`ConfigError`] instead
//! of letting a zero timer or a sub-unity slack factor wedge a run.
//! Config structs keep public fields and working `Default` impls —
//! builders are the validated front door, not a lockout — and the
//! drivers re-validate at launch so a hand-mutated config fails just as
//! loudly.

use crate::lifecycle::{LifecyclePolicy, TimerPolicy};

/// A config value that cannot produce a meaningful run.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// `t_l` must be positive: it is both the T_L timer and the
    /// rate-normalization unit of Algorithm 2.
    NonPositiveTl(f64),
    /// `slack < 1.0` would arm deadlines *before* the expected
    /// makespan, re-dispatching tiles that are merely on schedule.
    SlackBelowOne(f64),
    /// The hard timeout bounds every image's lifetime; zero or negative
    /// means no image can complete.
    NonPositiveHardTimeout(f64),
    /// A zero-capacity task queue rejects every send.
    ZeroTaskQueueCap,
    /// EWMA gamma must lie in (0, 1]: 0 never learns, >1 oscillates.
    GammaOutOfRange(f64),
    /// The wire codec packs {2, 4, 8}-bit lanes; other widths have no
    /// packed representation.
    UnsupportedQuantBits(u32),
    /// A simulation of zero images has no summary.
    ZeroImages,
    /// The partition point must put at least one block on the Conv nodes
    /// and cannot exceed the network depth.
    PrefixOutOfRange { prefix: usize, blocks: usize },
    /// At least one worker/node is required to place tiles.
    NoWorkers,
    /// A probability field (drop/corrupt) must lie in [0, 1].
    ProbabilityOutOfRange { field: &'static str, value: f64 },
    /// A pipeline of depth zero can never admit an image.
    ZeroPipelineDepth,
    /// A zero-capacity intake queue rejects every submit.
    ZeroIntakeCap,
    /// An open-loop arrival process needs a positive rate.
    NonPositiveArrivalRate(f64),
    /// A bursty arrival process needs positive mean dwell times in both
    /// states.
    NonPositiveDwell(f64),
    /// A replayed arrival trace must be time-sorted and nonnegative.
    UnsortedArrivalTrace,
    /// A tenant's fair-share weight must be positive and finite.
    NonPositiveTenantWeight(f64),
    /// A fleet simulation needs at least one tenant.
    NoTenants,
    /// A churn plan covers a window of virtual time; an empty or negative
    /// horizon generates no schedules.
    NonPositiveChurnHorizon(f64),
    /// A diurnal capacity curve needs a positive period to oscillate over.
    NonPositiveDiurnalPeriod(f64),
    /// The diurnal valley multiplier must lie in (0, 1]: 0 would be
    /// death (that is what join/leave models), above 1 is not a trough.
    DiurnalTroughOutOfRange(f64),
    /// A placement headroom factor must be finite and nonnegative.
    NegativePlacementHeadroom(f64),
    /// An SLO latency target must be positive and finite to burn
    /// against.
    NonPositiveSloTarget(f64),
    /// An SLO error budget is a fraction of requests and must lie in
    /// (0, 1].
    SloBudgetOutOfRange(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositiveTl(v) => {
                write!(f, "t_l must be > 0 (got {v})")
            }
            ConfigError::SlackBelowOne(v) => {
                write!(f, "slack must be >= 1.0 so deadlines trail the expected makespan (got {v})")
            }
            ConfigError::NonPositiveHardTimeout(v) => {
                write!(f, "hard_timeout must be > 0 (got {v})")
            }
            ConfigError::ZeroTaskQueueCap => {
                write!(f, "task_queue_cap must be >= 1")
            }
            ConfigError::GammaOutOfRange(v) => {
                write!(f, "gamma must be in (0, 1] (got {v})")
            }
            ConfigError::UnsupportedQuantBits(v) => {
                write!(f, "quantizer bit-width must be one of {{2, 4, 8}} (got {v})")
            }
            ConfigError::ZeroImages => {
                write!(f, "images must be >= 1")
            }
            ConfigError::PrefixOutOfRange { prefix, blocks } => {
                write!(f, "prefix {prefix} must be in 1..={blocks} to split the network")
            }
            ConfigError::NoWorkers => {
                write!(f, "at least one worker/node is required")
            }
            ConfigError::ProbabilityOutOfRange { field, value } => {
                write!(f, "{field} must be in [0, 1] (got {value})")
            }
            ConfigError::ZeroPipelineDepth => {
                write!(f, "pipeline_depth must be >= 1")
            }
            ConfigError::ZeroIntakeCap => {
                write!(f, "intake_cap must be >= 1")
            }
            ConfigError::NonPositiveArrivalRate(v) => {
                write!(f, "arrival rate must be > 0 (got {v})")
            }
            ConfigError::NonPositiveDwell(v) => {
                write!(f, "MMPP mean dwell times must be > 0 (got {v})")
            }
            ConfigError::UnsortedArrivalTrace => {
                write!(f, "arrival trace must be time-sorted and nonnegative")
            }
            ConfigError::NonPositiveTenantWeight(v) => {
                write!(f, "tenant weight must be positive and finite (got {v})")
            }
            ConfigError::NoTenants => {
                write!(f, "at least one tenant is required")
            }
            ConfigError::NonPositiveChurnHorizon(v) => {
                write!(f, "churn horizon must be > 0 (got {v})")
            }
            ConfigError::NonPositiveDiurnalPeriod(v) => {
                write!(f, "diurnal period must be > 0 (got {v})")
            }
            ConfigError::DiurnalTroughOutOfRange(v) => {
                write!(f, "diurnal trough must be in (0, 1] (got {v})")
            }
            ConfigError::NegativePlacementHeadroom(v) => {
                write!(f, "placement headroom must be finite and >= 0 (got {v})")
            }
            ConfigError::NonPositiveSloTarget(v) => {
                write!(f, "SLO latency target must be finite and > 0 (got {v})")
            }
            ConfigError::SloBudgetOutOfRange(v) => {
                write!(f, "SLO error budget must be in (0, 1] (got {v})")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validate a probability-like field.
pub fn check_probability(field: &'static str, value: f64) -> Result<(), ConfigError> {
    if !(0.0..=1.0).contains(&value) || value.is_nan() {
        return Err(ConfigError::ProbabilityOutOfRange { field, value });
    }
    Ok(())
}

impl LifecyclePolicy {
    /// Start building a validated policy from the defaults.
    pub fn builder() -> LifecyclePolicyBuilder {
        LifecyclePolicyBuilder { policy: LifecyclePolicy::default() }
    }

    /// Check the invariants the builder enforces; drivers call this at
    /// launch so hand-mutated configs fail just as loudly.
    pub fn validate(&self) -> Result<(), ConfigError> {
        // NaN fails closed on every bound.
        if self.t_l.is_nan() || self.t_l <= 0.0 {
            return Err(ConfigError::NonPositiveTl(self.t_l));
        }
        if self.slack.is_nan() || self.slack < 1.0 {
            return Err(ConfigError::SlackBelowOne(self.slack));
        }
        if self.hard_timeout.is_nan() || self.hard_timeout <= 0.0 {
            return Err(ConfigError::NonPositiveHardTimeout(self.hard_timeout));
        }
        Ok(())
    }
}

/// Builder for [`LifecyclePolicy`]; see [`LifecyclePolicy::builder`].
#[derive(Clone, Debug)]
pub struct LifecyclePolicyBuilder {
    policy: LifecyclePolicy,
}

impl LifecyclePolicyBuilder {
    /// Base timer T_L, in seconds.
    pub fn t_l(mut self, seconds: f64) -> Self {
        self.policy.t_l = seconds;
        self
    }

    /// Deadline slack factor over the expected makespan.
    pub fn slack(mut self, slack: f64) -> Self {
        self.policy.slack = slack;
        self
    }

    /// Speculative re-dispatch rounds before zero-filling (0 disables
    /// recovery).
    pub fn max_redispatch_rounds(mut self, rounds: u32) -> Self {
        self.policy.max_redispatch_rounds = rounds;
        self
    }

    /// Absolute per-image lifetime bound, in seconds.
    pub fn hard_timeout(mut self, seconds: f64) -> Self {
        self.policy.hard_timeout = seconds;
        self
    }

    /// When the recovery timer arms.
    pub fn timer(mut self, timer: TimerPolicy) -> Self {
        self.policy.timer = timer;
        self
    }

    /// Validate and produce the policy.
    pub fn build(self) -> Result<LifecyclePolicy, ConfigError> {
        self.policy.validate()?;
        Ok(self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_pass() {
        let p = LifecyclePolicy::builder().build().unwrap();
        assert_eq!(p, LifecyclePolicy::default());
    }

    #[test]
    fn builder_rejects_nonsense() {
        assert_eq!(
            LifecyclePolicy::builder().t_l(0.0).build(),
            Err(ConfigError::NonPositiveTl(0.0))
        );
        assert_eq!(
            LifecyclePolicy::builder().slack(0.9).build(),
            Err(ConfigError::SlackBelowOne(0.9))
        );
        assert_eq!(
            LifecyclePolicy::builder().hard_timeout(-1.0).build(),
            Err(ConfigError::NonPositiveHardTimeout(-1.0))
        );
        // NaN fails closed
        assert!(LifecyclePolicy::builder().t_l(f64::NAN).build().is_err());
    }

    #[test]
    fn builder_sets_every_field() {
        let p = LifecyclePolicy::builder()
            .t_l(0.050)
            .slack(1.5)
            .max_redispatch_rounds(3)
            .hard_timeout(9.0)
            .timer(TimerPolicy::AfterSend)
            .build()
            .unwrap();
        assert_eq!(p.t_l, 0.050);
        assert_eq!(p.slack, 1.5);
        assert_eq!(p.max_redispatch_rounds, 3);
        assert_eq!(p.hard_timeout, 9.0);
        assert_eq!(p.timer, TimerPolicy::AfterSend);
    }

    #[test]
    fn errors_display_the_offending_value() {
        let msg = ConfigError::SlackBelowOne(0.5).to_string();
        assert!(msg.contains("0.5"), "{msg}");
        let msg = ConfigError::UnsupportedQuantBits(3).to_string();
        assert!(msg.contains('3'), "{msg}");
    }
}
