//! Structured observability: a zero-cost-when-disabled event-sink layer
//! for the tile lifecycle.
//!
//! Every decision the sans-IO [`TileLifecycle`](crate::lifecycle)
//! machine takes — and every timed step the drivers measure around it
//! (per-tile compute, compression, transfer) — can be mirrored into an
//! [`EventSink`] as a structured [`ObsEvent`]. Both drivers (the real
//! runtime in `adcnn-runtime` and the discrete-event simulator in
//! `adcnn-netsim`) thread the same sink through the same machine, so a
//! wall-clock run and a simulated run produce the **same event schema**:
//! a trace captured from either loads into the same tooling.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Emission goes through
//!    [`SinkHandle::emit_with`], which takes a closure; when no sink is
//!    installed (or the sink reports `enabled() == false`) the closure
//!    never runs, so the event is never even constructed. [`ObsEvent`]
//!    is `Copy` and all-scalar — no variant owns a heap allocation — so
//!    an *enabled* sink still sees no per-event allocation on the hot
//!    path (`tests/alloc_steady_state.rs` proves the [`NullSink`] case).
//! 2. **Counters reconcile.** The [`MetricsSink`] counters are defined
//!    so they add up against the per-image outcome: one `TileZeroFill`
//!    per zero-filled tile, one `TileArrival` per accepted tile, one
//!    `TileDispatch`/`TileRedispatch` per send attempt (including
//!    transport-bounced retries, which also re-attempt).
//! 3. **Time is the driver's time.** `at` is in the driver's abstract
//!    seconds — wall-clock seconds since the runtime's epoch, or
//!    simulated seconds — exactly the axis the lifecycle machine runs
//!    on. Span events (`TileCompute`, `TileCompress`, `TileTransfer`)
//!    carry the span *end* in `at` and the length in `dur`.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One structured observation. All variants are plain scalars (`Copy`),
/// so emitting never allocates; multi-tile outcomes (zero-fill sets)
/// emit one event per tile.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ObsEvent {
    /// An image's tiles were allocated and its lifecycle began.
    /// `placed ≤ tiles` under storage caps.
    ImageStart { at: f64, image: u64, tiles: u32, placed: u32 },
    /// The image completed (every tile arrived or was zero-filled).
    ImageFinish { at: f64, image: u64, latency: f64, zero_filled: u32, redispatched: u32 },
    /// A round-0 send attempt of `tile` to `worker`.
    TileDispatch { at: f64, image: u64, tile: u32, worker: u32 },
    /// A recovery send attempt in re-dispatch round `round`.
    TileRedispatch { at: f64, image: u64, tile: u32, worker: u32, round: u32 },
    /// A fresh, decodable result was accepted from `worker`.
    TileArrival { at: f64, image: u64, tile: u32, worker: u32 },
    /// A result for an already-satisfied tile was discarded.
    TileDuplicate { at: f64, image: u64, tile: u32, worker: u32 },
    /// A result arrived after its image completed.
    TileLate { at: f64, image: u64, tile: u32, worker: u32 },
    /// A result arrived but failed to decode; the tile stays open.
    TileCorrupt { at: f64, image: u64, tile: u32, worker: u32 },
    /// The tile missed every recovery attempt and was zero-filled.
    TileZeroFill { at: f64, image: u64, tile: u32 },
    /// The expected-makespan deadline (or `T_L` timer) was armed to fire
    /// `span` seconds after `at`.
    DeadlineArmed { at: f64, image: u64, span: f64 },
    /// A live (non-stale) deadline fired.
    DeadlineFired { at: f64, image: u64 },
    /// The driver positively observed `worker`'s death.
    WorkerDead { at: f64, image: u64, worker: u32 },
    /// `worker` held a missing tile at a deadline without delivering
    /// anything since the previous round (§6.3 silent-fault rule).
    WorkerSuspect { at: f64, image: u64, worker: u32 },
    /// A previously suspect `worker` produced evidence of life.
    WorkerCleared { at: f64, image: u64, worker: u32 },
    /// An Algorithm 2 EWMA observation was folded in for `worker`.
    RateUpdate { at: f64, image: u64, worker: u32, rate: f64 },
    /// Prefix-network forward for one tile took `dur` seconds, ending at
    /// `at`.
    TileCompute { at: f64, image: u64, tile: u32, worker: u32, dur: f64 },
    /// Clip + quantize + RLE for one tile: `dur` seconds ending at `at`,
    /// `bytes` on the wire, `ratio` = wire bits / raw f32 bits.
    TileCompress { at: f64, image: u64, tile: u32, worker: u32, dur: f64, bytes: u64, ratio: f64 },
    /// A modeled or measured transfer of one tile's payload, `dur`
    /// seconds ending at `at`.
    TileTransfer { at: f64, image: u64, tile: u32, worker: u32, dur: f64 },
}

impl ObsEvent {
    /// Stable event-type name (the cross-driver schema the differential
    /// test compares).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::ImageStart { .. } => "image_start",
            ObsEvent::ImageFinish { .. } => "image_finish",
            ObsEvent::TileDispatch { .. } => "tile_dispatch",
            ObsEvent::TileRedispatch { .. } => "tile_redispatch",
            ObsEvent::TileArrival { .. } => "tile_arrival",
            ObsEvent::TileDuplicate { .. } => "tile_duplicate",
            ObsEvent::TileLate { .. } => "tile_late",
            ObsEvent::TileCorrupt { .. } => "tile_corrupt",
            ObsEvent::TileZeroFill { .. } => "tile_zero_fill",
            ObsEvent::DeadlineArmed { .. } => "deadline_armed",
            ObsEvent::DeadlineFired { .. } => "deadline_fired",
            ObsEvent::WorkerDead { .. } => "worker_dead",
            ObsEvent::WorkerSuspect { .. } => "worker_suspect",
            ObsEvent::WorkerCleared { .. } => "worker_cleared",
            ObsEvent::RateUpdate { .. } => "rate_update",
            ObsEvent::TileCompute { .. } => "tile_compute",
            ObsEvent::TileCompress { .. } => "tile_compress",
            ObsEvent::TileTransfer { .. } => "tile_transfer",
        }
    }

    /// The event's payload as a JSON object (used for Chrome-trace
    /// `args`; all fields are numbers, so no escaping is required).
    pub fn args_json(&self) -> String {
        match *self {
            ObsEvent::ImageStart { image, tiles, placed, .. } => {
                format!(r#"{{"image":{image},"tiles":{tiles},"placed":{placed}}}"#)
            }
            ObsEvent::ImageFinish { image, latency, zero_filled, redispatched, .. } => format!(
                r#"{{"image":{image},"latency":{latency},"zero_filled":{zero_filled},"redispatched":{redispatched}}}"#
            ),
            ObsEvent::TileDispatch { image, tile, worker, .. }
            | ObsEvent::TileArrival { image, tile, worker, .. }
            | ObsEvent::TileDuplicate { image, tile, worker, .. }
            | ObsEvent::TileLate { image, tile, worker, .. }
            | ObsEvent::TileCorrupt { image, tile, worker, .. } => {
                format!(r#"{{"image":{image},"tile":{tile},"worker":{worker}}}"#)
            }
            ObsEvent::TileRedispatch { image, tile, worker, round, .. } => {
                format!(r#"{{"image":{image},"tile":{tile},"worker":{worker},"round":{round}}}"#)
            }
            ObsEvent::TileZeroFill { image, tile, .. } => {
                format!(r#"{{"image":{image},"tile":{tile}}}"#)
            }
            ObsEvent::DeadlineArmed { image, span, .. } => {
                format!(r#"{{"image":{image},"span":{span}}}"#)
            }
            ObsEvent::DeadlineFired { image, .. } => format!(r#"{{"image":{image}}}"#),
            ObsEvent::WorkerDead { image, worker, .. }
            | ObsEvent::WorkerSuspect { image, worker, .. }
            | ObsEvent::WorkerCleared { image, worker, .. } => {
                format!(r#"{{"image":{image},"worker":{worker}}}"#)
            }
            ObsEvent::RateUpdate { image, worker, rate, .. } => {
                format!(r#"{{"image":{image},"worker":{worker},"rate":{rate}}}"#)
            }
            ObsEvent::TileCompute { image, tile, worker, dur, .. }
            | ObsEvent::TileTransfer { image, tile, worker, dur, .. } => {
                format!(r#"{{"image":{image},"tile":{tile},"worker":{worker},"dur":{dur}}}"#)
            }
            ObsEvent::TileCompress { image, tile, worker, dur, bytes, ratio, .. } => format!(
                r#"{{"image":{image},"tile":{tile},"worker":{worker},"dur":{dur},"bytes":{bytes},"ratio":{ratio}}}"#
            ),
        }
    }

    /// The event's timestamp on the driver's time axis.
    pub fn at(&self) -> f64 {
        match *self {
            ObsEvent::ImageStart { at, .. }
            | ObsEvent::ImageFinish { at, .. }
            | ObsEvent::TileDispatch { at, .. }
            | ObsEvent::TileRedispatch { at, .. }
            | ObsEvent::TileArrival { at, .. }
            | ObsEvent::TileDuplicate { at, .. }
            | ObsEvent::TileLate { at, .. }
            | ObsEvent::TileCorrupt { at, .. }
            | ObsEvent::TileZeroFill { at, .. }
            | ObsEvent::DeadlineArmed { at, .. }
            | ObsEvent::DeadlineFired { at, .. }
            | ObsEvent::WorkerDead { at, .. }
            | ObsEvent::WorkerSuspect { at, .. }
            | ObsEvent::WorkerCleared { at, .. }
            | ObsEvent::RateUpdate { at, .. }
            | ObsEvent::TileCompute { at, .. }
            | ObsEvent::TileCompress { at, .. }
            | ObsEvent::TileTransfer { at, .. } => at,
        }
    }
}

/// Where structured events go. Implementations must be cheap and
/// thread-safe: workers emit from their own threads concurrently with
/// the Central node.
pub trait EventSink: Send + Sync {
    /// Consume one event.
    fn emit(&self, ev: &ObsEvent);

    /// Gate for [`SinkHandle::emit_with`]: when `false`, events for this
    /// sink are never even constructed. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }
}

/// A shareable, optionally-absent sink. The default (and
/// [`SinkHandle::null()`]) holds **no** sink at all — no allocation, and
/// `emit_with` compiles down to a branch on `None`.
#[derive(Clone, Default)]
pub struct SinkHandle(Option<Arc<dyn EventSink>>);

impl SinkHandle {
    /// Wrap a shared sink.
    pub fn new(sink: Arc<dyn EventSink>) -> Self {
        SinkHandle(Some(sink))
    }

    /// Wrap an owned sink (convenience over [`SinkHandle::new`]).
    pub fn of(sink: impl EventSink + 'static) -> Self {
        SinkHandle(Some(Arc::new(sink)))
    }

    /// The disabled handle: events are never constructed.
    pub fn null() -> Self {
        SinkHandle(None)
    }

    /// True when a sink is installed and reports itself enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(&self.0, Some(s) if s.enabled())
    }

    /// Emit the event produced by `f`, constructing it only if an
    /// enabled sink is installed. This is the only emission path the
    /// lifecycle machine and the drivers use, which is what makes the
    /// disabled case free.
    #[inline]
    pub fn emit_with(&self, f: impl FnOnce() -> ObsEvent) {
        if let Some(sink) = &self.0 {
            if sink.enabled() {
                sink.emit(&f());
            }
        }
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(s) => write!(f, "SinkHandle(installed, enabled={})", s.enabled()),
            None => write!(f, "SinkHandle(none)"),
        }
    }
}

/// A sink that discards everything and reports itself disabled, so
/// `emit_with` never constructs an event. Exists to *prove* the
/// disabled-path cost (see `tests/alloc_steady_state.rs`); prefer
/// [`SinkHandle::null()`] in configs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _ev: &ObsEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Number of log2 buckets in a [`Histogram`] (covers 1 µs … ~35 min).
const HIST_BUCKETS: usize = 32;

/// Lock-free fixed-bucket histogram: bucket `b` counts values `v` (in
/// µs or bytes) with `2^(b-1) ≤ v < 2^b`; bucket 0 counts `v == 0`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one value (relaxed atomics: counters, not synchronization).
    pub fn record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()).min(HIST_BUCKETS as u32 - 1) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Plain-value snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Serializable copy of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Log2 bucket counts (`buckets[b]` holds `2^(b-1) ≤ v < 2^b`).
    pub buckets: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value, if anything was recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// Lock-free metrics aggregation: per-event-type counters plus
/// fixed-bucket histograms for durations, sizes and image latency.
/// Share one instance across a whole run and [`MetricsSink::snapshot`]
/// it whenever a consistent-enough view is needed.
#[derive(Debug, Default)]
pub struct MetricsSink {
    images_started: AtomicU64,
    images_finished: AtomicU64,
    tiles_dispatched: AtomicU64,
    tiles_redispatched: AtomicU64,
    tiles_arrived: AtomicU64,
    tiles_duplicate: AtomicU64,
    tiles_late: AtomicU64,
    tiles_corrupt: AtomicU64,
    tiles_zero_filled: AtomicU64,
    deadlines_armed: AtomicU64,
    deadlines_fired: AtomicU64,
    workers_died: AtomicU64,
    workers_suspected: AtomicU64,
    workers_cleared: AtomicU64,
    rate_updates: AtomicU64,
    compressed_bytes: AtomicU64,
    compute_us: Histogram,
    compress_us: Histogram,
    transfer_us: Histogram,
    image_latency_us: Histogram,
    compressed_tile_bytes: Histogram,
}

/// Seconds → whole microseconds (the histogram unit).
fn us(seconds: f64) -> u64 {
    (seconds * 1e6).max(0.0) as u64
}

impl MetricsSink {
    /// A fresh, zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plain-value, serde-serializable snapshot of every counter and
    /// histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            images_started: c(&self.images_started),
            images_finished: c(&self.images_finished),
            tiles_dispatched: c(&self.tiles_dispatched),
            tiles_redispatched: c(&self.tiles_redispatched),
            tiles_arrived: c(&self.tiles_arrived),
            tiles_duplicate: c(&self.tiles_duplicate),
            tiles_late: c(&self.tiles_late),
            tiles_corrupt: c(&self.tiles_corrupt),
            tiles_zero_filled: c(&self.tiles_zero_filled),
            deadlines_armed: c(&self.deadlines_armed),
            deadlines_fired: c(&self.deadlines_fired),
            workers_died: c(&self.workers_died),
            workers_suspected: c(&self.workers_suspected),
            workers_cleared: c(&self.workers_cleared),
            rate_updates: c(&self.rate_updates),
            compressed_bytes: c(&self.compressed_bytes),
            compute_us: self.compute_us.snapshot(),
            compress_us: self.compress_us.snapshot(),
            transfer_us: self.transfer_us.snapshot(),
            image_latency_us: self.image_latency_us.snapshot(),
            compressed_tile_bytes: self.compressed_tile_bytes.snapshot(),
        }
    }
}

impl EventSink for MetricsSink {
    fn emit(&self, ev: &ObsEvent) {
        match *ev {
            ObsEvent::ImageStart { .. } => {
                self.images_started.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::ImageFinish { latency, .. } => {
                self.images_finished.fetch_add(1, Ordering::Relaxed);
                self.image_latency_us.record(us(latency));
            }
            ObsEvent::TileDispatch { .. } => {
                self.tiles_dispatched.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileRedispatch { .. } => {
                self.tiles_redispatched.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileArrival { .. } => {
                self.tiles_arrived.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileDuplicate { .. } => {
                self.tiles_duplicate.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileLate { .. } => {
                self.tiles_late.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileCorrupt { .. } => {
                self.tiles_corrupt.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileZeroFill { .. } => {
                self.tiles_zero_filled.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::DeadlineArmed { .. } => {
                self.deadlines_armed.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::DeadlineFired { .. } => {
                self.deadlines_fired.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::WorkerDead { .. } => {
                self.workers_died.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::WorkerSuspect { .. } => {
                self.workers_suspected.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::WorkerCleared { .. } => {
                self.workers_cleared.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::RateUpdate { .. } => {
                self.rate_updates.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileCompute { dur, .. } => {
                self.compute_us.record(us(dur));
            }
            ObsEvent::TileCompress { dur, bytes, .. } => {
                self.compress_us.record(us(dur));
                self.compressed_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.compressed_tile_bytes.record(bytes);
            }
            ObsEvent::TileTransfer { dur, .. } => {
                self.transfer_us.record(us(dur));
            }
        }
    }
}

/// Serializable copy of a [`MetricsSink`]. Counters reconcile against
/// the per-image outcome: `tiles_zero_filled == Σ zero_filled`,
/// `tiles_redispatched == Σ redispatched` (absent transport bounces),
/// `tiles_arrived == Σ (tiles − zero_filled)`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Images whose lifecycle began.
    pub images_started: u64,
    /// Images that completed.
    pub images_finished: u64,
    /// Round-0 send attempts.
    pub tiles_dispatched: u64,
    /// Recovery send attempts.
    pub tiles_redispatched: u64,
    /// Accepted (fresh, decodable) results.
    pub tiles_arrived: u64,
    /// Discarded duplicate results.
    pub tiles_duplicate: u64,
    /// Results that arrived after image completion.
    pub tiles_late: u64,
    /// Results that failed to decode.
    pub tiles_corrupt: u64,
    /// Tiles zero-filled.
    pub tiles_zero_filled: u64,
    /// Deadline timers armed.
    pub deadlines_armed: u64,
    /// Live deadline firings.
    pub deadlines_fired: u64,
    /// Positively-observed worker deaths.
    pub workers_died: u64,
    /// Silent-fault suspicions raised.
    pub workers_suspected: u64,
    /// Suspicions cleared by evidence of life.
    pub workers_cleared: u64,
    /// Algorithm 2 EWMA observations folded in.
    pub rate_updates: u64,
    /// Total compressed payload bytes shipped.
    pub compressed_bytes: u64,
    /// Per-tile prefix compute time, µs.
    pub compute_us: HistogramSnapshot,
    /// Per-tile clip/quantize/RLE time, µs.
    pub compress_us: HistogramSnapshot,
    /// Per-tile transfer time, µs.
    pub transfer_us: HistogramSnapshot,
    /// End-to-end image latency, µs.
    pub image_latency_us: HistogramSnapshot,
    /// Per-tile compressed payload size, bytes.
    pub compressed_tile_bytes: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Render as JSON by hand — the same field names and shape serde
    /// emits — so metrics export works without a serializer dependency
    /// (the sinks' contract throughout this module).
    pub fn to_json(&self) -> String {
        fn hist(h: &HistogramSnapshot) -> String {
            let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
            format!(
                "{{\"buckets\":[{}],\"count\":{},\"sum\":{}}}",
                buckets.join(","),
                h.count,
                h.sum
            )
        }
        format!(
            "{{\"images_started\":{},\"images_finished\":{},\"tiles_dispatched\":{},\
             \"tiles_redispatched\":{},\"tiles_arrived\":{},\"tiles_duplicate\":{},\
             \"tiles_late\":{},\"tiles_corrupt\":{},\"tiles_zero_filled\":{},\
             \"deadlines_armed\":{},\"deadlines_fired\":{},\"workers_died\":{},\
             \"workers_suspected\":{},\"workers_cleared\":{},\"rate_updates\":{},\
             \"compressed_bytes\":{},\"compute_us\":{},\"compress_us\":{},\
             \"transfer_us\":{},\"image_latency_us\":{},\"compressed_tile_bytes\":{}}}",
            self.images_started,
            self.images_finished,
            self.tiles_dispatched,
            self.tiles_redispatched,
            self.tiles_arrived,
            self.tiles_duplicate,
            self.tiles_late,
            self.tiles_corrupt,
            self.tiles_zero_filled,
            self.deadlines_armed,
            self.deadlines_fired,
            self.workers_died,
            self.workers_suspected,
            self.workers_cleared,
            self.rate_updates,
            self.compressed_bytes,
            hist(&self.compute_us),
            hist(&self.compress_us),
            hist(&self.transfer_us),
            hist(&self.image_latency_us),
            hist(&self.compressed_tile_bytes),
        )
    }
}

/// Records events verbatim for inspection; Chrome-trace export turns the
/// compute/compress/transfer spans into one track per worker, loadable
/// in `chrome://tracing` or <https://ui.perfetto.dev>.
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    events: Mutex<Vec<ObsEvent>>,
}

impl ChromeTraceSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of everything recorded so far.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }

    /// Render the recorded events as Chrome trace JSON (the
    /// `traceEvents` object format): complete (`ph: "X"`) events for the
    /// compute/compress/transfer spans on one track per worker, instant
    /// (`ph: "i"`) events for lifecycle decisions — image and deadline
    /// events on the Central track (tid 0), per-worker events on their
    /// worker's track. The JSON is written by hand (keys and numbers
    /// only, nothing needs escaping) so the sink carries no serializer
    /// dependency.
    pub fn to_json(&self) -> String {
        let events = self.events.lock().expect("trace sink poisoned");
        let mut out: Vec<String> = Vec::with_capacity(events.len() + 8);
        let mut seen_workers: Vec<u32> = Vec::new();
        out.push(
            r#"{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"central"}}"#
                .to_string(),
        );
        // Trace timestamps are µs at fixed ns precision (raw f64 Display
        // would leak artifacts like 6000.000000000001 into the file); the
        // finite-guard keeps the file loadable even if a driver ever
        // emits a degenerate span.
        let us = |s: f64| format!("{:.3}", if s.is_finite() { s * 1e6 } else { 0.0 });
        for ev in events.iter() {
            let worker = match *ev {
                ObsEvent::TileDispatch { worker, .. }
                | ObsEvent::TileRedispatch { worker, .. }
                | ObsEvent::TileArrival { worker, .. }
                | ObsEvent::TileDuplicate { worker, .. }
                | ObsEvent::TileLate { worker, .. }
                | ObsEvent::TileCorrupt { worker, .. }
                | ObsEvent::WorkerDead { worker, .. }
                | ObsEvent::WorkerSuspect { worker, .. }
                | ObsEvent::WorkerCleared { worker, .. }
                | ObsEvent::RateUpdate { worker, .. }
                | ObsEvent::TileCompute { worker, .. }
                | ObsEvent::TileCompress { worker, .. }
                | ObsEvent::TileTransfer { worker, .. } => Some(worker),
                _ => None,
            };
            let tid = match worker {
                Some(w) => {
                    if !seen_workers.contains(&w) {
                        seen_workers.push(w);
                        out.push(format!(
                            r#"{{"name":"thread_name","ph":"M","pid":0,"tid":{},"args":{{"name":"worker {w}"}}}}"#,
                            w + 1
                        ));
                    }
                    w + 1
                }
                None => 0,
            };
            match *ev {
                ObsEvent::TileCompute { at, image, tile, dur, .. } => out.push(format!(
                    r#"{{"name":"compute","cat":"tile","ph":"X","ts":{},"dur":{},"pid":0,"tid":{tid},"args":{{"image":{image},"tile":{tile}}}}}"#,
                    us(at - dur),
                    us(dur),
                )),
                ObsEvent::TileCompress { at, image, tile, dur, bytes, ratio, .. } => {
                    out.push(format!(
                        r#"{{"name":"compress","cat":"tile","ph":"X","ts":{},"dur":{},"pid":0,"tid":{tid},"args":{{"image":{image},"tile":{tile},"bytes":{bytes},"ratio":{}}}}}"#,
                        us(at - dur),
                        us(dur),
                        if ratio.is_finite() { ratio } else { 0.0 },
                    ))
                }
                ObsEvent::TileTransfer { at, image, tile, dur, .. } => out.push(format!(
                    r#"{{"name":"transfer","cat":"tile","ph":"X","ts":{},"dur":{},"pid":0,"tid":{tid},"args":{{"image":{image},"tile":{tile}}}}}"#,
                    us(at - dur),
                    us(dur),
                )),
                other => out.push(format!(
                    r#"{{"name":"{}","cat":"lifecycle","ph":"i","ts":{},"pid":0,"tid":{tid},"s":"t","args":{}}}"#,
                    other.kind(),
                    us(other.at()),
                    other.args_json(),
                )),
            }
        }
        format!(r#"{{"traceEvents":[{}],"displayTimeUnit":"ms"}}"#, out.join(","))
    }

    /// Write the Chrome trace JSON to `path`.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl EventSink for ChromeTraceSink {
    fn emit(&self, ev: &ObsEvent) {
        self.events.lock().expect("trace sink poisoned").push(*ev);
    }
}

/// Test helper: records every event verbatim.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<ObsEvent>>,
}

impl RecordingSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of everything recorded so far.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.events.lock().expect("recording sink poisoned").clone()
    }

    /// The recorded event-type sequence.
    pub fn kinds(&self) -> Vec<&'static str> {
        self.events().iter().map(|e| e.kind()).collect()
    }
}

impl EventSink for RecordingSink {
    fn emit(&self, ev: &ObsEvent) {
        self.events.lock().expect("recording sink poisoned").push(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_never_constructs_events() {
        let sink = SinkHandle::null();
        assert!(!sink.enabled());
        sink.emit_with(|| panic!("closure must not run for a null handle"));
        let null = SinkHandle::of(NullSink);
        assert!(!null.enabled());
        null.emit_with(|| panic!("closure must not run for a disabled sink"));
    }

    #[test]
    fn metrics_sink_counts_and_buckets() {
        let m = Arc::new(MetricsSink::new());
        let h = SinkHandle::new(m.clone());
        assert!(h.enabled());
        h.emit_with(|| ObsEvent::ImageStart { at: 0.0, image: 0, tiles: 4, placed: 4 });
        for t in 0..3u32 {
            h.emit_with(|| ObsEvent::TileDispatch { at: 0.0, image: 0, tile: t, worker: 0 });
            h.emit_with(|| ObsEvent::TileArrival { at: 0.01, image: 0, tile: t, worker: 0 });
        }
        h.emit_with(|| ObsEvent::TileZeroFill { at: 0.05, image: 0, tile: 3 });
        h.emit_with(|| ObsEvent::TileCompress {
            at: 0.02,
            image: 0,
            tile: 0,
            worker: 0,
            dur: 0.001,
            bytes: 300,
            ratio: 0.12,
        });
        h.emit_with(|| ObsEvent::ImageFinish {
            at: 0.05,
            image: 0,
            latency: 0.05,
            zero_filled: 1,
            redispatched: 0,
        });
        let s = m.snapshot();
        assert_eq!(s.images_started, 1);
        assert_eq!(s.images_finished, 1);
        assert_eq!(s.tiles_dispatched, 3);
        assert_eq!(s.tiles_arrived, 3);
        assert_eq!(s.tiles_zero_filled, 1);
        assert_eq!(s.compressed_bytes, 300);
        assert_eq!(s.compress_us.count, 1);
        assert_eq!(s.compress_us.sum, 1000);
        assert_eq!(s.image_latency_us.count, 1);
        // 50_000 µs lands in bucket 16 (2^15 ≤ v < 2^16)
        assert_eq!(s.image_latency_us.buckets[16], 1);

        let json = s.to_json();
        assert_balanced_json(&json);
        for field in ["\"tiles_dispatched\":3", "\"compressed_bytes\":300", "\"compute_us\":{"] {
            assert!(json.contains(field), "{field} missing from {json}");
        }
    }

    /// Minimal structural JSON check: balanced braces/brackets outside
    /// strings, and no trailing garbage. Enough to catch a malformed
    /// hand-written trace without a JSON parser dependency.
    fn assert_balanced_json(s: &str) {
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in {s}");
        }
        assert_eq!(depth, 0, "unbalanced JSON: {s}");
        assert!(!in_str, "unterminated string in {s}");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_worker_tracks() {
        let t = Arc::new(ChromeTraceSink::new());
        let h = SinkHandle::new(t.clone());
        h.emit_with(|| ObsEvent::ImageStart { at: 0.0, image: 0, tiles: 2, placed: 2 });
        h.emit_with(|| ObsEvent::TileCompute {
            at: 0.010,
            image: 0,
            tile: 0,
            worker: 1,
            dur: 0.004,
        });
        h.emit_with(|| ObsEvent::TileCompress {
            at: 0.011,
            image: 0,
            tile: 0,
            worker: 1,
            dur: 0.001,
            bytes: 120,
            ratio: 0.25,
        });
        let json = t.to_json();
        assert_balanced_json(&json);
        assert!(json.starts_with(r#"{"traceEvents":["#));
        // spans are complete events on worker 1's track (tid 2), with
        // ts = (at - dur) in µs
        assert!(
            json.contains(
                r#""name":"compute","cat":"tile","ph":"X","ts":6000.000,"dur":4000.000,"pid":0,"tid":2"#
            ),
            "{json}"
        );
        assert!(json.contains(r#""name":"compress"#));
        assert!(json.contains(r#""bytes":120"#));
        // lifecycle decisions are instants; image events sit on the
        // central track
        assert!(
            json.contains(
                r#""name":"image_start","cat":"lifecycle","ph":"i","ts":0.000,"pid":0,"tid":0"#
            ),
            "{json}"
        );
        // both tracks are named
        assert!(json.contains(
            r#"{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"central"}}"#
        ));
        assert!(json.contains(r#""args":{"name":"worker 1"}"#));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.mean(), Some(206.0));
    }
}
