//! Structured observability: a zero-cost-when-disabled event-sink layer
//! for the tile lifecycle.
//!
//! Every decision the sans-IO [`TileLifecycle`](crate::lifecycle)
//! machine takes — and every timed step the drivers measure around it
//! (per-tile compute, compression, transfer) — can be mirrored into an
//! [`EventSink`] as a structured [`ObsEvent`]. Both drivers (the real
//! runtime in `adcnn-runtime` and the discrete-event simulator in
//! `adcnn-netsim`) thread the same sink through the same machine, so a
//! wall-clock run and a simulated run produce the **same event schema**:
//! a trace captured from either loads into the same tooling.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Emission goes through
//!    [`SinkHandle::emit_with`], which takes a closure; when no sink is
//!    installed (or the sink reports `enabled() == false`) the closure
//!    never runs, so the event is never even constructed. [`ObsEvent`]
//!    is `Copy` and all-scalar — no variant owns a heap allocation — so
//!    an *enabled* sink still sees no per-event allocation on the hot
//!    path (`tests/alloc_steady_state.rs` proves the [`NullSink`] case).
//! 2. **Counters reconcile.** The [`MetricsSink`] counters are defined
//!    so they add up against the per-image outcome: one `TileZeroFill`
//!    per zero-filled tile, one `TileArrival` per accepted tile, one
//!    `TileDispatch`/`TileRedispatch` per send attempt (including
//!    transport-bounced retries, which also re-attempt).
//! 3. **Time is the driver's time.** `at` is in the driver's abstract
//!    seconds — wall-clock seconds since the runtime's epoch, or
//!    simulated seconds — exactly the axis the lifecycle machine runs
//!    on. Span events (`TileCompute`, `TileCompress`, `TileTransfer`)
//!    carry the span *end* in `at` and the length in `dur`.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hand-rolled JSON formatting shared by every serde-free emitter in
/// this crate — [`ObsEvent::args_json`], [`MetricsSnapshot::to_json`],
/// [`ChromeTraceSink::to_json`], and the report types in
/// [`crate::report`]. One escape routine, one finite-float rule, one
/// object builder, so the emitters cannot drift apart on the corner
/// cases (quotes in strings, NaN durations).
pub mod json {
    /// Append `s` to `out` JSON-escaped (without surrounding quotes).
    pub fn escape_into(out: &mut String, s: &str) {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
    }

    /// `s` as a quoted, escaped JSON string literal.
    pub fn string(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        escape_into(&mut out, s);
        out.push('"');
        out
    }

    /// A float as a JSON number. JSON has no NaN/Infinity, so
    /// non-finite values render as `0` rather than poisoning the
    /// document.
    pub fn num(v: f64) -> String {
        if v.is_finite() {
            format!("{v}")
        } else {
            "0".to_string()
        }
    }

    /// Render pre-formatted JSON values as a JSON array.
    pub fn array(items: impl IntoIterator<Item = String>) -> String {
        let mut out = String::from("[");
        for (i, item) in items.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&item);
        }
        out.push(']');
        out
    }

    /// Incremental `{...}` object builder; fields appear in insertion
    /// order.
    #[derive(Debug, Default)]
    pub struct Obj {
        buf: String,
    }

    impl Obj {
        /// An empty object.
        pub fn new() -> Self {
            Obj { buf: String::from("{") }
        }

        fn key(&mut self, k: &str) {
            if self.buf.len() > 1 {
                self.buf.push(',');
            }
            self.buf.push('"');
            escape_into(&mut self.buf, k);
            self.buf.push_str("\":");
        }

        /// Add an unsigned-integer field.
        pub fn u64(mut self, k: &str, v: u64) -> Self {
            self.key(k);
            self.buf.push_str(&v.to_string());
            self
        }

        /// Add a float field (non-finite renders as `0`).
        pub fn f64(mut self, k: &str, v: f64) -> Self {
            self.key(k);
            self.buf.push_str(&num(v));
            self
        }

        /// Add an escaped string field.
        pub fn str(mut self, k: &str, v: &str) -> Self {
            self.key(k);
            self.buf.push_str(&string(v));
            self
        }

        /// Add a boolean field.
        pub fn bool(mut self, k: &str, v: bool) -> Self {
            self.key(k);
            self.buf.push_str(if v { "true" } else { "false" });
            self
        }

        /// Add a pre-rendered JSON value (nested object/array) verbatim.
        pub fn raw(mut self, k: &str, v: impl AsRef<str>) -> Self {
            self.key(k);
            self.buf.push_str(v.as_ref());
            self
        }

        /// Close and return the object.
        pub fn finish(mut self) -> String {
            self.buf.push('}');
            self.buf
        }
    }

    /// Structural well-formedness check: balanced braces/brackets
    /// outside strings and no unterminated string, honoring escapes.
    /// Not a parser — enough to catch a malformed hand-written document
    /// without a JSON dependency; shared by the unit tests and the
    /// example smoke checks wired into CI.
    pub fn is_well_formed(s: &str) -> bool {
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                _ => {}
            }
        }
        depth == 0 && !in_str
    }
}

/// One structured observation. All variants are plain scalars (`Copy`),
/// so emitting never allocates; multi-tile outcomes (zero-fill sets)
/// emit one event per tile.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ObsEvent {
    /// An image's tiles were allocated and its lifecycle began.
    /// `placed ≤ tiles` under storage caps.
    ImageStart { at: f64, image: u64, tiles: u32, placed: u32 },
    /// The image completed (every tile arrived or was zero-filled).
    ImageFinish { at: f64, image: u64, latency: f64, zero_filled: u32, redispatched: u32 },
    /// A round-0 send attempt of `tile` to `worker`.
    TileDispatch { at: f64, image: u64, tile: u32, worker: u32 },
    /// A recovery send attempt in re-dispatch round `round`.
    TileRedispatch { at: f64, image: u64, tile: u32, worker: u32, round: u32 },
    /// A fresh, decodable result was accepted from `worker`.
    TileArrival { at: f64, image: u64, tile: u32, worker: u32 },
    /// A result for an already-satisfied tile was discarded.
    TileDuplicate { at: f64, image: u64, tile: u32, worker: u32 },
    /// A result arrived after its image completed.
    TileLate { at: f64, image: u64, tile: u32, worker: u32 },
    /// A result arrived but failed to decode; the tile stays open.
    TileCorrupt { at: f64, image: u64, tile: u32, worker: u32 },
    /// The tile missed every recovery attempt and was zero-filled.
    TileZeroFill { at: f64, image: u64, tile: u32 },
    /// The expected-makespan deadline (or `T_L` timer) was armed to fire
    /// `span` seconds after `at`.
    DeadlineArmed { at: f64, image: u64, span: f64 },
    /// A live (non-stale) deadline fired.
    DeadlineFired { at: f64, image: u64 },
    /// The driver positively observed `worker`'s death.
    WorkerDead { at: f64, image: u64, worker: u32 },
    /// `worker` held a missing tile at a deadline without delivering
    /// anything since the previous round (§6.3 silent-fault rule).
    WorkerSuspect { at: f64, image: u64, worker: u32 },
    /// A previously suspect `worker` produced evidence of life.
    WorkerCleared { at: f64, image: u64, worker: u32 },
    /// An Algorithm 2 EWMA observation was folded in for `worker`.
    RateUpdate { at: f64, image: u64, worker: u32, rate: f64 },
    /// Prefix-network forward for one tile took `dur` seconds, ending at
    /// `at`.
    TileCompute { at: f64, image: u64, tile: u32, worker: u32, dur: f64 },
    /// Clip + quantize + RLE for one tile: `dur` seconds ending at `at`,
    /// `bytes` on the wire, `ratio` = wire bits / raw f32 bits.
    TileCompress { at: f64, image: u64, tile: u32, worker: u32, dur: f64, bytes: u64, ratio: f64 },
    /// A modeled or measured transfer of one tile's payload, `dur`
    /// seconds ending at `at`.
    TileTransfer { at: f64, image: u64, tile: u32, worker: u32, dur: f64 },
    /// The admission pipeline accepted `image` into flight after
    /// `queue_wait` seconds in the intake queue; `inflight` is the
    /// in-flight depth *including* this image. Driver-emitted (never by
    /// the lifecycle), so differential decision traces are unaffected.
    ImageAdmitted { at: f64, image: u64, queue_wait: f64, inflight: u32 },
    /// The image left flight (its handle was resolved); `inflight` is
    /// the depth *after* removal. Driver-emitted.
    ImageRetired { at: f64, image: u64, inflight: u32 },
    /// `node` became reachable: a churn revival in netsim, a transport
    /// (re)connect in the multi-process runtime. Driver-emitted (never
    /// by the lifecycle) — fleet topology and per-image decision traces
    /// stay on separate streams.
    NodeUp { at: f64, node: u32 },
    /// `node` became unreachable: a churn departure in netsim, a
    /// supervisor-detected disconnect in the runtime. Driver-emitted.
    NodeDown { at: f64, node: u32 },
    /// The placement control plane produced decision number `seq`.
    /// `cause` is one of [`PLACEMENT_INITIAL`], [`PLACEMENT_JOIN`],
    /// [`PLACEMENT_LEAVE`]; `node` is the triggering node (`u32::MAX`
    /// for the initial decision). Driver-emitted.
    PlacementDecided { at: f64, cause: u32, node: u32, tenants: u32, live_nodes: u32, seq: u64 },
    /// Tenant-tagged twin of [`ObsEvent::ImageAdmitted`], emitted by the
    /// fleet driver on its fleet-scope stream so labeled metrics can
    /// attribute admissions without a per-image tenant lookup.
    TenantAdmit { at: f64, image: u64, tenant: u32, queue_wait: f64 },
    /// Tenant-tagged completion: `zero_filled` of the image's `tiles`
    /// tiles were lost, the rest arrived. Driver-emitted.
    TenantFinish { at: f64, image: u64, tenant: u32, latency: f64, zero_filled: u32, tiles: u32 },
}

/// [`ObsEvent::PlacementDecided`] cause: the run's first decision.
pub const PLACEMENT_INITIAL: u32 = 0;
/// [`ObsEvent::PlacementDecided`] cause: a node (re)joined the roster.
pub const PLACEMENT_JOIN: u32 = 1;
/// [`ObsEvent::PlacementDecided`] cause: a node left the roster.
pub const PLACEMENT_LEAVE: u32 = 2;

impl ObsEvent {
    /// Stable event-type name (the cross-driver schema the differential
    /// test compares).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::ImageStart { .. } => "image_start",
            ObsEvent::ImageFinish { .. } => "image_finish",
            ObsEvent::TileDispatch { .. } => "tile_dispatch",
            ObsEvent::TileRedispatch { .. } => "tile_redispatch",
            ObsEvent::TileArrival { .. } => "tile_arrival",
            ObsEvent::TileDuplicate { .. } => "tile_duplicate",
            ObsEvent::TileLate { .. } => "tile_late",
            ObsEvent::TileCorrupt { .. } => "tile_corrupt",
            ObsEvent::TileZeroFill { .. } => "tile_zero_fill",
            ObsEvent::DeadlineArmed { .. } => "deadline_armed",
            ObsEvent::DeadlineFired { .. } => "deadline_fired",
            ObsEvent::WorkerDead { .. } => "worker_dead",
            ObsEvent::WorkerSuspect { .. } => "worker_suspect",
            ObsEvent::WorkerCleared { .. } => "worker_cleared",
            ObsEvent::RateUpdate { .. } => "rate_update",
            ObsEvent::TileCompute { .. } => "tile_compute",
            ObsEvent::TileCompress { .. } => "tile_compress",
            ObsEvent::TileTransfer { .. } => "tile_transfer",
            ObsEvent::ImageAdmitted { .. } => "image_admitted",
            ObsEvent::ImageRetired { .. } => "image_retired",
            ObsEvent::NodeUp { .. } => "node_up",
            ObsEvent::NodeDown { .. } => "node_down",
            ObsEvent::PlacementDecided { .. } => "placement_decided",
            ObsEvent::TenantAdmit { .. } => "tenant_admit",
            ObsEvent::TenantFinish { .. } => "tenant_finish",
        }
    }

    /// The event's payload as a JSON object (used for Chrome-trace
    /// `args`), rendered through the shared [`json`] helpers.
    pub fn args_json(&self) -> String {
        use json::Obj;
        match *self {
            ObsEvent::ImageStart { image, tiles, placed, .. } => Obj::new()
                .u64("image", image)
                .u64("tiles", tiles.into())
                .u64("placed", placed.into())
                .finish(),
            ObsEvent::ImageFinish { image, latency, zero_filled, redispatched, .. } => Obj::new()
                .u64("image", image)
                .f64("latency", latency)
                .u64("zero_filled", zero_filled.into())
                .u64("redispatched", redispatched.into())
                .finish(),
            ObsEvent::TileDispatch { image, tile, worker, .. }
            | ObsEvent::TileArrival { image, tile, worker, .. }
            | ObsEvent::TileDuplicate { image, tile, worker, .. }
            | ObsEvent::TileLate { image, tile, worker, .. }
            | ObsEvent::TileCorrupt { image, tile, worker, .. } => Obj::new()
                .u64("image", image)
                .u64("tile", tile.into())
                .u64("worker", worker.into())
                .finish(),
            ObsEvent::TileRedispatch { image, tile, worker, round, .. } => Obj::new()
                .u64("image", image)
                .u64("tile", tile.into())
                .u64("worker", worker.into())
                .u64("round", round.into())
                .finish(),
            ObsEvent::TileZeroFill { image, tile, .. } => {
                Obj::new().u64("image", image).u64("tile", tile.into()).finish()
            }
            ObsEvent::DeadlineArmed { image, span, .. } => {
                Obj::new().u64("image", image).f64("span", span).finish()
            }
            ObsEvent::DeadlineFired { image, .. } => Obj::new().u64("image", image).finish(),
            ObsEvent::WorkerDead { image, worker, .. }
            | ObsEvent::WorkerSuspect { image, worker, .. }
            | ObsEvent::WorkerCleared { image, worker, .. } => {
                Obj::new().u64("image", image).u64("worker", worker.into()).finish()
            }
            ObsEvent::RateUpdate { image, worker, rate, .. } => Obj::new()
                .u64("image", image)
                .u64("worker", worker.into())
                .f64("rate", rate)
                .finish(),
            ObsEvent::TileCompute { image, tile, worker, dur, .. }
            | ObsEvent::TileTransfer { image, tile, worker, dur, .. } => Obj::new()
                .u64("image", image)
                .u64("tile", tile.into())
                .u64("worker", worker.into())
                .f64("dur", dur)
                .finish(),
            ObsEvent::TileCompress { image, tile, worker, dur, bytes, ratio, .. } => Obj::new()
                .u64("image", image)
                .u64("tile", tile.into())
                .u64("worker", worker.into())
                .f64("dur", dur)
                .u64("bytes", bytes)
                .f64("ratio", ratio)
                .finish(),
            ObsEvent::ImageAdmitted { image, queue_wait, inflight, .. } => Obj::new()
                .u64("image", image)
                .f64("queue_wait", queue_wait)
                .u64("inflight", inflight.into())
                .finish(),
            ObsEvent::ImageRetired { image, inflight, .. } => {
                Obj::new().u64("image", image).u64("inflight", inflight.into()).finish()
            }
            ObsEvent::NodeUp { node, .. } | ObsEvent::NodeDown { node, .. } => {
                Obj::new().u64("node", node.into()).finish()
            }
            ObsEvent::PlacementDecided { cause, node, tenants, live_nodes, seq, .. } => Obj::new()
                .u64("cause", cause.into())
                .u64("node", node.into())
                .u64("tenants", tenants.into())
                .u64("live_nodes", live_nodes.into())
                .u64("seq", seq)
                .finish(),
            ObsEvent::TenantAdmit { image, tenant, queue_wait, .. } => Obj::new()
                .u64("image", image)
                .u64("tenant", tenant.into())
                .f64("queue_wait", queue_wait)
                .finish(),
            ObsEvent::TenantFinish { image, tenant, latency, zero_filled, tiles, .. } => Obj::new()
                .u64("image", image)
                .u64("tenant", tenant.into())
                .f64("latency", latency)
                .u64("zero_filled", zero_filled.into())
                .u64("tiles", tiles.into())
                .finish(),
        }
    }

    /// The image the event belongs to. Node- and placement-scoped
    /// variants carry no image and return `u64::MAX` — a sentinel no
    /// driver ever assigns, so image-window filters never match them.
    pub fn image(&self) -> u64 {
        match *self {
            ObsEvent::NodeUp { .. }
            | ObsEvent::NodeDown { .. }
            | ObsEvent::PlacementDecided { .. } => u64::MAX,
            ObsEvent::TenantAdmit { image, .. } | ObsEvent::TenantFinish { image, .. } => image,
            ObsEvent::ImageStart { image, .. }
            | ObsEvent::ImageFinish { image, .. }
            | ObsEvent::TileDispatch { image, .. }
            | ObsEvent::TileRedispatch { image, .. }
            | ObsEvent::TileArrival { image, .. }
            | ObsEvent::TileDuplicate { image, .. }
            | ObsEvent::TileLate { image, .. }
            | ObsEvent::TileCorrupt { image, .. }
            | ObsEvent::TileZeroFill { image, .. }
            | ObsEvent::DeadlineArmed { image, .. }
            | ObsEvent::DeadlineFired { image, .. }
            | ObsEvent::WorkerDead { image, .. }
            | ObsEvent::WorkerSuspect { image, .. }
            | ObsEvent::WorkerCleared { image, .. }
            | ObsEvent::RateUpdate { image, .. }
            | ObsEvent::TileCompute { image, .. }
            | ObsEvent::TileCompress { image, .. }
            | ObsEvent::TileTransfer { image, .. }
            | ObsEvent::ImageAdmitted { image, .. }
            | ObsEvent::ImageRetired { image, .. } => image,
        }
    }

    /// The tile the event concerns, for tile-scoped variants.
    pub fn tile(&self) -> Option<u32> {
        match *self {
            ObsEvent::TileDispatch { tile, .. }
            | ObsEvent::TileRedispatch { tile, .. }
            | ObsEvent::TileArrival { tile, .. }
            | ObsEvent::TileDuplicate { tile, .. }
            | ObsEvent::TileLate { tile, .. }
            | ObsEvent::TileCorrupt { tile, .. }
            | ObsEvent::TileZeroFill { tile, .. }
            | ObsEvent::TileCompute { tile, .. }
            | ObsEvent::TileCompress { tile, .. }
            | ObsEvent::TileTransfer { tile, .. } => Some(tile),
            _ => None,
        }
    }

    /// The worker the event concerns, for worker-scoped variants.
    pub fn worker(&self) -> Option<u32> {
        match *self {
            ObsEvent::TileDispatch { worker, .. }
            | ObsEvent::TileRedispatch { worker, .. }
            | ObsEvent::TileArrival { worker, .. }
            | ObsEvent::TileDuplicate { worker, .. }
            | ObsEvent::TileLate { worker, .. }
            | ObsEvent::TileCorrupt { worker, .. }
            | ObsEvent::WorkerDead { worker, .. }
            | ObsEvent::WorkerSuspect { worker, .. }
            | ObsEvent::WorkerCleared { worker, .. }
            | ObsEvent::RateUpdate { worker, .. }
            | ObsEvent::TileCompute { worker, .. }
            | ObsEvent::TileCompress { worker, .. }
            | ObsEvent::TileTransfer { worker, .. } => Some(worker),
            ObsEvent::NodeUp { node, .. } | ObsEvent::NodeDown { node, .. } => Some(node),
            _ => None,
        }
    }

    /// The tenant the event is tagged with, for fleet-scope variants.
    pub fn tenant(&self) -> Option<u32> {
        match *self {
            ObsEvent::TenantAdmit { tenant, .. } | ObsEvent::TenantFinish { tenant, .. } => {
                Some(tenant)
            }
            _ => None,
        }
    }

    /// The event's timestamp on the driver's time axis.
    pub fn at(&self) -> f64 {
        match *self {
            ObsEvent::ImageStart { at, .. }
            | ObsEvent::ImageFinish { at, .. }
            | ObsEvent::TileDispatch { at, .. }
            | ObsEvent::TileRedispatch { at, .. }
            | ObsEvent::TileArrival { at, .. }
            | ObsEvent::TileDuplicate { at, .. }
            | ObsEvent::TileLate { at, .. }
            | ObsEvent::TileCorrupt { at, .. }
            | ObsEvent::TileZeroFill { at, .. }
            | ObsEvent::DeadlineArmed { at, .. }
            | ObsEvent::DeadlineFired { at, .. }
            | ObsEvent::WorkerDead { at, .. }
            | ObsEvent::WorkerSuspect { at, .. }
            | ObsEvent::WorkerCleared { at, .. }
            | ObsEvent::RateUpdate { at, .. }
            | ObsEvent::TileCompute { at, .. }
            | ObsEvent::TileCompress { at, .. }
            | ObsEvent::TileTransfer { at, .. }
            | ObsEvent::ImageAdmitted { at, .. }
            | ObsEvent::ImageRetired { at, .. }
            | ObsEvent::NodeUp { at, .. }
            | ObsEvent::NodeDown { at, .. }
            | ObsEvent::PlacementDecided { at, .. }
            | ObsEvent::TenantAdmit { at, .. }
            | ObsEvent::TenantFinish { at, .. } => at,
        }
    }
}

/// Where structured events go. Implementations must be cheap and
/// thread-safe: workers emit from their own threads concurrently with
/// the Central node.
pub trait EventSink: Send + Sync {
    /// Consume one event.
    fn emit(&self, ev: &ObsEvent);

    /// Gate for [`SinkHandle::emit_with`]: when `false`, events for this
    /// sink are never even constructed. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }
}

/// A shareable, optionally-absent sink. The default (and
/// [`SinkHandle::null()`]) holds **no** sink at all — no allocation, and
/// `emit_with` compiles down to a branch on `None`.
#[derive(Clone, Default)]
pub struct SinkHandle(Option<Arc<dyn EventSink>>);

impl SinkHandle {
    /// Wrap a shared sink.
    pub fn new(sink: Arc<dyn EventSink>) -> Self {
        SinkHandle(Some(sink))
    }

    /// Wrap an owned sink (convenience over [`SinkHandle::new`]).
    pub fn of(sink: impl EventSink + 'static) -> Self {
        SinkHandle(Some(Arc::new(sink)))
    }

    /// The disabled handle: events are never constructed.
    pub fn null() -> Self {
        SinkHandle(None)
    }

    /// True when a sink is installed and reports itself enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        matches!(&self.0, Some(s) if s.enabled())
    }

    /// Emit the event produced by `f`, constructing it only if an
    /// enabled sink is installed. This is the only emission path the
    /// lifecycle machine and the drivers use, which is what makes the
    /// disabled case free.
    #[inline]
    pub fn emit_with(&self, f: impl FnOnce() -> ObsEvent) {
        if let Some(sink) = &self.0 {
            if sink.enabled() {
                sink.emit(&f());
            }
        }
    }

    /// A handle feeding both this handle's sink (if any) and `extra`.
    /// A null handle tees to just `extra`; otherwise the two are
    /// wrapped in a [`TeeSink`], whose `enabled()` is the OR of its
    /// children — so teeing disabled sinks keeps the zero-cost path.
    pub fn tee(&self, extra: Arc<dyn EventSink>) -> SinkHandle {
        match &self.0 {
            None => SinkHandle(Some(extra)),
            Some(s) => SinkHandle(Some(Arc::new(TeeSink::new(vec![s.clone(), extra])))),
        }
    }
}

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(s) => write!(f, "SinkHandle(installed, enabled={})", s.enabled()),
            None => write!(f, "SinkHandle(none)"),
        }
    }
}

/// A sink that discards everything and reports itself disabled, so
/// `emit_with` never constructs an event. Exists to *prove* the
/// disabled-path cost (see `tests/alloc_steady_state.rs`); prefer
/// [`SinkHandle::null()`] in configs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _ev: &ObsEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Fan-out sink: forwards every event to each *enabled* child, so
/// metrics + trace + attribution + flight recorder can all observe one
/// run. Reports itself enabled only while some child is, which
/// preserves the zero-cost-when-disabled guarantee — a tee of disabled
/// sinks never even constructs the event (`tests/alloc_steady_state.rs`
/// covers this path).
pub struct TeeSink {
    children: Vec<Arc<dyn EventSink>>,
}

impl TeeSink {
    /// Fan out to `children` (emit order = vector order).
    pub fn new(children: Vec<Arc<dyn EventSink>>) -> Self {
        TeeSink { children }
    }
}

impl std::fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TeeSink({} children, enabled={})", self.children.len(), self.enabled())
    }
}

impl EventSink for TeeSink {
    fn emit(&self, ev: &ObsEvent) {
        for c in &self.children {
            if c.enabled() {
                c.emit(ev);
            }
        }
    }

    fn enabled(&self) -> bool {
        self.children.iter().any(|c| c.enabled())
    }
}

/// Number of log2 buckets in a [`Histogram`] (covers 1 µs … ~35 min).
const HIST_BUCKETS: usize = 32;

/// Lock-free fixed-bucket histogram: bucket `b` counts values `v` (in
/// µs or bytes) with `2^(b-1) ≤ v < 2^b`; bucket 0 counts `v == 0`.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one value (relaxed atomics: counters, not synchronization).
    pub fn record(&self, v: u64) {
        let b = (u64::BITS - v.leading_zeros()).min(HIST_BUCKETS as u32 - 1) as usize;
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Plain-value snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Serializable copy of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Log2 bucket counts (`buckets[b]` holds `2^(b-1) ≤ v < 2^b`).
    pub buckets: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value, if anything was recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Interpolated quantile estimate (`0.0 ≤ q ≤ 1.0`): find the
    /// bucket holding the `q·count`-th recorded value and interpolate
    /// linearly inside its `[2^(b-1), 2^b)` range (bucket 0 holds only
    /// zeros). The log2 buckets bound the error at one bucket width,
    /// so the estimate is within 2× of the true order statistic.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let prev = cum as f64;
            cum += n;
            if cum as f64 >= target {
                if b == 0 {
                    return Some(0.0);
                }
                let lo = 2f64.powi(b as i32 - 1);
                let hi = 2f64.powi(b as i32);
                let frac = ((target - prev) / n as f64).clamp(0.0, 1.0);
                return Some(lo + frac * (hi - lo));
            }
        }
        None // unreachable while count == Σ buckets; defensive
    }

    /// Interpolated median.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// Interpolated 90th percentile.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// Interpolated 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

/// Lock-free metrics aggregation: per-event-type counters plus
/// fixed-bucket histograms for durations, sizes and image latency.
/// Share one instance across a whole run and [`MetricsSink::snapshot`]
/// it whenever a consistent-enough view is needed.
#[derive(Debug, Default)]
pub struct MetricsSink {
    images_started: AtomicU64,
    images_finished: AtomicU64,
    tiles_dispatched: AtomicU64,
    tiles_redispatched: AtomicU64,
    tiles_arrived: AtomicU64,
    tiles_duplicate: AtomicU64,
    tiles_late: AtomicU64,
    tiles_corrupt: AtomicU64,
    tiles_zero_filled: AtomicU64,
    deadlines_armed: AtomicU64,
    deadlines_fired: AtomicU64,
    workers_died: AtomicU64,
    workers_suspected: AtomicU64,
    workers_cleared: AtomicU64,
    rate_updates: AtomicU64,
    compressed_bytes: AtomicU64,
    images_admitted: AtomicU64,
    inflight_depth: AtomicU64,
    nodes_up: AtomicU64,
    nodes_down: AtomicU64,
    placements_decided: AtomicU64,
    compute_us: Histogram,
    compress_us: Histogram,
    transfer_us: Histogram,
    image_latency_us: Histogram,
    compressed_tile_bytes: Histogram,
    queue_wait_us: Histogram,
}

/// Seconds → whole microseconds (the histogram unit).
fn us(seconds: f64) -> u64 {
    (seconds * 1e6).max(0.0) as u64
}

impl MetricsSink {
    /// A fresh, zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Plain-value, serde-serializable snapshot of every counter and
    /// histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            images_started: c(&self.images_started),
            images_finished: c(&self.images_finished),
            tiles_dispatched: c(&self.tiles_dispatched),
            tiles_redispatched: c(&self.tiles_redispatched),
            tiles_arrived: c(&self.tiles_arrived),
            tiles_duplicate: c(&self.tiles_duplicate),
            tiles_late: c(&self.tiles_late),
            tiles_corrupt: c(&self.tiles_corrupt),
            tiles_zero_filled: c(&self.tiles_zero_filled),
            deadlines_armed: c(&self.deadlines_armed),
            deadlines_fired: c(&self.deadlines_fired),
            workers_died: c(&self.workers_died),
            workers_suspected: c(&self.workers_suspected),
            workers_cleared: c(&self.workers_cleared),
            rate_updates: c(&self.rate_updates),
            compressed_bytes: c(&self.compressed_bytes),
            images_admitted: c(&self.images_admitted),
            inflight_depth: c(&self.inflight_depth),
            nodes_up: c(&self.nodes_up),
            nodes_down: c(&self.nodes_down),
            placements_decided: c(&self.placements_decided),
            compute_us: self.compute_us.snapshot(),
            compress_us: self.compress_us.snapshot(),
            transfer_us: self.transfer_us.snapshot(),
            image_latency_us: self.image_latency_us.snapshot(),
            compressed_tile_bytes: self.compressed_tile_bytes.snapshot(),
            queue_wait_us: self.queue_wait_us.snapshot(),
        }
    }
}

impl EventSink for MetricsSink {
    fn emit(&self, ev: &ObsEvent) {
        match *ev {
            ObsEvent::ImageStart { .. } => {
                self.images_started.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::ImageFinish { latency, .. } => {
                self.images_finished.fetch_add(1, Ordering::Relaxed);
                self.image_latency_us.record(us(latency));
            }
            ObsEvent::TileDispatch { .. } => {
                self.tiles_dispatched.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileRedispatch { .. } => {
                self.tiles_redispatched.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileArrival { .. } => {
                self.tiles_arrived.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileDuplicate { .. } => {
                self.tiles_duplicate.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileLate { .. } => {
                self.tiles_late.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileCorrupt { .. } => {
                self.tiles_corrupt.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileZeroFill { .. } => {
                self.tiles_zero_filled.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::DeadlineArmed { .. } => {
                self.deadlines_armed.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::DeadlineFired { .. } => {
                self.deadlines_fired.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::WorkerDead { .. } => {
                self.workers_died.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::WorkerSuspect { .. } => {
                self.workers_suspected.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::WorkerCleared { .. } => {
                self.workers_cleared.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::RateUpdate { .. } => {
                self.rate_updates.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::TileCompute { dur, .. } => {
                self.compute_us.record(us(dur));
            }
            ObsEvent::TileCompress { dur, bytes, .. } => {
                self.compress_us.record(us(dur));
                self.compressed_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.compressed_tile_bytes.record(bytes);
            }
            ObsEvent::TileTransfer { dur, .. } => {
                self.transfer_us.record(us(dur));
            }
            ObsEvent::ImageAdmitted { queue_wait, inflight, .. } => {
                self.images_admitted.fetch_add(1, Ordering::Relaxed);
                self.queue_wait_us.record(us(queue_wait));
                self.inflight_depth.store(inflight.into(), Ordering::Relaxed);
            }
            ObsEvent::ImageRetired { inflight, .. } => {
                self.inflight_depth.store(inflight.into(), Ordering::Relaxed);
            }
            ObsEvent::NodeUp { .. } => {
                self.nodes_up.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::NodeDown { .. } => {
                self.nodes_down.fetch_add(1, Ordering::Relaxed);
            }
            ObsEvent::PlacementDecided { .. } => {
                self.placements_decided.fetch_add(1, Ordering::Relaxed);
            }
            // The tenant-tagged twins fold into the same image counters
            // as their lifecycle counterparts. A sink shard fed only the
            // fleet-scope stream (the labeled-registry layout) therefore
            // sees sensible images/latency/zero-fill series; do not feed
            // one sink a tee of both streams or images double-count.
            ObsEvent::TenantAdmit { queue_wait, .. } => {
                self.images_admitted.fetch_add(1, Ordering::Relaxed);
                self.queue_wait_us.record(us(queue_wait));
            }
            ObsEvent::TenantFinish { latency, zero_filled, tiles, .. } => {
                self.images_finished.fetch_add(1, Ordering::Relaxed);
                self.image_latency_us.record(us(latency));
                self.tiles_zero_filled.fetch_add(zero_filled.into(), Ordering::Relaxed);
                self.tiles_arrived
                    .fetch_add(u64::from(tiles.saturating_sub(zero_filled)), Ordering::Relaxed);
            }
        }
    }
}

/// Serializable copy of a [`MetricsSink`]. Counters reconcile against
/// the per-image outcome: `tiles_zero_filled == Σ zero_filled`,
/// `tiles_redispatched == Σ redispatched` (absent transport bounces),
/// `tiles_arrived == Σ (tiles − zero_filled)`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Images whose lifecycle began.
    pub images_started: u64,
    /// Images that completed.
    pub images_finished: u64,
    /// Round-0 send attempts.
    pub tiles_dispatched: u64,
    /// Recovery send attempts.
    pub tiles_redispatched: u64,
    /// Accepted (fresh, decodable) results.
    pub tiles_arrived: u64,
    /// Discarded duplicate results.
    pub tiles_duplicate: u64,
    /// Results that arrived after image completion.
    pub tiles_late: u64,
    /// Results that failed to decode.
    pub tiles_corrupt: u64,
    /// Tiles zero-filled.
    pub tiles_zero_filled: u64,
    /// Deadline timers armed.
    pub deadlines_armed: u64,
    /// Live deadline firings.
    pub deadlines_fired: u64,
    /// Positively-observed worker deaths.
    pub workers_died: u64,
    /// Silent-fault suspicions raised.
    pub workers_suspected: u64,
    /// Suspicions cleared by evidence of life.
    pub workers_cleared: u64,
    /// Algorithm 2 EWMA observations folded in.
    pub rate_updates: u64,
    /// Total compressed payload bytes shipped.
    pub compressed_bytes: u64,
    /// Images admitted into the pipeline.
    pub images_admitted: u64,
    /// In-flight depth gauge: last observed concurrent-image count.
    pub inflight_depth: u64,
    /// Node up-transitions observed (churn revivals, transport connects).
    #[serde(default)]
    pub nodes_up: u64,
    /// Node down-transitions observed (churn departures, disconnects).
    #[serde(default)]
    pub nodes_down: u64,
    /// Placement decisions produced by the control plane.
    #[serde(default)]
    pub placements_decided: u64,
    /// Per-tile prefix compute time, µs.
    pub compute_us: HistogramSnapshot,
    /// Per-tile clip/quantize/RLE time, µs.
    pub compress_us: HistogramSnapshot,
    /// Per-tile transfer time, µs.
    pub transfer_us: HistogramSnapshot,
    /// End-to-end image latency, µs.
    pub image_latency_us: HistogramSnapshot,
    /// Per-tile compressed payload size, bytes.
    pub compressed_tile_bytes: HistogramSnapshot,
    /// Intake-queue wait before admission, µs.
    pub queue_wait_us: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Render as JSON by hand — the same field names and shape serde
    /// emits — so metrics export works without a serializer dependency
    /// (the sinks' contract throughout this module). Built on the
    /// shared [`json`] helpers.
    pub fn to_json(&self) -> String {
        fn hist(h: &HistogramSnapshot) -> String {
            json::Obj::new()
                .raw("buckets", json::array(h.buckets.iter().map(|b| b.to_string())))
                .u64("count", h.count)
                .u64("sum", h.sum)
                .finish()
        }
        json::Obj::new()
            .u64("images_started", self.images_started)
            .u64("images_finished", self.images_finished)
            .u64("tiles_dispatched", self.tiles_dispatched)
            .u64("tiles_redispatched", self.tiles_redispatched)
            .u64("tiles_arrived", self.tiles_arrived)
            .u64("tiles_duplicate", self.tiles_duplicate)
            .u64("tiles_late", self.tiles_late)
            .u64("tiles_corrupt", self.tiles_corrupt)
            .u64("tiles_zero_filled", self.tiles_zero_filled)
            .u64("deadlines_armed", self.deadlines_armed)
            .u64("deadlines_fired", self.deadlines_fired)
            .u64("workers_died", self.workers_died)
            .u64("workers_suspected", self.workers_suspected)
            .u64("workers_cleared", self.workers_cleared)
            .u64("rate_updates", self.rate_updates)
            .u64("compressed_bytes", self.compressed_bytes)
            .u64("images_admitted", self.images_admitted)
            .u64("inflight_depth", self.inflight_depth)
            .u64("nodes_up", self.nodes_up)
            .u64("nodes_down", self.nodes_down)
            .u64("placements_decided", self.placements_decided)
            .raw("compute_us", hist(&self.compute_us))
            .raw("compress_us", hist(&self.compress_us))
            .raw("transfer_us", hist(&self.transfer_us))
            .raw("image_latency_us", hist(&self.image_latency_us))
            .raw("compressed_tile_bytes", hist(&self.compressed_tile_bytes))
            .raw("queue_wait_us", hist(&self.queue_wait_us))
            .finish()
    }
}

/// Records events verbatim for inspection; Chrome-trace export turns the
/// compute/compress/transfer spans into one track per worker, loadable
/// in `chrome://tracing` or <https://ui.perfetto.dev>.
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    events: Mutex<Vec<ObsEvent>>,
}

impl ChromeTraceSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of everything recorded so far.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }

    /// Render the recorded events as Chrome trace JSON (the
    /// `traceEvents` object format): complete (`ph: "X"`) events for the
    /// compute/compress/transfer spans on one track per worker, instant
    /// (`ph: "i"`) events for lifecycle decisions — image and deadline
    /// events on the Central track (tid 0), per-worker events on their
    /// worker's track. The JSON is written by hand (keys and numbers
    /// only, nothing needs escaping) so the sink carries no serializer
    /// dependency.
    pub fn to_json(&self) -> String {
        use json::Obj;
        let events = self.events.lock().expect("trace sink poisoned");
        let mut out: Vec<String> = Vec::with_capacity(events.len() + 8);
        let mut seen_workers: Vec<u32> = Vec::new();
        let thread_meta = |tid: u64, name: &str| {
            Obj::new()
                .str("name", "thread_name")
                .str("ph", "M")
                .u64("pid", 0)
                .u64("tid", tid)
                .raw("args", Obj::new().str("name", name).finish())
                .finish()
        };
        out.push(thread_meta(0, "central"));
        // Trace timestamps are µs at fixed ns precision (raw f64 Display
        // would leak artifacts like 6000.000000000001 into the file); the
        // finite-guard keeps the file loadable even if a driver ever
        // emits a degenerate span.
        let us = |s: f64| format!("{:.3}", if s.is_finite() { s * 1e6 } else { 0.0 });
        let span = |name: &str, ts: String, dur: String, tid: u64, args: String| {
            Obj::new()
                .str("name", name)
                .str("cat", "tile")
                .str("ph", "X")
                .raw("ts", ts)
                .raw("dur", dur)
                .u64("pid", 0)
                .u64("tid", tid)
                .raw("args", args)
                .finish()
        };
        for ev in events.iter() {
            let worker = match *ev {
                ObsEvent::TileDispatch { worker, .. }
                | ObsEvent::TileRedispatch { worker, .. }
                | ObsEvent::TileArrival { worker, .. }
                | ObsEvent::TileDuplicate { worker, .. }
                | ObsEvent::TileLate { worker, .. }
                | ObsEvent::TileCorrupt { worker, .. }
                | ObsEvent::WorkerDead { worker, .. }
                | ObsEvent::WorkerSuspect { worker, .. }
                | ObsEvent::WorkerCleared { worker, .. }
                | ObsEvent::RateUpdate { worker, .. }
                | ObsEvent::TileCompute { worker, .. }
                | ObsEvent::TileCompress { worker, .. }
                | ObsEvent::TileTransfer { worker, .. } => Some(worker),
                _ => None,
            };
            let tid = match worker {
                Some(w) => {
                    if !seen_workers.contains(&w) {
                        seen_workers.push(w);
                        out.push(thread_meta(u64::from(w) + 1, &format!("worker {w}")));
                    }
                    u64::from(w) + 1
                }
                None => 0,
            };
            match *ev {
                ObsEvent::TileCompute { at, image, tile, dur, .. } => out.push(span(
                    "compute",
                    us(at - dur),
                    us(dur),
                    tid,
                    Obj::new().u64("image", image).u64("tile", tile.into()).finish(),
                )),
                ObsEvent::TileCompress { at, image, tile, dur, bytes, ratio, .. } => {
                    out.push(span(
                        "compress",
                        us(at - dur),
                        us(dur),
                        tid,
                        Obj::new()
                            .u64("image", image)
                            .u64("tile", tile.into())
                            .u64("bytes", bytes)
                            .f64("ratio", ratio)
                            .finish(),
                    ))
                }
                ObsEvent::TileTransfer { at, image, tile, dur, .. } => out.push(span(
                    "transfer",
                    us(at - dur),
                    us(dur),
                    tid,
                    Obj::new().u64("image", image).u64("tile", tile.into()).finish(),
                )),
                other => out.push(
                    Obj::new()
                        .str("name", other.kind())
                        .str("cat", "lifecycle")
                        .str("ph", "i")
                        .raw("ts", us(other.at()))
                        .u64("pid", 0)
                        .u64("tid", tid)
                        .str("s", "t")
                        .raw("args", other.args_json())
                        .finish(),
                ),
            }
        }
        Obj::new().raw("traceEvents", json::array(out)).str("displayTimeUnit", "ms").finish()
    }

    /// Write the Chrome trace JSON to `path`.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl EventSink for ChromeTraceSink {
    fn emit(&self, ev: &ObsEvent) {
        self.events.lock().expect("trace sink poisoned").push(*ev);
    }
}

/// Test helper: records every event verbatim.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<ObsEvent>>,
}

impl RecordingSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of everything recorded so far.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.events.lock().expect("recording sink poisoned").clone()
    }

    /// The recorded event-type sequence.
    pub fn kinds(&self) -> Vec<&'static str> {
        self.events().iter().map(|e| e.kind()).collect()
    }
}

impl EventSink for RecordingSink {
    fn emit(&self, ev: &ObsEvent) {
        self.events.lock().expect("recording sink poisoned").push(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_never_constructs_events() {
        let sink = SinkHandle::null();
        assert!(!sink.enabled());
        sink.emit_with(|| panic!("closure must not run for a null handle"));
        let null = SinkHandle::of(NullSink);
        assert!(!null.enabled());
        null.emit_with(|| panic!("closure must not run for a disabled sink"));
    }

    #[test]
    fn metrics_sink_counts_and_buckets() {
        let m = Arc::new(MetricsSink::new());
        let h = SinkHandle::new(m.clone());
        assert!(h.enabled());
        h.emit_with(|| ObsEvent::ImageStart { at: 0.0, image: 0, tiles: 4, placed: 4 });
        for t in 0..3u32 {
            h.emit_with(|| ObsEvent::TileDispatch { at: 0.0, image: 0, tile: t, worker: 0 });
            h.emit_with(|| ObsEvent::TileArrival { at: 0.01, image: 0, tile: t, worker: 0 });
        }
        h.emit_with(|| ObsEvent::TileZeroFill { at: 0.05, image: 0, tile: 3 });
        h.emit_with(|| ObsEvent::TileCompress {
            at: 0.02,
            image: 0,
            tile: 0,
            worker: 0,
            dur: 0.001,
            bytes: 300,
            ratio: 0.12,
        });
        h.emit_with(|| ObsEvent::ImageFinish {
            at: 0.05,
            image: 0,
            latency: 0.05,
            zero_filled: 1,
            redispatched: 0,
        });
        let s = m.snapshot();
        assert_eq!(s.images_started, 1);
        assert_eq!(s.images_finished, 1);
        assert_eq!(s.tiles_dispatched, 3);
        assert_eq!(s.tiles_arrived, 3);
        assert_eq!(s.tiles_zero_filled, 1);
        assert_eq!(s.compressed_bytes, 300);
        assert_eq!(s.compress_us.count, 1);
        assert_eq!(s.compress_us.sum, 1000);
        assert_eq!(s.image_latency_us.count, 1);
        // 50_000 µs lands in bucket 16 (2^15 ≤ v < 2^16)
        assert_eq!(s.image_latency_us.buckets[16], 1);

        let json = s.to_json();
        assert_balanced_json(&json);
        for field in ["\"tiles_dispatched\":3", "\"compressed_bytes\":300", "\"compute_us\":{"] {
            assert!(json.contains(field), "{field} missing from {json}");
        }
    }

    /// Structural JSON check, now shared with production code (the
    /// example smoke checks run it in CI): see [`json::is_well_formed`].
    fn assert_balanced_json(s: &str) {
        assert!(json::is_well_formed(s), "malformed JSON: {s}");
    }

    #[test]
    fn admission_events_drive_gauge_and_queue_wait_histogram() {
        let m = Arc::new(MetricsSink::new());
        let h = SinkHandle::new(m.clone());
        h.emit_with(|| ObsEvent::ImageAdmitted { at: 0.0, image: 0, queue_wait: 0.0, inflight: 1 });
        h.emit_with(|| ObsEvent::ImageAdmitted {
            at: 0.1,
            image: 1,
            queue_wait: 0.050,
            inflight: 2,
        });
        let s = m.snapshot();
        assert_eq!(s.images_admitted, 2);
        assert_eq!(s.inflight_depth, 2, "gauge tracks the latest admission");
        assert_eq!(s.queue_wait_us.count, 2);
        // 50_000 µs lands in bucket 16 (2^15 ≤ v < 2^16)
        assert_eq!(s.queue_wait_us.buckets[16], 1);

        h.emit_with(|| ObsEvent::ImageRetired { at: 0.2, image: 0, inflight: 1 });
        let s = m.snapshot();
        assert_eq!(s.inflight_depth, 1, "retirement lowers the gauge");
        assert_eq!(s.queue_wait_us.count, 2, "retirement records no wait");

        let json = s.to_json();
        assert_balanced_json(&json);
        for field in ["\"images_admitted\":2", "\"inflight_depth\":1", "\"queue_wait_us\":{"] {
            assert!(json.contains(field), "{field} missing from {json}");
        }
    }

    #[test]
    fn json_helpers_escape_and_validate() {
        assert_eq!(json::string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json::string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json::num(f64::NAN), "0");
        assert_eq!(json::num(f64::INFINITY), "0");
        assert_eq!(json::num(0.25), "0.25");
        let obj = json::Obj::new()
            .str("name", "quote \" backslash \\ tab \t newline \n")
            .f64("x", 1.5)
            .f64("bad", f64::NAN)
            .raw("arr", json::array((0..3).map(|i| i.to_string())))
            .finish();
        assert_balanced_json(&obj);
        assert!(obj.contains(r#""x":1.5"#));
        assert!(obj.contains(r#""bad":0"#));
        assert!(obj.contains(r#""arr":[0,1,2]"#));
        assert!(obj.contains(r#"quote \" backslash \\ tab \t newline \n"#));
        // strings with braces/quotes must not confuse the checker
        assert!(json::is_well_formed(&json::string("deep { [ \" nesting")));
        assert!(!json::is_well_formed("{\"unterminated"));
        assert!(!json::is_well_formed("[1,2}}"));
        assert!(!json::is_well_formed("{\"k\":1"));
    }

    #[test]
    fn args_json_stays_well_formed_for_every_variant() {
        let evs = [
            ObsEvent::ImageStart { at: 0.0, image: 1, tiles: 4, placed: 3 },
            ObsEvent::ImageFinish {
                at: 1.0,
                image: 1,
                latency: f64::NAN, // non-finite must not poison the JSON
                zero_filled: 1,
                redispatched: 2,
            },
            ObsEvent::TileRedispatch { at: 0.5, image: 1, tile: 2, worker: 3, round: 1 },
            ObsEvent::RateUpdate { at: 0.5, image: 1, worker: 0, rate: f64::INFINITY },
            ObsEvent::TileCompress {
                at: 0.5,
                image: 1,
                tile: 0,
                worker: 0,
                dur: 0.001,
                bytes: 12,
                ratio: 0.5,
            },
            ObsEvent::ImageAdmitted { at: 0.1, image: 1, queue_wait: f64::NAN, inflight: 3 },
            ObsEvent::ImageRetired { at: 0.9, image: 1, inflight: 2 },
        ];
        for ev in evs {
            let j = ev.args_json();
            assert_balanced_json(&j);
            // Value-position check: a leaked non-finite renders as `:inf` /
            // `:-inf` / `:NaN` (the `inflight` key itself contains "inf").
            assert!(!j.contains("NaN") && !j.contains(":inf") && !j.contains(":-inf"), "{j}");
        }
    }

    #[test]
    fn quantiles_interpolate_within_log2_buckets() {
        let close = |a: Option<f64>, b: f64| {
            let a = a.expect("quantile of non-empty histogram");
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        };
        // 100 values of 1000 all land in bucket 10 = [512, 1024)
        let h = Histogram::default();
        for _ in 0..100 {
            h.record(1000);
        }
        let s = h.snapshot();
        close(s.p50(), 768.0); // 512 + 0.50·512
        close(s.p90(), 972.8); // 512 + 0.90·512
        close(s.p99(), 1018.88); // 512 + 0.99·512
        close(s.quantile(0.0), 512.0);

        // half zeros, half 100s (bucket 7 = [64, 128))
        let h = Histogram::default();
        for _ in 0..50 {
            h.record(0);
            h.record(100);
        }
        let s = h.snapshot();
        close(s.p50(), 0.0);
        close(s.p90(), 115.2); // 64 + 0.8·64: the 40th of 50 in-bucket
        assert_eq!(HistogramSnapshot::default().p50(), None);
    }

    #[test]
    fn tee_fans_out_and_stays_disabled_when_children_are() {
        let m = Arc::new(MetricsSink::new());
        let r = Arc::new(RecordingSink::new());
        let h = SinkHandle::new(m.clone()).tee(r.clone());
        assert!(h.enabled());
        h.emit_with(|| ObsEvent::ImageStart { at: 0.0, image: 7, tiles: 1, placed: 1 });
        assert_eq!(m.snapshot().images_started, 1);
        assert_eq!(r.kinds(), vec!["image_start"]);

        // teeing onto a null handle installs just the extra sink
        let h2 = SinkHandle::null().tee(r.clone());
        assert!(h2.enabled());
        h2.emit_with(|| ObsEvent::DeadlineFired { at: 0.1, image: 7 });
        assert_eq!(r.events().len(), 2);

        // a tee of disabled children reports disabled: emit_with never
        // constructs the event
        let t = SinkHandle::of(TeeSink::new(vec![Arc::new(NullSink), Arc::new(NullSink)]));
        assert!(!t.enabled());
        t.emit_with(|| panic!("disabled tee must not construct events"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_worker_tracks() {
        let t = Arc::new(ChromeTraceSink::new());
        let h = SinkHandle::new(t.clone());
        h.emit_with(|| ObsEvent::ImageStart { at: 0.0, image: 0, tiles: 2, placed: 2 });
        h.emit_with(|| ObsEvent::TileCompute {
            at: 0.010,
            image: 0,
            tile: 0,
            worker: 1,
            dur: 0.004,
        });
        h.emit_with(|| ObsEvent::TileCompress {
            at: 0.011,
            image: 0,
            tile: 0,
            worker: 1,
            dur: 0.001,
            bytes: 120,
            ratio: 0.25,
        });
        let json = t.to_json();
        assert_balanced_json(&json);
        assert!(json.starts_with(r#"{"traceEvents":["#));
        // spans are complete events on worker 1's track (tid 2), with
        // ts = (at - dur) in µs
        assert!(
            json.contains(
                r#""name":"compute","cat":"tile","ph":"X","ts":6000.000,"dur":4000.000,"pid":0,"tid":2"#
            ),
            "{json}"
        );
        assert!(json.contains(r#""name":"compress"#));
        assert!(json.contains(r#""bytes":120"#));
        // lifecycle decisions are instants; image events sit on the
        // central track
        assert!(
            json.contains(
                r#""name":"image_start","cat":"lifecycle","ph":"i","ts":0.000,"pid":0,"tid":0"#
            ),
            "{json}"
        );
        // both tracks are named
        assert!(json.contains(
            r#"{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"central"}}"#
        ));
        assert!(json.contains(r#""args":{"name":"worker 1"}"#));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::default();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1030);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.mean(), Some(206.0));
    }
}
