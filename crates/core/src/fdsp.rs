//! Fully Decomposable Spatial Partition (FDSP), §3.2 of the paper.
//!
//! An input feature map is cut into an `rows × cols` grid of tiles. Each
//! tile is then processed **independently** through the separable layer
//! blocks: convolutions treat the tile border like an image border (zero
//! padding), so no halo exchange ever happens. The price is a small amount
//! of error in the border region, which progressive retraining absorbs.
//!
//! Implementation insight: extracting the tiles and stacking them along the
//! batch dimension makes a plain batched convolution with `pad = k/2`
//! *exactly* the FDSP computation — every tile border receives zero padding
//! automatically. [`TileGrid::stack`] / [`TileGrid::unstack_assemble`]
//! implement that round trip.

use adcnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A spatial partition grid (`rows × cols` tiles).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileGrid {
    /// Number of tile rows.
    pub rows: usize,
    /// Number of tile columns.
    pub cols: usize,
}

/// One tile's position and spatial bounds within the full map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileRect {
    /// Row index in the grid.
    pub grid_r: usize,
    /// Column index in the grid.
    pub grid_c: usize,
    /// First pixel row covered (inclusive).
    pub r0: usize,
    /// First pixel column covered (inclusive).
    pub c0: usize,
    /// Tile height in pixels.
    pub h: usize,
    /// Tile width in pixels.
    pub w: usize,
}

impl TileGrid {
    /// Construct a grid; panics on zero dimensions.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        TileGrid { rows, cols }
    }

    /// Total number of tiles `D = rows · cols` (the paper's tile count in
    /// Equation 1).
    #[inline]
    pub fn tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// Flatten a `(grid_r, grid_c)` position into the paper's `t_id`
    /// (row-major).
    #[inline]
    pub fn tile_id(&self, grid_r: usize, grid_c: usize) -> usize {
        debug_assert!(grid_r < self.rows && grid_c < self.cols);
        grid_r * self.cols + grid_c
    }

    /// Inverse of [`TileGrid::tile_id`].
    #[inline]
    pub fn tile_pos(&self, tile_id: usize) -> (usize, usize) {
        debug_assert!(tile_id < self.tiles());
        (tile_id / self.cols, tile_id % self.cols)
    }

    /// The tile rectangles covering an `h × w` map, row-major. When the map
    /// does not divide evenly the remainder pixels are spread over the
    /// leading tiles (sizes differ by at most one).
    pub fn rects(&self, h: usize, w: usize) -> Vec<TileRect> {
        assert!(h >= self.rows && w >= self.cols, "map {h}x{w} smaller than grid");
        let mut rects = Vec::with_capacity(self.tiles());
        let hb = split_points(h, self.rows);
        let wb = split_points(w, self.cols);
        for gr in 0..self.rows {
            for gc in 0..self.cols {
                rects.push(TileRect {
                    grid_r: gr,
                    grid_c: gc,
                    r0: hb[gr],
                    c0: wb[gc],
                    h: hb[gr + 1] - hb[gr],
                    w: wb[gc + 1] - wb[gc],
                });
            }
        }
        rects
    }

    /// True if an `h × w` map splits into equal-size tiles (required for
    /// batch stacking).
    pub fn divides(&self, h: usize, w: usize) -> bool {
        h.is_multiple_of(self.rows) && w.is_multiple_of(self.cols)
    }

    /// Extract the tiles of a `[N, C, H, W]` tensor as separate tensors,
    /// row-major tile order.
    pub fn extract(&self, x: &Tensor) -> Vec<Tensor> {
        let (_, _, h, w) = x.shape().nchw();
        self.rects(h, w)
            .iter()
            .map(|r| x.crop_spatial(r.r0 as isize, r.c0 as isize, r.h, r.w))
            .collect()
    }

    /// Stack the tiles of a `[N, C, H, W]` tensor into a single
    /// `[N·D, C, H/rows, W/cols]` tensor (tile-major: all tiles of image 0,
    /// then image 1, …). Panics unless the grid divides the map evenly.
    pub fn stack(&self, x: &Tensor) -> Tensor {
        let (n, c, h, w) = x.shape().nchw();
        assert!(self.divides(h, w), "{h}x{w} not divisible by {}x{} grid", self.rows, self.cols);
        let th = h / self.rows;
        let tw = w / self.cols;
        let d = self.tiles();
        let mut out = Tensor::zeros([n * d, c, th, tw]);
        for ni in 0..n {
            for (t, rect) in self.rects(h, w).iter().enumerate() {
                for ci in 0..c {
                    for r in 0..th {
                        for cc in 0..tw {
                            let v = x.at(&[ni, ci, rect.r0 + r, rect.c0 + cc]);
                            *out.at_mut(&[ni * d + t, ci, r, cc]) = v;
                        }
                    }
                }
            }
        }
        out
    }

    /// Inverse of [`TileGrid::stack`] after the tiles have been shrunk by a
    /// spatial factor `(fh, fw)` (pooling/striding in the separable prefix):
    /// takes `[N·D, C, th, tw]` and reassembles `[N, C, th·rows, tw·cols]`.
    pub fn unstack_assemble(&self, tiles: &Tensor) -> Tensor {
        let (nd, c, th, tw) = tiles.shape().nchw();
        let d = self.tiles();
        assert_eq!(nd % d, 0, "batch {nd} not a multiple of tile count {d}");
        let n = nd / d;
        let mut out = Tensor::zeros([n, c, th * self.rows, tw * self.cols]);
        for ni in 0..n {
            for t in 0..d {
                let (gr, gc) = self.tile_pos(t);
                for ci in 0..c {
                    for r in 0..th {
                        for cc in 0..tw {
                            let v = tiles.at(&[ni * d + t, ci, r, cc]);
                            *out.at_mut(&[ni, ci, gr * th + r, gc * tw + cc]) = v;
                        }
                    }
                }
            }
        }
        out
    }

    /// Adjoint of [`TileGrid::unstack_assemble`]: split a full gradient map
    /// `[N, C, H, W]` back into stacked tile gradients `[N·D, C, th, tw]`.
    /// Used by the FDSP retraining backward pass.
    pub fn stack_gradient(&self, dy: &Tensor) -> Tensor {
        // Splitting a map into tiles is a permutation, so the adjoint is the
        // same data movement as `stack`.
        self.stack(dy)
    }

    /// All grids the paper evaluates in Figure 10.
    pub fn paper_options() -> Vec<TileGrid> {
        vec![
            TileGrid::new(2, 2),
            TileGrid::new(3, 3),
            TileGrid::new(4, 4),
            TileGrid::new(4, 8),
            TileGrid::new(8, 8),
        ]
    }
}

impl std::fmt::Display for TileGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// `parts + 1` split points dividing `len` as evenly as possible.
fn split_points(len: usize, parts: usize) -> Vec<usize> {
    let mut pts = Vec::with_capacity(parts + 1);
    for i in 0..=parts {
        pts.push(i * len / parts);
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcnn_tensor::conv::{conv2d, Conv2dParams};
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn rects_cover_map_exactly() {
        let g = TileGrid::new(3, 4);
        let rects = g.rects(10, 13);
        assert_eq!(rects.len(), 12);
        let area: usize = rects.iter().map(|r| r.h * r.w).sum();
        assert_eq!(area, 130);
        // no overlap: mark every covered pixel once
        let mut seen = [false; 130];
        for r in &rects {
            for i in r.r0..r.r0 + r.h {
                for j in r.c0..r.c0 + r.w {
                    assert!(!seen[i * 13 + j], "overlap at ({i},{j})");
                    seen[i * 13 + j] = true;
                }
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn uneven_split_sizes_differ_by_at_most_one() {
        let g = TileGrid::new(3, 3);
        for r in g.rects(10, 11) {
            assert!(r.h == 3 || r.h == 4);
            assert!(r.w == 3 || r.w == 4);
        }
    }

    #[test]
    fn tile_id_roundtrip() {
        let g = TileGrid::new(4, 8);
        for t in 0..g.tiles() {
            let (r, c) = g.tile_pos(t);
            assert_eq!(g.tile_id(r, c), t);
        }
    }

    #[test]
    fn stack_unstack_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn([2, 3, 8, 8], 1.0, &mut rng);
        let g = TileGrid::new(2, 4);
        let stacked = g.stack(&x);
        assert_eq!(stacked.dims(), &[16, 3, 4, 2]);
        let back = g.unstack_assemble(&stacked);
        assert!(back.approx_eq(&x, 0.0));
    }

    #[test]
    fn extract_matches_stack() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn([1, 2, 6, 6], 1.0, &mut rng);
        let g = TileGrid::new(2, 2);
        let tiles = g.extract(&x);
        let stacked = g.stack(&x);
        for (t, tile) in tiles.iter().enumerate() {
            for ci in 0..2 {
                for r in 0..3 {
                    for c in 0..3 {
                        assert_eq!(tile.at(&[0, ci, r, c]), stacked.at(&[t, ci, r, c]));
                    }
                }
            }
        }
    }

    /// The central FDSP property (paper §3.2): processing tiles
    /// independently with zero padding equals the full convolution
    /// everywhere except within the kernel's halo of the internal tile
    /// borders.
    #[test]
    fn fdsp_conv_exact_outside_halo() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn([1, 2, 12, 12], 1.0, &mut rng);
        let w = Tensor::randn([4, 2, 3, 3], 0.5, &mut rng);
        let p = Conv2dParams::same(3);
        let full = conv2d(&x, &w, &[], p);

        let g = TileGrid::new(2, 2);
        let stacked = g.stack(&x);
        let tiled_out = conv2d(&stacked, &w, &[], p);
        let fdsp = g.unstack_assemble(&tiled_out);

        // The internal cut runs between rows 5|6 and cols 5|6; with a 3x3
        // kernel (halo = 1) only pixels touching the cut — rows/cols 5 and 6
        // — can differ.
        let halo = 1usize;
        let (_, c, h, wdt) = full.shape().nchw();
        let mut interior_checked = 0;
        for ci in 0..c {
            for r in 0..h {
                for cc in 0..wdt {
                    let d_r = if r < 6 { 6 - 1 - r } else { r - 6 };
                    let d_c = if cc < 6 { 6 - 1 - cc } else { cc - 6 };
                    if d_r >= halo && d_c >= halo {
                        let a = full.at(&[0, ci, r, cc]);
                        let b = fdsp.at(&[0, ci, r, cc]);
                        assert!(
                            (a - b).abs() < 1e-4,
                            "interior mismatch at ({ci},{r},{cc}): {a} vs {b}"
                        );
                        interior_checked += 1;
                    }
                }
            }
        }
        assert!(interior_checked > 0);
        // And the border region must actually differ somewhere, otherwise
        // the test proves nothing.
        assert!(!fdsp.approx_eq(&full, 1e-4));
    }

    #[test]
    fn paper_grid_options() {
        let opts = TileGrid::paper_options();
        assert_eq!(opts.len(), 5);
        assert_eq!(opts[4].tiles(), 64);
        assert_eq!(opts[3].to_string(), "4x8");
    }

    #[test]
    #[should_panic]
    fn stack_rejects_indivisible() {
        let x = Tensor::zeros([1, 1, 7, 8]);
        TileGrid::new(2, 2).stack(&x);
    }

    proptest! {
        #[test]
        fn prop_stack_roundtrip(rows in 1usize..4, cols in 1usize..4, th in 1usize..5, tw in 1usize..5, n in 1usize..3) {
            let h = rows * th;
            let w = cols * tw;
            let x = Tensor::from_fn([n, 2, h, w], |i| (i % 97) as f32 * 0.1);
            let g = TileGrid::new(rows, cols);
            let back = g.unstack_assemble(&g.stack(&x));
            prop_assert!(back.approx_eq(&x, 0.0));
        }

        #[test]
        fn prop_rects_partition(rows in 1usize..6, cols in 1usize..6, h in 6usize..40, w in 6usize..40) {
            prop_assume!(h >= rows && w >= cols);
            let g = TileGrid::new(rows, cols);
            let area: usize = g.rects(h, w).iter().map(|r| r.h * r.w).sum();
            prop_assert_eq!(area, h * w);
        }
    }
}
