//! Executable channel partitioning (§3.1's second strawman).
//!
//! The input feature map is split along **channels** across `k` devices;
//! each device convolves its channel slice with the matching slice of every
//! filter, producing *partial* output maps that must be summed (an
//! all-reduce) before the next layer can run. The paper rejects this scheme
//! because that exchange moves the whole ofmap between devices each layer;
//! this module implements it anyway so the claim is checkable: the result
//! is bit-exact, and the measured traffic matches the analytic
//! [`crate::partition::layer_comm_bits`] formula.

use adcnn_tensor::conv::{conv2d, Conv2dParams};
use adcnn_tensor::Tensor;

/// Output of a channel-partitioned convolution.
pub struct ChannelConvOutput {
    /// The assembled output, identical to the monolithic convolution.
    pub output: Tensor,
    /// Bits moved in the all-reduce (each device ships its partial ofmap
    /// share once, ring-style: `(k−1)/k · |ofmap|` per device, summed).
    pub exchanged_bits: u64,
}

/// Slice channels `[c0, c1)` out of a `[N, C, H, W]` tensor.
fn slice_channels(x: &Tensor, c0: usize, c1: usize) -> Tensor {
    let (n, c, h, w) = x.shape().nchw();
    assert!(c0 < c1 && c1 <= c);
    let mut out = Tensor::zeros([n, c1 - c0, h, w]);
    for ni in 0..n {
        for (dst_c, src_c) in (c0..c1).enumerate() {
            for r in 0..h {
                for cc in 0..w {
                    *out.at_mut(&[ni, dst_c, r, cc]) = x.at(&[ni, src_c, r, cc]);
                }
            }
        }
    }
    out
}

/// Contiguous channel ranges assigning `c` channels to `k` devices as
/// evenly as possible.
pub fn channel_ranges(c: usize, k: usize) -> Vec<(usize, usize)> {
    assert!(k >= 1 && c >= k, "need at least one channel per device");
    (0..k).map(|i| (i * c / k, (i + 1) * c / k)).collect()
}

/// Distributed convolution with channel partitioning over `k` devices.
///
/// Device `i` holds input channels `[c0_i, c1_i)` and the matching slice of
/// every filter; its partial products are all-reduced into the final ofmap.
/// The bias is added once, after the reduction.
pub fn conv2d_channel(
    x: &Tensor,
    w: &Tensor,
    bias: &[f32],
    p: Conv2dParams,
    k: usize,
) -> ChannelConvOutput {
    let (_, ic, _, _) = x.shape().nchw();
    let (oc, wic, kh, kw) = w.shape().nchw();
    assert_eq!(ic, wic, "channel mismatch");
    let ranges = channel_ranges(ic, k);

    let mut output: Option<Tensor> = None;
    for &(c0, c1) in &ranges {
        let x_slice = slice_channels(x, c0, c1);
        // matching filter slice: [OC, c1-c0, KH, KW]
        let mut w_slice = Tensor::zeros([oc, c1 - c0, kh, kw]);
        for o in 0..oc {
            for (dst_c, src_c) in (c0..c1).enumerate() {
                for r in 0..kh {
                    for cc in 0..kw {
                        *w_slice.at_mut(&[o, dst_c, r, cc]) = w.at(&[o, src_c, r, cc]);
                    }
                }
            }
        }
        let partial = conv2d(&x_slice, &w_slice, &[], p);
        output = Some(match output {
            None => partial,
            Some(acc) => acc.add(&partial),
        });
    }
    let mut output = output.expect("k >= 1");
    if !bias.is_empty() {
        let (n, _, oh, ow) = output.shape().nchw();
        for ni in 0..n {
            for (o, &b) in bias.iter().enumerate() {
                for r in 0..oh {
                    for cc in 0..ow {
                        *output.at_mut(&[ni, o, r, cc]) += b;
                    }
                }
            }
        }
    }
    // Ring all-reduce traffic: each of the k devices ships (k-1)/k of the
    // ofmap. For k == 1 nothing moves.
    let exchanged_bits = if k <= 1 {
        0
    } else {
        let ofmap_bits = output.numel() as u64 * 32;
        ofmap_bits * (k as u64 - 1)
    };
    ChannelConvOutput { output, exchanged_bits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn channel_partition_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn([2, 6, 9, 9], 1.0, &mut rng);
        let w = Tensor::randn([4, 6, 3, 3], 0.4, &mut rng);
        let b: Vec<f32> = (0..4).map(|i| i as f32 * 0.2).collect();
        let p = Conv2dParams::same(3);
        let full = conv2d(&x, &w, &b, p);
        for k in [1usize, 2, 3, 6] {
            let out = conv2d_channel(&x, &w, &b, p, k);
            assert!(out.output.approx_eq(&full, 1e-4), "k={k} diverged");
        }
    }

    #[test]
    fn single_device_exchanges_nothing() {
        let x = Tensor::zeros([1, 4, 4, 4]);
        let w = Tensor::zeros([2, 4, 3, 3]);
        let out = conv2d_channel(&x, &w, &[], Conv2dParams::same(3), 1);
        assert_eq!(out.exchanged_bits, 0);
    }

    #[test]
    fn traffic_matches_section_3_1_formula() {
        // §3.1's 2-device example: per device-pair traffic = |ofmap|/2 · 32
        // bits; our ring accounting for k=2 is |ofmap| · 32 total, i.e. the
        // analytic per-pair number times 2 pairs' directions.
        let x = Tensor::zeros([1, 4, 8, 8]);
        let w = Tensor::zeros([16, 4, 3, 3]);
        let out = conv2d_channel(&x, &w, &[], Conv2dParams::same(3), 2);
        let ofmap_bits = 16u64 * 8 * 8 * 32;
        assert_eq!(out.exchanged_bits, ofmap_bits);
    }

    #[test]
    fn channel_traffic_dwarfs_halo_traffic() {
        // The §3.1 conclusion, measured on executables rather than derived:
        // channel partitioning moves far more data than halo exchange.
        use crate::fdsp::TileGrid;
        use crate::halo::conv2d_halo;
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn([1, 8, 16, 16], 1.0, &mut rng);
        let w = Tensor::randn([16, 8, 3, 3], 0.2, &mut rng);
        let p = Conv2dParams::same(3);
        let ch = conv2d_channel(&x, &w, &[], p, 4);
        let halo = conv2d_halo(&x, &w, &[], p, TileGrid::new(2, 2));
        assert!(
            ch.exchanged_bits > 10 * halo.exchanged_bits,
            "channel {} vs halo {}",
            ch.exchanged_bits,
            halo.exchanged_bits
        );
    }

    #[test]
    fn ranges_cover_all_channels() {
        for (c, k) in [(6usize, 3usize), (7, 3), (64, 8)] {
            let r = channel_ranges(c, k);
            assert_eq!(r[0].0, 0);
            assert_eq!(r.last().unwrap().1, c);
            for w in r.windows(2) {
                assert_eq!(w[0].1, w[1].0, "gap in ranges");
            }
        }
    }
}
