//! Executable halo-exchange spatial partitioning (Figure 4(c)).
//!
//! The naive spatial partition of §3.1 keeps the convolution *exact* by
//! exchanging the `k/2`-wide border rings ("data halos") between adjacent
//! tiles before every convolution. This module implements that scheme for
//! real tensors — both to verify bit-exactness against the monolithic
//! convolution (the property FDSP deliberately gives up) and to measure the
//! cross-tile traffic it costs, which the analytic model in
//! [`crate::partition`] estimates.

use crate::fdsp::TileGrid;
use adcnn_tensor::conv::{conv2d, Conv2dParams};
use adcnn_tensor::Tensor;

/// Result of a halo-exchange distributed convolution.
pub struct HaloConvOutput {
    /// The assembled output map, identical to the monolithic convolution.
    pub output: Tensor,
    /// Cross-tile traffic this layer required, in bits (32-bit activations;
    /// counts each halo element once per receiving tile).
    pub exchanged_bits: u64,
}

/// Distributed same-padded convolution over `grid` tiles with explicit halo
/// exchange.
///
/// Every tile gathers a `halo = k/2` ring from its neighbours (zero where
/// the ring crosses the real image border — that is ordinary padding), runs
/// an unpadded convolution on the extended tile, and contributes exactly
/// its own region of the output. Only stride-1 convolutions are supported —
/// the configuration the paper's §3.1 analysis covers.
pub fn conv2d_halo(
    x: &Tensor,
    w: &Tensor,
    bias: &[f32],
    p: Conv2dParams,
    grid: TileGrid,
) -> HaloConvOutput {
    assert_eq!(p.stride, 1, "halo-exchange partitioning is defined for stride 1");
    assert_eq!(p.pad, p.kernel / 2, "halo-exchange partitioning expects same padding");
    let (n, _, h, wdt) = x.shape().nchw();
    let (oc, _, _, _) = w.shape().nchw();
    let halo = p.kernel / 2;

    let mut output = Tensor::zeros([n, oc, h, wdt]);
    let mut exchanged_bits = 0u64;
    let (_, ic, _, _) = x.shape().nchw();

    for rect in grid.rects(h, wdt) {
        // Extended tile: own region plus the halo ring. Crop handles the
        // zero fill at real image borders.
        let ext = x.crop_spatial(
            rect.r0 as isize - halo as isize,
            rect.c0 as isize - halo as isize,
            rect.h + 2 * halo,
            rect.w + 2 * halo,
        );
        // Halo elements that came from *neighbouring tiles* (i.e. are
        // inside the image but outside this tile) were transmitted.
        let inside =
            |r: isize, c: isize| r >= 0 && c >= 0 && (r as usize) < h && (c as usize) < wdt;
        let own = |r: isize, c: isize| {
            r >= rect.r0 as isize
                && c >= rect.c0 as isize
                && (r as usize) < rect.r0 + rect.h
                && (c as usize) < rect.c0 + rect.w
        };
        let mut halo_px = 0u64;
        for r in -(halo as isize)..(rect.h + halo) as isize {
            for c in -(halo as isize)..(rect.w + halo) as isize {
                let gr = rect.r0 as isize + r;
                let gc = rect.c0 as isize + c;
                if inside(gr, gc) && !own(gr, gc) {
                    halo_px += 1;
                }
            }
        }
        exchanged_bits += halo_px * ic as u64 * 32;

        // Unpadded conv over the extended tile yields exactly this tile's
        // outputs.
        let tile_out = conv2d(&ext, w, bias, Conv2dParams { kernel: p.kernel, stride: 1, pad: 0 });
        debug_assert_eq!(tile_out.dims()[2], rect.h);
        debug_assert_eq!(tile_out.dims()[3], rect.w);
        output.paste_spatial(&tile_out, rect.r0, rect.c0);
    }

    HaloConvOutput { output, exchanged_bits }
}

/// Run a stack of same-padded convolutions with halo exchange before every
/// layer, accumulating the total cross-tile traffic. This is the §3.1
/// "naive spatial partitioning" baseline end to end.
pub fn conv_stack_halo(
    x: &Tensor,
    weights: &[(Tensor, Vec<f32>, Conv2dParams)],
    grid: TileGrid,
) -> HaloConvOutput {
    let mut cur = x.clone();
    let mut bits = 0u64;
    for (w, b, p) in weights {
        let out = conv2d_halo(&cur, w, b, *p, grid);
        bits += out.exchanged_bits;
        cur = out.output;
    }
    HaloConvOutput { output: cur, exchanged_bits: bits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn halo_conv_is_exact() {
        // Unlike FDSP, halo exchange reproduces the monolithic result
        // everywhere — including at tile borders.
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn([1, 3, 12, 12], 1.0, &mut rng);
        let w = Tensor::randn([5, 3, 3, 3], 0.4, &mut rng);
        let b: Vec<f32> = (0..5).map(|i| i as f32 * 0.1).collect();
        let p = Conv2dParams::same(3);
        let full = conv2d(&x, &w, &b, p);
        for grid in [TileGrid::new(2, 2), TileGrid::new(3, 4), TileGrid::new(4, 3)] {
            let halo = conv2d_halo(&x, &w, &b, p, grid);
            assert!(halo.output.approx_eq(&full, 1e-4), "grid {grid} diverged");
            assert!(halo.exchanged_bits > 0);
        }
    }

    #[test]
    fn single_tile_exchanges_nothing() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn([1, 2, 8, 8], 1.0, &mut rng);
        let w = Tensor::randn([2, 2, 3, 3], 0.4, &mut rng);
        let out = conv2d_halo(&x, &w, &[], Conv2dParams::same(3), TileGrid::new(1, 1));
        assert_eq!(out.exchanged_bits, 0);
    }

    #[test]
    fn one_by_one_kernel_exchanges_nothing() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn([1, 2, 8, 8], 1.0, &mut rng);
        let w = Tensor::randn([4, 2, 1, 1], 0.4, &mut rng);
        let p = Conv2dParams { kernel: 1, stride: 1, pad: 0 };
        let out = conv2d_halo(&x, &w, &[], p, TileGrid::new(2, 2));
        assert_eq!(out.exchanged_bits, 0);
    }

    #[test]
    fn traffic_grows_with_finer_grids_and_bigger_kernels() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn([1, 4, 24, 24], 1.0, &mut rng);
        let w3 = Tensor::randn([4, 4, 3, 3], 0.2, &mut rng);
        let w5 = Tensor::randn([4, 4, 5, 5], 0.2, &mut rng);
        let t_2x2_k3 =
            conv2d_halo(&x, &w3, &[], Conv2dParams::same(3), TileGrid::new(2, 2)).exchanged_bits;
        let t_4x4_k3 =
            conv2d_halo(&x, &w3, &[], Conv2dParams::same(3), TileGrid::new(4, 4)).exchanged_bits;
        let t_2x2_k5 =
            conv2d_halo(&x, &w5, &[], Conv2dParams::same(5), TileGrid::new(2, 2)).exchanged_bits;
        assert!(t_4x4_k3 > t_2x2_k3, "finer grid must exchange more");
        assert!(t_2x2_k5 > t_2x2_k3, "larger kernel must exchange more");
    }

    #[test]
    fn stack_accumulates_traffic_and_stays_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn([1, 3, 16, 16], 1.0, &mut rng);
        let p = Conv2dParams::same(3);
        let layers = vec![
            (Tensor::randn([6, 3, 3, 3], 0.3, &mut rng), vec![0.0; 6], p),
            (Tensor::randn([4, 6, 3, 3], 0.3, &mut rng), vec![0.0; 4], p),
        ];
        let grid = TileGrid::new(2, 2);
        let halo = conv_stack_halo(&x, &layers, grid);
        // monolithic reference
        let mut cur = x.clone();
        for (w, b, pp) in &layers {
            cur = conv2d(&cur, w, b, *pp);
        }
        assert!(halo.output.approx_eq(&cur, 1e-4));
        let single0 = conv2d_halo(&x, &layers[0].0, &layers[0].1, p, grid).exchanged_bits;
        assert!(halo.exchanged_bits > single0, "second layer added no traffic");
    }

    #[test]
    fn measured_traffic_matches_geometry() {
        // 2x2 grid on a 2-channel 8x8 map with k=3: each tile receives a
        // 1-px L-shaped ring from its neighbours: tile is 4x4, the in-image
        // non-own ring around it is 4 + 4 + 1 = 9 px (two edges + corner).
        let x = Tensor::zeros([1, 2, 8, 8]);
        let w = Tensor::zeros([1, 2, 3, 3]);
        let out = conv2d_halo(&x, &w, &[], Conv2dParams::same(3), TileGrid::new(2, 2));
        let expect = 4u64 * 9 * 2 * 32; // 4 tiles x 9 px x 2 channels x 32 bit
        assert_eq!(out.exchanged_bits, expect);
    }

    proptest! {
        #[test]
        fn prop_halo_exact_for_random_shapes(
            h in 6usize..20, w in 6usize..20, rows in 1usize..4, cols in 1usize..4, seed in 0u64..50
        ) {
            prop_assume!(h >= rows && w >= cols);
            let mut rng = StdRng::seed_from_u64(seed);
            let x = Tensor::randn([1, 2, h, w], 1.0, &mut rng);
            let wt = Tensor::randn([3, 2, 3, 3], 0.4, &mut rng);
            let p = Conv2dParams::same(3);
            let full = conv2d(&x, &wt, &[], p);
            let halo = conv2d_halo(&x, &wt, &[], p, TileGrid::new(rows, cols));
            prop_assert!(halo.output.approx_eq(&full, 1e-3));
        }
    }
}
