//! Clock-agnostic, sans-IO tile-lifecycle state machine shared by the real
//! runtime (`adcnn-runtime`) and the discrete-event simulator
//! (`adcnn-netsim`).
//!
//! Both systems implement the same §6 Central-node policy: tiles are
//! dispatched to Conv nodes, an *expected-makespan deadline* (first-result
//! time × largest allocation × slack, plus `T_L` grace) arms when the first
//! result lands, missing tiles are speculatively re-dispatched to the
//! fastest live nodes for a bounded number of rounds, and whatever still
//! has not arrived is zero-filled. Algorithm 2 rates count only results
//! inside the measurement cutoff (the deadline as first armed), so
//! late-recovery deliveries never poison the rescuer's estimate.
//!
//! Before this module existed, that policy lived twice — once against
//! wall-clock `Instant`s in `runtime/central.rs` and once against simulated
//! seconds in `netsim/cluster.rs` — and the two copies had already started
//! to drift. [`TileLifecycle`] owns the decisions; the drivers own the IO:
//!
//! - **time** is an abstract `f64` in seconds from an arbitrary epoch. The
//!   runtime maps `Instant`s onto it; the simulator feeds its event
//!   timestamps directly. The machine never reads a clock.
//! - **input**: [`Event`]s describe what happened and when
//!   ([`Event::ResultArrived`], [`Event::DeadlineFired`],
//!   [`Event::WorkerDied`], [`Event::SendRejected`], …).
//! - **output**: [`Action`]s describe what the driver must do
//!   ([`Action::Dispatch`]/[`Action::Redispatch`] a tile,
//!   [`Action::ArmDeadline`] a timer, [`Action::ZeroFill`],
//!   [`Action::RecordRate`] into the Algorithm 2 statistics). The machine
//!   never touches a channel, a thread, or an event queue.
//!
//! One [`TileLifecycle`] instance covers one image from dispatch to
//! completion. Shared knobs live in [`LifecyclePolicy`] — including the
//! deadline slack factor that both old copies hard-coded as `1.25`.

use crate::obs::{ObsEvent, SinkHandle};
use serde::{Deserialize, Serialize};

/// Comparison epsilon for abstract timestamps (well below both the
/// nanosecond granularity of `Instant` and any simulated event spacing).
const EPS: f64 = 1e-9;

/// When does the Central node stop waiting for intermediate results?
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimerPolicy {
    /// Paper text, literally: `T_L` after the image's tiles finished
    /// sending. Taken at face value this expires long before honest
    /// Conv-node computation can return and zero-fills nearly everything;
    /// kept for controlled comparisons.
    AfterSend,
    /// Default: the expected-makespan deadline extrapolated from the first
    /// result, with re-dispatch recovery rounds before zero-fill.
    Deadline,
    /// Never arm a deadline; wait for every result (the hard timeout still
    /// applies if the driver enforces one — the real runtime does, the
    /// simulator does not).
    WaitAll,
}

/// The shared tile-lifecycle knobs — one home for the constants that were
/// previously duplicated (and already drifting) between `RuntimeConfig`
/// and `AdcnnSimConfig`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LifecyclePolicy {
    /// Timeout grace `T_L` in seconds (the paper uses 30 ms): added on top
    /// of the extrapolated makespan before the deadline fires, and the
    /// unit results-per-`T_L` rates are expressed in.
    pub t_l: f64,
    /// Multiplier on the extrapolated makespan (the historical `1.25` —
    /// +25% slack — that used to be a magic literal in two files).
    pub slack: f64,
    /// Speculative re-dispatch rounds per image after the deadline fires,
    /// before the remaining tiles are zero-filled. `0` restores the
    /// paper's pure zero-fill policy (§6.3).
    pub max_redispatch_rounds: u32,
    /// Hard cap in seconds on the total wait for one image, measured from
    /// dispatch start. Fires regardless of [`TimerPolicy`] whenever the
    /// driver delivers a matching [`Event::DeadlineFired`].
    pub hard_timeout: f64,
    /// Timeout interpretation.
    pub timer: TimerPolicy,
}

impl Default for LifecyclePolicy {
    fn default() -> Self {
        LifecyclePolicy {
            t_l: 0.030,
            slack: 1.25,
            max_redispatch_rounds: 2,
            hard_timeout: 5.0,
            timer: TimerPolicy::Deadline,
        }
    }
}

/// Lifecycle state of one tile (Central-node view).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TileSlot {
    /// Last worker the tile was handed to (initial dispatch or
    /// re-dispatch).
    At(usize),
    /// No live worker accepted the send; retried at the next deadline.
    Unplaced,
    /// Unschedulable (storage caps / no live workers): zero-filled at
    /// completion, never retried.
    Abandoned,
}

/// What happened, expressed in abstract seconds. The driver translates its
/// native notion of time and transport into these.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// An original (round-0) tile physically reached its worker. The
    /// runtime sends this immediately after a successful queue handoff;
    /// the simulator sends it when the modeled transfer completes. Used to
    /// avoid judging a deadline while inputs are still in flight.
    TileDelivered { tile: usize },
    /// Every placed tile has been handed to the transport.
    SendComplete { at: f64 },
    /// A result for `tile` arrived from `worker`. `ok` is false when the
    /// payload failed to decode (the tile stays open for recovery).
    ResultArrived { at: f64, tile: usize, worker: usize, ok: bool },
    /// A timer the driver armed (via [`Action::ArmDeadline`] or the hard
    /// timeout) fired. Stale timers are detected and ignored internally,
    /// so drivers never need to cancel.
    DeadlineFired { at: f64 },
    /// The driver positively observed worker death (disconnected channel,
    /// modeled crash). Removes the worker from re-dispatch candidacy.
    WorkerDied { worker: usize },
    /// The transport refused a previously emitted dispatch/re-dispatch of
    /// `tile` to `worker` (bounded queue full, channel closed). The
    /// machine reroutes or marks the tile unplaced.
    SendRejected { tile: usize, worker: usize },
    /// Nothing can ever arrive again (every worker gone): zero-fill the
    /// remainder and complete.
    Abort,
}

/// What the driver must do. Decisions only — no IO happens here.
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// Hand `tile` to `to` (initial, round-0 placement).
    Dispatch { tile: usize, to: usize },
    /// Re-send `tile` to `to` (deadline-fired recovery).
    Redispatch { tile: usize, to: usize },
    /// The result for `tile` is fresh (not a duplicate, decodable):
    /// paste it into the boundary map and credit `from`.
    Accept { tile: usize, from: usize },
    /// Arm (or re-arm) the deadline timer `span` seconds after the event
    /// that produced this action.
    ArmDeadline { span: f64 },
    /// These tiles missed every recovery attempt: treat them as zeros.
    ZeroFill { tiles: Vec<usize> },
    /// Fold one node's Algorithm 2 observation into the statistics
    /// (results within the measurement window per second, scaled by
    /// `T_L`). Emitted once per allocated node at completion.
    RecordRate { worker: usize, rate: f64 },
    /// The image is done: every tile either arrived or was zero-filled.
    Complete,
}

/// Per-image bookkeeping the drivers read back after completion.
#[derive(Clone, Debug, Default)]
pub struct LifecycleCounters {
    /// Results accepted per worker (re-dispatched tiles credit the worker
    /// that actually delivered them).
    pub received: Vec<u32>,
    /// Results per worker inside the Algorithm 2 measurement window.
    pub timely: Vec<u32>,
    /// Tiles that ended zero-filled (including never-placed ones).
    pub zero_filled: u32,
    /// Tiles that were never schedulable (subset of `zero_filled`).
    pub abandoned: u32,
    /// Re-dispatch sends issued (and not bounced by the transport).
    pub redispatched: u32,
    /// Re-dispatch recovery rounds consumed.
    pub rounds: u32,
    /// Results discarded because another copy arrived first.
    pub duplicate: u32,
    /// Results that arrived after completion.
    pub late: u32,
    /// Results that failed to decode.
    pub corrupt: u32,
}

/// The per-image tile-lifecycle state machine. See the module docs.
#[derive(Clone, Debug)]
pub struct TileLifecycle {
    policy: LifecyclePolicy,
    d: usize,
    k: usize,
    start: f64,
    alloc: Vec<u32>,
    max_alloc: u32,
    /// Speed snapshot for re-dispatch target ordering (zeroed by
    /// [`Event::WorkerDied`]); rates still come out via
    /// [`Action::RecordRate`], this is never written back.
    speeds: Vec<f64>,
    live: Vec<bool>,
    slots: Vec<TileSlot>,
    got: Vec<bool>,
    got_total: usize,
    /// Workers already tried for a tile in the current placement attempt
    /// (reset when the tile is re-dispatched in a later round).
    attempted: Vec<Vec<bool>>,
    /// Workers that held a missing tile at a deadline without having
    /// delivered *anything* since the previous round. A silent fault (a
    /// crashed node whose queue still accepts sends) looks exactly like
    /// this, so re-dispatch avoids suspects while any non-suspect worker
    /// is live — re-sending to a swallower burns a round for nothing. A
    /// merely slow node keeps producing results, so it never trips this
    /// and stays a (deprioritized-by-speed) candidate.
    suspect: Vec<bool>,
    /// Results seen per worker since the last deadline evaluation (the
    /// liveness evidence that clears/avoids `suspect`). Duplicate, late
    /// and corrupt results all count: they prove the worker is alive.
    progress: Vec<bool>,
    /// Original sends currently accepted by the transport / delivered.
    sent: u32,
    delivered: u32,
    send_complete: bool,
    deadline: Option<f64>,
    cutoff: Option<f64>,
    per_unit: Option<f64>,
    last_span: f64,
    last_result_at: Vec<Option<f64>>,
    counters: LifecycleCounters,
    complete: bool,
    /// Image id stamped on every emitted [`ObsEvent`].
    image: u64,
    /// Observability sink; the default (from [`TileLifecycle::begin`]) is
    /// the null handle, under which events are never even constructed.
    sink: SinkHandle,
    /// High-water mark of observed time, used to timestamp events that
    /// arrive without their own clock reading ([`Event::WorkerDied`],
    /// [`Event::SendRejected`], [`Event::Abort`]).
    now: f64,
}

impl TileLifecycle {
    /// Start one image: `d` tiles allocated as `alloc` (Algorithm 3
    /// output; `Σ alloc` may be less than `d` under storage caps — the
    /// shortfall is abandoned and zero-fills at completion). Placement is
    /// round-robin across nodes honoring the counts. Returns the machine
    /// plus the initial [`Action::Dispatch`] batch.
    pub fn begin(
        policy: LifecyclePolicy,
        at: f64,
        d: usize,
        alloc: &[u32],
        speeds: &[f64],
        live: &[bool],
    ) -> (Self, Vec<Action>) {
        Self::begin_observed(policy, at, d, alloc, speeds, live, 0, SinkHandle::null())
    }

    /// [`TileLifecycle::begin`] with observability: every decision this
    /// machine takes for image `image` is mirrored into `sink` as a
    /// structured [`ObsEvent`] (constructed only when the sink is
    /// enabled).
    #[allow(clippy::too_many_arguments)]
    pub fn begin_observed(
        policy: LifecyclePolicy,
        at: f64,
        d: usize,
        alloc: &[u32],
        speeds: &[f64],
        live: &[bool],
        image: u64,
        sink: SinkHandle,
    ) -> (Self, Vec<Action>) {
        let k = alloc.len();
        assert_eq!(speeds.len(), k, "speeds/alloc length mismatch");
        assert_eq!(live.len(), k, "live/alloc length mismatch");
        let placed: usize = alloc.iter().map(|&a| a as usize).sum::<usize>().min(d);
        let mut slots = vec![TileSlot::Abandoned; d];
        {
            let mut remaining = alloc.to_vec();
            let mut t = 0usize;
            while t < placed {
                for (node, rem) in remaining.iter_mut().enumerate() {
                    if *rem > 0 && t < placed {
                        *rem -= 1;
                        slots[t] = TileSlot::At(node);
                        t += 1;
                    }
                }
            }
        }
        let mut lc = TileLifecycle {
            policy,
            d,
            k,
            start: at,
            max_alloc: alloc.iter().copied().max().unwrap_or(1).max(1),
            alloc: alloc.to_vec(),
            speeds: speeds.to_vec(),
            live: live.to_vec(),
            got: vec![false; d],
            got_total: 0,
            attempted: vec![vec![false; k]; d],
            suspect: vec![false; k],
            progress: vec![false; k],
            sent: 0,
            delivered: 0,
            send_complete: false,
            deadline: None,
            cutoff: None,
            per_unit: None,
            last_span: policy.t_l,
            last_result_at: vec![None; k],
            counters: LifecycleCounters {
                received: vec![0; k],
                timely: vec![0; k],
                abandoned: (d - placed) as u32,
                ..Default::default()
            },
            complete: false,
            slots,
            image,
            sink,
            now: at,
        };
        lc.sink.emit_with(|| ObsEvent::ImageStart {
            at,
            image,
            tiles: d as u32,
            placed: placed as u32,
        });
        let mut actions = Vec::with_capacity(placed);
        for t in 0..d {
            if let TileSlot::At(node) = lc.slots[t] {
                lc.sent += 1;
                lc.sink.emit_with(|| ObsEvent::TileDispatch {
                    at,
                    image,
                    tile: t as u32,
                    worker: node as u32,
                });
                actions.push(Action::Dispatch { tile: t, to: node });
            }
        }
        (lc, actions)
    }

    /// Feed one event; execute every returned action before feeding the
    /// next event (rejections of those actions come back as
    /// [`Event::SendRejected`]).
    pub fn handle(&mut self, ev: Event) -> Vec<Action> {
        match ev {
            Event::TileDelivered { .. } => {
                if self.delivered < self.sent {
                    self.delivered += 1;
                }
                Vec::new()
            }
            Event::SendComplete { at } => {
                self.now = self.now.max(at);
                self.on_send_complete(at)
            }
            Event::ResultArrived { at, tile, worker, ok } => {
                self.now = self.now.max(at);
                self.on_result(at, tile, worker, ok)
            }
            Event::DeadlineFired { at } => {
                self.now = self.now.max(at);
                self.on_deadline(at)
            }
            Event::WorkerDied { worker } => {
                if worker < self.k && self.live[worker] {
                    self.live[worker] = false;
                    self.speeds[worker] = 0.0;
                    self.sink.emit_with(|| ObsEvent::WorkerDead {
                        at: self.now,
                        image: self.image,
                        worker: worker as u32,
                    });
                }
                Vec::new()
            }
            Event::SendRejected { tile, worker } => self.on_send_rejected(tile, worker),
            Event::Abort => {
                if self.complete {
                    return Vec::new();
                }
                let missing = self.missing();
                let mut acts = Vec::new();
                self.finish(missing, &mut acts);
                acts
            }
        }
    }

    // --- queries (read-only driver helpers) ----------------------------

    /// True once [`Action::Complete`] has been emitted.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// True while `tile` can still be satisfied by an arriving result
    /// (drivers use this to skip decoding duplicates).
    pub fn tile_open(&self, tile: usize) -> bool {
        tile < self.d && !self.got[tile] && !self.complete
    }

    /// The next instant the driver's timer should fire, if any: the armed
    /// deadline capped by the hard timeout (or the hard timeout alone
    /// under [`TimerPolicy::Deadline`]/[`TimerPolicy::WaitAll`] before any
    /// deadline is armed).
    pub fn next_deadline(&self) -> f64 {
        let hard = self.hard_deadline();
        match self.deadline {
            Some(dl) => dl.min(hard),
            None => hard,
        }
    }

    /// Absolute time of the hard timeout (dispatch start + the policy
    /// cap).
    pub fn hard_deadline(&self) -> f64 {
        self.start + self.policy.hard_timeout
    }

    /// Per-image bookkeeping (valid any time; final once complete).
    pub fn counters(&self) -> &LifecycleCounters {
        &self.counters
    }

    /// The allocation this image was begun with.
    pub fn alloc(&self) -> &[u32] {
        &self.alloc
    }

    // --- event handlers ------------------------------------------------

    fn on_send_complete(&mut self, at: f64) -> Vec<Action> {
        if self.complete {
            return Vec::new();
        }
        self.send_complete = true;
        let mut acts = Vec::new();
        // Nobody live: tiles that never found a queue can never arrive.
        if !self.live.iter().any(|&l| l) {
            for s in self.slots.iter_mut() {
                if *s == TileSlot::Unplaced {
                    *s = TileSlot::Abandoned;
                    self.counters.abandoned += 1;
                }
            }
        }
        if self.terminal() {
            let missing = self.missing();
            self.finish(missing, &mut acts);
            return acts;
        }
        if self.policy.timer == TimerPolicy::AfterSend {
            // Paper text, literally: T_L after the last tile went out.
            let span = self.policy.t_l;
            self.deadline = Some(at + span);
            self.cutoff = Some(at + span);
            self.last_span = span;
            self.sink.emit_with(|| ObsEvent::DeadlineArmed { at, image: self.image, span });
            acts.push(Action::ArmDeadline { span });
        }
        acts
    }

    fn on_result(&mut self, at: f64, tile: usize, worker: usize, ok: bool) -> Vec<Action> {
        if self.complete {
            self.counters.late += 1;
            self.sink.emit_with(|| ObsEvent::TileLate {
                at,
                image: self.image,
                tile: tile as u32,
                worker: worker as u32,
            });
            return Vec::new();
        }
        if tile >= self.d || worker >= self.k {
            return Vec::new();
        }
        self.progress[worker] = true;
        if self.suspect[worker] {
            self.suspect[worker] = false;
            self.sink.emit_with(|| ObsEvent::WorkerCleared {
                at,
                image: self.image,
                worker: worker as u32,
            });
        }
        if self.got[tile] {
            self.counters.duplicate += 1;
            self.sink.emit_with(|| ObsEvent::TileDuplicate {
                at,
                image: self.image,
                tile: tile as u32,
                worker: worker as u32,
            });
            return Vec::new();
        }
        if !ok {
            // Undecodable payload: the tile stays open so a re-dispatch
            // round can recover it.
            self.counters.corrupt += 1;
            self.sink.emit_with(|| ObsEvent::TileCorrupt {
                at,
                image: self.image,
                tile: tile as u32,
                worker: worker as u32,
            });
            return Vec::new();
        }
        self.got[tile] = true;
        self.got_total += 1;
        self.counters.received[worker] += 1;
        self.sink.emit_with(|| ObsEvent::TileArrival {
            at,
            image: self.image,
            tile: tile as u32,
            worker: worker as u32,
        });
        let mut acts = vec![Action::Accept { tile, from: worker }];
        let completing = self.terminal();
        if self.deadline.is_none() && self.policy.timer == TimerPolicy::Deadline {
            // First result: extrapolate the expected makespan — the
            // slowest node's whole batch should take about max_alloc × the
            // first-result time — and add slack plus T_L grace.
            let pu = (at - self.start).max(1e-6);
            let span = pu * self.policy.slack * (self.max_alloc - 1) as f64 + self.policy.t_l;
            self.per_unit = Some(pu);
            self.deadline = Some(at + span);
            self.cutoff = Some(at + span);
            self.last_span = span;
            if !completing {
                self.sink.emit_with(|| ObsEvent::DeadlineArmed { at, image: self.image, span });
                acts.push(Action::ArmDeadline { span });
            }
        }
        // Algorithm 2 measurement window: only results before the cutoff
        // (the deadline as first armed) build the worker's reputation.
        if self.cutoff.is_none_or(|c| at <= c) {
            self.counters.timely[worker] += 1;
            self.last_result_at[worker] = Some(at);
        }
        if completing {
            self.finish(Vec::new(), &mut acts);
        }
        acts
    }

    fn on_deadline(&mut self, at: f64) -> Vec<Action> {
        if self.complete {
            return Vec::new();
        }
        // Stale or early timers (from an earlier arming, or a speculative
        // hard-timeout fallback) are simply ignored; drivers never cancel.
        if at + EPS < self.next_deadline() {
            return Vec::new();
        }
        self.sink.emit_with(|| ObsEvent::DeadlineFired { at, image: self.image });
        let missing = self.missing();
        let mut acts = Vec::new();
        if missing.is_empty() {
            self.finish(missing, &mut acts);
            return acts;
        }
        let recoverable = self.policy.timer == TimerPolicy::Deadline
            && at + EPS < self.hard_deadline()
            && self.counters.rounds < self.policy.max_redispatch_rounds;
        if recoverable {
            // Original tiles still on the transport: the deadline cannot
            // be judged yet, re-arm with the same span.
            if self.delivered < self.sent {
                let span = self.last_span.max(self.policy.t_l);
                self.deadline = Some(at + span);
                self.sink.emit_with(|| ObsEvent::DeadlineArmed { at, image: self.image, span });
                return vec![Action::ArmDeadline { span }];
            }
            // A worker holding a missing tile that has produced *nothing*
            // since the last round is silent — dead behind a live queue,
            // or wedged; either way a recovery copy sent there is lost
            // too. A straggler keeps delivering and stays trusted.
            for &t in &missing {
                if let TileSlot::At(owner) = self.slots[t] {
                    if !self.progress[owner] && !self.suspect[owner] {
                        self.suspect[owner] = true;
                        self.sink.emit_with(|| ObsEvent::WorkerSuspect {
                            at,
                            image: self.image,
                            worker: owner as u32,
                        });
                    }
                }
            }
            self.progress = vec![false; self.k];
            let all = self.candidates();
            let trusted: Vec<usize> = all.iter().copied().filter(|&w| !self.suspect[w]).collect();
            let cands = if trusted.is_empty() { all } else { trusted };
            if !cands.is_empty() {
                self.counters.rounds += 1;
                for (i, &t) in missing.iter().enumerate() {
                    let mut dest = cands[i % cands.len()];
                    if let TileSlot::At(owner) = self.slots[t] {
                        // Prefer anyone but the worker that already failed
                        // to deliver this tile.
                        if dest == owner && cands.len() > 1 {
                            dest = cands[(i + 1) % cands.len()];
                        }
                    }
                    self.slots[t] = TileSlot::At(dest);
                    self.attempted[t] = vec![false; self.k];
                    self.counters.redispatched += 1;
                    self.sink.emit_with(|| ObsEvent::TileRedispatch {
                        at,
                        image: self.image,
                        tile: t as u32,
                        worker: dest as u32,
                        round: self.counters.rounds,
                    });
                    acts.push(Action::Redispatch { tile: t, to: dest });
                }
                // Re-arm: expected time for the candidates to absorb the
                // re-sent tiles, with the same slack + T_L grace.
                let pu = self.per_unit.unwrap_or(self.policy.t_l);
                let share = missing.len().div_ceil(cands.len());
                let span = pu * self.policy.slack * share as f64 + self.policy.t_l;
                self.last_span = span;
                self.deadline = Some(at + span);
                self.sink.emit_with(|| ObsEvent::DeadlineArmed { at, image: self.image, span });
                acts.push(Action::ArmDeadline { span });
                return acts;
            }
        }
        self.finish(missing, &mut acts);
        acts
    }

    fn on_send_rejected(&mut self, tile: usize, worker: usize) -> Vec<Action> {
        if self.complete || tile >= self.d || worker >= self.k || self.got[tile] {
            return Vec::new();
        }
        // Only honor rejections for the current owner (stale rejections of
        // an already-rerouted send are meaningless).
        if self.slots[tile] != TileSlot::At(worker) {
            return Vec::new();
        }
        self.attempted[tile][worker] = true;
        let redispatching = self.counters.rounds > 0;
        if redispatching {
            self.counters.redispatched = self.counters.redispatched.saturating_sub(1);
        } else {
            self.sent = self.sent.saturating_sub(1);
        }
        let next = self.candidates().into_iter().find(|&w| !self.attempted[tile][w]);
        match next {
            Some(w) => {
                self.slots[tile] = TileSlot::At(w);
                if redispatching {
                    self.counters.redispatched += 1;
                    self.sink.emit_with(|| ObsEvent::TileRedispatch {
                        at: self.now,
                        image: self.image,
                        tile: tile as u32,
                        worker: w as u32,
                        round: self.counters.rounds,
                    });
                    vec![Action::Redispatch { tile, to: w }]
                } else {
                    self.sent += 1;
                    self.sink.emit_with(|| ObsEvent::TileDispatch {
                        at: self.now,
                        image: self.image,
                        tile: tile as u32,
                        worker: w as u32,
                    });
                    vec![Action::Dispatch { tile, to: w }]
                }
            }
            None => {
                // Every live worker refused: park the tile until the next
                // deadline round (fresh attempts there).
                self.slots[tile] = TileSlot::Unplaced;
                self.attempted[tile] = vec![false; self.k];
                // Mid-recovery, if nothing is left in flight for any
                // missing tile, waiting cannot help: zero-fill now (the
                // runtime's historical `sent == 0` bail-out).
                if redispatching
                    && self.missing().iter().all(|&t| !matches!(self.slots[t], TileSlot::At(_)))
                {
                    let missing = self.missing();
                    let mut acts = Vec::new();
                    self.finish(missing, &mut acts);
                    return acts;
                }
                Vec::new()
            }
        }
    }

    // --- internals -----------------------------------------------------

    /// Live workers, fastest first (stable on index for determinism).
    fn candidates(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.k).filter(|&w| self.live[w]).collect();
        order.sort_by(|&a, &b| self.speeds[b].total_cmp(&self.speeds[a]).then(a.cmp(&b)));
        order
    }

    /// Tiles that are still wanted: not arrived, not abandoned.
    fn missing(&self) -> Vec<usize> {
        (0..self.d).filter(|&t| !self.got[t] && self.slots[t] != TileSlot::Abandoned).collect()
    }

    /// Every tile accounted for (arrived or abandoned)?
    fn terminal(&self) -> bool {
        self.got_total + self.counters.abandoned as usize == self.d
    }

    /// Close out the image: zero-fill `missing`, emit the Algorithm 2 rate
    /// observations, and mark complete.
    fn finish(&mut self, missing: Vec<usize>, acts: &mut Vec<Action>) {
        debug_assert!(!self.complete);
        self.counters.zero_filled = (self.d - self.got_total) as u32;
        if self.sink.enabled() {
            // One event per zero-filled tile (including never-placed
            // abandoned ones), so the metrics counter reconciles with
            // `counters.zero_filled` exactly.
            for t in 0..self.d {
                if !self.got[t] {
                    self.sink.emit_with(|| ObsEvent::TileZeroFill {
                        at: self.now,
                        image: self.image,
                        tile: t as u32,
                    });
                }
            }
        }
        if !missing.is_empty() {
            acts.push(Action::ZeroFill { tiles: missing });
        }
        for node in 0..self.k {
            if self.alloc[node] == 0 {
                // No observation for a node that was assigned nothing —
                // recording 0 would permanently starve a merely-skipped
                // node.
                continue;
            }
            if !self.live[node] {
                // A positively-dead worker gets no rate observation at
                // all: the driver already called `mark_failed`, and a
                // stale "timely before it died" rate would resurrect the
                // estimate of a node that cannot serve.
                continue;
            }
            let rate = match self.last_result_at[node] {
                Some(t) if self.counters.timely[node] > 0 => {
                    let elapsed = (t - self.start).max(1e-6);
                    self.counters.timely[node] as f64 / elapsed * self.policy.t_l
                }
                _ => 0.0,
            };
            self.sink.emit_with(|| ObsEvent::RateUpdate {
                at: self.now,
                image: self.image,
                worker: node as u32,
                rate,
            });
            acts.push(Action::RecordRate { worker: node, rate });
        }
        self.sink.emit_with(|| ObsEvent::ImageFinish {
            at: self.now,
            image: self.image,
            latency: self.now - self.start,
            zero_filled: self.counters.zero_filled,
            redispatched: self.counters.redispatched,
        });
        acts.push(Action::Complete);
        self.complete = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> LifecyclePolicy {
        LifecyclePolicy { t_l: 0.030, ..Default::default() }
    }

    fn dispatches(acts: &[Action]) -> Vec<(usize, usize)> {
        acts.iter()
            .filter_map(|a| match a {
                Action::Dispatch { tile, to } => Some((*tile, *to)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn begin_places_round_robin_honoring_alloc() {
        let (lc, acts) = TileLifecycle::begin(policy(), 0.0, 4, &[2, 1, 1], &[1.0; 3], &[true; 3]);
        assert_eq!(dispatches(&acts), vec![(0, 0), (1, 1), (2, 2), (3, 0)]);
        assert_eq!(lc.counters().abandoned, 0);
        assert!(!lc.is_complete());
    }

    #[test]
    fn storage_shortfall_is_abandoned_not_waited_for() {
        // Σ alloc = 2 < d = 4: the shortfall zero-fills at completion
        // without any deadline wait.
        let (mut lc, acts) = TileLifecycle::begin(policy(), 0.0, 4, &[1, 1], &[1.0; 2], &[true; 2]);
        assert_eq!(dispatches(&acts).len(), 2);
        assert_eq!(lc.counters().abandoned, 2);
        lc.handle(Event::TileDelivered { tile: 0 });
        lc.handle(Event::TileDelivered { tile: 1 });
        lc.handle(Event::SendComplete { at: 0.001 });
        lc.handle(Event::ResultArrived { at: 0.010, tile: 0, worker: 0, ok: true });
        let acts = lc.handle(Event::ResultArrived { at: 0.011, tile: 1, worker: 1, ok: true });
        assert!(lc.is_complete());
        assert!(acts.contains(&Action::Complete));
        assert_eq!(lc.counters().zero_filled, 2);
        assert_eq!(lc.counters().redispatched, 0);
    }

    #[test]
    fn first_result_arms_expected_makespan_deadline() {
        let (mut lc, _) = TileLifecycle::begin(policy(), 0.0, 4, &[2, 2], &[1.0; 2], &[true; 2]);
        for t in 0..4 {
            lc.handle(Event::TileDelivered { tile: t });
        }
        lc.handle(Event::SendComplete { at: 0.0 });
        let acts = lc.handle(Event::ResultArrived { at: 0.010, tile: 0, worker: 0, ok: true });
        // span = pu * slack * (max_alloc - 1) + t_l
        let p = policy();
        let want = 0.010 * p.slack + p.t_l;
        assert!(acts
            .iter()
            .any(|a| matches!(a, Action::ArmDeadline { span } if (span - want).abs() < 1e-12)));
        assert!((lc.next_deadline() - (0.010 + want)).abs() < 1e-12);
    }

    #[test]
    fn deadline_redispatches_then_zero_fills() {
        let p = LifecyclePolicy { max_redispatch_rounds: 1, ..policy() };
        let (mut lc, _) = TileLifecycle::begin(p, 0.0, 4, &[2, 2], &[1.0, 5.0], &[true; 2]);
        for t in 0..4 {
            lc.handle(Event::TileDelivered { tile: t });
        }
        lc.handle(Event::SendComplete { at: 0.0 });
        // worker 1 (tiles 1 and 3) delivers; worker 0 never does
        lc.handle(Event::ResultArrived { at: 0.010, tile: 1, worker: 1, ok: true });
        lc.handle(Event::ResultArrived { at: 0.012, tile: 3, worker: 1, ok: true });
        let dl = lc.next_deadline();
        let acts = lc.handle(Event::DeadlineFired { at: dl });
        // missing tiles 0 and 2, previously at worker 0 → fastest live is 1
        let re: Vec<_> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Redispatch { tile, to } => Some((*tile, *to)),
                _ => None,
            })
            .collect();
        assert_eq!(re, vec![(0, 1), (2, 1)]);
        assert_eq!(lc.counters().rounds, 1);
        // recovery delivers one; the next deadline zero-fills the other
        lc.handle(Event::ResultArrived { at: dl + 0.001, tile: 0, worker: 1, ok: true });
        let acts = lc.handle(Event::DeadlineFired { at: lc.next_deadline() });
        assert!(acts.contains(&Action::ZeroFill { tiles: vec![2] }));
        assert!(lc.is_complete());
        assert_eq!(lc.counters().zero_filled, 1);
        // the late recovery was received but not timely
        assert_eq!(lc.counters().received, vec![0, 3]);
        assert_eq!(lc.counters().timely, vec![0, 2]);
    }

    #[test]
    fn silent_workers_are_excluded_from_redispatch_but_stragglers_are_not() {
        // Worker 2 swallows its tiles without a word; worker 1 is slow but
        // delivering. Recovery must avoid the swallower entirely while
        // still counting the straggler as a candidate.
        let (mut lc, _) =
            TileLifecycle::begin(policy(), 0.0, 6, &[2, 2, 2], &[3.0, 2.0, 1.0], &[true; 3]);
        for t in 0..6 {
            lc.handle(Event::TileDelivered { tile: t });
        }
        lc.handle(Event::SendComplete { at: 0.0 });
        lc.handle(Event::ResultArrived { at: 0.010, tile: 0, worker: 0, ok: true });
        lc.handle(Event::ResultArrived { at: 0.012, tile: 3, worker: 0, ok: true });
        lc.handle(Event::ResultArrived { at: 0.013, tile: 1, worker: 1, ok: true });
        lc.handle(Event::ResultArrived { at: 0.025, tile: 4, worker: 1, ok: true });
        // missing: tiles 2 and 5 (worker 2, silent). Worker 2 produced
        // nothing → suspect; workers 0 and 1 share the recovery copies —
        // the slow-but-delivering worker 1 stays a candidate.
        let acts = lc.handle(Event::DeadlineFired { at: lc.next_deadline() });
        let re: Vec<(usize, usize)> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Redispatch { tile, to } => Some((*tile, *to)),
                _ => None,
            })
            .collect();
        assert_eq!(re, vec![(2, 0), (5, 1)]);
    }

    #[test]
    fn stale_timers_are_ignored() {
        let (mut lc, _) = TileLifecycle::begin(policy(), 0.0, 2, &[1, 1], &[1.0; 2], &[true; 2]);
        lc.handle(Event::TileDelivered { tile: 0 });
        lc.handle(Event::TileDelivered { tile: 1 });
        lc.handle(Event::SendComplete { at: 0.0 });
        lc.handle(Event::ResultArrived { at: 0.010, tile: 0, worker: 0, ok: true });
        // a timer armed before the deadline moved is stale
        assert!(lc.handle(Event::DeadlineFired { at: 0.005 }).is_empty());
        assert!(!lc.is_complete());
    }

    #[test]
    fn duplicates_and_corrupt_results_are_counted_not_pasted() {
        let (mut lc, _) = TileLifecycle::begin(policy(), 0.0, 2, &[1, 1], &[1.0; 2], &[true; 2]);
        lc.handle(Event::SendComplete { at: 0.0 });
        let a = lc.handle(Event::ResultArrived { at: 0.01, tile: 0, worker: 0, ok: false });
        assert!(a.is_empty());
        assert!(lc.tile_open(0));
        lc.handle(Event::ResultArrived { at: 0.02, tile: 0, worker: 0, ok: true });
        assert!(!lc.tile_open(0));
        let a = lc.handle(Event::ResultArrived { at: 0.03, tile: 0, worker: 1, ok: true });
        assert!(a.is_empty());
        assert_eq!(lc.counters().duplicate, 1);
        assert_eq!(lc.counters().corrupt, 1);
    }

    #[test]
    fn send_rejection_reroutes_to_fastest_untried_live_worker() {
        let (mut lc, acts) =
            TileLifecycle::begin(policy(), 0.0, 2, &[1, 1], &[1.0, 2.0], &[true; 2]);
        assert_eq!(dispatches(&acts), vec![(0, 0), (1, 1)]);
        // worker 0's queue is full: tile 0 moves to worker 1
        let re = lc.handle(Event::SendRejected { tile: 0, worker: 0 });
        assert_eq!(dispatches(&re), vec![(0, 1)]);
        // worker 1 also refuses: nowhere left, parked as unplaced
        let re = lc.handle(Event::SendRejected { tile: 0, worker: 1 });
        assert!(re.is_empty());
        assert!(!lc.is_complete());
    }

    #[test]
    fn dead_workers_are_skipped_on_reroute() {
        let (mut lc, _) = TileLifecycle::begin(policy(), 0.0, 2, &[1, 1], &[1.0, 2.0], &[true; 2]);
        lc.handle(Event::WorkerDied { worker: 1 });
        // tile 1 was at (dead) worker 1; rejection must route to 0, the
        // only live worker
        let re = lc.handle(Event::SendRejected { tile: 1, worker: 1 });
        assert_eq!(dispatches(&re), vec![(1, 0)]);
    }

    #[test]
    fn after_send_policy_arms_t_l_exactly() {
        let p = LifecyclePolicy { timer: TimerPolicy::AfterSend, ..policy() };
        let (mut lc, _) = TileLifecycle::begin(p, 0.0, 2, &[1, 1], &[1.0; 2], &[true; 2]);
        let acts = lc.handle(Event::SendComplete { at: 0.005 });
        assert!(acts.contains(&Action::ArmDeadline { span: 0.030 }));
        // AfterSend never re-dispatches: the deadline zero-fills directly
        let acts = lc.handle(Event::DeadlineFired { at: 0.035 });
        assert!(acts.contains(&Action::ZeroFill { tiles: vec![0, 1] }));
        assert!(lc.is_complete());
    }

    #[test]
    fn wait_all_only_fires_on_hard_timeout() {
        let p = LifecyclePolicy { timer: TimerPolicy::WaitAll, ..policy() };
        let (mut lc, _) = TileLifecycle::begin(p, 0.0, 2, &[1, 1], &[1.0; 2], &[true; 2]);
        lc.handle(Event::SendComplete { at: 0.0 });
        assert!(lc.handle(Event::DeadlineFired { at: 1.0 }).is_empty());
        assert!(!lc.is_complete());
        let acts = lc.handle(Event::DeadlineFired { at: lc.hard_deadline() });
        assert!(acts.contains(&Action::ZeroFill { tiles: vec![0, 1] }));
        assert!(lc.is_complete());
    }

    #[test]
    fn abort_zero_fills_the_remainder() {
        let (mut lc, _) = TileLifecycle::begin(policy(), 0.0, 3, &[2, 1], &[1.0; 2], &[true; 2]);
        lc.handle(Event::SendComplete { at: 0.0 });
        lc.handle(Event::ResultArrived { at: 0.01, tile: 0, worker: 0, ok: true });
        let acts = lc.handle(Event::Abort);
        assert!(acts.contains(&Action::ZeroFill { tiles: vec![1, 2] }));
        assert!(lc.is_complete());
        assert_eq!(lc.counters().zero_filled, 2);
    }

    #[test]
    fn dead_workers_get_no_rate_observation() {
        // Worker 0 delivers one timely result, then is positively
        // observed dead. Its stale "timely before it died" rate must NOT
        // come out as a RecordRate — the driver already mark_failed'd it,
        // and a blend from the pre-failure rate would resurrect it.
        let p = LifecyclePolicy { max_redispatch_rounds: 1, ..policy() };
        let (mut lc, _) = TileLifecycle::begin(p, 0.0, 4, &[2, 2], &[1.0, 1.0], &[true; 2]);
        for t in 0..4 {
            lc.handle(Event::TileDelivered { tile: t });
        }
        lc.handle(Event::SendComplete { at: 0.0 });
        lc.handle(Event::ResultArrived { at: 0.010, tile: 0, worker: 0, ok: true });
        lc.handle(Event::ResultArrived { at: 0.011, tile: 1, worker: 1, ok: true });
        lc.handle(Event::ResultArrived { at: 0.012, tile: 3, worker: 1, ok: true });
        lc.handle(Event::WorkerDied { worker: 0 });
        // tile 2 recovers on worker 1, completing the image
        lc.handle(Event::DeadlineFired { at: lc.next_deadline() });
        let acts = lc.handle(Event::ResultArrived {
            at: lc.next_deadline(),
            tile: 2,
            worker: 1,
            ok: true,
        });
        assert!(lc.is_complete());
        let rates: Vec<usize> = acts
            .iter()
            .filter_map(|a| match a {
                Action::RecordRate { worker, .. } => Some(*worker),
                _ => None,
            })
            .collect();
        assert_eq!(rates, vec![1], "only the live worker may produce a rate observation");
        assert_eq!(lc.counters().timely[0], 1, "the pre-death result was timely, yet suppressed");
    }

    #[test]
    fn observed_run_emits_reconciling_events() {
        use crate::obs::{EventSink, ObsEvent, RecordingSink, SinkHandle};
        use std::sync::Arc;
        let rec = Arc::new(RecordingSink::new());
        let sink = SinkHandle::new(rec.clone() as Arc<dyn EventSink>);
        let p = LifecyclePolicy { max_redispatch_rounds: 1, ..policy() };
        let (mut lc, _) =
            TileLifecycle::begin_observed(p, 0.0, 4, &[2, 2], &[1.0, 5.0], &[true; 2], 7, sink);
        for t in 0..4 {
            lc.handle(Event::TileDelivered { tile: t });
        }
        lc.handle(Event::SendComplete { at: 0.0 });
        lc.handle(Event::ResultArrived { at: 0.010, tile: 1, worker: 1, ok: true });
        lc.handle(Event::ResultArrived { at: 0.012, tile: 3, worker: 1, ok: true });
        lc.handle(Event::DeadlineFired { at: lc.next_deadline() });
        lc.handle(Event::DeadlineFired { at: lc.next_deadline() });
        assert!(lc.is_complete());
        let evs = rec.events();
        let count = |k: &str| evs.iter().filter(|e| e.kind() == k).count() as u32;
        assert_eq!(count("image_start"), 1);
        assert_eq!(count("image_finish"), 1);
        assert_eq!(count("tile_dispatch"), 4);
        assert_eq!(count("tile_redispatch"), lc.counters().redispatched);
        assert_eq!(count("tile_arrival"), 2);
        assert_eq!(count("tile_zero_fill"), lc.counters().zero_filled);
        assert_eq!(count("worker_suspect"), 1, "silent worker 0 must be flagged");
        // every event carries the image id it was begun with
        assert!(evs.iter().all(|e| match e {
            ObsEvent::ImageStart { image, .. } | ObsEvent::ImageFinish { image, .. } => *image == 7,
            _ => true,
        }));
        // the finish event restates the counters exactly
        let fin = evs.iter().find(|e| e.kind() == "image_finish").unwrap();
        if let ObsEvent::ImageFinish { zero_filled, redispatched, .. } = fin {
            assert_eq!(*zero_filled, lc.counters().zero_filled);
            assert_eq!(*redispatched, lc.counters().redispatched);
        }
    }

    #[test]
    fn rates_scale_timely_results_by_t_l() {
        let (mut lc, _) = TileLifecycle::begin(policy(), 0.0, 2, &[1, 1], &[1.0; 2], &[true; 2]);
        lc.handle(Event::SendComplete { at: 0.0 });
        lc.handle(Event::ResultArrived { at: 0.010, tile: 0, worker: 0, ok: true });
        let acts = lc.handle(Event::ResultArrived { at: 0.020, tile: 1, worker: 1, ok: true });
        let rates: Vec<(usize, f64)> = acts
            .iter()
            .filter_map(|a| match a {
                Action::RecordRate { worker, rate } => Some((*worker, *rate)),
                _ => None,
            })
            .collect();
        assert_eq!(rates.len(), 2);
        assert!((rates[0].1 - 1.0 / 0.010 * 0.030).abs() < 1e-9);
        assert!((rates[1].1 - 1.0 / 0.020 * 0.030).abs() < 1e-9);
    }
}
