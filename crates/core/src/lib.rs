//! # adcnn-core
//!
//! The ADCNN paper's primary contribution, as a library:
//!
//! - [`fdsp`] — **Fully Decomposable Spatial Partition** (§3.2): tile
//!   geometry, tile extraction/stacking, and output reassembly. The key
//!   trick is that a tile convolved with ordinary zero padding behaves
//!   exactly as FDSP prescribes, so tiles can be processed as independent
//!   batch items with no cross-tile communication at all.
//! - [`partition`] — the §3.1 analysis of the alternative strategies
//!   (batch, channel, spatial-with-halo) with their communication costs,
//!   plus receptive-field/halo arithmetic shared with the AOFL baseline.
//! - [`halo`] — an *executable* halo-exchange spatial partition (Figure
//!   4(c)): bit-exact distributed convolution with measured cross-tile
//!   traffic, the baseline FDSP eliminates.
//! - [`channel_part`] — executable channel partitioning with measured
//!   all-reduce traffic (§3.1's other strawman).
//! - [`compress`] — the §4 communication-reduction pipeline: clipped
//!   `ReLU[a,b]` (re-exported from `adcnn-tensor`), a 4-bit linear
//!   quantizer, and a nibble-oriented run-length codec, with exact byte
//!   accounting and an analytic wire-size model for the simulator.
//! - [`wire`] — the Central↔Conv node message format (image id, tile id,
//!   payload), §6.1.
//! - [`sched`] — Algorithm 2 (EWMA statistics collection) and Algorithm 3
//!   (greedy min-makespan tile allocation with storage constraints).
//! - [`lifecycle`] — the clock-agnostic, sans-IO tile-lifecycle state
//!   machine (§6.3 timeout/zero-fill policy plus speculative re-dispatch)
//!   driven by both the real runtime and the network simulator.
//! - [`obs`] — structured observability: the zero-cost-when-disabled
//!   [`obs::EventSink`] layer both drivers mirror lifecycle decisions
//!   into, with metrics and Chrome-trace sinks built in.
//! - [`report`] — forensic observability on top of [`obs`]: per-image
//!   critical-path attribution, a lock-free flight recorder with
//!   anomaly dumps, Prometheus exposition and live metrics reporting.
//! - [`fleetobs`] — fleet-scope observability on top of [`obs`]:
//!   tenant/node-labeled metrics shards, the live node-stats bus
//!   placement consumes, and SLO burn-rate tracking.
//! - [`config`] — typed validation ([`config::ConfigError`]) behind the
//!   builder-based config surface of every crate in the workspace.

pub mod channel_part;
pub mod compress;
pub mod config;
pub mod fdsp;
pub mod fleetobs;
pub mod halo;
pub mod lifecycle;
pub mod obs;
pub mod partition;
pub mod report;
pub mod sched;
pub mod wire;

pub use compress::{CompressScratch, Quantizer, RleCodec};
pub use config::ConfigError;
pub use fdsp::TileGrid;
pub use fleetobs::{
    FleetReporter, LabeledMetricsRegistry, LiveStatsSnapshot, LiveStatsView, NodeStatsSnapshot,
    SloReport, SloSpec, SloTracker,
};
pub use lifecycle::{LifecyclePolicy, TileLifecycle, TimerPolicy};
pub use obs::{
    ChromeTraceSink, EventSink, MetricsSink, MetricsSnapshot, NullSink, ObsEvent, SinkHandle,
    TeeSink,
};
pub use report::{
    AttributionAggregate, AttributionSink, FlightRecorderSink, ForensicReport, ImageReport,
    Reporter, ReporterSample, TileReport,
};
pub use sched::{StatsCollector, TileAllocator};

/// Re-export of the clipped ReLU activation the compression pipeline starts
/// with (§4.1).
pub use adcnn_tensor::activ::ClippedRelu;
