//! Central ↔ Conv node message format (§6.1, Figure 8).
//!
//! Every tile travels with its image ID `i_id` and tile ID `t_id` so the
//! Central node can reassemble partial results and attribute them to the
//! right input, and so late results (after `T_L`) can be discarded safely.

use crate::compress::{Compressed, Quantizer};
use adcnn_tensor::Tensor;
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Identifies one tile of one input image.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileKey {
    /// Input-image sequence number (`i_id`).
    pub image_id: u64,
    /// Tile index within the image (`t_id`, row-major).
    pub tile_id: u32,
}

/// Central → Conv: one input tile to process.
#[derive(Clone, Debug)]
pub struct TileTask {
    /// Which tile of which image this is.
    pub key: TileKey,
    /// Tile activations `[1, C, th, tw]` as raw f32 (input images are not
    /// compressed — they are small relative to intermediate maps).
    pub tile: Tensor,
}

impl TileTask {
    /// Serialized size in bits (payload + header), for transfer modelling.
    pub fn wire_bits(&self) -> u64 {
        self.tile.numel() as u64 * 32 + HEADER_BITS
    }
}

/// Conv → Central: the compressed intermediate result for one tile.
#[derive(Clone, Debug)]
pub struct TileResult {
    /// Which tile of which image this answers.
    pub key: TileKey,
    /// Output tile shape `[1, C, oh, ow]` before compression.
    pub shape: [usize; 4],
    /// Compressed payload (§4 pipeline).
    pub payload: Compressed,
}

/// Fixed per-message header: image id (64) + tile id (32) + shape (4×32) +
/// element count (32) + quantizer params (8 + 32).
pub const HEADER_BITS: u64 = 64 + 32 + 4 * 32 + 32 + 8 + 32;

impl TileResult {
    /// Wire size in bits including the header.
    pub fn wire_bits(&self) -> u64 {
        self.payload.wire_bits() + HEADER_BITS
    }

    /// Decode the payload back into a tensor (zero-filled on decode failure
    /// is *not* done here — corrupt payloads surface as `None` so the
    /// caller can apply the paper's zero-fill policy explicitly).
    pub fn to_tensor(&self) -> Option<Tensor> {
        let values = crate::compress::decompress(&self.payload)?;
        if values.len() != self.shape.iter().product::<usize>() {
            return None;
        }
        Some(Tensor::from_vec(self.shape, values))
    }
}

/// Serialize a tensor's raw f32 data (little endian) for transport.
pub fn tensor_to_bytes(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(t.numel() * 4);
    for &v in t.as_slice() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Inverse of [`tensor_to_bytes`] given the shape.
pub fn tensor_from_bytes(shape: &[usize], data: &[u8]) -> Option<Tensor> {
    let n: usize = shape.iter().product();
    if data.len() != n * 4 {
        return None;
    }
    let mut values = Vec::with_capacity(n);
    for chunk in data.chunks_exact(4) {
        values.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    Some(Tensor::from_vec(shape, values))
}

/// Build a [`TileResult`] by compressing an output tile.
pub fn make_result(key: TileKey, tile: &Tensor, quantizer: Quantizer) -> TileResult {
    let dims = tile.dims();
    assert_eq!(dims.len(), 4, "tile results are [1,C,H,W]");
    TileResult {
        key,
        shape: [dims[0], dims[1], dims[2], dims[3]],
        payload: crate::compress::compress(tile.as_slice(), quantizer),
    }
}

/// Build a [`TileResult`] from an already-encoded payload (the worker's
/// zero-allocation path: quantize + RLE run in reusable scratch buffers and
/// only this one `Bytes` copy is made per shipped tile).
pub fn make_result_from_parts(
    key: TileKey,
    shape: [usize; 4],
    elems: usize,
    encoded: &[u8],
    quantizer: Quantizer,
) -> TileResult {
    TileResult {
        key,
        shape,
        payload: Compressed { payload: Bytes::copy_from_slice(encoded), elems, quantizer },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcnn_tensor::activ::ClippedRelu;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn tensor_bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::randn([1, 3, 4, 5], 1.0, &mut rng);
        let b = tensor_to_bytes(&t);
        assert_eq!(b.len(), 60 * 4);
        let back = tensor_from_bytes(&[1, 3, 4, 5], &b).unwrap();
        assert!(back.approx_eq(&t, 0.0));
    }

    #[test]
    fn tensor_from_bytes_rejects_bad_length() {
        assert!(tensor_from_bytes(&[2, 2], &[0u8; 15]).is_none());
    }

    #[test]
    fn result_roundtrip_within_quant_error() {
        let cr = ClippedRelu::new(0.1, 1.1);
        let q = Quantizer::paper_default(cr);
        let mut rng = StdRng::seed_from_u64(2);
        let raw = Tensor::randn([1, 4, 6, 6], 0.5, &mut rng);
        let clipped = cr.forward(&raw);
        let key = TileKey { image_id: 7, tile_id: 3 };
        let res = make_result(key, &clipped, q);
        assert_eq!(res.key, key);
        let back = res.to_tensor().unwrap();
        assert!(back.approx_eq(&clipped, q.max_error() + 1e-6));
    }

    #[test]
    fn result_from_parts_matches_make_result() {
        use crate::compress::{compress_into, CompressScratch};
        let cr = ClippedRelu::new(0.0, 1.0);
        let q = Quantizer::paper_default(cr);
        let mut rng = StdRng::seed_from_u64(3);
        let tile = cr.forward(&Tensor::randn([1, 3, 5, 5], 0.7, &mut rng));
        let key = TileKey { image_id: 1, tile_id: 4 };
        let want = make_result(key, &tile, q);
        let mut s = CompressScratch::new();
        let enc = compress_into(tile.as_slice(), q, &mut s);
        let got = make_result_from_parts(key, [1, 3, 5, 5], tile.numel(), enc, q);
        assert_eq!(got.key, want.key);
        assert_eq!(got.shape, want.shape);
        assert_eq!(&got.payload.payload[..], &want.payload.payload[..]);
        assert_eq!(got.payload.elems, want.payload.elems);
        assert!(got.to_tensor().unwrap().approx_eq(&want.to_tensor().unwrap(), 0.0));
    }

    #[test]
    fn wire_bits_accounts_header() {
        let q = Quantizer::new(4, 1.0);
        let t = Tensor::zeros([1, 1, 8, 8]);
        let res = make_result(TileKey { image_id: 0, tile_id: 0 }, &t, q);
        assert!(res.wire_bits() >= HEADER_BITS);
        assert_eq!(res.wire_bits(), res.payload.wire_bits() + HEADER_BITS);
    }

    #[test]
    fn task_wire_bits() {
        let t = TileTask {
            key: TileKey { image_id: 1, tile_id: 2 },
            tile: Tensor::zeros([1, 3, 28, 28]),
        };
        assert_eq!(t.wire_bits(), 3 * 28 * 28 * 32 + HEADER_BITS);
    }

    #[test]
    fn tile_keys_order_by_image_then_tile() {
        let a = TileKey { image_id: 1, tile_id: 9 };
        let b = TileKey { image_id: 2, tile_id: 0 };
        assert!(a < b);
    }
}
