//! Central ↔ Conv node message format (§6.1, Figure 8).
//!
//! Every tile travels with its image ID `i_id` and tile ID `t_id` so the
//! Central node can reassemble partial results and attribute them to the
//! right input, and so late results (after `T_L`) can be discarded safely.

use crate::compress::{Compressed, Quantizer};
use adcnn_tensor::Tensor;
use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

// Little-endian cursor reads for the decode paths. Each returns `None` on
// a truncated input instead of panicking — the decoders below never index
// past what actually arrived.
fn rd_u8(b: &mut &[u8]) -> Option<u8> {
    let (&v, rest) = b.split_first()?;
    *b = rest;
    Some(v)
}

fn rd_u32(b: &mut &[u8]) -> Option<u32> {
    let (head, rest) = b.split_at_checked(4)?;
    *b = rest;
    Some(u32::from_le_bytes(head.try_into().unwrap()))
}

fn rd_u64(b: &mut &[u8]) -> Option<u64> {
    let (head, rest) = b.split_at_checked(8)?;
    *b = rest;
    Some(u64::from_le_bytes(head.try_into().unwrap()))
}

fn rd_f32(b: &mut &[u8]) -> Option<f32> {
    rd_u32(b).map(f32::from_bits)
}

/// Upper bound on the element count of any tile crossing the wire.
///
/// Decoders must reject a frame whose declared shape or element count
/// exceeds this *before* allocating for it: a hostile 16-byte header must
/// not be able to request a multi-gigabyte buffer. 2^24 elements (64 MiB
/// of f32) is an order of magnitude above any boundary map this codebase
/// produces, so legitimate traffic never hits the cap.
pub const MAX_TILE_ELEMS: usize = 1 << 24;

/// Checked product of a shape's dimensions, capped at
/// [`MAX_TILE_ELEMS`]. `None` on overflow or over-cap — the two ways a
/// corrupt header turns a product into an allocation bomb.
pub fn checked_numel(shape: &[usize]) -> Option<usize> {
    let n = shape.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d))?;
    (n <= MAX_TILE_ELEMS).then_some(n)
}

/// Identifies one tile of one input image.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TileKey {
    /// Input-image sequence number (`i_id`).
    pub image_id: u64,
    /// Tile index within the image (`t_id`, row-major).
    pub tile_id: u32,
}

/// Central → Conv: one input tile to process.
#[derive(Clone, Debug)]
pub struct TileTask {
    /// Which tile of which image this is.
    pub key: TileKey,
    /// Tile activations `[1, C, th, tw]` as raw f32 (input images are not
    /// compressed — they are small relative to intermediate maps).
    pub tile: Tensor,
}

impl TileTask {
    /// Serialized size in bits (payload + header), for transfer modelling.
    pub fn wire_bits(&self) -> u64 {
        self.tile.numel() as u64 * 32 + HEADER_BITS
    }

    /// Append the explicit wire encoding: key, shape, then the tile's raw
    /// f32 data, all little-endian. The transport layer length-prefixes
    /// the result; this function owns only the message body.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.key.image_id);
        buf.put_u32_le(self.key.tile_id);
        let dims = self.tile.dims();
        assert_eq!(dims.len(), 4, "tile tasks are [1,C,H,W]");
        for &d in dims {
            buf.put_u32_le(d as u32);
        }
        for &v in self.tile.as_slice() {
            buf.put_f32_le(v);
        }
    }

    /// Decode an [`encode_into`](Self::encode_into) body. `None` on any
    /// structural defect: truncated header, shape product overflow or over
    /// [`MAX_TILE_ELEMS`], or a data section that does not match the
    /// declared shape. Never panics, never allocates more than the
    /// (already length-capped) input it was handed.
    pub fn decode(mut body: &[u8]) -> Option<TileTask> {
        let b = &mut body;
        let image_id = rd_u64(b)?;
        let tile_id = rd_u32(b)?;
        let mut shape = [0usize; 4];
        for d in &mut shape {
            *d = rd_u32(b)? as usize;
        }
        let tile = tensor_from_bytes(&shape, b)?;
        Some(TileTask { key: TileKey { image_id, tile_id }, tile })
    }
}

/// Conv → Central: the compressed intermediate result for one tile.
#[derive(Clone, Debug)]
pub struct TileResult {
    /// Which tile of which image this answers.
    pub key: TileKey,
    /// Output tile shape `[1, C, oh, ow]` before compression.
    pub shape: [usize; 4],
    /// Compressed payload (§4 pipeline).
    pub payload: Compressed,
}

/// Fixed per-message header: image id (64) + tile id (32) + shape (4×32) +
/// element count (32) + quantizer params (8 + 32).
pub const HEADER_BITS: u64 = 64 + 32 + 4 * 32 + 32 + 8 + 32;

impl TileResult {
    /// Wire size in bits including the header.
    pub fn wire_bits(&self) -> u64 {
        self.payload.wire_bits() + HEADER_BITS
    }

    /// Decode the payload back into a tensor (zero-filled on decode failure
    /// is *not* done here — corrupt payloads surface as `None` so the
    /// caller can apply the paper's zero-fill policy explicitly).
    ///
    /// Validation happens *before* the payload is decompressed: the shape
    /// product is computed with checked arithmetic, capped at
    /// [`MAX_TILE_ELEMS`], and must match the declared element count. A
    /// hostile header therefore cannot trigger an unbounded allocation —
    /// `decompress` is only reached once the output size is known sane.
    pub fn to_tensor(&self) -> Option<Tensor> {
        let n = checked_numel(&self.shape)?;
        if self.payload.elems != n {
            return None;
        }
        let values = crate::compress::decompress(&self.payload)?;
        debug_assert_eq!(values.len(), n);
        Some(Tensor::from_vec(self.shape, values))
    }

    /// Append the explicit wire encoding: key, shape, element count,
    /// quantizer parameters, then the RLE payload, all little-endian (the
    /// layout [`HEADER_BITS`] has modelled since the first PR). The
    /// transport layer length-prefixes the result.
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.key.image_id);
        buf.put_u32_le(self.key.tile_id);
        for &d in &self.shape {
            buf.put_u32_le(d as u32);
        }
        buf.put_u32_le(self.payload.elems as u32);
        buf.put_u8(self.payload.quantizer.bits);
        buf.put_f32_le(self.payload.quantizer.range);
        buf.put_slice(&self.payload.payload);
    }

    /// Decode an [`encode_into`](Self::encode_into) body.
    ///
    /// Returns `None` only on defects that make the message meaningless:
    /// a truncated header or quantizer parameters outside the codec's
    /// domain (`bits ∉ 1..=8`, non-finite or non-positive `range`). A
    /// frame whose *payload* is corrupt — wrong element count for the
    /// shape, truncated RLE stream — still decodes to a `TileResult`, so
    /// the Central node can attribute it to its tile and surface the
    /// failed [`to_tensor`](Self::to_tensor) as a corrupt-result
    /// lifecycle event (the same path `corrupt_prob` injection takes)
    /// instead of silently dropping a tile it could still recover.
    pub fn decode(mut body: &[u8]) -> Option<TileResult> {
        let b = &mut body;
        let image_id = rd_u64(b)?;
        let tile_id = rd_u32(b)?;
        let mut shape = [0usize; 4];
        for d in &mut shape {
            *d = rd_u32(b)? as usize;
        }
        let elems = rd_u32(b)? as usize;
        let bits = rd_u8(b)?;
        let range = rd_f32(b)?;
        if !(1..=8).contains(&bits) || !range.is_finite() || range <= 0.0 {
            return None;
        }
        Some(TileResult {
            key: TileKey { image_id, tile_id },
            shape,
            payload: Compressed {
                payload: Bytes::copy_from_slice(b),
                elems,
                quantizer: Quantizer { bits, range },
            },
        })
    }
}

/// Serialize a tensor's raw f32 data (little endian) for transport.
pub fn tensor_to_bytes(t: &Tensor) -> Bytes {
    let mut buf = BytesMut::with_capacity(t.numel() * 4);
    for &v in t.as_slice() {
        buf.put_f32_le(v);
    }
    buf.freeze()
}

/// Inverse of [`tensor_to_bytes`] given the shape. `None` when the data
/// length does not match the shape — including when the shape itself is
/// hostile (product overflow or over [`MAX_TILE_ELEMS`]): the checks run
/// on checked arithmetic *before* any allocation.
pub fn tensor_from_bytes(shape: &[usize], data: &[u8]) -> Option<Tensor> {
    let n = checked_numel(shape)?;
    if data.len() != n.checked_mul(4)? {
        return None;
    }
    let mut values = Vec::with_capacity(n);
    for chunk in data.chunks_exact(4) {
        values.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
    Some(Tensor::from_vec(shape, values))
}

/// Build a [`TileResult`] by compressing an output tile.
pub fn make_result(key: TileKey, tile: &Tensor, quantizer: Quantizer) -> TileResult {
    let dims = tile.dims();
    assert_eq!(dims.len(), 4, "tile results are [1,C,H,W]");
    TileResult {
        key,
        shape: [dims[0], dims[1], dims[2], dims[3]],
        payload: crate::compress::compress(tile.as_slice(), quantizer),
    }
}

/// Build a [`TileResult`] from an already-encoded payload (the worker's
/// zero-allocation path: quantize + RLE run in reusable scratch buffers and
/// only this one `Bytes` copy is made per shipped tile).
///
/// Panics unless `elems` matches the shape product — the encode-side half
/// of the contract [`TileResult::to_tensor`] enforces on decode. A result
/// built here is guaranteed internally consistent, so any mismatch seen
/// at the Central node is transit corruption, not a producer bug.
pub fn make_result_from_parts(
    key: TileKey,
    shape: [usize; 4],
    elems: usize,
    encoded: &[u8],
    quantizer: Quantizer,
) -> TileResult {
    assert_eq!(
        checked_numel(&shape),
        Some(elems),
        "result payload element count must match its shape"
    );
    TileResult {
        key,
        shape,
        payload: Compressed { payload: Bytes::copy_from_slice(encoded), elems, quantizer },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcnn_tensor::activ::ClippedRelu;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn tensor_bytes_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::randn([1, 3, 4, 5], 1.0, &mut rng);
        let b = tensor_to_bytes(&t);
        assert_eq!(b.len(), 60 * 4);
        let back = tensor_from_bytes(&[1, 3, 4, 5], &b).unwrap();
        assert!(back.approx_eq(&t, 0.0));
    }

    #[test]
    fn tensor_from_bytes_rejects_bad_length() {
        assert!(tensor_from_bytes(&[2, 2], &[0u8; 15]).is_none());
    }

    #[test]
    fn result_roundtrip_within_quant_error() {
        let cr = ClippedRelu::new(0.1, 1.1);
        let q = Quantizer::paper_default(cr);
        let mut rng = StdRng::seed_from_u64(2);
        let raw = Tensor::randn([1, 4, 6, 6], 0.5, &mut rng);
        let clipped = cr.forward(&raw);
        let key = TileKey { image_id: 7, tile_id: 3 };
        let res = make_result(key, &clipped, q);
        assert_eq!(res.key, key);
        let back = res.to_tensor().unwrap();
        assert!(back.approx_eq(&clipped, q.max_error() + 1e-6));
    }

    #[test]
    fn result_from_parts_matches_make_result() {
        use crate::compress::{compress_into, CompressScratch};
        let cr = ClippedRelu::new(0.0, 1.0);
        let q = Quantizer::paper_default(cr);
        let mut rng = StdRng::seed_from_u64(3);
        let tile = cr.forward(&Tensor::randn([1, 3, 5, 5], 0.7, &mut rng));
        let key = TileKey { image_id: 1, tile_id: 4 };
        let want = make_result(key, &tile, q);
        let mut s = CompressScratch::new();
        let enc = compress_into(tile.as_slice(), q, &mut s);
        let got = make_result_from_parts(key, [1, 3, 5, 5], tile.numel(), enc, q);
        assert_eq!(got.key, want.key);
        assert_eq!(got.shape, want.shape);
        assert_eq!(&got.payload.payload[..], &want.payload.payload[..]);
        assert_eq!(got.payload.elems, want.payload.elems);
        assert!(got.to_tensor().unwrap().approx_eq(&want.to_tensor().unwrap(), 0.0));
    }

    #[test]
    fn wire_bits_accounts_header() {
        let q = Quantizer::new(4, 1.0);
        let t = Tensor::zeros([1, 1, 8, 8]);
        let res = make_result(TileKey { image_id: 0, tile_id: 0 }, &t, q);
        assert!(res.wire_bits() >= HEADER_BITS);
        assert_eq!(res.wire_bits(), res.payload.wire_bits() + HEADER_BITS);
    }

    #[test]
    fn task_wire_bits() {
        let t = TileTask {
            key: TileKey { image_id: 1, tile_id: 2 },
            tile: Tensor::zeros([1, 3, 28, 28]),
        };
        assert_eq!(t.wire_bits(), 3 * 28 * 28 * 32 + HEADER_BITS);
    }

    #[test]
    fn tile_keys_order_by_image_then_tile() {
        let a = TileKey { image_id: 1, tile_id: 9 };
        let b = TileKey { image_id: 2, tile_id: 0 };
        assert!(a < b);
    }

    #[test]
    fn task_encode_decode_roundtrip() {
        let mut rng = StdRng::seed_from_u64(11);
        let task = TileTask {
            key: TileKey { image_id: 81, tile_id: 5 },
            tile: Tensor::randn([1, 3, 8, 8], 1.0, &mut rng),
        };
        let mut buf = BytesMut::new();
        task.encode_into(&mut buf);
        let back = TileTask::decode(&buf).unwrap();
        assert_eq!(back.key, task.key);
        assert!(back.tile.approx_eq(&task.tile, 0.0));
    }

    #[test]
    fn result_encode_decode_roundtrip() {
        let cr = ClippedRelu::new(0.0, 1.0);
        let q = Quantizer::paper_default(cr);
        let mut rng = StdRng::seed_from_u64(12);
        let tile = cr.forward(&Tensor::randn([1, 4, 6, 6], 0.5, &mut rng));
        let res = make_result(TileKey { image_id: 3, tile_id: 2 }, &tile, q);
        let mut buf = BytesMut::new();
        res.encode_into(&mut buf);
        let back = TileResult::decode(&buf).unwrap();
        assert_eq!(back.key, res.key);
        assert_eq!(back.shape, res.shape);
        assert_eq!(back.payload.elems, res.payload.elems);
        assert_eq!(&back.payload.payload[..], &res.payload.payload[..]);
        assert!(back.to_tensor().unwrap().approx_eq(&res.to_tensor().unwrap(), 0.0));
    }

    #[test]
    fn checked_numel_rejects_overflow_and_cap() {
        assert_eq!(checked_numel(&[1, 2, 3, 4]), Some(24));
        assert_eq!(checked_numel(&[]), Some(1));
        assert_eq!(checked_numel(&[usize::MAX, 2]), None, "product overflow");
        assert_eq!(checked_numel(&[MAX_TILE_ELEMS, 2]), None, "over cap");
        assert_eq!(checked_numel(&[1, 1, 1, MAX_TILE_ELEMS]), Some(MAX_TILE_ELEMS));
    }

    #[test]
    fn tensor_from_bytes_rejects_hostile_shapes_without_allocating() {
        // Overflowing product: `n * 4` would wrap to a small number in
        // unchecked arithmetic and admit a tiny buffer for a huge shape.
        let wrap = usize::MAX / 4 + 1;
        assert!(tensor_from_bytes(&[wrap, 4], &[0u8; 16]).is_none());
        // Over-cap product: structurally fine, but a decoder must not be
        // talked into a multi-gigabyte allocation by 16 header bytes.
        assert!(tensor_from_bytes(&[1, 1, MAX_TILE_ELEMS, 2], &[0u8; 16]).is_none());
    }

    #[test]
    fn to_tensor_rejects_elems_shape_mismatch_before_decompress() {
        let q = Quantizer::new(4, 1.0);
        let good =
            make_result(TileKey { image_id: 0, tile_id: 0 }, &Tensor::zeros([1, 1, 4, 4]), q);
        // Declared element count inconsistent with the shape: reject.
        let mut bad = good.clone();
        bad.payload.elems = 17;
        assert!(bad.to_tensor().is_none());
        // Hostile shape whose product overflows: reject, no panic.
        let mut bad = good.clone();
        bad.shape = [usize::MAX, usize::MAX, 2, 2];
        assert!(bad.to_tensor().is_none());
        // Huge-but-consistent claim: capped before any allocation.
        let mut bad = good.clone();
        bad.shape = [1, 1, MAX_TILE_ELEMS, 2];
        bad.payload.elems = 2 * MAX_TILE_ELEMS;
        assert!(bad.to_tensor().is_none());
    }

    #[test]
    #[should_panic(expected = "element count must match")]
    fn make_result_from_parts_validates_elems() {
        make_result_from_parts(
            TileKey { image_id: 0, tile_id: 0 },
            [1, 1, 4, 4],
            17, // shape says 16
            &[0u8; 4],
            Quantizer::new(4, 1.0),
        );
    }

    #[test]
    fn result_decode_keeps_corrupt_payloads_for_the_lifecycle() {
        // A frame with a readable key but an elems/shape mismatch must
        // *decode* (so the Central node can attribute it) and then fail
        // `to_tensor` (so it surfaces as a corrupt-result event).
        let mut buf = BytesMut::new();
        buf.put_u64_le(9); // image
        buf.put_u32_le(1); // tile
        for d in [1u32, 2, 4, 4] {
            buf.put_u32_le(d);
        }
        buf.put_u32_le(99); // elems ≠ 32
        buf.put_u8(4);
        buf.put_f32_le(1.0);
        buf.put_slice(&[0x11, 0x22]);
        let res = TileResult::decode(&buf).expect("structurally readable");
        assert_eq!(res.key, TileKey { image_id: 9, tile_id: 1 });
        assert!(res.to_tensor().is_none(), "mismatched payload must fail to decode");
    }

    #[test]
    fn result_decode_rejects_out_of_domain_quantizers() {
        let encode = |bits: u8, range: f32| {
            let mut buf = BytesMut::new();
            buf.put_u64_le(0);
            buf.put_u32_le(0);
            for d in [1u32, 1, 2, 2] {
                buf.put_u32_le(d);
            }
            buf.put_u32_le(4);
            buf.put_u8(bits);
            buf.put_f32_le(range);
            buf
        };
        assert!(TileResult::decode(&encode(4, 1.0)).is_some());
        assert!(TileResult::decode(&encode(0, 1.0)).is_none());
        assert!(TileResult::decode(&encode(9, 1.0)).is_none());
        assert!(TileResult::decode(&encode(4, 0.0)).is_none());
        assert!(TileResult::decode(&encode(4, f32::NAN)).is_none());
        assert!(TileResult::decode(&encode(4, f32::INFINITY)).is_none());
    }

    mod fuzz {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary bytes through every decode path: never panic,
            /// never allocate beyond the input's own (capped) size. A
            /// successful `TileResult::decode` must also survive
            /// `to_tensor` without panicking.
            #[test]
            fn decoders_never_panic_on_arbitrary_bytes(body in proptest::collection::vec(any::<u8>(), 0..256)) {
                let _ = TileTask::decode(&body);
                if let Some(res) = TileResult::decode(&body) {
                    let _ = res.to_tensor();
                }
            }

            /// Bit-flipped *valid* result frames: the adversarial case a
            /// lossy link actually produces. Decode may fail or succeed,
            /// `to_tensor` may fail, but nothing panics and an accepted
            /// tensor always matches its declared shape.
            #[test]
            fn flipped_result_frames_never_panic(byte in 0usize..64, bit in 0u8..8) {
                let q = Quantizer::new(4, 1.0);
                let good = make_result(
                    TileKey { image_id: 1, tile_id: 0 },
                    &Tensor::full([1, 1, 4, 4], 0.5),
                    q,
                );
                let mut buf = BytesMut::new();
                good.encode_into(&mut buf);
                let idx = byte % buf.len();
                buf[idx] ^= 1 << bit;
                if let Some(res) = TileResult::decode(&buf) {
                    if let Some(t) = res.to_tensor() {
                        prop_assert_eq!(t.numel(), checked_numel(&res.shape).unwrap());
                    }
                }
            }

            /// Hostile headers with huge declared shapes/element counts
            /// must be rejected before any proportional allocation.
            #[test]
            fn huge_declared_shapes_are_rejected(
                d0 in any::<u32>(),
                d1 in any::<u32>(),
                d2 in any::<u32>(),
                d3 in any::<u32>(),
                elems in any::<u32>(),
            ) {
                let mut buf = BytesMut::new();
                buf.put_u64_le(0);
                buf.put_u32_le(0);
                for d in [d0, d1, d2, d3] {
                    buf.put_u32_le(d);
                }
                buf.put_u32_le(elems);
                buf.put_u8(4);
                buf.put_f32_le(1.0);
                buf.put_slice(&[0u8; 8]);
                if let Some(res) = TileResult::decode(&buf) {
                    let n = res.shape.iter().map(|&d| d as u128).product::<u128>();
                    if n > MAX_TILE_ELEMS as u128 || res.payload.elems as u128 != n {
                        prop_assert!(res.to_tensor().is_none());
                    }
                }
            }
        }
    }
}
