//! Forensic observability on top of the event stream: per-image
//! critical-path attribution, a lock-free flight recorder with anomaly
//! dumps, and live metrics reporting.
//!
//! Everything here consumes the [`ObsEvent`] schema of [`crate::obs`]
//! and therefore works identically over both drivers — the wall-clock
//! runtime and the discrete-event simulator — and over replayed
//! lifecycle traces (`tests/lifecycle_differential.rs` pins that the
//! two drivers produce byte-identical [`ImageReport`]s for the same
//! trace).
//!
//! Three consumers, three cost profiles:
//!
//! - [`AttributionSink`] folds events into per-image phase breakdowns
//!   (queue-wait / compute / compress / transfer / merge), maintained
//!   incrementally under a mutex with bounded memory. Attach it when
//!   you want `InferOutcome::report` populated.
//! - [`FlightRecorderSink`] keeps the last N events in a fixed ring of
//!   seqlock-stamped atomic slots — the steady-state emit path is a
//!   `fetch_add` plus eight relaxed stores, no locks, no allocation.
//!   Only an *anomaly* (zero-fill, worker death, deadline storm) takes
//!   a mutex, snapshots the ring, and files a [`ForensicReport`].
//! - [`Reporter`] diffs successive [`MetricsSnapshot`]s into
//!   throughput / p50 / p99 / zero-fill-rate lines for live logs;
//!   [`MetricsSnapshot::to_prometheus`] renders the same snapshot in
//!   Prometheus text exposition format.

use crate::obs::{json, EventSink, HistogramSnapshot, MetricsSnapshot, ObsEvent};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Per-image critical-path attribution
// ---------------------------------------------------------------------------

/// The lifecycle phase a tile (or image) spent the most time in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Between dispatch and the start of prefix compute (includes the
    /// uplink send in the simulator, task-queue wait in the runtime).
    QueueWait,
    /// Prefix-network forward.
    Compute,
    /// Clip + quantize + RLE (runtime only; the simulator's compression
    /// is a cost-model scalar).
    Compress,
    /// Everything between compute/compress end and acceptance at
    /// Central — the residual, so per-tile phases sum exactly.
    Transfer,
    /// Between the last accepted tile and image completion (suffix
    /// assembly and zero-fill work).
    Merge,
}

impl Phase {
    /// Stable snake_case name (the JSON encoding).
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::QueueWait => "queue_wait",
            Phase::Compute => "compute",
            Phase::Compress => "compress",
            Phase::Transfer => "transfer",
            Phase::Merge => "merge",
        }
    }
}

/// One tile's attribution inside an [`ImageReport`]. For an accepted
/// tile the four phases sum exactly to `done_at - dispatch_at`; a
/// zero-filled tile charges the whole open interval to queue-wait
/// (it waited and never arrived).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TileReport {
    /// Tile id.
    pub tile: u32,
    /// Worker that delivered the accepted result, or the last worker
    /// the tile was dispatched to if it was zero-filled; `None` if the
    /// tile was never placed (storage shortfall).
    pub worker: Option<u32>,
    /// Re-dispatch attempts this tile consumed.
    pub rounds: u32,
    /// Whether the tile missed every recovery attempt.
    pub zero_filled: bool,
    /// Last dispatch time (the attribution window starts here).
    pub dispatch_at: f64,
    /// Acceptance time, or zero-fill time.
    pub done_at: f64,
    /// Dispatch → start of compute.
    pub queue_wait_s: f64,
    /// Prefix compute span.
    pub compute_s: f64,
    /// Compression span.
    pub compress_s: f64,
    /// Residual to acceptance.
    pub transfer_s: f64,
}

impl TileReport {
    /// Sum of the four phases (= `done_at - dispatch_at` for any
    /// dispatched tile).
    pub fn total_s(&self) -> f64 {
        self.queue_wait_s + self.compute_s + self.compress_s + self.transfer_s
    }

    /// Serde-free JSON rendering via the shared [`json`] helpers.
    pub fn to_json(&self) -> String {
        let worker = match self.worker {
            Some(w) => w.to_string(),
            None => "null".to_string(),
        };
        json::Obj::new()
            .u64("tile", self.tile.into())
            .raw("worker", worker)
            .u64("rounds", self.rounds.into())
            .bool("zero_filled", self.zero_filled)
            .f64("dispatch_at", self.dispatch_at)
            .f64("done_at", self.done_at)
            .f64("queue_wait_s", self.queue_wait_s)
            .f64("compute_s", self.compute_s)
            .f64("compress_s", self.compress_s)
            .f64("transfer_s", self.transfer_s)
            .finish()
    }
}

/// Where one image's latency went: per-tile phase breakdowns, the
/// critical-path tile (the one whose completion gated the image), and
/// the dominant phase along that path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ImageReport {
    /// Image id (the runtime's sequence number / the simulator's index).
    pub image: u64,
    /// Lifecycle start on the driver's time axis.
    pub start_at: f64,
    /// Completion time.
    pub finish_at: f64,
    /// `ImageFinish.latency` — end-to-end tile-phase latency.
    pub latency_s: f64,
    /// Tiles zero-filled.
    pub zero_filled: u32,
    /// Recovery send attempts across the image.
    pub redispatched: u32,
    /// Last accepted arrival → completion.
    pub merge_s: f64,
    /// The tile whose completion (arrival or zero-fill) came last;
    /// `None` for a zero-tile image.
    pub critical_tile: Option<u32>,
    /// Largest phase along the critical path (critical tile's phases
    /// plus merge).
    pub dominant_phase: Phase,
    /// Per-tile breakdowns, ordered by tile id.
    pub tiles: Vec<TileReport>,
}

impl ImageReport {
    /// The critical-path tile's breakdown.
    pub fn critical(&self) -> Option<&TileReport> {
        let id = self.critical_tile?;
        self.tiles.iter().find(|t| t.tile == id)
    }

    /// Critical tile's phase sum plus merge — the attributed span of
    /// the image's latency (equals `latency_s` when the critical tile
    /// went out in round 0; shorter if it was re-dispatched, since
    /// attribution starts at the *last* dispatch).
    pub fn critical_path_s(&self) -> f64 {
        self.critical().map(|t| t.total_s()).unwrap_or(0.0) + self.merge_s
    }

    /// Serde-free JSON rendering via the shared [`json`] helpers.
    pub fn to_json(&self) -> String {
        let critical = match self.critical_tile {
            Some(t) => t.to_string(),
            None => "null".to_string(),
        };
        json::Obj::new()
            .u64("image", self.image)
            .f64("start_at", self.start_at)
            .f64("finish_at", self.finish_at)
            .f64("latency_s", self.latency_s)
            .u64("zero_filled", self.zero_filled.into())
            .u64("redispatched", self.redispatched.into())
            .f64("merge_s", self.merge_s)
            .raw("critical_tile", critical)
            .str("dominant_phase", self.dominant_phase.as_str())
            .raw("tiles", json::array(self.tiles.iter().map(|t| t.to_json())))
            .finish()
    }
}

/// Whole-run roll-up of [`ImageReport`]s: critical-path phase sums (the
/// Table 3 decomposition, measured online instead of with ad-hoc
/// timers) and dominant-phase counts.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AttributionAggregate {
    /// Images folded in.
    pub images: u64,
    /// Σ end-to-end latency.
    pub latency_s: f64,
    /// Σ critical-tile queue-wait.
    pub queue_wait_s: f64,
    /// Σ critical-tile compute.
    pub compute_s: f64,
    /// Σ critical-tile compression.
    pub compress_s: f64,
    /// Σ critical-tile transfer residual.
    pub transfer_s: f64,
    /// Σ merge.
    pub merge_s: f64,
    /// Σ zero-filled tiles.
    pub zero_filled: u64,
    /// Σ re-dispatch attempts.
    pub redispatched: u64,
    /// Images per dominant phase, indexed like [`Phase`]'s declaration
    /// order (queue-wait, compute, compress, transfer, merge).
    pub dominant: [u64; 5],
}

impl AttributionAggregate {
    /// Fold one finished image in.
    pub fn fold(&mut self, r: &ImageReport) {
        self.images += 1;
        self.latency_s += r.latency_s;
        if let Some(t) = r.critical() {
            self.queue_wait_s += t.queue_wait_s;
            self.compute_s += t.compute_s;
            self.compress_s += t.compress_s;
            self.transfer_s += t.transfer_s;
        }
        self.merge_s += r.merge_s;
        self.zero_filled += u64::from(r.zero_filled);
        self.redispatched += u64::from(r.redispatched);
        let i = match r.dominant_phase {
            Phase::QueueWait => 0,
            Phase::Compute => 1,
            Phase::Compress => 2,
            Phase::Transfer => 3,
            Phase::Merge => 4,
        };
        self.dominant[i] += 1;
    }

    /// Mean end-to-end latency per image.
    pub fn mean_latency_s(&self) -> Option<f64> {
        (self.images > 0).then(|| self.latency_s / self.images as f64)
    }

    /// Serde-free JSON rendering via the shared [`json`] helpers.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .u64("images", self.images)
            .f64("latency_s", self.latency_s)
            .f64("queue_wait_s", self.queue_wait_s)
            .f64("compute_s", self.compute_s)
            .f64("compress_s", self.compress_s)
            .f64("transfer_s", self.transfer_s)
            .f64("merge_s", self.merge_s)
            .u64("zero_filled", self.zero_filled)
            .u64("redispatched", self.redispatched)
            .raw("dominant", json::array(self.dominant.iter().map(|d| d.to_string())))
            .finish()
    }
}

/// Per-tile accumulation while an image is in flight.
#[derive(Clone, Debug, Default)]
struct TileState {
    /// Last (re-)dispatch time; `None` until the tile is placed.
    dispatch: Option<(f64, u32)>,
    rounds: u32,
    /// Last compute span seen before acceptance: (end, dur, worker).
    compute: Option<(f64, f64, u32)>,
    /// Last compression span seen before acceptance.
    compress: Option<(f64, f64, u32)>,
    /// Accepted arrival: (at, worker).
    arrival: Option<(f64, u32)>,
    zero_fill_at: Option<f64>,
}

/// One in-flight image.
#[derive(Clone, Debug)]
struct ImageState {
    image: u64,
    start_at: f64,
    tiles: BTreeMap<u32, TileState>,
}

impl ImageState {
    fn tile(&mut self, id: u32) -> &mut TileState {
        self.tiles.entry(id).or_default()
    }

    /// Build the final report. The phase decomposition is constructed
    /// to sum *exactly* to the tile's open interval: compute and
    /// compress are clamped into the window, queue-wait is what
    /// precedes compute, transfer is the residual. Spans from a worker
    /// other than the one whose result was accepted are ignored (they
    /// belong to a superseded dispatch).
    fn finish(self, at: f64, latency: f64, zero_filled: u32, redispatched: u32) -> ImageReport {
        let mut tiles = Vec::with_capacity(self.tiles.len());
        for (id, t) in &self.tiles {
            let rep = match (t.arrival, t.zero_fill_at, t.dispatch) {
                (Some((arr, worker)), _, dispatch) => {
                    let (dispatch_at, _) = dispatch.unwrap_or((self.start_at, worker));
                    let total = (arr - dispatch_at).max(0.0);
                    let compute = match t.compute {
                        Some((_, dur, w)) if w == worker => dur.clamp(0.0, total),
                        _ => 0.0,
                    };
                    let queue_wait = match t.compute {
                        Some((end, dur, w)) if w == worker => {
                            (end - dur - dispatch_at).clamp(0.0, total - compute)
                        }
                        _ => 0.0,
                    };
                    let compress = match t.compress {
                        Some((_, dur, w)) if w == worker => {
                            dur.clamp(0.0, total - compute - queue_wait)
                        }
                        _ => 0.0,
                    };
                    let transfer = (total - queue_wait - compute - compress).max(0.0);
                    TileReport {
                        tile: *id,
                        worker: Some(worker),
                        rounds: t.rounds,
                        zero_filled: false,
                        dispatch_at,
                        done_at: arr,
                        queue_wait_s: queue_wait,
                        compute_s: compute,
                        compress_s: compress,
                        transfer_s: transfer,
                    }
                }
                (None, Some(zf), dispatch) => {
                    let (dispatch_at, worker) = match dispatch {
                        Some((d, w)) => (d, Some(w)),
                        None => (zf, None), // never placed: zero-width window
                    };
                    TileReport {
                        tile: *id,
                        worker,
                        rounds: t.rounds,
                        zero_filled: true,
                        dispatch_at,
                        done_at: zf,
                        queue_wait_s: (zf - dispatch_at).max(0.0),
                        compute_s: 0.0,
                        compress_s: 0.0,
                        transfer_s: 0.0,
                    }
                }
                // Dispatched but neither accepted nor zero-filled at
                // finish (abandoned mid-flight): close the window at
                // image completion.
                (None, None, dispatch) => {
                    let (dispatch_at, worker) = match dispatch {
                        Some((d, w)) => (d, Some(w)),
                        None => (at, None),
                    };
                    TileReport {
                        tile: *id,
                        worker,
                        rounds: t.rounds,
                        zero_filled: true,
                        dispatch_at,
                        done_at: at,
                        queue_wait_s: (at - dispatch_at).max(0.0),
                        compute_s: 0.0,
                        compress_s: 0.0,
                        transfer_s: 0.0,
                    }
                }
            };
            tiles.push(rep);
        }
        // Critical path: the tile whose completion came last (strict >
        // keeps the lowest tile id on ties, since `tiles` is id-sorted).
        let mut critical: Option<&TileReport> = None;
        for t in &tiles {
            if critical.is_none_or(|c| t.done_at > c.done_at) {
                critical = Some(t);
            }
        }
        // Merge: last tile completion (arrival or zero-fill) → image
        // completion.
        let merge_s = critical.map_or(0.0, |c| (at - c.done_at).max(0.0));
        let dominant_phase = {
            let (q, c, z, x) = critical
                .map(|t| (t.queue_wait_s, t.compute_s, t.compress_s, t.transfer_s))
                .unwrap_or((0.0, 0.0, 0.0, 0.0));
            let mut best = (Phase::QueueWait, q);
            for cand in [
                (Phase::Compute, c),
                (Phase::Compress, z),
                (Phase::Transfer, x),
                (Phase::Merge, merge_s),
            ] {
                if cand.1 > best.1 {
                    best = cand;
                }
            }
            best.0
        };
        ImageReport {
            image: self.image,
            start_at: self.start_at,
            finish_at: at,
            latency_s: latency,
            zero_filled,
            redispatched,
            merge_s,
            critical_tile: critical.map(|t| t.tile),
            dominant_phase,
            tiles,
        }
    }
}

#[derive(Debug)]
struct AttrInner {
    inflight: VecDeque<ImageState>,
    finished: VecDeque<ImageReport>,
    agg: AttributionAggregate,
}

/// Folds the event stream into per-image [`ImageReport`]s with bounded
/// memory: at most [`AttributionSink::MAX_INFLIGHT`] images accumulate
/// concurrently (oldest evicted) and the last
/// [`AttributionSink::MAX_FINISHED`] reports are retained for
/// [`AttributionSink::report_for`]; the running
/// [`AttributionAggregate`] covers every finished image regardless.
#[derive(Debug)]
pub struct AttributionSink {
    inner: Mutex<AttrInner>,
    finished_cap: usize,
}

impl Default for AttributionSink {
    fn default() -> Self {
        Self::new()
    }
}

impl AttributionSink {
    /// In-flight images tracked before the oldest is evicted (far above
    /// the drivers' pipeline depth).
    pub const MAX_INFLIGHT: usize = 64;
    /// Finished reports retained for per-image retrieval.
    pub const MAX_FINISHED: usize = 256;

    /// A fresh sink with the default retention.
    pub fn new() -> Self {
        Self::with_retention(Self::MAX_FINISHED)
    }

    /// A fresh sink retaining the last `finished_cap` reports.
    pub fn with_retention(finished_cap: usize) -> Self {
        AttributionSink {
            inner: Mutex::new(AttrInner {
                inflight: VecDeque::new(),
                finished: VecDeque::new(),
                agg: AttributionAggregate::default(),
            }),
            finished_cap: finished_cap.max(1),
        }
    }

    /// The report for `image`, if it finished recently enough to still
    /// be retained.
    pub fn report_for(&self, image: u64) -> Option<ImageReport> {
        let inner = self.inner.lock().expect("attribution sink poisoned");
        inner.finished.iter().rev().find(|r| r.image == image).cloned()
    }

    /// All retained reports, oldest first.
    pub fn reports(&self) -> Vec<ImageReport> {
        let inner = self.inner.lock().expect("attribution sink poisoned");
        inner.finished.iter().cloned().collect()
    }

    /// The whole-run roll-up.
    pub fn aggregate(&self) -> AttributionAggregate {
        self.inner.lock().expect("attribution sink poisoned").agg.clone()
    }
}

impl EventSink for AttributionSink {
    fn emit(&self, ev: &ObsEvent) {
        let mut inner = self.inner.lock().expect("attribution sink poisoned");
        // Events for images we aren't tracking (evicted, or spans that
        // straggle in after completion) are dropped silently.
        match *ev {
            ObsEvent::ImageStart { at, image, .. } => {
                inner.inflight.push_back(ImageState {
                    image,
                    start_at: at,
                    tiles: BTreeMap::new(),
                });
                if inner.inflight.len() > Self::MAX_INFLIGHT {
                    inner.inflight.pop_front();
                }
            }
            ObsEvent::ImageFinish { at, image, latency, zero_filled, redispatched } => {
                let Some(pos) = inner.inflight.iter().position(|s| s.image == image) else {
                    return;
                };
                let state = inner.inflight.remove(pos).expect("position just found");
                let report = state.finish(at, latency, zero_filled, redispatched);
                inner.agg.fold(&report);
                inner.finished.push_back(report);
                if inner.finished.len() > self.finished_cap {
                    inner.finished.pop_front();
                }
            }
            ObsEvent::TileDispatch { at, image, tile, worker } => {
                if let Some(s) = inner.inflight.iter_mut().find(|s| s.image == image) {
                    let t = s.tile(tile);
                    t.dispatch = Some((at, worker));
                }
            }
            ObsEvent::TileRedispatch { at, image, tile, worker, .. } => {
                if let Some(s) = inner.inflight.iter_mut().find(|s| s.image == image) {
                    let t = s.tile(tile);
                    t.dispatch = Some((at, worker));
                    t.rounds += 1;
                }
            }
            ObsEvent::TileArrival { at, image, tile, worker } => {
                if let Some(s) = inner.inflight.iter_mut().find(|s| s.image == image) {
                    s.tile(tile).arrival = Some((at, worker));
                }
            }
            ObsEvent::TileZeroFill { at, image, tile } => {
                if let Some(s) = inner.inflight.iter_mut().find(|s| s.image == image) {
                    s.tile(tile).zero_fill_at = Some(at);
                }
            }
            ObsEvent::TileCompute { at, image, tile, worker, dur } => {
                if let Some(s) = inner.inflight.iter_mut().find(|s| s.image == image) {
                    let t = s.tile(tile);
                    if t.arrival.is_none() {
                        t.compute = Some((at, dur, worker));
                    }
                }
            }
            ObsEvent::TileCompress { at, image, tile, worker, dur, .. } => {
                if let Some(s) = inner.inflight.iter_mut().find(|s| s.image == image) {
                    let t = s.tile(tile);
                    if t.arrival.is_none() {
                        t.compress = Some((at, dur, worker));
                    }
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// Events are encoded into seven words: tag, time bits, image, packed
/// tile|worker, and up to three payload words.
const SLOT_WORDS: usize = 7;
/// "No tile/worker" sentinel inside a packed word.
const NONE32: u32 = u32::MAX;

fn pack(lo: u32, hi: u32) -> u64 {
    u64::from(lo) | (u64::from(hi) << 32)
}

fn unpack(w: u64) -> (u32, u32) {
    (w as u32, (w >> 32) as u32)
}

/// Encode an event into the ring's fixed word format.
fn encode(ev: &ObsEvent) -> [u64; SLOT_WORDS] {
    let mut w = [0u64; SLOT_WORDS];
    w[1] = ev.at().to_bits();
    w[2] = ev.image();
    match *ev {
        ObsEvent::ImageStart { tiles, placed, .. } => {
            w[0] = 0;
            w[3] = pack(tiles, placed);
        }
        ObsEvent::ImageFinish { latency, zero_filled, redispatched, .. } => {
            w[0] = 1;
            w[4] = latency.to_bits();
            w[3] = pack(zero_filled, redispatched);
        }
        ObsEvent::TileDispatch { tile, worker, .. } => {
            w[0] = 2;
            w[3] = pack(tile, worker);
        }
        ObsEvent::TileRedispatch { tile, worker, round, .. } => {
            w[0] = 3;
            w[3] = pack(tile, worker);
            w[5] = u64::from(round);
        }
        ObsEvent::TileArrival { tile, worker, .. } => {
            w[0] = 4;
            w[3] = pack(tile, worker);
        }
        ObsEvent::TileDuplicate { tile, worker, .. } => {
            w[0] = 5;
            w[3] = pack(tile, worker);
        }
        ObsEvent::TileLate { tile, worker, .. } => {
            w[0] = 6;
            w[3] = pack(tile, worker);
        }
        ObsEvent::TileCorrupt { tile, worker, .. } => {
            w[0] = 7;
            w[3] = pack(tile, worker);
        }
        ObsEvent::TileZeroFill { tile, .. } => {
            w[0] = 8;
            w[3] = pack(tile, NONE32);
        }
        ObsEvent::DeadlineArmed { span, .. } => {
            w[0] = 9;
            w[4] = span.to_bits();
        }
        ObsEvent::DeadlineFired { .. } => {
            w[0] = 10;
        }
        ObsEvent::WorkerDead { worker, .. } => {
            w[0] = 11;
            w[3] = pack(NONE32, worker);
        }
        ObsEvent::WorkerSuspect { worker, .. } => {
            w[0] = 12;
            w[3] = pack(NONE32, worker);
        }
        ObsEvent::WorkerCleared { worker, .. } => {
            w[0] = 13;
            w[3] = pack(NONE32, worker);
        }
        ObsEvent::RateUpdate { worker, rate, .. } => {
            w[0] = 14;
            w[3] = pack(NONE32, worker);
            w[4] = rate.to_bits();
        }
        ObsEvent::TileCompute { tile, worker, dur, .. } => {
            w[0] = 15;
            w[3] = pack(tile, worker);
            w[4] = dur.to_bits();
        }
        ObsEvent::TileCompress { tile, worker, dur, bytes, ratio, .. } => {
            w[0] = 16;
            w[3] = pack(tile, worker);
            w[4] = dur.to_bits();
            w[5] = bytes;
            w[6] = ratio.to_bits();
        }
        ObsEvent::TileTransfer { tile, worker, dur, .. } => {
            w[0] = 17;
            w[3] = pack(tile, worker);
            w[4] = dur.to_bits();
        }
        ObsEvent::ImageAdmitted { queue_wait, inflight, .. } => {
            w[0] = 18;
            w[3] = pack(NONE32, inflight);
            w[4] = queue_wait.to_bits();
        }
        ObsEvent::ImageRetired { inflight, .. } => {
            w[0] = 19;
            w[3] = pack(NONE32, inflight);
        }
        ObsEvent::NodeUp { node, .. } => {
            w[0] = 20;
            w[3] = pack(NONE32, node);
        }
        ObsEvent::NodeDown { node, .. } => {
            w[0] = 21;
            w[3] = pack(NONE32, node);
        }
        ObsEvent::PlacementDecided { cause, node, tenants, live_nodes, seq, .. } => {
            w[0] = 22;
            w[3] = pack(cause, node);
            w[4] = pack(tenants, live_nodes);
            w[5] = seq;
        }
        ObsEvent::TenantAdmit { tenant, queue_wait, .. } => {
            w[0] = 23;
            w[3] = pack(tenant, NONE32);
            w[4] = queue_wait.to_bits();
        }
        ObsEvent::TenantFinish { tenant, latency, zero_filled, tiles, .. } => {
            w[0] = 24;
            w[3] = pack(tenant, zero_filled);
            w[4] = latency.to_bits();
            w[5] = u64::from(tiles);
        }
    }
    w
}

/// Decode a ring slot back into an event (`None` for an unknown tag,
/// i.e. a torn or unwritten slot).
fn decode(w: &[u64; SLOT_WORDS]) -> Option<ObsEvent> {
    let at = f64::from_bits(w[1]);
    let image = w[2];
    let (lo, hi) = unpack(w[3]);
    Some(match w[0] {
        0 => ObsEvent::ImageStart { at, image, tiles: lo, placed: hi },
        1 => ObsEvent::ImageFinish {
            at,
            image,
            latency: f64::from_bits(w[4]),
            zero_filled: lo,
            redispatched: hi,
        },
        2 => ObsEvent::TileDispatch { at, image, tile: lo, worker: hi },
        3 => ObsEvent::TileRedispatch { at, image, tile: lo, worker: hi, round: w[5] as u32 },
        4 => ObsEvent::TileArrival { at, image, tile: lo, worker: hi },
        5 => ObsEvent::TileDuplicate { at, image, tile: lo, worker: hi },
        6 => ObsEvent::TileLate { at, image, tile: lo, worker: hi },
        7 => ObsEvent::TileCorrupt { at, image, tile: lo, worker: hi },
        8 => ObsEvent::TileZeroFill { at, image, tile: lo },
        9 => ObsEvent::DeadlineArmed { at, image, span: f64::from_bits(w[4]) },
        10 => ObsEvent::DeadlineFired { at, image },
        11 => ObsEvent::WorkerDead { at, image, worker: hi },
        12 => ObsEvent::WorkerSuspect { at, image, worker: hi },
        13 => ObsEvent::WorkerCleared { at, image, worker: hi },
        14 => ObsEvent::RateUpdate { at, image, worker: hi, rate: f64::from_bits(w[4]) },
        15 => ObsEvent::TileCompute { at, image, tile: lo, worker: hi, dur: f64::from_bits(w[4]) },
        16 => ObsEvent::TileCompress {
            at,
            image,
            tile: lo,
            worker: hi,
            dur: f64::from_bits(w[4]),
            bytes: w[5],
            ratio: f64::from_bits(w[6]),
        },
        17 => ObsEvent::TileTransfer { at, image, tile: lo, worker: hi, dur: f64::from_bits(w[4]) },
        18 => ObsEvent::ImageAdmitted { at, image, queue_wait: f64::from_bits(w[4]), inflight: hi },
        19 => ObsEvent::ImageRetired { at, image, inflight: hi },
        20 => ObsEvent::NodeUp { at, node: hi },
        21 => ObsEvent::NodeDown { at, node: hi },
        22 => {
            let (tenants, live_nodes) = unpack(w[4]);
            ObsEvent::PlacementDecided { at, cause: lo, node: hi, tenants, live_nodes, seq: w[5] }
        }
        23 => ObsEvent::TenantAdmit { at, image, tenant: lo, queue_wait: f64::from_bits(w[4]) },
        24 => ObsEvent::TenantFinish {
            at,
            image,
            tenant: lo,
            latency: f64::from_bits(w[4]),
            zero_filled: hi,
            tiles: w[5] as u32,
        },
        _ => return None,
    })
}

/// One seqlock-stamped ring slot: `seq == 0` never written, odd = write
/// in progress, even = generation stamp of the last complete write.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

/// What made the flight recorder snapshot a [`ForensicReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Anomaly {
    /// A tile was zero-filled.
    ZeroFill,
    /// A worker's death was positively observed.
    WorkerDead,
    /// `DeadlineFired` count for one image crossed the storm threshold.
    DeadlineStorm,
}

impl Anomaly {
    /// Stable snake_case name (the JSON encoding).
    pub fn as_str(&self) -> &'static str {
        match self {
            Anomaly::ZeroFill => "zero_fill",
            Anomaly::WorkerDead => "worker_dead",
            Anomaly::DeadlineStorm => "deadline_storm",
        }
    }
}

/// A bounded snapshot of the flight-recorder ring taken at an anomaly,
/// carrying everything needed to explain it: the tile, the owning
/// worker, re-dispatch rounds consumed, the deadline values in force,
/// and the surviving events that touched the image/tile/worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ForensicReport {
    /// What triggered the snapshot.
    pub trigger: Anomaly,
    /// Trigger time on the driver's axis.
    pub at: f64,
    /// The image involved.
    pub image: u64,
    /// The tile involved (zero-fill triggers only).
    pub tile: Option<u32>,
    /// The owning worker: last dispatch target of the tile, or the dead
    /// worker.
    pub worker: Option<u32>,
    /// Re-dispatch rounds consumed (max round seen in the ring window).
    pub rounds: u32,
    /// When the last deadline still in the window was armed.
    pub deadline_at: Option<f64>,
    /// That deadline's span (the §6.2 expected-makespan timer value).
    pub deadline_span: Option<f64>,
    /// Live deadline firings observed for the image.
    pub deadlines_fired: u32,
    /// Ring events touching the image/tile/worker, oldest first,
    /// bounded by the recorder's window.
    pub events: Vec<ObsEvent>,
}

impl ForensicReport {
    /// Serde-free JSON rendering via the shared [`json`] helpers.
    pub fn to_json(&self) -> String {
        let opt_u = |v: Option<u32>| v.map_or("null".to_string(), |x| x.to_string());
        let opt_f = |v: Option<f64>| v.map_or("null".to_string(), json::num);
        json::Obj::new()
            .str("trigger", self.trigger.as_str())
            .f64("at", self.at)
            .u64("image", self.image)
            .raw("tile", opt_u(self.tile))
            .raw("worker", opt_u(self.worker))
            .u64("rounds", self.rounds.into())
            .raw("deadline_at", opt_f(self.deadline_at))
            .raw("deadline_span", opt_f(self.deadline_span))
            .u64("deadlines_fired", self.deadlines_fired.into())
            .raw(
                "events",
                json::array(self.events.iter().map(|ev| {
                    json::Obj::new()
                        .str("kind", ev.kind())
                        .f64("at", ev.at())
                        .raw("args", ev.args_json())
                        .finish()
                })),
            )
            .finish()
    }
}

#[derive(Debug, Default)]
struct Forensics {
    /// Per-image `DeadlineFired` counts (bounded, oldest evicted).
    fired: VecDeque<(u64, u32)>,
    reports: VecDeque<ForensicReport>,
}

/// A lock-free ring of the last N events plus anomaly snapshots.
///
/// The steady-state `emit` path is one `fetch_add` to claim a slot and
/// eight relaxed atomic stores — no locks, no allocation, safe to leave
/// attached on the hot path. Readers validate the slot's seqlock stamp
/// and discard torn slots. Two writers lapping each other onto the
/// *same* slot (a full ring wrap during one write) can in principle
/// produce a torn-but-even-stamped slot; decode rejects unknown tags
/// and a garbled forensic event is tolerable telemetry loss, never UB —
/// every access is a plain atomic.
///
/// Anomalies (zero-fill, worker death, a `DeadlineFired` storm past
/// [`FlightRecorderSink::storm_threshold`]) take the forensics mutex,
/// snapshot the ring, and file a [`ForensicReport`] — a cold path by
/// definition.
#[derive(Debug)]
pub struct FlightRecorderSink {
    slots: Box<[Slot]>,
    head: AtomicU64,
    storm_threshold: u32,
    window: usize,
    forensics: Mutex<Forensics>,
}

impl Default for FlightRecorderSink {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl FlightRecorderSink {
    /// Default ring capacity (events). At ~64 B/slot this is ~72 KiB —
    /// deep enough to hold several images' full event history on a 4×4
    /// grid.
    pub const DEFAULT_CAPACITY: usize = 1024;
    /// Default `DeadlineFired`-per-image storm threshold.
    pub const DEFAULT_STORM_THRESHOLD: u32 = 8;
    /// Default cap on events embedded per [`ForensicReport`].
    pub const DEFAULT_WINDOW: usize = 128;
    /// Retained forensic reports (oldest evicted).
    const MAX_REPORTS: usize = 64;
    /// Tracked per-image deadline counters.
    const MAX_FIRED: usize = 64;

    /// A recorder holding the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        let n = capacity.max(1);
        FlightRecorderSink {
            slots: (0..n)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    words: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            head: AtomicU64::new(0),
            storm_threshold: Self::DEFAULT_STORM_THRESHOLD,
            window: Self::DEFAULT_WINDOW,
            forensics: Mutex::new(Forensics::default()),
        }
    }

    /// Set the per-image `DeadlineFired` count that files a
    /// [`Anomaly::DeadlineStorm`] report.
    pub fn with_storm_threshold(mut self, threshold: u32) -> Self {
        self.storm_threshold = threshold.max(1);
        self
    }

    /// The configured storm threshold.
    pub fn storm_threshold(&self) -> u32 {
        self.storm_threshold
    }

    /// Write one event into the ring (the lock-free path).
    fn record(&self, ev: &ObsEvent) {
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len() as u64) as usize;
        let slot = &self.slots[idx];
        let s0 = slot.seq.fetch_add(1, Ordering::Acquire); // odd: writing
        let w = encode(ev);
        for (dst, src) in slot.words.iter().zip(w) {
            dst.store(src, Ordering::Relaxed);
        }
        slot.seq.store(s0.wrapping_add(2), Ordering::Release); // even: done
    }

    fn read_slot(&self, idx: usize) -> Option<ObsEvent> {
        let slot = &self.slots[idx];
        for _ in 0..4 {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                return None; // never written / mid-write
            }
            let mut w = [0u64; SLOT_WORDS];
            for (dst, src) in w.iter_mut().zip(slot.words.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == s1 {
                return decode(&w);
            }
        }
        None // persistently contended slot: treat as lost
    }

    /// The surviving ring contents, oldest first. Concurrent writers
    /// may overwrite slots while this runs; torn slots are skipped.
    pub fn events(&self) -> Vec<ObsEvent> {
        let head = self.head.load(Ordering::Acquire);
        let n = self.slots.len() as u64;
        let (first, count) = if head <= n { (0, head) } else { (head - n, n) };
        let mut out = Vec::with_capacity(count as usize);
        for i in first..first + count {
            if let Some(ev) = self.read_slot((i % n) as usize) {
                out.push(ev);
            }
        }
        out
    }

    /// All forensic reports filed so far, oldest first.
    pub fn reports(&self) -> Vec<ForensicReport> {
        self.forensics.lock().expect("flight recorder poisoned").reports.iter().cloned().collect()
    }

    /// The report for a specific zero-filled tile, if still retained.
    pub fn report_for_tile(&self, image: u64, tile: u32) -> Option<ForensicReport> {
        self.forensics
            .lock()
            .expect("flight recorder poisoned")
            .reports
            .iter()
            .rev()
            .find(|r| r.image == image && r.tile == Some(tile))
            .cloned()
    }

    /// Snapshot the ring and file a report (the cold anomaly path).
    fn file_report(
        &self,
        trigger: Anomaly,
        at: f64,
        image: u64,
        tile: Option<u32>,
        worker: Option<u32>,
    ) {
        let ring = self.events();
        let mut events: Vec<ObsEvent> = ring
            .into_iter()
            .filter(|ev| match trigger {
                // Tile-scoped: the image's events, narrowed to the tile
                // where the event is tile-specific.
                Anomaly::ZeroFill => {
                    ev.image() == image && ev.tile().is_none_or(|t| Some(t) == tile)
                }
                // Worker-scoped: the image's events plus everything the
                // dead worker touched.
                Anomaly::WorkerDead => ev.image() == image || ev.worker() == worker,
                Anomaly::DeadlineStorm => ev.image() == image,
            })
            .collect();
        if events.len() > self.window {
            events.drain(..events.len() - self.window);
        }
        // The owning worker: for a zero-fill, the last dispatch target
        // of the tile still visible in the window.
        let owner = worker.or_else(|| {
            events.iter().rev().find_map(|ev| match *ev {
                ObsEvent::TileDispatch { tile: t, worker: w, .. }
                | ObsEvent::TileRedispatch { tile: t, worker: w, .. }
                    if Some(t) == tile =>
                {
                    Some(w)
                }
                _ => None,
            })
        });
        let rounds = events
            .iter()
            .filter_map(|ev| match *ev {
                ObsEvent::TileRedispatch { round, tile: t, .. }
                    if tile.is_none() || Some(t) == tile =>
                {
                    Some(round)
                }
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let deadline = events.iter().rev().find_map(|ev| match *ev {
            ObsEvent::DeadlineArmed { at, span, .. } => Some((at, span)),
            _ => None,
        });
        let fired_in_window =
            events.iter().filter(|ev| matches!(ev, ObsEvent::DeadlineFired { .. })).count() as u32;
        let mut forensics = self.forensics.lock().expect("flight recorder poisoned");
        let fired_counted =
            forensics.fired.iter().find(|(i, _)| *i == image).map_or(0, |(_, c)| *c);
        forensics.reports.push_back(ForensicReport {
            trigger,
            at,
            image,
            tile,
            worker: owner,
            rounds,
            deadline_at: deadline.map(|(a, _)| a),
            deadline_span: deadline.map(|(_, s)| s),
            deadlines_fired: fired_in_window.max(fired_counted),
            events,
        });
        if forensics.reports.len() > Self::MAX_REPORTS {
            forensics.reports.pop_front();
        }
    }
}

impl EventSink for FlightRecorderSink {
    fn emit(&self, ev: &ObsEvent) {
        self.record(ev);
        match *ev {
            ObsEvent::TileZeroFill { at, image, tile } => {
                self.file_report(Anomaly::ZeroFill, at, image, Some(tile), None);
            }
            ObsEvent::WorkerDead { at, image, worker } => {
                self.file_report(Anomaly::WorkerDead, at, image, None, Some(worker));
            }
            ObsEvent::DeadlineFired { at, image } => {
                let crossed = {
                    let mut forensics = self.forensics.lock().expect("flight recorder poisoned");
                    let count = match forensics.fired.iter_mut().find(|(i, _)| *i == image) {
                        Some((_, c)) => {
                            *c += 1;
                            *c
                        }
                        None => {
                            forensics.fired.push_back((image, 1));
                            if forensics.fired.len() > Self::MAX_FIRED {
                                forensics.fired.pop_front();
                            }
                            1
                        }
                    };
                    count == self.storm_threshold // fire once per image
                };
                if crossed {
                    self.file_report(Anomaly::DeadlineStorm, at, image, None, None);
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Live exposition: Prometheus text format and snapshot diffing
// ---------------------------------------------------------------------------

/// Escape a Prometheus label *value* per the text exposition format:
/// backslash, double-quote, and line-feed become `\\`, `\"`, `\n`.
pub fn prometheus_escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render `labels` as `key="escaped-value"` pairs, comma-joined (no
/// surrounding braces — histogram series append their `le` pair).
fn prometheus_label_pairs(labels: &[(&str, &str)]) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prometheus_escape_label(v)))
        .collect::<Vec<_>>()
        .join(",")
}

impl MetricsSnapshot {
    /// Render in Prometheus text exposition format: one `counter` per
    /// scalar, one `histogram` (cumulative `le` buckets over the log2
    /// boundaries, `+Inf`, `_sum`, `_count`) per histogram, all under
    /// the `adcnn_` namespace, with `# HELP`/`# TYPE` headers.
    pub fn to_prometheus(&self) -> String {
        self.to_prometheus_labeled(&[])
    }

    /// [`MetricsSnapshot::to_prometheus`] with every series carrying the
    /// given labels (values are escaped), e.g.
    /// `adcnn_images_finished_total{tenant="vgg16"} 100`.
    pub fn to_prometheus_labeled(&self, labels: &[(&str, &str)]) -> String {
        self.render_prometheus(labels, true)
    }

    /// Labeled rendering with optional `# HELP`/`# TYPE` headers. The
    /// exposition format wants headers once per metric name, so a
    /// registry of shards renders its first shard with headers and the
    /// labeled shards without.
    pub fn render_prometheus(&self, labels: &[(&str, &str)], headers: bool) -> String {
        let mut out = String::with_capacity(4096);
        let pairs = prometheus_label_pairs(labels);
        let plain = if pairs.is_empty() { String::new() } else { format!("{{{pairs}}}") };
        let mut counter = |name: &str, help: &str, v: u64| {
            if headers {
                out.push_str(&format!("# HELP adcnn_{name} {help}\n# TYPE adcnn_{name} counter\n"));
            }
            out.push_str(&format!("adcnn_{name}{plain} {v}\n"));
        };
        counter("images_started_total", "Images whose lifecycle began.", self.images_started);
        counter("images_finished_total", "Images that completed.", self.images_finished);
        counter("tiles_dispatched_total", "Round-0 tile send attempts.", self.tiles_dispatched);
        counter(
            "tiles_redispatched_total",
            "Recovery tile send attempts.",
            self.tiles_redispatched,
        );
        counter("tiles_arrived_total", "Accepted (fresh, decodable) results.", self.tiles_arrived);
        counter("tiles_duplicate_total", "Discarded duplicate results.", self.tiles_duplicate);
        counter("tiles_late_total", "Results after image completion.", self.tiles_late);
        counter("tiles_corrupt_total", "Results that failed to decode.", self.tiles_corrupt);
        counter("tiles_zero_filled_total", "Tiles zero-filled.", self.tiles_zero_filled);
        counter("deadlines_armed_total", "Deadline timers armed.", self.deadlines_armed);
        counter("deadlines_fired_total", "Live deadline firings.", self.deadlines_fired);
        counter("workers_died_total", "Positively-observed worker deaths.", self.workers_died);
        counter(
            "workers_suspected_total",
            "Silent-fault suspicions raised.",
            self.workers_suspected,
        );
        counter("workers_cleared_total", "Suspicions cleared.", self.workers_cleared);
        counter("rate_updates_total", "Algorithm 2 EWMA observations.", self.rate_updates);
        counter(
            "compressed_bytes_total",
            "Compressed payload bytes shipped.",
            self.compressed_bytes,
        );
        counter(
            "images_admitted_total",
            "Images admitted into the pipeline.",
            self.images_admitted,
        );
        counter("nodes_up_total", "Node up-transitions observed.", self.nodes_up);
        counter("nodes_down_total", "Node down-transitions observed.", self.nodes_down);
        counter(
            "placements_decided_total",
            "Placement decisions produced.",
            self.placements_decided,
        );
        if headers {
            out.push_str(
                "# HELP adcnn_inflight_depth Last observed concurrent-image count.\n# TYPE adcnn_inflight_depth gauge\n",
            );
        }
        out.push_str(&format!("adcnn_inflight_depth{plain} {}\n", self.inflight_depth));
        let mut histogram = |name: &str, help: &str, h: &HistogramSnapshot| {
            if headers {
                out.push_str(&format!(
                    "# HELP adcnn_{name} {help}\n# TYPE adcnn_{name} histogram\n"
                ));
            }
            let le_pairs = |le: &str| {
                if pairs.is_empty() {
                    format!("{{le=\"{le}\"}}")
                } else {
                    format!("{{{pairs},le=\"{le}\"}}")
                }
            };
            let mut cum = 0u64;
            for (b, n) in h.buckets.iter().enumerate() {
                cum += n;
                // bucket b counts v < 2^b (v == 0 for b == 0), so the
                // inclusive upper bound is 2^b - 1.
                let le = if b == 0 { 0 } else { (1u64 << b) - 1 };
                out.push_str(&format!("adcnn_{name}_bucket{} {cum}\n", le_pairs(&le.to_string())));
            }
            out.push_str(&format!("adcnn_{name}_bucket{} {}\n", le_pairs("+Inf"), h.count));
            out.push_str(&format!("adcnn_{name}_sum{plain} {}\n", h.sum));
            out.push_str(&format!("adcnn_{name}_count{plain} {}\n", h.count));
        };
        histogram("compute_us", "Per-tile prefix compute time, us.", &self.compute_us);
        histogram("compress_us", "Per-tile clip/quantize/RLE time, us.", &self.compress_us);
        histogram("transfer_us", "Per-tile transfer time, us.", &self.transfer_us);
        histogram("image_latency_us", "End-to-end image latency, us.", &self.image_latency_us);
        histogram(
            "compressed_tile_bytes",
            "Per-tile compressed payload size, bytes.",
            &self.compressed_tile_bytes,
        );
        histogram("queue_wait_us", "Intake-queue wait before admission, us.", &self.queue_wait_us);
        out
    }
}

/// One interval's rates and latency quantiles, produced by
/// [`Reporter::sample`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReporterSample {
    /// Interval length the rates are normalized over.
    pub elapsed_s: f64,
    /// Images finished in the interval.
    pub images: u64,
    /// Throughput over the interval.
    pub images_per_s: f64,
    /// Interpolated median image latency (µs) over the interval.
    pub p50_latency_us: Option<f64>,
    /// Interpolated 99th-percentile image latency (µs).
    pub p99_latency_us: Option<f64>,
    /// Zero-filled tiles / delivered tiles (zero-filled + arrived).
    pub zero_fill_rate: f64,
    /// Re-dispatch attempts / round-0 dispatches.
    pub redispatch_rate: f64,
    /// In-flight depth gauge at sample time.
    pub inflight_depth: u64,
    /// Interpolated median intake-queue wait (µs) over the interval.
    pub p50_queue_wait_us: Option<f64>,
}

impl ReporterSample {
    /// A one-line human-readable summary (the live log format).
    pub fn line(&self) -> String {
        let q = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.0}"));
        format!(
            "{:7.1} img/s | p50 {:>8} µs | p99 {:>8} µs | zero-fill {:5.2}% | redispatch {:5.2}% | in-flight {:>2} | queue p50 {:>8} µs",
            self.images_per_s,
            q(self.p50_latency_us),
            q(self.p99_latency_us),
            self.zero_fill_rate * 100.0,
            self.redispatch_rate * 100.0,
            self.inflight_depth,
            q(self.p50_queue_wait_us),
        )
    }
}

/// Diffs successive [`MetricsSnapshot`]s into per-interval
/// [`ReporterSample`]s, so a long run can be narrated live (quantiles
/// are computed on the interval's histogram delta via
/// [`HistogramSnapshot::quantile`], not on raw buckets).
#[derive(Debug, Default)]
pub struct Reporter {
    prev: MetricsSnapshot,
}

/// Bucket-wise histogram delta (saturating, in case of snapshot skew).
fn hist_delta(cur: &HistogramSnapshot, prev: &HistogramSnapshot) -> HistogramSnapshot {
    let buckets = cur
        .buckets
        .iter()
        .enumerate()
        .map(|(i, b)| b.saturating_sub(prev.buckets.get(i).copied().unwrap_or(0)))
        .collect();
    HistogramSnapshot {
        buckets,
        count: cur.count.saturating_sub(prev.count),
        sum: cur.sum.saturating_sub(prev.sum),
    }
}

impl Reporter {
    /// A reporter whose first sample covers everything since the sink
    /// was created.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in the latest snapshot, diffing against the previous one;
    /// `elapsed_s` is the wall (or simulated) time since that previous
    /// sample.
    pub fn sample(&mut self, snap: &MetricsSnapshot, elapsed_s: f64) -> ReporterSample {
        let d = |cur: u64, prev: u64| cur.saturating_sub(prev);
        let images = d(snap.images_finished, self.prev.images_finished);
        let latency = hist_delta(&snap.image_latency_us, &self.prev.image_latency_us);
        let arrived = d(snap.tiles_arrived, self.prev.tiles_arrived);
        let zero_filled = d(snap.tiles_zero_filled, self.prev.tiles_zero_filled);
        let dispatched = d(snap.tiles_dispatched, self.prev.tiles_dispatched);
        let redispatched = d(snap.tiles_redispatched, self.prev.tiles_redispatched);
        let queue_wait = hist_delta(&snap.queue_wait_us, &self.prev.queue_wait_us);
        let sample = ReporterSample {
            elapsed_s,
            images,
            images_per_s: images as f64 / elapsed_s.max(1e-9),
            p50_latency_us: latency.p50(),
            p99_latency_us: latency.p99(),
            zero_fill_rate: zero_filled as f64 / (zero_filled + arrived).max(1) as f64,
            redispatch_rate: redispatched as f64 / dispatched.max(1) as f64,
            inflight_depth: snap.inflight_depth,
            p50_queue_wait_us: queue_wait.p50(),
        };
        self.prev = snap.clone();
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{MetricsSink, SinkHandle};
    use std::sync::Arc;

    fn assert_json(s: &str) {
        assert!(json::is_well_formed(s), "malformed JSON: {s}");
    }

    /// A healthy 2-tile image with runtime-style spans: the breakdown
    /// must sum exactly and pick the later tile as critical.
    #[test]
    fn attribution_decomposes_exactly_and_picks_critical_tile() {
        let a = Arc::new(AttributionSink::new());
        let h = SinkHandle::new(a.clone());
        h.emit_with(|| ObsEvent::ImageStart { at: 1.0, image: 5, tiles: 2, placed: 2 });
        h.emit_with(|| ObsEvent::TileDispatch { at: 1.0, image: 5, tile: 0, worker: 0 });
        h.emit_with(|| ObsEvent::TileDispatch { at: 1.0, image: 5, tile: 1, worker: 1 });
        // tile 0: queue 0.010, compute 0.020, compress 0.005, arrival at
        // 1.040 → transfer residual 0.005
        h.emit_with(|| ObsEvent::TileCompute {
            at: 1.030,
            image: 5,
            tile: 0,
            worker: 0,
            dur: 0.020,
        });
        h.emit_with(|| ObsEvent::TileCompress {
            at: 1.035,
            image: 5,
            tile: 0,
            worker: 0,
            dur: 0.005,
            bytes: 100,
            ratio: 0.1,
        });
        h.emit_with(|| ObsEvent::TileArrival { at: 1.040, image: 5, tile: 0, worker: 0 });
        // tile 1: compute-dominated, arrives later → critical
        h.emit_with(|| ObsEvent::TileCompute {
            at: 1.060,
            image: 5,
            tile: 1,
            worker: 1,
            dur: 0.055,
        });
        h.emit_with(|| ObsEvent::TileArrival { at: 1.070, image: 5, tile: 1, worker: 1 });
        h.emit_with(|| ObsEvent::ImageFinish {
            at: 1.080,
            image: 5,
            latency: 0.080,
            zero_filled: 0,
            redispatched: 0,
        });

        let r = a.report_for(5).expect("image 5 finished");
        assert_eq!(r.tiles.len(), 2);
        let t0 = &r.tiles[0];
        assert!((t0.queue_wait_s - 0.010).abs() < 1e-12, "{t0:?}");
        assert!((t0.compute_s - 0.020).abs() < 1e-12);
        assert!((t0.compress_s - 0.005).abs() < 1e-12);
        assert!((t0.total_s() - 0.040).abs() < 1e-12);
        assert_eq!(r.critical_tile, Some(1));
        assert_eq!(r.dominant_phase, Phase::Compute);
        assert!((r.merge_s - 0.010).abs() < 1e-12);
        // exact per-tile identity: phases sum to the open interval
        for t in &r.tiles {
            assert!((t.total_s() - (t.done_at - t.dispatch_at)).abs() < 1e-12);
        }
        assert_json(&r.to_json());

        let agg = a.aggregate();
        assert_eq!(agg.images, 1);
        assert_eq!(agg.dominant[1], 1); // compute-dominant
        assert_json(&agg.to_json());
    }

    #[test]
    fn zero_filled_and_redispatched_tiles_are_attributed() {
        let a = Arc::new(AttributionSink::new());
        let h = SinkHandle::new(a.clone());
        h.emit_with(|| ObsEvent::ImageStart { at: 0.0, image: 0, tiles: 2, placed: 2 });
        h.emit_with(|| ObsEvent::TileDispatch { at: 0.0, image: 0, tile: 0, worker: 0 });
        h.emit_with(|| ObsEvent::TileDispatch { at: 0.0, image: 0, tile: 1, worker: 1 });
        h.emit_with(|| ObsEvent::TileArrival { at: 0.02, image: 0, tile: 0, worker: 0 });
        h.emit_with(|| ObsEvent::TileRedispatch {
            at: 0.05,
            image: 0,
            tile: 1,
            worker: 0,
            round: 1,
        });
        h.emit_with(|| ObsEvent::TileZeroFill { at: 0.10, image: 0, tile: 1 });
        h.emit_with(|| ObsEvent::ImageFinish {
            at: 0.10,
            image: 0,
            latency: 0.10,
            zero_filled: 1,
            redispatched: 1,
        });
        let r = a.report_for(0).expect("finished");
        let t1 = r.tiles.iter().find(|t| t.tile == 1).expect("tile 1 reported");
        assert!(t1.zero_filled);
        assert_eq!(t1.rounds, 1);
        assert_eq!(t1.worker, Some(0)); // owner = last dispatch target
        assert!((t1.dispatch_at - 0.05).abs() < 1e-12); // window restarts at re-dispatch
        assert!((t1.queue_wait_s - 0.05).abs() < 1e-12); // open interval → queue-wait
                                                         // the zero-filled tile completed last → critical
        assert_eq!(r.critical_tile, Some(1));
        assert_eq!(r.dominant_phase, Phase::QueueWait);
    }

    #[test]
    fn attribution_memory_is_bounded() {
        let a = Arc::new(AttributionSink::with_retention(8));
        let h = SinkHandle::new(a.clone());
        for img in 0..(AttributionSink::MAX_INFLIGHT as u64 + 40) {
            h.emit_with(|| ObsEvent::ImageStart {
                at: img as f64,
                image: img,
                tiles: 1,
                placed: 1,
            });
        }
        // never finished: inflight evicted down to the cap, no reports
        assert!(a.reports().is_empty());
        for img in 0..20u64 {
            h.emit_with(|| ObsEvent::ImageFinish {
                at: img as f64 + 0.5,
                image: 1000 + img, // unknown images are ignored
                latency: 0.5,
                zero_filled: 0,
                redispatched: 0,
            });
        }
        assert_eq!(a.aggregate().images, 0);
        // finish tracked images: retention keeps only the last 8
        for img in 40..(AttributionSink::MAX_INFLIGHT as u64 + 40) {
            h.emit_with(|| ObsEvent::ImageFinish {
                at: img as f64 + 0.5,
                image: img,
                latency: 0.5,
                zero_filled: 0,
                redispatched: 0,
            });
        }
        assert_eq!(a.reports().len(), 8);
        assert_eq!(a.aggregate().images, AttributionSink::MAX_INFLIGHT as u64);
        assert!(a.report_for(40).is_none(), "evicted by retention cap");
    }

    #[test]
    fn recorder_encode_decode_roundtrips_every_variant() {
        let evs = [
            ObsEvent::ImageStart { at: 0.5, image: 1, tiles: 16, placed: 12 },
            ObsEvent::ImageFinish {
                at: 1.5,
                image: 1,
                latency: 1.0,
                zero_filled: 4,
                redispatched: 2,
            },
            ObsEvent::TileDispatch { at: 0.5, image: 1, tile: 3, worker: 2 },
            ObsEvent::TileRedispatch { at: 0.7, image: 1, tile: 3, worker: 0, round: 2 },
            ObsEvent::TileArrival { at: 0.9, image: 1, tile: 3, worker: 0 },
            ObsEvent::TileDuplicate { at: 0.91, image: 1, tile: 3, worker: 2 },
            ObsEvent::TileLate { at: 1.6, image: 1, tile: 5, worker: 2 },
            ObsEvent::TileCorrupt { at: 0.8, image: 1, tile: 4, worker: 1 },
            ObsEvent::TileZeroFill { at: 1.5, image: 1, tile: 5 },
            ObsEvent::DeadlineArmed { at: 0.5, image: 1, span: 0.125 },
            ObsEvent::DeadlineFired { at: 0.625, image: 1 },
            ObsEvent::WorkerDead { at: 0.6, image: 1, worker: 2 },
            ObsEvent::WorkerSuspect { at: 0.62, image: 1, worker: 3 },
            ObsEvent::WorkerCleared { at: 0.64, image: 1, worker: 3 },
            ObsEvent::RateUpdate { at: 1.5, image: 1, worker: 0, rate: 3.25 },
            ObsEvent::TileCompute { at: 0.8, image: 1, tile: 3, worker: 0, dur: 0.25 },
            ObsEvent::TileCompress {
                at: 0.85,
                image: 1,
                tile: 3,
                worker: 0,
                dur: 0.05,
                bytes: 777,
                ratio: 0.125,
            },
            ObsEvent::TileTransfer { at: 0.9, image: 1, tile: 3, worker: 0, dur: 0.05 },
            ObsEvent::ImageAdmitted { at: 0.4, image: 1, queue_wait: 0.025, inflight: 4 },
            ObsEvent::ImageRetired { at: 1.5, image: 1, inflight: 3 },
            ObsEvent::NodeUp { at: 2.0, node: 7 },
            ObsEvent::NodeDown { at: 2.5, node: 7 },
            ObsEvent::PlacementDecided {
                at: 2.5,
                cause: 2,
                node: 7,
                tenants: 2,
                live_nodes: 5,
                seq: 3,
            },
            ObsEvent::TenantAdmit { at: 0.4, image: 1, tenant: 1, queue_wait: 0.025 },
            ObsEvent::TenantFinish {
                at: 1.5,
                image: 1,
                tenant: 1,
                latency: 1.1,
                zero_filled: 4,
                tiles: 16,
            },
        ];
        for ev in evs {
            assert_eq!(decode(&encode(&ev)), Some(ev));
        }
        assert_eq!(decode(&[99, 0, 0, 0, 0, 0, 0]), None);
    }

    #[test]
    fn recorder_ring_keeps_last_n_in_order() {
        let r = FlightRecorderSink::new(8);
        for i in 0..20u64 {
            r.emit(&ObsEvent::DeadlineArmed { at: i as f64, image: i, span: 0.1 });
        }
        let evs = r.events();
        assert_eq!(evs.len(), 8);
        let images: Vec<u64> = evs.iter().map(|e| e.image()).collect();
        assert_eq!(images, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn zero_fill_files_forensic_report_with_owner_rounds_and_deadline() {
        let r = Arc::new(FlightRecorderSink::new(256));
        let h = SinkHandle::new(r.clone());
        h.emit_with(|| ObsEvent::ImageStart { at: 0.0, image: 3, tiles: 2, placed: 2 });
        h.emit_with(|| ObsEvent::TileDispatch { at: 0.0, image: 3, tile: 0, worker: 1 });
        h.emit_with(|| ObsEvent::TileDispatch { at: 0.0, image: 3, tile: 1, worker: 2 });
        h.emit_with(|| ObsEvent::DeadlineArmed { at: 0.0, image: 3, span: 0.040 });
        h.emit_with(|| ObsEvent::TileArrival { at: 0.01, image: 3, tile: 0, worker: 1 });
        h.emit_with(|| ObsEvent::DeadlineFired { at: 0.040, image: 3 });
        h.emit_with(|| ObsEvent::TileRedispatch {
            at: 0.040,
            image: 3,
            tile: 1,
            worker: 1,
            round: 1,
        });
        h.emit_with(|| ObsEvent::DeadlineArmed { at: 0.040, image: 3, span: 0.060 });
        h.emit_with(|| ObsEvent::DeadlineFired { at: 0.100, image: 3 });
        h.emit_with(|| ObsEvent::TileZeroFill { at: 0.100, image: 3, tile: 1 });

        let rep = r.report_for_tile(3, 1).expect("zero-fill filed a report");
        assert_eq!(rep.trigger, Anomaly::ZeroFill);
        assert_eq!(rep.worker, Some(1), "owner = last re-dispatch target");
        assert_eq!(rep.rounds, 1);
        assert_eq!(rep.deadline_at, Some(0.040));
        assert_eq!(rep.deadline_span, Some(0.060));
        assert_eq!(rep.deadlines_fired, 2);
        assert!(!rep.events.is_empty());
        // tile-scoped filtering: no events of the other tile
        assert!(rep.events.iter().all(|e| e.tile().is_none_or(|t| t == 1)));
        assert_json(&rep.to_json());
    }

    #[test]
    fn worker_death_and_deadline_storm_file_reports() {
        let r = Arc::new(FlightRecorderSink::new(128).with_storm_threshold(3));
        let h = SinkHandle::new(r.clone());
        h.emit_with(|| ObsEvent::WorkerDead { at: 0.5, image: 7, worker: 4 });
        for i in 0..5 {
            h.emit_with(|| ObsEvent::DeadlineFired { at: 0.6 + 0.1 * i as f64, image: 7 });
        }
        let reports = r.reports();
        assert_eq!(reports.len(), 2, "one worker-dead, one storm (fired once)");
        assert_eq!(reports[0].trigger, Anomaly::WorkerDead);
        assert_eq!(reports[0].worker, Some(4));
        assert_eq!(reports[1].trigger, Anomaly::DeadlineStorm);
        assert_eq!(reports[1].deadlines_fired, 3);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_complete() {
        let m = Arc::new(MetricsSink::new());
        let h = SinkHandle::new(m.clone());
        h.emit_with(|| ObsEvent::ImageStart { at: 0.0, image: 0, tiles: 1, placed: 1 });
        h.emit_with(|| ObsEvent::TileCompute {
            at: 0.01,
            image: 0,
            tile: 0,
            worker: 0,
            dur: 0.003,
        });
        h.emit_with(|| ObsEvent::TileCompute {
            at: 0.02,
            image: 0,
            tile: 0,
            worker: 0,
            dur: 0.007,
        });
        h.emit_with(|| ObsEvent::ImageAdmitted {
            at: 0.0,
            image: 0,
            queue_wait: 0.001,
            inflight: 1,
        });
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE adcnn_images_started_total counter"));
        assert!(text.contains("adcnn_images_started_total 1\n"));
        assert!(text.contains("# TYPE adcnn_inflight_depth gauge"));
        assert!(text.contains("adcnn_inflight_depth 1\n"));
        assert!(text.contains("adcnn_images_admitted_total 1\n"));
        assert!(text.contains("adcnn_queue_wait_us_count 1\n"));
        // 3000 µs and 7000 µs land in buckets 12 and 13; cumulative
        // counts must be monotone and end at the total
        assert!(text.contains("adcnn_compute_us_bucket{le=\"4095\"} 1\n"), "{text}");
        assert!(text.contains("adcnn_compute_us_bucket{le=\"8191\"} 2\n"));
        assert!(text.contains("adcnn_compute_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("adcnn_compute_us_sum 10000\n"));
        assert!(text.contains("adcnn_compute_us_count 2\n"));
        assert!(text.ends_with('\n'));
    }

    /// Full-format pin for the unlabeled exposition: metric order,
    /// `# HELP`/`# TYPE` headers, names, and the empty-histogram shape
    /// are all golden. A change here is a dashboard-breaking change.
    #[test]
    fn prometheus_format_is_pinned() {
        let text = MetricsSnapshot::default().to_prometheus();
        let expected = concat!(
            "# HELP adcnn_images_started_total Images whose lifecycle began.\n",
            "# TYPE adcnn_images_started_total counter\n",
            "adcnn_images_started_total 0\n",
            "# HELP adcnn_images_finished_total Images that completed.\n",
            "# TYPE adcnn_images_finished_total counter\n",
            "adcnn_images_finished_total 0\n",
            "# HELP adcnn_tiles_dispatched_total Round-0 tile send attempts.\n",
            "# TYPE adcnn_tiles_dispatched_total counter\n",
            "adcnn_tiles_dispatched_total 0\n",
            "# HELP adcnn_tiles_redispatched_total Recovery tile send attempts.\n",
            "# TYPE adcnn_tiles_redispatched_total counter\n",
            "adcnn_tiles_redispatched_total 0\n",
            "# HELP adcnn_tiles_arrived_total Accepted (fresh, decodable) results.\n",
            "# TYPE adcnn_tiles_arrived_total counter\n",
            "adcnn_tiles_arrived_total 0\n",
            "# HELP adcnn_tiles_duplicate_total Discarded duplicate results.\n",
            "# TYPE adcnn_tiles_duplicate_total counter\n",
            "adcnn_tiles_duplicate_total 0\n",
            "# HELP adcnn_tiles_late_total Results after image completion.\n",
            "# TYPE adcnn_tiles_late_total counter\n",
            "adcnn_tiles_late_total 0\n",
            "# HELP adcnn_tiles_corrupt_total Results that failed to decode.\n",
            "# TYPE adcnn_tiles_corrupt_total counter\n",
            "adcnn_tiles_corrupt_total 0\n",
            "# HELP adcnn_tiles_zero_filled_total Tiles zero-filled.\n",
            "# TYPE adcnn_tiles_zero_filled_total counter\n",
            "adcnn_tiles_zero_filled_total 0\n",
            "# HELP adcnn_deadlines_armed_total Deadline timers armed.\n",
            "# TYPE adcnn_deadlines_armed_total counter\n",
            "adcnn_deadlines_armed_total 0\n",
            "# HELP adcnn_deadlines_fired_total Live deadline firings.\n",
            "# TYPE adcnn_deadlines_fired_total counter\n",
            "adcnn_deadlines_fired_total 0\n",
            "# HELP adcnn_workers_died_total Positively-observed worker deaths.\n",
            "# TYPE adcnn_workers_died_total counter\n",
            "adcnn_workers_died_total 0\n",
            "# HELP adcnn_workers_suspected_total Silent-fault suspicions raised.\n",
            "# TYPE adcnn_workers_suspected_total counter\n",
            "adcnn_workers_suspected_total 0\n",
            "# HELP adcnn_workers_cleared_total Suspicions cleared.\n",
            "# TYPE adcnn_workers_cleared_total counter\n",
            "adcnn_workers_cleared_total 0\n",
            "# HELP adcnn_rate_updates_total Algorithm 2 EWMA observations.\n",
            "# TYPE adcnn_rate_updates_total counter\n",
            "adcnn_rate_updates_total 0\n",
            "# HELP adcnn_compressed_bytes_total Compressed payload bytes shipped.\n",
            "# TYPE adcnn_compressed_bytes_total counter\n",
            "adcnn_compressed_bytes_total 0\n",
            "# HELP adcnn_images_admitted_total Images admitted into the pipeline.\n",
            "# TYPE adcnn_images_admitted_total counter\n",
            "adcnn_images_admitted_total 0\n",
            "# HELP adcnn_nodes_up_total Node up-transitions observed.\n",
            "# TYPE adcnn_nodes_up_total counter\n",
            "adcnn_nodes_up_total 0\n",
            "# HELP adcnn_nodes_down_total Node down-transitions observed.\n",
            "# TYPE adcnn_nodes_down_total counter\n",
            "adcnn_nodes_down_total 0\n",
            "# HELP adcnn_placements_decided_total Placement decisions produced.\n",
            "# TYPE adcnn_placements_decided_total counter\n",
            "adcnn_placements_decided_total 0\n",
            "# HELP adcnn_inflight_depth Last observed concurrent-image count.\n",
            "# TYPE adcnn_inflight_depth gauge\n",
            "adcnn_inflight_depth 0\n",
            "# HELP adcnn_compute_us Per-tile prefix compute time, us.\n",
            "# TYPE adcnn_compute_us histogram\n",
            "adcnn_compute_us_bucket{le=\"+Inf\"} 0\n",
            "adcnn_compute_us_sum 0\n",
            "adcnn_compute_us_count 0\n",
            "# HELP adcnn_compress_us Per-tile clip/quantize/RLE time, us.\n",
            "# TYPE adcnn_compress_us histogram\n",
            "adcnn_compress_us_bucket{le=\"+Inf\"} 0\n",
            "adcnn_compress_us_sum 0\n",
            "adcnn_compress_us_count 0\n",
            "# HELP adcnn_transfer_us Per-tile transfer time, us.\n",
            "# TYPE adcnn_transfer_us histogram\n",
            "adcnn_transfer_us_bucket{le=\"+Inf\"} 0\n",
            "adcnn_transfer_us_sum 0\n",
            "adcnn_transfer_us_count 0\n",
            "# HELP adcnn_image_latency_us End-to-end image latency, us.\n",
            "# TYPE adcnn_image_latency_us histogram\n",
            "adcnn_image_latency_us_bucket{le=\"+Inf\"} 0\n",
            "adcnn_image_latency_us_sum 0\n",
            "adcnn_image_latency_us_count 0\n",
            "# HELP adcnn_compressed_tile_bytes Per-tile compressed payload size, bytes.\n",
            "# TYPE adcnn_compressed_tile_bytes histogram\n",
            "adcnn_compressed_tile_bytes_bucket{le=\"+Inf\"} 0\n",
            "adcnn_compressed_tile_bytes_sum 0\n",
            "adcnn_compressed_tile_bytes_count 0\n",
            "# HELP adcnn_queue_wait_us Intake-queue wait before admission, us.\n",
            "# TYPE adcnn_queue_wait_us histogram\n",
            "adcnn_queue_wait_us_bucket{le=\"+Inf\"} 0\n",
            "adcnn_queue_wait_us_sum 0\n",
            "adcnn_queue_wait_us_count 0\n",
        );
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_labels_are_escaped_and_merged_into_le_pairs() {
        let m = Arc::new(MetricsSink::new());
        let h = SinkHandle::new(m.clone());
        h.emit_with(|| ObsEvent::ImageFinish {
            at: 0.05,
            image: 0,
            latency: 0.003,
            zero_filled: 0,
            redispatched: 0,
        });
        let labels = [("tenant", "a\"b\\c\nd"), ("node", "3")];
        let text = m.snapshot().to_prometheus_labeled(&labels);
        // backslash, quote, and newline are escaped in the value
        assert!(
            text.contains("adcnn_images_finished_total{tenant=\"a\\\"b\\\\c\\nd\",node=\"3\"} 1\n"),
            "{text}"
        );
        // histogram series merge the shard labels with their le pair
        assert!(text.contains(
            "adcnn_image_latency_us_bucket{tenant=\"a\\\"b\\\\c\\nd\",node=\"3\",le=\"+Inf\"} 1\n"
        ));
        assert!(text
            .contains("adcnn_image_latency_us_count{tenant=\"a\\\"b\\\\c\\nd\",node=\"3\"} 1\n"));
        // headers carry no labels, and headerless rendering drops them
        assert!(text.contains("# TYPE adcnn_images_finished_total counter\n"));
        let bare = m.snapshot().render_prometheus(&labels, false);
        assert!(!bare.contains("# HELP"));
        assert!(!bare.contains("# TYPE"));
    }

    #[test]
    fn reporter_diffs_successive_snapshots() {
        let m = Arc::new(MetricsSink::new());
        let h = SinkHandle::new(m.clone());
        let mut rep = Reporter::new();
        for i in 0..10u64 {
            h.emit_with(|| ObsEvent::TileDispatch { at: 0.0, image: i, tile: 0, worker: 0 });
            h.emit_with(|| ObsEvent::TileArrival { at: 0.01, image: i, tile: 0, worker: 0 });
            h.emit_with(|| ObsEvent::ImageFinish {
                at: 0.05,
                image: i,
                latency: 0.010, // 10_000 µs → bucket 14 [8192, 16384)
                zero_filled: 0,
                redispatched: 0,
            });
        }
        let s1 = rep.sample(&m.snapshot(), 2.0);
        assert_eq!(s1.images, 10);
        assert!((s1.images_per_s - 5.0).abs() < 1e-9);
        assert_eq!(s1.zero_fill_rate, 0.0);
        let p50 = s1.p50_latency_us.expect("latencies recorded");
        assert!((8192.0..16384.0).contains(&p50), "{p50}");
        assert!(!s1.line().is_empty());

        // second interval: one zero-fill out of one delivered tile
        h.emit_with(|| ObsEvent::TileDispatch { at: 0.1, image: 10, tile: 0, worker: 0 });
        h.emit_with(|| ObsEvent::TileZeroFill { at: 0.2, image: 10, tile: 0 });
        let s2 = rep.sample(&m.snapshot(), 1.0);
        assert_eq!(s2.images, 0);
        assert_eq!(s2.zero_fill_rate, 1.0);
        assert_eq!(s2.p50_latency_us, None, "no images finished this interval");
    }
}
