//! The §4 communication-reduction pipeline.
//!
//! Conv-node outputs pass through three stages before hitting the network:
//!
//! 1. **Clipped `ReLU[a,b]`** (§4.1, [`adcnn_tensor::activ::ClippedRelu`]):
//!    zeroes everything below `a` and saturates above `b`, producing sparse
//!    activations bounded to `[0, b−a]`.
//! 2. **4-bit linear quantization** (§4.2, [`Quantizer`]): non-zero values
//!    are rounded to one of 15 uniform levels; zero stays level 0.
//! 3. **Run-length encoding** (§4.3, [`RleCodec`]): zero runs collapse to
//!    run tokens in a nibble stream.
//!
//! [`compress`]/[`decompress`] run the full pipeline with exact byte
//! accounting, and [`wire_bits_estimate`] is the closed-form size model the
//! discrete-event simulator uses at Raspberry-Pi-cluster scale (validated
//! against the real codec in this module's tests).

use adcnn_tensor::activ::ClippedRelu;
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Linear quantizer over `[0, range]` with `2^bits − 1` non-zero levels.
///
/// Level 0 is reserved for exact zero so that the sparsity created by the
/// clipped ReLU survives quantization and can be run-length encoded.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Quantizer {
    /// Bit width; the paper uses 4.
    pub bits: u8,
    /// Representable range `[0, range]`; with a preceding `ReLU[a,b]` this
    /// is `b − a`.
    pub range: f32,
}

impl Quantizer {
    /// Construct; panics unless `1 ≤ bits ≤ 8` and `range > 0`.
    pub fn new(bits: u8, range: f32) -> Self {
        assert!((1..=8).contains(&bits), "bits must be in 1..=8 for the wire codec");
        assert!(range > 0.0, "range must be positive");
        Quantizer { bits, range }
    }

    /// The paper's configuration: 4 bits over the clipped ReLU's range.
    pub fn paper_default(cr: ClippedRelu) -> Self {
        Quantizer::new(4, cr.range())
    }

    /// Number of levels including zero (`2^bits`).
    #[inline]
    pub fn level_count(&self) -> u32 {
        1u32 << self.bits
    }

    /// Quantize one value to its level index (0 = zero).
    #[inline]
    pub fn level(&self, x: f32) -> u8 {
        let max = (self.level_count() - 1) as f32;
        let x = x.clamp(0.0, self.range);
        (x / self.range * max).round() as u8
    }

    /// Reconstruct the value of a level index.
    #[inline]
    pub fn value(&self, level: u8) -> f32 {
        let max = (self.level_count() - 1) as f32;
        level.min(max as u8) as f32 * self.range / max
    }

    /// Quantize a slice to level indices.
    pub fn quantize(&self, xs: &[f32]) -> Vec<u8> {
        xs.iter().map(|&x| self.level(x)).collect()
    }

    /// Quantize into a reusable buffer (clears `out` first; capacity is
    /// kept, so steady-state calls do not allocate).
    pub fn quantize_into(&self, xs: &[f32], out: &mut Vec<u8>) {
        out.clear();
        out.extend(xs.iter().map(|&x| self.level(x)));
    }

    /// Dequantize level indices back to floats.
    pub fn dequantize(&self, levels: &[u8]) -> Vec<f32> {
        levels.iter().map(|&l| self.value(l)).collect()
    }

    /// Largest round-trip error: half a quantization step.
    pub fn max_error(&self) -> f32 {
        self.range / (self.level_count() - 1) as f32 / 2.0
    }
}

/// Nibble-oriented run-length codec for quantized 4-bit level streams.
///
/// Token grammar:
/// - nibble `v ∈ 1..=15`: a literal non-zero level `v`;
/// - nibble `0` followed by a **varint run length**: nibbles whose low 3
///   bits carry data (little-endian groups) and whose high bit means
///   "continue"; the decoded value is `run − 1`.
///
/// So a run of 1–8 zeros costs 2 nibbles, up to 64 costs 3, and the length
/// is unbounded — matching the paper's "consecutive zeros are stored as a
/// single counter" (§4.3) without a cap that would floor the compression
/// ratio. The nibble stream is packed high-nibble-first into bytes.
#[derive(Clone, Copy, Debug, Default)]
pub struct RleCodec;

/// Packs a nibble stream into bytes, high nibble first (a trailing odd
/// nibble leaves the low half zero) — the wire format of [`RleCodec`].
struct NibblePacker<'a> {
    out: &'a mut Vec<u8>,
    /// True when the last byte's low nibble is still free.
    half: bool,
}

impl NibblePacker<'_> {
    #[inline]
    fn push(&mut self, nib: u8) {
        debug_assert!(nib <= 15);
        if self.half {
            *self.out.last_mut().unwrap() |= nib;
            self.half = false;
        } else {
            self.out.push(nib << 4);
            self.half = true;
        }
    }
}

impl RleCodec {
    /// Encode a level stream (values must fit in a nibble, i.e. `<= 15`).
    pub fn encode(&self, levels: &[u8]) -> Bytes {
        let mut out = Vec::with_capacity(levels.len() / 2 + 2);
        self.encode_into(levels, &mut out);
        Bytes::from(out)
    }

    /// [`RleCodec::encode`] into a reusable byte buffer (cleared first,
    /// capacity kept). Produces exactly the same bytes as `encode`.
    pub fn encode_into(&self, levels: &[u8], out: &mut Vec<u8>) {
        out.clear();
        let mut packer = NibblePacker { out, half: false };
        let mut i = 0usize;
        while i < levels.len() {
            let v = levels[i];
            debug_assert!(v <= 15, "level {v} does not fit in a nibble");
            if v == 0 {
                let mut run = 0usize;
                while i < levels.len() && levels[i] == 0 {
                    run += 1;
                    i += 1;
                }
                packer.push(0);
                let mut rem = run - 1;
                loop {
                    let group = (rem & 0x7) as u8;
                    rem >>= 3;
                    packer.push(if rem > 0 { group | 0x8 } else { group });
                    if rem == 0 {
                        break;
                    }
                }
            } else {
                packer.push(v);
                i += 1;
            }
        }
    }

    /// Decode `n` levels from an encoded stream.
    ///
    /// Returns `None` on malformed input (truncated run token, varint
    /// overflow, or a run that overshoots `n`).
    pub fn decode(&self, data: &[u8], n: usize) -> Option<Vec<u8>> {
        let mut levels = Vec::with_capacity(n);
        let nibble_at = |idx: usize| -> Option<u8> {
            let byte = data.get(idx / 2)?;
            Some(if idx.is_multiple_of(2) { byte >> 4 } else { byte & 0x0f })
        };
        let mut i = 0usize;
        while levels.len() < n {
            let tok = nibble_at(i)?;
            i += 1;
            if tok == 0 {
                let mut rem: usize = 0;
                let mut shift = 0u32;
                loop {
                    let g = nibble_at(i)?;
                    i += 1;
                    if shift > 60 {
                        return None; // varint overflow
                    }
                    rem |= ((g & 0x7) as usize) << shift;
                    shift += 3;
                    if g & 0x8 == 0 {
                        break;
                    }
                }
                let run = rem + 1;
                if levels.len() + run > n {
                    return None;
                }
                levels.resize(levels.len() + run, 0u8);
            } else {
                levels.push(tok);
            }
        }
        Some(levels)
    }
}

/// Result of compressing one activation buffer.
#[derive(Clone, Debug)]
pub struct Compressed {
    /// The encoded payload.
    pub payload: Bytes,
    /// Number of source elements (needed to decode).
    pub elems: usize,
    /// The quantizer used (needed to dequantize).
    pub quantizer: Quantizer,
}

impl Compressed {
    /// Payload size in bits.
    pub fn wire_bits(&self) -> u64 {
        self.payload.len() as u64 * 8
    }

    /// Compression ratio versus raw 32-bit floats (e.g. `0.03` = 33×
    /// smaller), the metric of the paper's Table 2.
    pub fn ratio_vs_f32(&self) -> f64 {
        self.wire_bits() as f64 / (self.elems as f64 * 32.0)
    }
}

/// Run the full §4 pipeline on activations that already passed the clipped
/// ReLU (values in `[0, quantizer.range]`). The nibble RLE codec carries at
/// most 4-bit levels, so `quantizer.bits` must be ≤ 4.
pub fn compress(xs: &[f32], quantizer: Quantizer) -> Compressed {
    assert!(
        quantizer.bits <= 4,
        "the nibble RLE wire codec carries at most 4-bit levels (got {})",
        quantizer.bits
    );
    let levels = quantizer.quantize(xs);
    let payload = RleCodec.encode(&levels);
    Compressed { payload, elems: xs.len(), quantizer }
}

/// Invert [`compress`] up to quantization error.
pub fn decompress(c: &Compressed) -> Option<Vec<f32>> {
    // Defense in depth for payloads that arrived over a real wire: the
    // declared element count sizes the decode buffer, so cap it before
    // allocating (`TileResult::to_tensor` re-checks it against the shape,
    // but this function is also a public entry point).
    if c.elems > crate::wire::MAX_TILE_ELEMS {
        return None;
    }
    let levels = RleCodec.decode(&c.payload, c.elems)?;
    Some(c.quantizer.dequantize(&levels))
}

/// Apply the clipped ReLU then the full pipeline (convenience for the
/// runtime's Conv-node path).
pub fn clip_and_compress(xs: &[f32], cr: ClippedRelu, bits: u8) -> Compressed {
    let clipped: Vec<f32> = xs.iter().map(|&x| cr.apply(x)).collect();
    compress(&clipped, Quantizer::new(bits, cr.range()))
}

/// Reusable buffers for the allocation-free compression path.
///
/// One per worker thread; `levels` holds the quantized indices, `bytes` the
/// RLE-encoded payload. Both grow to their high-water mark and stay put, so
/// steady-state [`compress_into`] / [`clip_and_compress_into`] calls perform
/// zero heap allocation.
#[derive(Clone, Debug, Default)]
pub struct CompressScratch {
    /// Quantized level indices (one per source element).
    pub levels: Vec<u8>,
    /// RLE-encoded payload bytes.
    pub bytes: Vec<u8>,
}

impl CompressScratch {
    /// Empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        CompressScratch::default()
    }
}

/// [`compress`] into reusable buffers. Returns the encoded payload slice
/// (valid until the next call); it is byte-identical to
/// `compress(xs, quantizer).payload`.
pub fn compress_into<'s>(xs: &[f32], quantizer: Quantizer, s: &'s mut CompressScratch) -> &'s [u8] {
    assert!(
        quantizer.bits <= 4,
        "the nibble RLE wire codec carries at most 4-bit levels (got {})",
        quantizer.bits
    );
    quantizer.quantize_into(xs, &mut s.levels);
    RleCodec.encode_into(&s.levels, &mut s.bytes);
    &s.bytes
}

/// [`clip_and_compress`] into reusable buffers, with the clipped ReLU fused
/// into the quantization pass (no intermediate clipped `Vec<f32>`).
pub fn clip_and_compress_into<'s>(
    xs: &[f32],
    cr: ClippedRelu,
    quantizer: Quantizer,
    s: &'s mut CompressScratch,
) -> &'s [u8] {
    assert!(
        quantizer.bits <= 4,
        "the nibble RLE wire codec carries at most 4-bit levels (got {})",
        quantizer.bits
    );
    s.levels.clear();
    s.levels.extend(xs.iter().map(|&x| quantizer.level(cr.apply(x))));
    RleCodec.encode_into(&s.levels, &mut s.bytes);
    &s.bytes
}

/// Closed-form wire-size estimate (bits) for `elems` activations at
/// `sparsity` (fraction of exact zeros), matching [`RleCodec`]'s format:
/// one nibble per non-zero, two nibbles per zero-run of ≤16. Assumes the
/// worst reasonable case of uniformly scattered zeros, which upper-bounds
/// clustered real activations.
pub fn wire_bits_estimate(elems: u64, sparsity: f64, _bits: u8) -> u64 {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let nonzero = elems as f64 * (1.0 - sparsity);
    let zeros = elems as f64 * sparsity;
    // For uniformly scattered zeros the expected number of maximal zero runs
    // is zeros·(1 − sparsity); run lengths are geometric with mean
    // 1/(1 − sparsity), and a run of length r costs 1 + varint(r − 1)
    // nibbles (3 bits of length per varint nibble).
    let runs = (zeros * (1.0 - sparsity)).max(if zeros > 0.0 { 1.0 } else { 0.0 });
    let mean_run = if runs > 0.0 { zeros / runs } else { 0.0 };
    let varint_nibbles =
        if mean_run <= 1.0 { 1.0 } else { ((mean_run - 1.0).log2() / 3.0).floor() + 1.0 };
    let nibbles = nonzero + runs * (1.0 + varint_nibbles);
    (nibbles * 4.0).ceil() as u64
}

/// Invert [`wire_bits_estimate`]: the activation sparsity at which the §4
/// pipeline reaches a target `compressed/original` ratio (Table 2 reports
/// such ratios per model; the simulator calibrates per-model sparsities from
/// them). Binary search; panics if the target is unreachable (`<= 0`).
pub fn sparsity_for_ratio(target_ratio: f64, bits: u8) -> f64 {
    assert!(target_ratio > 0.0 && target_ratio < 1.0, "ratio must be in (0,1)");
    let n = 1_000_000u64;
    let ratio_at = |s: f64| wire_bits_estimate(n, s, bits) as f64 / (n as f64 * 32.0);
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if ratio_at(mid) > target_ratio {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Compression statistics for a whole feature map, as reported in Table 2.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Raw size at 32-bit floats, bits.
    pub original_bits: u64,
    /// Encoded size, bits.
    pub compressed_bits: u64,
    /// Fraction of exact zeros after the clipped ReLU.
    pub sparsity: f64,
}

impl CompressionStats {
    /// `compressed / original`, the Table 2 metric.
    pub fn ratio(&self) -> f64 {
        self.compressed_bits as f64 / self.original_bits as f64
    }
}

/// Measure the pipeline end to end on a raw (pre-activation) buffer.
pub fn measure(xs: &[f32], cr: ClippedRelu, bits: u8) -> CompressionStats {
    let clipped: Vec<f32> = xs.iter().map(|&x| cr.apply(x)).collect();
    let zeros = clipped.iter().filter(|&&x| x == 0.0).count();
    let c = compress(&clipped, Quantizer::new(bits, cr.range()));
    CompressionStats {
        original_bits: xs.len() as u64 * 32,
        compressed_bits: c.wire_bits(),
        sparsity: zeros as f64 / xs.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn quantizer_levels_roundtrip_exactly() {
        let q = Quantizer::new(4, 1.8);
        for l in 0..16u8 {
            assert_eq!(q.level(q.value(l)), l);
        }
    }

    #[test]
    fn quantizer_error_bounded() {
        let q = Quantizer::new(4, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(0.0..2.0);
            let err = (q.value(q.level(x)) - x).abs();
            assert!(err <= q.max_error() + 1e-6);
        }
    }

    #[test]
    fn quantizer_zero_is_exact() {
        let q = Quantizer::new(4, 1.0);
        assert_eq!(q.level(0.0), 0);
        assert_eq!(q.value(0), 0.0);
    }

    #[test]
    fn figure6_example_pipeline() {
        // Figure 6 of the paper: ReLU[0.2, 2] on a 4x4 ofmap, then 4-bit
        // quantization, then RLE. We verify the pipeline end to end on a
        // map with the same character (mostly sub-threshold values).
        let cr = ClippedRelu::new(0.2, 2.0);
        let raw = vec![
            0.1, 0.05, 1.0, 0.0, //
            0.15, 2.5, 0.12, 0.0, //
            0.0, 0.18, 0.9, 0.05, //
            0.1, 0.0, 0.0, 1.4,
        ];
        let stats = measure(&raw, cr, 4);
        assert!(stats.sparsity >= 0.7, "sparsity {}", stats.sparsity);
        assert!(stats.ratio() < 0.5, "ratio {}", stats.ratio());
        let c = clip_and_compress(&raw, cr, 4);
        let back = decompress(&c).unwrap();
        let q = Quantizer::new(4, cr.range());
        for (x, y) in raw.iter().zip(&back) {
            let want = cr.apply(*x);
            assert!((want - y).abs() <= q.max_error() + 1e-6);
        }
    }

    #[test]
    fn rle_all_zero_is_tiny() {
        let levels = vec![0u8; 4096];
        let enc = RleCodec.encode(&levels);
        // one zero nibble + varint(4095) = 4 nibbles -> 5 nibbles -> 3 bytes
        assert_eq!(enc.len(), 3);
        assert_eq!(RleCodec.decode(&enc, 4096).unwrap(), levels);
    }

    #[test]
    fn rle_varint_run_boundaries() {
        // runs of 8 (1-nibble varint), 9 (2-nibble), 64, 65, 513
        for run in [1usize, 8, 9, 64, 65, 512, 513, 100_000] {
            let mut levels = vec![0u8; run];
            levels.push(9);
            let enc = RleCodec.encode(&levels);
            assert_eq!(RleCodec.decode(&enc, run + 1).unwrap(), levels, "run {run}");
        }
    }

    #[test]
    fn sparsity_for_ratio_inverts_estimate() {
        for target in [0.011, 0.02, 0.032, 0.043, 0.056] {
            let s = sparsity_for_ratio(target, 4);
            let n = 1_000_000u64;
            let achieved = wire_bits_estimate(n, s, 4) as f64 / (n as f64 * 32.0);
            assert!(
                (achieved - target).abs() / target < 0.05,
                "target {target}: sparsity {s} gives {achieved}"
            );
            assert!(s > 0.8 && s < 1.0, "implausible sparsity {s} for {target}");
        }
    }

    #[test]
    fn rle_all_nonzero_is_half_byte_each() {
        let levels: Vec<u8> = (0..100).map(|i| (i % 15 + 1) as u8).collect();
        let enc = RleCodec.encode(&levels);
        assert_eq!(enc.len(), 50);
        assert_eq!(RleCodec.decode(&enc, 100).unwrap(), levels);
    }

    #[test]
    fn rle_rejects_truncation() {
        let levels = vec![5u8, 0, 0, 0, 7];
        let enc = RleCodec.encode(&levels);
        let cut = &enc[..enc.len() - 1];
        // decoding the full length from a truncated buffer must fail
        assert!(RleCodec.decode(cut, 5).is_none() || cut.is_empty());
    }

    #[test]
    fn rle_mixed_runs() {
        let mut levels = vec![0u8; 40];
        levels[3] = 7;
        levels[20] = 15;
        levels[21] = 1;
        let enc = RleCodec.encode(&levels);
        assert_eq!(RleCodec.decode(&enc, 40).unwrap(), levels);
        assert!(enc.len() < 40 / 2);
    }

    #[test]
    fn high_sparsity_hits_paper_table2_ratios() {
        // Table 2: after pruning the Conv-node outputs shrink to
        // 0.011x–0.056x of the raw f32 size. Check our codec lands in that
        // regime at the sparsities the clipped ReLU produces (~95–99%).
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        for (sparsity, lo, hi) in [(0.95, 0.01, 0.07), (0.99, 0.004, 0.03)] {
            let xs: Vec<f32> = (0..n)
                .map(|_| if rng.gen_bool(sparsity) { 0.0 } else { rng.gen_range(0.1..1.0) })
                .collect();
            let c = compress(&xs, Quantizer::new(4, 1.0));
            let r = c.ratio_vs_f32();
            assert!((lo..hi).contains(&r), "sparsity {sparsity}: ratio {r}");
        }
    }

    #[test]
    fn wire_estimate_tracks_real_codec() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000usize;
        for sparsity in [0.5, 0.9, 0.97] {
            let xs: Vec<f32> = (0..n)
                .map(|_| if rng.gen_bool(sparsity) { 0.0 } else { rng.gen_range(0.1..1.0) })
                .collect();
            let real = compress(&xs, Quantizer::new(4, 1.0)).wire_bits() as f64;
            let est = wire_bits_estimate(n as u64, sparsity, 4) as f64;
            let err = (est - real).abs() / real;
            assert!(err < 0.35, "sparsity {sparsity}: est {est} vs real {real} ({err})");
        }
    }

    #[test]
    fn measure_reports_consistent_fields() {
        let cr = ClippedRelu::new(0.0, 1.0);
        let xs = vec![0.5f32; 64];
        let s = measure(&xs, cr, 4);
        assert_eq!(s.original_bits, 64 * 32);
        assert_eq!(s.sparsity, 0.0);
        assert!(s.compressed_bits > 0);
    }

    #[test]
    fn into_paths_are_byte_identical() {
        let mut rng = StdRng::seed_from_u64(4);
        let cr = ClippedRelu::new(0.2, 2.0);
        let q = Quantizer::new(4, cr.range());
        let mut s = CompressScratch::new();
        for n in [0usize, 1, 7, 100, 4096] {
            let xs: Vec<f32> = (0..n)
                .map(|_| if rng.gen_bool(0.8) { 0.0 } else { rng.gen_range(-1.0..3.0) })
                .collect();
            let want = compress(&xs, q);
            let got = compress_into(&xs, q, &mut s);
            assert_eq!(got, &want.payload[..], "compress_into diverged at n={n}");
            let want_clip = clip_and_compress(&xs, cr, 4);
            let got_clip = clip_and_compress_into(&xs, cr, q, &mut s);
            assert_eq!(got_clip, &want_clip.payload[..], "clip path diverged at n={n}");
        }
    }

    #[test]
    fn scratch_reuse_does_not_grow_capacity() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f32> = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let q = Quantizer::new(4, 1.0);
        let mut s = CompressScratch::new();
        compress_into(&xs, q, &mut s);
        let (lc, bc) = (s.levels.capacity(), s.bytes.capacity());
        for _ in 0..3 {
            compress_into(&xs, q, &mut s);
        }
        assert_eq!((s.levels.capacity(), s.bytes.capacity()), (lc, bc));
    }

    proptest! {
        #[test]
        fn prop_rle_roundtrip(levels in proptest::collection::vec(0u8..16, 0..600)) {
            let enc = RleCodec.encode(&levels);
            let dec = RleCodec.decode(&enc, levels.len()).unwrap();
            prop_assert_eq!(dec, levels);
        }

        #[test]
        fn prop_pipeline_error_bounded(xs in proptest::collection::vec(-2.0f32..4.0, 1..300)) {
            let cr = ClippedRelu::new(0.2, 2.0);
            let c = clip_and_compress(&xs, cr, 4);
            let back = decompress(&c).unwrap();
            let q = Quantizer::new(4, cr.range());
            for (x, y) in xs.iter().zip(&back) {
                prop_assert!((cr.apply(*x) - y).abs() <= q.max_error() + 1e-6);
            }
        }

        #[test]
        fn prop_encoding_size_bounded(levels in proptest::collection::vec(0u8..16, 0..2000)) {
            // Worst case is alternating zero/non-zero: 1.5 nibbles/element.
            let enc = RleCodec.encode(&levels);
            let nibble_bound = (3 * levels.len()) / 2 + 2;
            prop_assert!(enc.len() <= nibble_bound / 2 + 1,
                "len {} for {} levels", enc.len(), levels.len());
        }
    }
}
