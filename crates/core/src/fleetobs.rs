//! Fleet-scope observability: tenant/node-labeled metrics shards, a
//! live node-stats bus, and SLO burn-rate tracking.
//!
//! The per-image obs layer ([`crate::obs`]) is deliberately tenant- and
//! node-blind: one [`MetricsSink`] aggregates a whole run. A fleet
//! serves many tenants over a churning roster, so this module adds the
//! missing dimensions without touching the per-image event schema:
//!
//! - [`LabeledMetricsRegistry`] — lock-free [`MetricsSink`] shards per
//!   tenant and per node, fed by routing one event stream on the
//!   [`ObsEvent::tenant`]/[`ObsEvent::worker`] tags, rendered as
//!   labeled Prometheus series (`adcnn_images_finished_total{tenant="vgg16"}`)
//!   and per-tenant [`Reporter`] lines.
//! - [`LiveStatsView`] — folds `RateUpdate`/`WorkerDead`/`NodeUp`/
//!   `NodeDown` streams into per-node EWMA rate + availability
//!   snapshots. The fleet driver hands the snapshot to
//!   `PlacementPolicy::place`, which is what lets a policy consume
//!   *observed* speeds instead of schedule priors.
//! - [`SloSpec`]/[`SloTracker`]/[`SloReport`] — per-tenant objectives
//!   (p99 latency target, zero-fill budget) with multi-window burn
//!   rates in the SRE sense: burn 1.0 consumes exactly the error
//!   budget over the window, sustained burn > 1.0 pages.
//!
//! Everything here is driver-fed: `TileLifecycle` emits nothing new,
//! so golden decision traces are untouched by construction.

use crate::config::ConfigError;
use crate::obs::{json, EventSink, MetricsSink, MetricsSnapshot, ObsEvent};
use crate::report::Reporter;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Labeled metrics registry
// ---------------------------------------------------------------------------

/// Per-tenant and per-node [`MetricsSink`] shards behind one
/// [`EventSink`]. Routing is tag-driven and lock-free (the shards are
/// themselves atomic):
///
/// - tenant-tagged events ([`ObsEvent::TenantAdmit`]/
///   [`ObsEvent::TenantFinish`]) fold into their tenant's shard *only*;
/// - node-scoped events (anything with [`ObsEvent::worker`]) fold into
///   that node's shard *and* the global shard;
/// - everything else folds into the global shard.
///
/// Feeding the registry both a fleet's lifecycle stream and its
/// fleet-scope stream therefore never double-counts: images land in
/// the global shard via `ImageFinish` and in tenant shards via
/// `TenantFinish`.
pub struct LabeledMetricsRegistry {
    global: Arc<MetricsSink>,
    tenants: Vec<(String, Arc<MetricsSink>)>,
    nodes: Vec<Arc<MetricsSink>>,
}

impl LabeledMetricsRegistry {
    /// A registry with one shard per tenant name and per node, plus the
    /// global shard.
    pub fn new(tenants: &[impl AsRef<str>], nodes: usize) -> Self {
        LabeledMetricsRegistry {
            global: Arc::new(MetricsSink::new()),
            tenants: tenants
                .iter()
                .map(|t| (t.as_ref().to_string(), Arc::new(MetricsSink::new())))
                .collect(),
            nodes: (0..nodes).map(|_| Arc::new(MetricsSink::new())).collect(),
        }
    }

    /// The unlabeled shard.
    pub fn global(&self) -> &Arc<MetricsSink> {
        &self.global
    }

    /// Tenant shard by index (registration order).
    pub fn tenant(&self, idx: usize) -> Option<&Arc<MetricsSink>> {
        self.tenants.get(idx).map(|(_, s)| s)
    }

    /// Tenant names in registration order.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.tenants.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Node shard by index.
    pub fn node(&self, idx: usize) -> Option<&Arc<MetricsSink>> {
        self.nodes.get(idx)
    }

    /// Snapshot every tenant shard, in registration order.
    pub fn tenant_snapshots(&self) -> Vec<(String, MetricsSnapshot)> {
        self.tenants.iter().map(|(n, s)| (n.clone(), s.snapshot())).collect()
    }

    /// Render the whole registry in Prometheus text exposition format:
    /// the global shard first with `# HELP`/`# TYPE` headers, then the
    /// tenant shards as `{tenant="..."}` series and the node shards as
    /// `{node="..."}` series (headers appear once per metric name, as
    /// the format requires; label values are escaped).
    pub fn to_prometheus(&self) -> String {
        let mut out = self.global.snapshot().render_prometheus(&[], true);
        for (name, sink) in &self.tenants {
            out.push_str(&sink.snapshot().render_prometheus(&[("tenant", name)], false));
        }
        for (w, sink) in self.nodes.iter().enumerate() {
            out.push_str(&sink.snapshot().render_prometheus(&[("node", &w.to_string())], false));
        }
        out
    }
}

impl std::fmt::Debug for LabeledMetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LabeledMetricsRegistry({} tenants, {} nodes)",
            self.tenants.len(),
            self.nodes.len()
        )
    }
}

impl EventSink for LabeledMetricsRegistry {
    fn emit(&self, ev: &ObsEvent) {
        if let Some(t) = ev.tenant() {
            if let Some((_, shard)) = self.tenants.get(t as usize) {
                shard.emit(ev);
                return;
            }
        }
        if let Some(w) = ev.worker() {
            if let Some(shard) = self.nodes.get(w as usize) {
                shard.emit(ev);
            }
        }
        self.global.emit(ev);
    }
}

/// One [`Reporter`] per tenant shard: narrates a fleet run live as one
/// labeled line per tenant per interval.
#[derive(Debug, Default)]
pub struct FleetReporter {
    tenants: Vec<Reporter>,
}

impl FleetReporter {
    /// A reporter per tenant shard of `registry`.
    pub fn new(registry: &LabeledMetricsRegistry) -> Self {
        FleetReporter { tenants: registry.tenants.iter().map(|_| Reporter::new()).collect() }
    }

    /// Diff every tenant shard against the previous sample and render
    /// one `tenant=<name> | <reporter line>` string each.
    pub fn sample_lines(
        &mut self,
        registry: &LabeledMetricsRegistry,
        elapsed_s: f64,
    ) -> Vec<String> {
        self.tenants
            .iter_mut()
            .zip(&registry.tenants)
            .map(|(rep, (name, sink))| {
                format!("tenant={name} | {}", rep.sample(&sink.snapshot(), elapsed_s).line())
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Live node-stats bus
// ---------------------------------------------------------------------------

/// Atomically add `delta` to an f64 stored as bits.
fn f64_fetch_add(cell: &AtomicU64, delta: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + delta).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

/// One node's live accumulators (all lock-free; emitters may be worker
/// threads in the multi-process runtime).
#[derive(Debug)]
struct NodeCell {
    /// Latest view-side EWMA of observed rates; NaN until first update.
    rate_bits: AtomicU64,
    rate_updates: AtomicU64,
    live: AtomicBool,
    ups: AtomicU64,
    downs: AtomicU64,
    /// When the current down spell began; NaN while live.
    down_since_bits: AtomicU64,
    /// Accumulated completed-down-spell time.
    downtime_bits: AtomicU64,
}

impl NodeCell {
    fn new() -> Self {
        NodeCell {
            rate_bits: AtomicU64::new(f64::NAN.to_bits()),
            rate_updates: AtomicU64::new(0),
            live: AtomicBool::new(true),
            ups: AtomicU64::new(0),
            downs: AtomicU64::new(0),
            down_since_bits: AtomicU64::new(f64::NAN.to_bits()),
            downtime_bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

/// The queryable live node-stats bus: an [`EventSink`] folding
/// `RateUpdate` observations into a per-node EWMA and
/// `NodeUp`/`NodeDown`/`WorkerDead` transitions into liveness +
/// availability accounting. Tee it into a driver's sink(s) and
/// [`LiveStatsView::snapshot`] whenever a consistent-enough view is
/// needed — notably at placement time, where the snapshot rides in as
/// `PlacementInput::live`.
#[derive(Debug)]
pub struct LiveStatsView {
    alpha: f64,
    nodes: Vec<NodeCell>,
}

/// Default view-side smoothing for [`LiveStatsView`]. The incoming
/// rates are already Algorithm 2 EWMAs per tenant; this second fold
/// blends tenants and damps inter-tenant jitter.
pub const LIVE_STATS_ALPHA: f64 = 0.2;

impl LiveStatsView {
    /// A view over `nodes` nodes, all initially live (fleet rosters
    /// start complete; the runtime marks workers up on connect).
    pub fn new(nodes: usize) -> Self {
        Self::with_alpha(nodes, LIVE_STATS_ALPHA)
    }

    /// [`LiveStatsView::new`] with an explicit EWMA weight in (0, 1].
    pub fn with_alpha(nodes: usize, alpha: f64) -> Self {
        LiveStatsView { alpha, nodes: (0..nodes).map(|_| NodeCell::new()).collect() }
    }

    /// Nodes tracked.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when tracking zero nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn fold_rate(&self, node: usize, rate: f64) {
        let Some(cell) = self.nodes.get(node) else { return };
        cell.rate_updates.fetch_add(1, Ordering::Relaxed);
        let mut cur = cell.rate_bits.load(Ordering::Relaxed);
        loop {
            let old = f64::from_bits(cur);
            let next =
                if old.is_nan() { rate } else { (1.0 - self.alpha) * old + self.alpha * rate };
            match cell.rate_bits.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    fn mark_up(&self, node: usize, at: f64) {
        let Some(cell) = self.nodes.get(node) else { return };
        if !cell.live.swap(true, Ordering::Relaxed) {
            cell.ups.fetch_add(1, Ordering::Relaxed);
            let since = f64::from_bits(cell.down_since_bits.load(Ordering::Relaxed));
            if since.is_finite() && at > since {
                f64_fetch_add(&cell.downtime_bits, at - since);
            }
            cell.down_since_bits.store(f64::NAN.to_bits(), Ordering::Relaxed);
        }
    }

    fn mark_down(&self, node: usize, at: f64) {
        let Some(cell) = self.nodes.get(node) else { return };
        if cell.live.swap(false, Ordering::Relaxed) {
            cell.downs.fetch_add(1, Ordering::Relaxed);
            cell.down_since_bits.store(at.to_bits(), Ordering::Relaxed);
        }
    }

    /// Plain-value snapshot at time `now` (the driver's axis);
    /// availability counts a still-open down spell up to `now`.
    pub fn snapshot(&self, now: f64) -> LiveStatsSnapshot {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(w, cell)| {
                let rate = f64::from_bits(cell.rate_bits.load(Ordering::Relaxed));
                let live = cell.live.load(Ordering::Relaxed);
                let mut down = f64::from_bits(cell.downtime_bits.load(Ordering::Relaxed));
                let since = f64::from_bits(cell.down_since_bits.load(Ordering::Relaxed));
                if !live && since.is_finite() && now > since {
                    down += now - since;
                }
                let availability =
                    if now > 0.0 { ((now - down) / now).clamp(0.0, 1.0) } else { 1.0 };
                NodeStatsSnapshot {
                    node: w as u32,
                    live,
                    rate: (!rate.is_nan()).then_some(rate),
                    rate_updates: cell.rate_updates.load(Ordering::Relaxed),
                    ups: cell.ups.load(Ordering::Relaxed),
                    downs: cell.downs.load(Ordering::Relaxed),
                    availability,
                }
            })
            .collect();
        LiveStatsSnapshot { at: now, nodes }
    }
}

impl EventSink for LiveStatsView {
    fn emit(&self, ev: &ObsEvent) {
        match *ev {
            ObsEvent::RateUpdate { worker, rate, .. } => self.fold_rate(worker as usize, rate),
            ObsEvent::NodeUp { at, node } => self.mark_up(node as usize, at),
            ObsEvent::NodeDown { at, node } => self.mark_down(node as usize, at),
            ObsEvent::WorkerDead { at, worker, .. } => self.mark_down(worker as usize, at),
            _ => {}
        }
    }
}

/// One node's observed state at snapshot time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeStatsSnapshot {
    /// Node index.
    pub node: u32,
    /// Liveness as of the last observed transition.
    pub live: bool,
    /// View-side EWMA of observed `RateUpdate` rates (tiles per `T_L`),
    /// `None` until the first observation.
    pub rate: Option<f64>,
    /// `RateUpdate` observations folded in.
    pub rate_updates: u64,
    /// Up-transitions observed (not counting the initial live state).
    pub ups: u64,
    /// Down-transitions observed.
    pub downs: u64,
    /// Observed up-time fraction over `[0, at]`.
    pub availability: f64,
}

/// Every node's observed state at one instant, as handed to placement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LiveStatsSnapshot {
    /// Snapshot time on the driver's axis.
    pub at: f64,
    /// Per-node states, indexed by node.
    pub nodes: Vec<NodeStatsSnapshot>,
}

impl LiveStatsSnapshot {
    /// Hand-rendered JSON (the sinks' no-serializer contract), via the
    /// shared [`json`] helpers.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .f64("at", self.at)
            .raw(
                "nodes",
                json::array(self.nodes.iter().map(|n| {
                    let mut o = json::Obj::new().u64("node", n.node.into()).bool("live", n.live);
                    o = match n.rate {
                        Some(r) => o.f64("rate", r),
                        None => o.raw("rate", "null"),
                    };
                    o.u64("rate_updates", n.rate_updates)
                        .u64("ups", n.ups)
                        .u64("downs", n.downs)
                        .f64("availability", n.availability)
                        .finish()
                })),
            )
            .finish()
    }
}

// ---------------------------------------------------------------------------
// SLO tracking
// ---------------------------------------------------------------------------

/// Fraction of requests allowed to exceed the latency target — fixed at
/// 1% by the objective's p99 semantics.
pub const LATENCY_ERROR_BUDGET: f64 = 0.01;

/// Short burn-rate window (the "page now" signal), seconds.
pub const SLO_FAST_WINDOW_S: f64 = 60.0;

/// Long burn-rate window (the "sustained burn" signal), seconds.
pub const SLO_SLOW_WINDOW_S: f64 = 300.0;

/// A tenant's service-level objectives: a p99 latency target and a
/// zero-fill (lost-tile) budget.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// 99th-percentile end-to-end latency target, seconds.
    pub p99_latency_s: f64,
    /// Allowed zero-filled fraction of delivered tiles, in (0, 1].
    pub zero_fill_budget: f64,
}

impl SloSpec {
    /// An objective with the given targets.
    pub fn new(p99_latency_s: f64, zero_fill_budget: f64) -> Self {
        SloSpec { p99_latency_s, zero_fill_budget }
    }

    /// Check the invariants the tracker relies on.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.p99_latency_s.is_finite() && self.p99_latency_s > 0.0) {
            return Err(ConfigError::NonPositiveSloTarget(self.p99_latency_s));
        }
        if !(self.zero_fill_budget > 0.0 && self.zero_fill_budget <= 1.0) {
            return Err(ConfigError::SloBudgetOutOfRange(self.zero_fill_budget));
        }
        Ok(())
    }
}

/// One completed request, as the tracker remembers it.
#[derive(Clone, Copy, Debug)]
struct FinishRecord {
    at: f64,
    slow: bool,
    zero_filled: u32,
    tiles: u32,
}

/// Folds a tenant's completions into burn rates against an [`SloSpec`].
/// Single-writer by design (the fleet driver owns it mutably); the
/// multi-window computation happens at [`SloTracker::report`] time over
/// the retained records, so windows need no pre-declared bucketing.
#[derive(Clone, Debug)]
pub struct SloTracker {
    spec: SloSpec,
    finishes: Vec<FinishRecord>,
}

impl SloTracker {
    /// A tracker burning against `spec`.
    pub fn new(spec: SloSpec) -> Self {
        SloTracker { spec, finishes: Vec::new() }
    }

    /// The objective being tracked.
    pub fn spec(&self) -> SloSpec {
        self.spec
    }

    /// Fold in one completed request.
    pub fn record(&mut self, at: f64, latency_s: f64, zero_filled: u32, tiles: u32) {
        self.finishes.push(FinishRecord {
            at,
            slow: latency_s > self.spec.p99_latency_s,
            zero_filled,
            tiles,
        });
    }

    /// Burn over `[now - window, now]`: (fraction of requests breaching
    /// the latency target) / (the 1% p99 error budget). 1.0 consumes
    /// the budget exactly; `None` when the window saw no completions.
    fn latency_burn(&self, now: f64, window: f64) -> Option<f64> {
        let from = now - window;
        let (mut n, mut slow) = (0u64, 0u64);
        for r in &self.finishes {
            if r.at >= from {
                n += 1;
                slow += u64::from(r.slow);
            }
        }
        (n > 0).then(|| (slow as f64 / n as f64) / LATENCY_ERROR_BUDGET)
    }

    /// Render the report for `tenant` as of `now`.
    pub fn report(&self, tenant: &str, now: f64) -> SloReport {
        let requests = self.finishes.len() as u64;
        let breaching = self.finishes.iter().filter(|r| r.slow).count() as u64;
        let tiles: u64 = self.finishes.iter().map(|r| u64::from(r.tiles)).sum();
        let zero_filled: u64 = self.finishes.iter().map(|r| u64::from(r.zero_filled)).sum();
        let total = self.latency_burn(now, f64::INFINITY).unwrap_or(0.0);
        let zero_fill_rate = if tiles > 0 { zero_filled as f64 / tiles as f64 } else { 0.0 };
        let zero_fill_burn = zero_fill_rate / self.spec.zero_fill_budget;
        SloReport {
            tenant: tenant.to_string(),
            p99_target_s: self.spec.p99_latency_s,
            requests,
            breaching_requests: breaching,
            latency_burn_total: total,
            latency_burn_fast: self.latency_burn(now, SLO_FAST_WINDOW_S).unwrap_or(0.0),
            latency_burn_slow: self.latency_burn(now, SLO_SLOW_WINDOW_S).unwrap_or(0.0),
            zero_fill_budget: self.spec.zero_fill_budget,
            zero_fill_rate,
            zero_fill_burn,
            met: total <= 1.0 && zero_fill_burn <= 1.0,
        }
    }
}

/// A tenant's SLO standing: whole-run and windowed burn rates for the
/// latency objective plus the zero-fill budget's consumption.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Tenant name.
    pub tenant: String,
    /// The p99 latency target, seconds.
    pub p99_target_s: f64,
    /// Completions observed.
    pub requests: u64,
    /// Completions exceeding the latency target.
    pub breaching_requests: u64,
    /// Whole-run latency burn (1.0 = error budget exactly consumed).
    pub latency_burn_total: f64,
    /// Latency burn over the last [`SLO_FAST_WINDOW_S`].
    pub latency_burn_fast: f64,
    /// Latency burn over the last [`SLO_SLOW_WINDOW_S`].
    pub latency_burn_slow: f64,
    /// The configured zero-fill budget.
    pub zero_fill_budget: f64,
    /// Observed zero-filled fraction of tiles.
    pub zero_fill_rate: f64,
    /// `zero_fill_rate / zero_fill_budget`.
    pub zero_fill_burn: f64,
    /// True when both whole-run burns are within budget.
    pub met: bool,
}

impl SloReport {
    /// Hand-rendered JSON via the shared [`json`] helpers.
    pub fn to_json(&self) -> String {
        json::Obj::new()
            .str("tenant", &self.tenant)
            .f64("p99_target_s", self.p99_target_s)
            .u64("requests", self.requests)
            .u64("breaching_requests", self.breaching_requests)
            .f64("latency_burn_total", self.latency_burn_total)
            .f64("latency_burn_fast", self.latency_burn_fast)
            .f64("latency_burn_slow", self.latency_burn_slow)
            .f64("zero_fill_budget", self.zero_fill_budget)
            .f64("zero_fill_rate", self.zero_fill_rate)
            .f64("zero_fill_burn", self.zero_fill_burn)
            .bool("met", self.met)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::SinkHandle;

    #[test]
    fn registry_routes_tenant_node_and_global_scopes() {
        let reg = Arc::new(LabeledMetricsRegistry::new(&["a", "b"], 3));
        let h = SinkHandle::new(reg.clone());
        h.emit_with(|| ObsEvent::ImageFinish {
            at: 1.0,
            image: 0,
            latency: 0.010,
            zero_filled: 0,
            redispatched: 0,
        });
        h.emit_with(|| ObsEvent::TenantFinish {
            at: 1.0,
            image: 0,
            tenant: 1,
            latency: 0.010,
            zero_filled: 1,
            tiles: 4,
        });
        h.emit_with(|| ObsEvent::TileArrival { at: 0.9, image: 0, tile: 0, worker: 2 });
        h.emit_with(|| ObsEvent::NodeDown { at: 2.0, node: 2 });

        let g = reg.global().snapshot();
        // tenant-tagged events bypass the global shard: no double count
        assert_eq!(g.images_finished, 1);
        assert_eq!(g.tiles_arrived, 1);
        assert_eq!(g.nodes_down, 1);
        let a = reg.tenant(0).unwrap().snapshot();
        assert_eq!(a.images_finished, 0);
        let b = reg.tenant(1).unwrap().snapshot();
        assert_eq!(b.images_finished, 1);
        assert_eq!(b.tiles_zero_filled, 1);
        assert_eq!(b.tiles_arrived, 3);
        let n2 = reg.node(2).unwrap().snapshot();
        assert_eq!(n2.tiles_arrived, 1);
        assert_eq!(n2.nodes_down, 1);
        assert_eq!(reg.node(0).unwrap().snapshot().tiles_arrived, 0);
    }

    #[test]
    fn registry_prometheus_renders_labeled_series_with_single_headers() {
        let reg = LabeledMetricsRegistry::new(&["vgg16"], 1);
        reg.emit(&ObsEvent::TenantFinish {
            at: 1.0,
            image: 0,
            tenant: 0,
            latency: 0.010,
            zero_filled: 0,
            tiles: 4,
        });
        let text = reg.to_prometheus();
        assert!(text.contains("adcnn_images_finished_total{tenant=\"vgg16\"} 1\n"), "{text}");
        assert!(text.contains("adcnn_images_finished_total{node=\"0\"} 0\n"));
        // exactly one header per metric name despite three shards
        assert_eq!(text.matches("# TYPE adcnn_images_finished_total counter\n").count(), 1);
    }

    #[test]
    fn reporter_lines_are_per_tenant() {
        let reg = LabeledMetricsRegistry::new(&["a", "b"], 1);
        let mut rep = FleetReporter::new(&reg);
        reg.emit(&ObsEvent::TenantFinish {
            at: 1.0,
            image: 0,
            tenant: 0,
            latency: 0.010,
            zero_filled: 0,
            tiles: 4,
        });
        let lines = rep.sample_lines(&reg, 2.0);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("tenant=a | "));
        assert!(lines[0].contains("0.5 img/s"), "{}", lines[0]);
        assert!(lines[1].starts_with("tenant=b | "));
        assert!(lines[1].contains("0.0 img/s"), "{}", lines[1]);
    }

    #[test]
    fn live_view_folds_rates_and_availability() {
        let view = LiveStatsView::with_alpha(2, 0.5);
        view.emit(&ObsEvent::RateUpdate { at: 1.0, image: 0, worker: 0, rate: 4.0 });
        view.emit(&ObsEvent::RateUpdate { at: 2.0, image: 0, worker: 0, rate: 8.0 });
        view.emit(&ObsEvent::NodeDown { at: 5.0, node: 1 });
        // duplicate down transition is idempotent
        view.emit(&ObsEvent::WorkerDead { at: 6.0, image: 0, worker: 1 });
        let snap = view.snapshot(10.0);
        let n0 = &snap.nodes[0];
        assert!(n0.live);
        assert_eq!(n0.rate_updates, 2);
        assert!((n0.rate.unwrap() - 6.0).abs() < 1e-12, "{:?}", n0.rate); // 0.5·4 + 0.5·8
        assert!((n0.availability - 1.0).abs() < 1e-12);
        let n1 = &snap.nodes[1];
        assert!(!n1.live);
        assert_eq!(n1.downs, 1);
        assert!((n1.availability - 0.5).abs() < 1e-12, "{}", n1.availability);

        view.emit(&ObsEvent::NodeUp { at: 15.0, node: 1 });
        let snap = view.snapshot(20.0);
        let n1 = &snap.nodes[1];
        assert!(n1.live);
        assert_eq!(n1.ups, 1);
        assert!((n1.availability - 0.5).abs() < 1e-12, "{}", n1.availability);
        assert!(json::is_well_formed(&snap.to_json()));
    }

    #[test]
    fn slo_tracker_burns_multi_window() {
        let spec = SloSpec::new(0.100, 0.05);
        spec.validate().unwrap();
        let mut t = SloTracker::new(spec);
        // 200 requests, 4 slow (2% > 1% budget → whole-run burn 2.0);
        // the slow ones land late, so the fast window burns hotter.
        for i in 0..200u32 {
            let at = i as f64 * 2.0; // 0 .. 398 s
            let slow = i >= 196;
            t.record(at, if slow { 0.200 } else { 0.050 }, u32::from(i % 50 == 0), 16);
        }
        let r = t.report("a", 398.0);
        assert_eq!(r.requests, 200);
        assert_eq!(r.breaching_requests, 4);
        assert!((r.latency_burn_total - 2.0).abs() < 1e-9, "{}", r.latency_burn_total);
        // fast window [338, 398]: 31 requests, 4 slow → ~12.9 burn
        assert!(r.latency_burn_fast > r.latency_burn_slow);
        assert!(r.latency_burn_slow > r.latency_burn_total);
        // 4 zero-filled of 3200 tiles = 0.125% of a 5% budget
        assert!((r.zero_fill_rate - 4.0 / 3200.0).abs() < 1e-12);
        assert!(r.zero_fill_burn < 1.0);
        assert!(!r.met);
        assert!(json::is_well_formed(&r.to_json()));

        assert!(SloSpec::new(0.0, 0.05).validate().is_err());
        assert!(SloSpec::new(0.1, 0.0).validate().is_err());
        assert!(SloSpec::new(0.1, 1.5).validate().is_err());
    }
}
