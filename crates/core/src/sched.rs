//! The Central node's scheduling machinery: Algorithm 2 (statistics
//! collection) and Algorithm 3 (input tile allocation).
//!
//! Both are deliberately tiny, deterministic data structures so the same
//! code runs inside the real multi-threaded runtime (`adcnn-runtime`) and
//! inside the discrete-event simulator (`adcnn-netsim`).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Algorithm 2: per-node EWMA of how many intermediate results arrive
/// within the time limit `T_L` for each input image.
///
/// `s_k ← (1 − γ)·s_k + γ·n_k^i`
///
/// The paper uses `γ = 0.9` and `T_L = 30 ms` in the testbed (§7.2);
/// enforcing the time limit is the caller's job (the runtime counts only
/// results that arrived before its timer fired), this struct just maintains
/// the running statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StatsCollector {
    /// Decay parameter γ ∈ (0, 1].
    pub gamma: f64,
    s: Vec<f64>,
    /// Nodes whose estimate was zeroed by [`StatsCollector::mark_failed`]
    /// and have not produced a fresh positive observation since. While
    /// flagged, zero observations keep the estimate pinned at zero, and
    /// the first positive observation *restarts* the estimate from that
    /// measured sample instead of blending it with the stale pre-failure
    /// history.
    #[serde(default)]
    failed: Vec<bool>,
}

impl StatsCollector {
    /// Create for `k` Conv nodes with decay `gamma`. Nodes start with a
    /// small uniform prior so the very first allocation is balanced.
    pub fn new(k: usize, gamma: f64) -> Self {
        assert!(k > 0, "need at least one Conv node");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        StatsCollector { gamma, s: vec![1.0; k], failed: vec![false; k] }
    }

    /// Number of Conv nodes tracked.
    pub fn nodes(&self) -> usize {
        self.s.len()
    }

    /// Record one finished input image: `counts[k]` is the number of
    /// intermediate results received from node `k` within `T_L`.
    pub fn record_image(&mut self, counts: &[u32]) {
        assert_eq!(counts.len(), self.s.len(), "count vector length mismatch");
        for (k, &n) in counts.iter().enumerate() {
            self.record_node(k, n as f64);
        }
    }

    /// Record one node's in-time result count for an image without touching
    /// the others (used when a node was assigned no tiles this image, so
    /// there is no observation to fold in for the rest).
    pub fn record_node(&mut self, k: usize, n: f64) {
        assert!(n >= 0.0, "negative count");
        if self.failed(k) {
            // A node that was positively observed dead: nothing short of a
            // fresh positive observation may move its estimate, and that
            // observation *restarts* the EWMA rather than blending — the
            // pre-failure history describes a machine that no longer
            // exists (it crashed, restarted, or was rescheduled).
            if n > 0.0 {
                self.s[k] = n;
                self.failed[k] = false;
            }
            return;
        }
        self.s[k] = (1.0 - self.gamma) * self.s[k] + self.gamma * n;
    }

    /// Eagerly fail node `k` (§6.3, strengthened): its estimate drops to
    /// zero *immediately* instead of decaying over several images, so the
    /// very next Algorithm 3 allocation assigns it nothing. Used when the
    /// runtime positively observes death (task channel disconnected) rather
    /// than inferring slowness from missed deadlines. Until the node
    /// produces a fresh positive observation, late stragglers recorded for
    /// it cannot resurrect the estimate.
    pub fn mark_failed(&mut self, k: usize) {
        self.s[k] = 0.0;
        if self.failed.len() < self.s.len() {
            // deserialized pre-flag snapshot: the vector defaults empty
            self.failed.resize(self.s.len(), false);
        }
        self.failed[k] = true;
    }

    /// True while node `k` is flagged failed (guards against a
    /// deserialized pre-flag snapshot with an empty vector).
    fn failed(&self, k: usize) -> bool {
        self.failed.get(k).copied().unwrap_or(false)
    }

    /// A previously-failed node positively rejoined (transport reconnect):
    /// restart its estimate from the fresh-join prior — the same `1.0`
    /// every node starts with — so the next allocation assigns it work
    /// again. This is *not* the stale-result path [`Self::mark_failed`]
    /// guards against: a reconnect is a positive liveness observation of a
    /// (possibly restarted) machine, so the pre-failure EWMA stays
    /// discarded and the estimate re-converges from measurements, exactly
    /// like a worker that just joined. No-op for nodes not flagged failed.
    pub fn rejoin(&mut self, k: usize) {
        if self.failed(k) {
            self.s[k] = 1.0;
            self.failed[k] = false;
        }
    }

    /// Current speed estimate `s_k` for node `k`.
    pub fn speed(&self, k: usize) -> f64 {
        self.s[k]
    }

    /// All current estimates.
    pub fn speeds(&self) -> &[f64] {
        &self.s
    }
}

/// Algorithm 3: greedy minimum-makespan allocation of `D` tiles over `K`
/// nodes with per-node storage caps.
///
/// Solves (greedily) the paper's Equation 1:
/// `min_x max_k x_k / s_k` s.t. `Σ x_k = D`, `M·x_k ≤ H_k`.
#[derive(Clone, Debug)]
pub struct TileAllocator {
    /// Size of one tile in bits (`M` in Equation 1).
    pub tile_bits: u64,
    /// Per-node storage capacity in bits (`H_k`).
    pub storage_bits: Vec<u64>,
}

impl TileAllocator {
    /// Allocator with effectively unlimited storage (the common testbed
    /// configuration).
    pub fn unbounded(k: usize) -> Self {
        TileAllocator { tile_bits: 1, storage_bits: vec![u64::MAX; k] }
    }

    /// Allocator with explicit per-node storage caps.
    pub fn with_storage(tile_bits: u64, storage_bits: Vec<u64>) -> Self {
        assert!(tile_bits > 0);
        TileAllocator { tile_bits, storage_bits }
    }

    /// Maximum tiles node `k` can hold.
    fn cap(&self, k: usize) -> u64 {
        self.storage_bits[k] / self.tile_bits
    }

    /// Allocate `d` tiles given speed statistics `speeds` (from
    /// [`StatsCollector`]). Ties are broken uniformly at random via `rng`,
    /// as in the paper's Algorithm 3.
    ///
    /// Returns `x` with `x.len() == speeds.len()` and `Σ x = d` (or fewer if
    /// storage is exhausted — callers treat the remainder as unschedulable).
    /// A node with `s_k == 0` (failed, per §6.3) receives no tiles as long
    /// as any live node has capacity.
    pub fn allocate(&self, d: usize, speeds: &[f64], rng: &mut impl Rng) -> Vec<u32> {
        assert_eq!(speeds.len(), self.storage_bits.len(), "speeds/storage length mismatch");
        let k = speeds.len();
        let mut x = vec![0u32; k];
        for _ in 0..d {
            // Find the node minimizing the resulting makespan increase,
            // i.e. the smallest (x_k + 1) / s_k among nodes with capacity.
            let mut best: Option<(f64, Vec<usize>)> = None;
            for node in 0..k {
                if (x[node] as u64) >= self.cap(node) {
                    continue;
                }
                if speeds[node] <= 0.0 {
                    continue;
                }
                let load = (x[node] + 1) as f64 / speeds[node];
                match &mut best {
                    None => best = Some((load, vec![node])),
                    Some((b, ties)) => {
                        if load < *b - 1e-12 {
                            best = Some((load, vec![node]));
                        } else if (load - *b).abs() <= 1e-12 {
                            ties.push(node);
                        }
                    }
                }
            }
            match best {
                Some((_, ties)) => {
                    let pick = ties[rng.gen_range(0..ties.len())];
                    x[pick] += 1;
                }
                // All live nodes are out of storage: fall back to nodes
                // with capacity (even failed ones) so tiles are not lost;
                // spread the overflow across them — the least-loaded node
                // first, largest remaining capacity on ties — instead of
                // piling everything onto the lowest index. If truly
                // nothing has room, stop.
                None => {
                    let fallback =
                        (0..k).filter(|&n| (x[n] as u64) < self.cap(n)).min_by(|&a, &b| {
                            x[a].cmp(&x[b])
                                .then((self.cap(b) - x[b] as u64).cmp(&(self.cap(a) - x[a] as u64)))
                                .then(a.cmp(&b))
                        });
                    match fallback {
                        Some(node) => x[node] += 1,
                        None => break,
                    }
                }
            }
        }
        x
    }

    /// The makespan `max_k x_k / s_k` of an allocation (∞ if any tile sits
    /// on a zero-speed node).
    pub fn makespan(x: &[u32], speeds: &[f64]) -> f64 {
        x.iter()
            .zip(speeds)
            .map(|(&xi, &s)| {
                if xi == 0 {
                    0.0
                } else if s <= 0.0 {
                    f64::INFINITY
                } else {
                    xi as f64 / s
                }
            })
            .fold(0.0, f64::max)
    }
}

/// Round-robin allocation (ablation baseline: ignores node speeds).
pub fn allocate_round_robin(d: usize, k: usize) -> Vec<u32> {
    let mut x = vec![0u32; k];
    for t in 0..d {
        x[t % k] += 1;
    }
    x
}

/// Speed-proportional randomized allocation (ablation baseline).
pub fn allocate_proportional(d: usize, speeds: &[f64], rng: &mut impl Rng) -> Vec<u32> {
    let total: f64 = speeds.iter().filter(|s| **s > 0.0).sum();
    let mut x = vec![0u32; speeds.len()];
    if total <= 0.0 {
        return x;
    }
    for _ in 0..d {
        let mut r = rng.gen_range(0.0..total);
        for (k, &s) in speeds.iter().enumerate() {
            if s <= 0.0 {
                continue;
            }
            if r < s {
                x[k] += 1;
                break;
            }
            r -= s;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn stats_converge_to_steady_counts() {
        // Feeding a constant count vector must converge s_k to those counts
        // (the fixed point of the EWMA).
        let mut sc = StatsCollector::new(3, 0.9);
        for _ in 0..50 {
            sc.record_image(&[8, 4, 2]);
        }
        assert!((sc.speed(0) - 8.0).abs() < 1e-6);
        assert!((sc.speed(1) - 4.0).abs() < 1e-6);
        assert!((sc.speed(2) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn stats_track_degradation_quickly_at_high_gamma() {
        // §7.3: after nodes are throttled the system re-balances within a
        // few images because γ = 0.9 weights recent observations heavily.
        let mut sc = StatsCollector::new(1, 0.9);
        for _ in 0..20 {
            sc.record_image(&[8]);
        }
        sc.record_image(&[3]);
        sc.record_image(&[3]);
        assert!(sc.speed(0) < 3.5, "stale estimate {}", sc.speed(0));
    }

    #[test]
    fn failed_node_estimate_decays_to_zero() {
        // §6.3: "If node k fails, s_k will become zero and no tiles will be
        // assigned to it."
        let mut sc = StatsCollector::new(2, 0.9);
        for _ in 0..10 {
            sc.record_image(&[8, 8]);
        }
        for _ in 0..15 {
            sc.record_image(&[8, 0]);
        }
        assert!(sc.speed(1) < 1e-10);
        let alloc = TileAllocator::unbounded(2);
        let mut rng = StdRng::seed_from_u64(1);
        let x = alloc.allocate(64, sc.speeds(), &mut rng);
        assert_eq!(x[1], 0);
        assert_eq!(x[0], 64);
    }

    #[test]
    fn mark_failed_starves_node_immediately() {
        // Eager death detection: one observation of a disconnect must zero
        // the estimate at once, unlike the multi-image EWMA decay.
        let mut sc = StatsCollector::new(3, 0.9);
        for _ in 0..10 {
            sc.record_image(&[8, 8, 8]);
        }
        sc.mark_failed(1);
        assert_eq!(sc.speed(1), 0.0);
        let alloc = TileAllocator::unbounded(3);
        let mut rng = StdRng::seed_from_u64(11);
        let x = alloc.allocate(16, sc.speeds(), &mut rng);
        assert_eq!(x[1], 0, "{x:?}");
        assert_eq!(x.iter().sum::<u32>(), 16);
        // a recovered node re-enters through fresh observations
        sc.record_node(1, 8.0);
        assert!(sc.speed(1) > 0.0);
    }

    #[test]
    fn late_stragglers_cannot_resurrect_a_failed_node() {
        // Regression: a result that was in flight when the node died used
        // to blend the stale pre-failure rate back into the estimate, so
        // Algorithm 3 kept assigning tiles to a corpse.
        let mut sc = StatsCollector::new(2, 0.9);
        for _ in 0..10 {
            sc.record_image(&[8, 8]);
        }
        sc.mark_failed(1);
        assert_eq!(sc.speed(1), 0.0);
        // late straggler counted as zero timely results: stays pinned
        sc.record_node(1, 0.0);
        sc.record_image(&[8, 0]);
        assert_eq!(sc.speed(1), 0.0, "zero observations must not unpin a failed node");
        // the healthy node keeps learning normally meanwhile
        assert!((sc.speed(0) - 8.0).abs() < 1e-6);
    }

    #[test]
    fn recovery_restarts_from_the_measured_sample() {
        // A cleared node restarts from what was actually measured, not a
        // blend with the pre-failure history (the machine that produced
        // that history is gone).
        let mut sc = StatsCollector::new(2, 0.9);
        for _ in 0..10 {
            sc.record_image(&[8, 8]);
        }
        sc.mark_failed(1);
        sc.record_node(1, 3.0);
        assert_eq!(sc.speed(1), 3.0, "recovery must restart from the sample");
        // subsequent observations blend normally again
        sc.record_node(1, 5.0);
        assert!((sc.speed(1) - (0.1 * 3.0 + 0.9 * 5.0)).abs() < 1e-9);
    }

    #[test]
    fn rejoin_restarts_from_the_fresh_join_prior() {
        // A transport reconnect is a positive liveness observation: the
        // node re-enters allocation at the uniform prior, without its
        // pre-failure history and without waiting to be handed work it
        // would never receive at speed 0.
        let mut sc = StatsCollector::new(2, 0.9);
        for _ in 0..10 {
            sc.record_image(&[8, 8]);
        }
        sc.mark_failed(1);
        assert_eq!(sc.speed(1), 0.0);
        sc.rejoin(1);
        assert_eq!(sc.speed(1), 1.0, "rejoin restarts at the fresh-join prior");
        // measurements blend normally from there (flag cleared)
        sc.record_node(1, 5.0);
        assert!((sc.speed(1) - (0.1 * 1.0 + 0.9 * 5.0)).abs() < 1e-9);
        // rejoin on a healthy node is a no-op
        let before = sc.speed(0);
        sc.rejoin(0);
        assert_eq!(sc.speed(0), before);
    }

    #[test]
    fn equal_speeds_balanced_allocation() {
        // §7.2: identical Conv nodes each get the same number of tiles.
        let alloc = TileAllocator::unbounded(8);
        let mut rng = StdRng::seed_from_u64(2);
        let x = alloc.allocate(64, &[1.0; 8], &mut rng);
        assert!(x.iter().all(|&xi| xi == 8), "{x:?}");
    }

    #[test]
    fn allocation_proportional_to_speed() {
        // Figure 15(c): after nodes 5–8 slow down, nodes 1–4 get 12 tiles
        // each and the slow nodes get the remainder. Recreate that ratio:
        // 4 nodes at full speed, 2 at 45%, 2 at 24%.
        let speeds = [8.0, 8.0, 8.0, 8.0, 3.6, 3.6, 1.9, 1.9];
        let alloc = TileAllocator::unbounded(8);
        let mut rng = StdRng::seed_from_u64(3);
        let x = alloc.allocate(64, &speeds, &mut rng);
        assert_eq!(x.iter().sum::<u32>(), 64);
        // fast nodes get most of the work
        for i in 0..4 {
            assert!((11..=13).contains(&x[i]), "fast node {i}: {x:?}");
        }
        for i in 4..6 {
            assert!((4..=7).contains(&x[i]), "mid node {i}: {x:?}");
        }
        for i in 6..8 {
            assert!((2..=4).contains(&x[i]), "slow node {i}: {x:?}");
        }
    }

    #[test]
    fn greedy_is_optimal_for_two_nodes() {
        // For K=2 the greedy min-makespan is provably optimal; check
        // against brute force on small instances.
        let alloc = TileAllocator::unbounded(2);
        let mut rng = StdRng::seed_from_u64(4);
        for &(d, s0, s1) in &[(10usize, 1.0, 1.0), (17, 3.0, 1.0), (9, 2.5, 1.5)] {
            let x = alloc.allocate(d, &[s0, s1], &mut rng);
            let got = TileAllocator::makespan(&x, &[s0, s1]);
            let best = (0..=d)
                .map(|a| TileAllocator::makespan(&[a as u32, (d - a) as u32], &[s0, s1]))
                .fold(f64::INFINITY, f64::min);
            assert!((got - best).abs() < 1e-9, "d={d}: {got} vs optimal {best}");
        }
    }

    #[test]
    fn storage_cap_respected() {
        // Equation 1's constraint M·x_k ≤ H_k.
        let alloc = TileAllocator::with_storage(100, vec![250, 10_000]);
        let mut rng = StdRng::seed_from_u64(5);
        let x = alloc.allocate(20, &[1.0, 1.0], &mut rng);
        assert!(x[0] <= 2, "{x:?}");
        assert_eq!(x.iter().sum::<u32>(), 20);
    }

    #[test]
    fn storage_exhaustion_allocates_what_fits() {
        let alloc = TileAllocator::with_storage(100, vec![300, 300]);
        let mut rng = StdRng::seed_from_u64(6);
        let x = alloc.allocate(64, &[1.0, 1.0], &mut rng);
        assert_eq!(x.iter().sum::<u32>(), 6);
    }

    #[test]
    fn storage_fallback_spreads_across_nodes_with_capacity() {
        // Regression: when every *live* node is out of storage, the
        // overflow used to pile onto the lowest-index node with capacity
        // until it filled. It must spread across all nodes with room.
        let alloc = TileAllocator::with_storage(100, vec![600, 600, 600]);
        let mut rng = StdRng::seed_from_u64(9);
        // No live node at all: the entire demand goes through the fallback.
        let x = alloc.allocate(9, &[0.0, 0.0, 0.0], &mut rng);
        assert_eq!(x, vec![3, 3, 3], "fallback did not spread: {x:?}");
        // One live node with 2 slots, two failed nodes with plenty: the
        // live node fills first, the overflow splits across the rest.
        let alloc = TileAllocator::with_storage(100, vec![200, 600, 600]);
        let x = alloc.allocate(10, &[1.0, 0.0, 0.0], &mut rng);
        assert_eq!(x[0], 2, "live node must fill to its cap first: {x:?}");
        assert_eq!(x[1] + x[2], 8);
        assert!(x[1].abs_diff(x[2]) <= 1, "overflow not spread: {x:?}");
    }

    #[test]
    fn round_robin_ignores_speed() {
        let x = allocate_round_robin(10, 4);
        assert_eq!(x, vec![3, 3, 2, 2]);
    }

    #[test]
    fn proportional_tracks_speeds_statistically() {
        let mut rng = StdRng::seed_from_u64(7);
        let speeds = [3.0, 1.0];
        let mut totals = [0u32; 2];
        for _ in 0..200 {
            let x = allocate_proportional(4, &speeds, &mut rng);
            totals[0] += x[0];
            totals[1] += x[1];
        }
        let frac = totals[0] as f64 / (totals[0] + totals[1]) as f64;
        assert!((0.68..0.82).contains(&frac), "frac {frac}");
    }

    #[test]
    fn greedy_beats_round_robin_on_heterogeneous_nodes() {
        // The design-choice ablation in miniature.
        let speeds = [4.0, 1.0, 1.0, 1.0];
        let alloc = TileAllocator::unbounded(4);
        let mut rng = StdRng::seed_from_u64(8);
        let greedy = alloc.allocate(28, &speeds, &mut rng);
        let rr = allocate_round_robin(28, 4);
        let mg = TileAllocator::makespan(&greedy, &speeds);
        let mr = TileAllocator::makespan(&rr, &speeds);
        assert!(mg < mr, "greedy {mg} !< rr {mr}");
    }

    proptest! {
        #[test]
        fn prop_allocation_sums_to_d(d in 0usize..200, k in 1usize..10, seed in 0u64..1000) {
            let alloc = TileAllocator::unbounded(k);
            let mut rng = StdRng::seed_from_u64(seed);
            let speeds: Vec<f64> = (0..k).map(|i| 1.0 + (i as f64) * 0.37).collect();
            let x = alloc.allocate(d, &speeds, &mut rng);
            prop_assert_eq!(x.iter().sum::<u32>() as usize, d);
        }

        #[test]
        fn prop_greedy_within_one_tile_of_fluid_optimum(d in 1usize..300, seed in 0u64..100) {
            // The greedy solution's makespan never exceeds the fluid lower
            // bound D/Σs plus one tile on the slowest-filled node.
            let speeds = vec![2.0, 1.0, 4.0, 3.0];
            let alloc = TileAllocator::unbounded(4);
            let mut rng = StdRng::seed_from_u64(seed);
            let x = alloc.allocate(d, &speeds, &mut rng);
            let got = TileAllocator::makespan(&x, &speeds);
            let fluid = d as f64 / speeds.iter().sum::<f64>();
            let slack = 1.0 / speeds.iter().cloned().fold(f64::INFINITY, f64::min);
            prop_assert!(got <= fluid + slack + 1e-9, "{} > {} + {}", got, fluid, slack);
        }

        #[test]
        fn prop_zero_speed_gets_nothing(d in 1usize..100, seed in 0u64..100) {
            let speeds = vec![1.0, 0.0, 2.0];
            let alloc = TileAllocator::unbounded(3);
            let mut rng = StdRng::seed_from_u64(seed);
            let x = alloc.allocate(d, &speeds, &mut rng);
            prop_assert_eq!(x[1], 0);
        }
    }
}
