//! Property tests for the sans-IO tile-lifecycle state machine: for
//! arbitrary event interleavings,
//!
//! - every tile ends in exactly one terminal state (accepted once, or
//!   zero-filled/abandoned — never both, never neither),
//! - re-dispatch rounds never exceed `max_redispatch_rounds`,
//! - no action is emitted after image completion.
//!
//! The event stream is decoded from flat integer/float/bool vectors (not
//! composite strategies) so the test runs against any proptest-compatible
//! sampler.

use adcnn_core::lifecycle::{
    Action, Event, LifecycleCounters, LifecyclePolicy, TileLifecycle, TimerPolicy,
};
use proptest::prelude::*;

/// Decode one raw sample into an event. `kind` selects the variant; `at`
/// is scaled into a plausible window per variant; `idx` picks tiles and
/// workers.
fn decode_event(kind: usize, at: f64, idx: usize, ok: bool, d: usize, k: usize) -> Event {
    match kind % 6 {
        0 => Event::TileDelivered { tile: idx % d },
        1 => Event::SendComplete { at: at * 0.1 },
        2 => Event::ResultArrived { at: at * 0.5, tile: idx % d, worker: idx % k, ok },
        3 => Event::DeadlineFired { at: at * 6.0 },
        4 => Event::WorkerDied { worker: idx % k },
        _ => Event::SendRejected { tile: idx % d, worker: idx % k },
    }
}

/// Accepted/zero-filled tiles observed in the action stream.
#[derive(Default)]
struct Observed {
    accepts: Vec<usize>,
    zero_filled: Vec<usize>,
    complete: usize,
}

fn observe(acts: &[Action], obs: &mut Observed) {
    for a in acts {
        match a {
            Action::Accept { tile, .. } => obs.accepts.push(*tile),
            Action::ZeroFill { tiles } => obs.zero_filled.extend_from_slice(tiles),
            Action::Complete => obs.complete += 1,
            _ => {}
        }
    }
}

fn check_terminal(d: usize, obs: &Observed, c: &LifecycleCounters) {
    // Each tile was accepted at most once, and never both accepted and
    // zero-filled.
    let mut accepted = vec![false; d];
    for &t in &obs.accepts {
        assert!(!accepted[t], "tile {t} accepted twice");
        accepted[t] = true;
    }
    for &t in &obs.zero_filled {
        assert!(!accepted[t], "tile {t} both accepted and zero-filled");
    }
    // Every tile is accounted for exactly once: accepted, or counted in
    // zero_filled (which includes the abandoned shortfall).
    assert_eq!(
        obs.accepts.len() + c.zero_filled as usize,
        d,
        "tiles not conserved: {} accepted + {} zero-filled != {d}",
        obs.accepts.len(),
        c.zero_filled
    );
    assert_eq!(obs.complete, 1, "Complete must be emitted exactly once");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lifecycle_invariants_hold_for_arbitrary_interleavings(
        k in 1usize..5,
        d in 1usize..10,
        raw_alloc in proptest::collection::vec(0u32..4, 4..5),
        raw_speeds in proptest::collection::vec(0.0..2.0f64, 4..5),
        timer_idx in 0usize..3,
        rounds in 0u32..4,
        n_steps in 0usize..40,
        kinds in proptest::collection::vec(0usize..6, 40..41),
        ats in proptest::collection::vec(0.0..1.0f64, 40..41),
        idxs in proptest::collection::vec(0usize..16, 40..41),
        oks in proptest::collection::vec(any::<bool>(), 40..41),
    ) {
        // Build alloc/speeds of length k, with Σ alloc <= d (the Algorithm
        // 3 contract: the shortfall under storage caps is abandoned).
        let mut alloc: Vec<u32> = (0..k).map(|i| raw_alloc[i % raw_alloc.len()]).collect();
        let mut total: u32 = alloc.iter().sum();
        while total > d as u32 {
            for a in alloc.iter_mut() {
                if total > d as u32 && *a > 0 {
                    *a -= 1;
                    total -= 1;
                }
            }
        }
        let speeds: Vec<f64> = (0..k).map(|i| raw_speeds[i % raw_speeds.len()]).collect();
        let live = vec![true; k];
        let timer =
            [TimerPolicy::AfterSend, TimerPolicy::Deadline, TimerPolicy::WaitAll][timer_idx];
        let policy = LifecyclePolicy {
            max_redispatch_rounds: rounds,
            timer,
            hard_timeout: 5.0,
            ..Default::default()
        };

        let (mut lc, acts) = TileLifecycle::begin(policy, 0.0, d, &alloc, &speeds, &live);
        let mut obs = Observed::default();
        observe(&acts, &mut obs);

        for i in 0..n_steps {
            let ev = decode_event(kinds[i], ats[i], idxs[i], oks[i], d, k);
            let was_complete = lc.is_complete();
            let acts = lc.handle(ev);
            if was_complete {
                prop_assert!(acts.is_empty(), "action emitted after completion: {acts:?}");
            }
            observe(&acts, &mut obs);
            prop_assert!(
                lc.counters().rounds <= policy.max_redispatch_rounds,
                "rounds {} > max {}",
                lc.counters().rounds,
                policy.max_redispatch_rounds
            );
        }

        // Close the image out: firing at the hard deadline always finishes
        // (past that instant nothing is recoverable).
        if !lc.is_complete() {
            let acts = lc.handle(Event::DeadlineFired { at: lc.hard_deadline() });
            observe(&acts, &mut obs);
        }
        prop_assert!(lc.is_complete(), "hard deadline must complete the image");
        check_terminal(d, &obs, lc.counters());

        // And the machine stays silent forever after.
        for ev in [
            Event::DeadlineFired { at: lc.hard_deadline() + 1.0 },
            Event::SendComplete { at: 9.0 },
            Event::Abort,
            Event::SendRejected { tile: 0, worker: 0 },
            // late results are counted but must not produce actions
            Event::ResultArrived { at: 9.0, tile: 0, worker: 0, ok: true },
        ] {
            prop_assert!(lc.handle(ev).is_empty(), "action after completion: {ev:?}");
        }
        prop_assert!(lc.counters().rounds <= policy.max_redispatch_rounds);
    }
}
