//! Fully connected (dense) layers.

use crate::gemm::{gemm, gemm_at, gemm_bt, gemm_fused, FusedAct};
use crate::scratch::{ActBuf, Scratch};
use crate::tensor::Tensor;

/// Forward FC: `y[N, O] = x[N, D] · w[D, O] + b`.
pub fn linear(x: &Tensor, w: &Tensor, b: &[f32]) -> Tensor {
    let (n, d) = x.shape().rc();
    let (wd, o) = w.shape().rc();
    assert_eq!(d, wd, "linear dim mismatch: x cols {d} vs w rows {wd}");
    assert!(b.is_empty() || b.len() == o, "bias length mismatch");
    let mut y = Tensor::zeros([n, o]);
    gemm(n, d, o, x.as_slice(), w.as_slice(), y.as_mut_slice(), 0.0);
    if !b.is_empty() {
        for row in y.as_mut_slice().chunks_mut(o) {
            for (v, &bi) in row.iter_mut().zip(b) {
                *v += bi;
            }
        }
    }
    y
}

/// Allocation-free forward FC into a reusable [`ActBuf`].
///
/// Bias is per output *column*, so it cannot ride the gemm's per-row fused
/// epilogue; instead the gemm runs bias-free and a single cache-friendly
/// second pass adds `b` and applies `act`.
#[allow(clippy::too_many_arguments)]
pub fn linear_into(
    x: &[f32],
    n: usize,
    d: usize,
    w: &Tensor,
    b: &[f32],
    act: FusedAct,
    scratch: &mut Scratch,
    out: &mut ActBuf,
) {
    let (wd, o) = w.shape().rc();
    assert_eq!(d, wd, "linear dim mismatch: x cols {d} vs w rows {wd}");
    assert!(b.is_empty() || b.len() == o, "bias length mismatch");
    assert_eq!(x.len(), n * d, "input length mismatch");
    out.reshape(&[n, o]);
    gemm_fused(n, d, o, x, w.as_slice(), out.as_mut_slice(), None, FusedAct::Identity, scratch);
    if !b.is_empty() {
        for row in out.as_mut_slice().chunks_mut(o) {
            for (v, &bi) in row.iter_mut().zip(b) {
                *v = act.apply(*v + bi);
            }
        }
    } else if act != FusedAct::Identity {
        for v in out.as_mut_slice() {
            *v = act.apply(*v);
        }
    }
}

/// Gradients of [`linear`].
pub struct LinearGrads {
    /// `dL/dx`, shape `[N, D]`.
    pub dx: Tensor,
    /// `dL/dw`, shape `[D, O]`.
    pub dw: Tensor,
    /// `dL/db`, length `O`.
    pub db: Vec<f32>,
}

/// Backward FC.
pub fn linear_backward(x: &Tensor, w: &Tensor, dy: &Tensor) -> LinearGrads {
    let (n, d) = x.shape().rc();
    let (_, o) = w.shape().rc();
    let (dn, dyo) = dy.shape().rc();
    assert_eq!((dn, dyo), (n, o), "dy shape mismatch");

    // dx[N, D] = dy[N, O] · w^T; w stored [D, O] row-major == w^T stored [O, D]-transposed,
    // so use gemm_bt with b_t = w (treating w as the [D(=n of bt), O(=k)] transposed operand):
    // dx[i, j] = sum_o dy[i, o] * w[j, o] — matches gemm_bt(m=N, k=O, n=D, a=dy, b_t=w).
    let mut dx = Tensor::zeros([n, d]);
    gemm_bt(n, o, d, dy.as_slice(), w.as_slice(), dx.as_mut_slice(), 0.0);

    // dw[D, O] = x^T[D, N] · dy[N, O]; x stored [N, D] is exactly the
    // transposed operand gemm_at expects.
    let mut dw = Tensor::zeros([d, o]);
    gemm_at(d, n, o, x.as_slice(), dy.as_slice(), dw.as_mut_slice(), 0.0);

    let mut db = vec![0.0f32; o];
    for row in dy.as_slice().chunks(o) {
        for (acc, &g) in db.iter_mut().zip(row) {
            *acc += g;
        }
    }
    LinearGrads { dx, dw, db }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_matches_manual() {
        let x = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let w = Tensor::from_vec([3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let b = vec![0.5, -0.5];
        let y = linear(&x, &w, &b);
        // row0: [1 + 3, 2 + 3] + b = [4.5, 4.5]
        assert_eq!(y.as_slice(), &[4.5, 4.5, 10.5, 10.5]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(21);
        let x = Tensor::randn([3, 4], 1.0, &mut rng);
        let w = Tensor::randn([4, 2], 0.7, &mut rng);
        let b = vec![0.1, -0.2];
        let mask = Tensor::randn([3, 2], 1.0, &mut rng);
        let loss = |x: &Tensor, w: &Tensor, b: &[f32]| -> f64 {
            linear(x, w, b).zip_map(&mask, |a, m| a * m).sum()
        };
        let grads = linear_backward(&x, &w, &mask);

        let eps = 1e-2f32;
        for flat in 0..x.numel() {
            let mut xp = x.clone();
            xp.as_mut_slice()[flat] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[flat] -= eps;
            let num = ((loss(&xp, &w, &b) - loss(&xm, &w, &b)) / (2.0 * eps as f64)) as f32;
            assert!((num - grads.dx.as_slice()[flat]).abs() < 1e-2, "dx[{flat}]");
        }
        for flat in 0..w.numel() {
            let mut wp = w.clone();
            wp.as_mut_slice()[flat] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[flat] -= eps;
            let num = ((loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps as f64)) as f32;
            assert!((num - grads.dw.as_slice()[flat]).abs() < 1e-2, "dw[{flat}]");
        }
        for o in 0..2 {
            let mut bp = b.clone();
            bp[o] += eps;
            let mut bm = b.clone();
            bm[o] -= eps;
            let num = ((loss(&x, &w, &bp) - loss(&x, &w, &bm)) / (2.0 * eps as f64)) as f32;
            assert!((num - grads.db[o]).abs() < 1e-2, "db[{o}]");
        }
    }

    #[test]
    fn linear_into_matches_linear_with_activation() {
        let mut rng = StdRng::seed_from_u64(33);
        let x = Tensor::randn([5, 7], 1.0, &mut rng);
        let w = Tensor::randn([7, 4], 0.6, &mut rng);
        let b = vec![0.3, -0.1, 0.0, 0.7];
        let mut want = linear(&x, &w, &b);
        for v in want.as_mut_slice() {
            *v = v.max(0.0);
        }
        let mut scratch = Scratch::new();
        let mut out = ActBuf::new();
        linear_into(x.as_slice(), 5, 7, &w, &b, FusedAct::Relu, &mut scratch, &mut out);
        assert_eq!(out.dims(), &[5, 4]);
        assert!(out.to_tensor().approx_eq(&want, 1e-5));

        // No bias, identity activation.
        let want2 = linear(&x, &w, &[]);
        linear_into(x.as_slice(), 5, 7, &w, &[], FusedAct::Identity, &mut scratch, &mut out);
        assert!(out.to_tensor().approx_eq(&want2, 1e-5));
    }

    #[test]
    fn no_bias_supported() {
        let x = Tensor::full([1, 2], 1.0);
        let w = Tensor::full([2, 2], 2.0);
        let y = linear(&x, &w, &[]);
        assert_eq!(y.as_slice(), &[4.0, 4.0]);
    }
}
