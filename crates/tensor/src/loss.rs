//! Loss functions for the retraining experiments.

use crate::activ::softmax_rows;
use crate::tensor::Tensor;

/// Softmax cross-entropy over `[N, K]` logits with integer class targets.
///
/// Returns `(mean_loss, dlogits)` where `dlogits` already includes the
/// `1/N` factor, so it can be fed straight into the backward pass.
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f64, Tensor) {
    let (n, k) = logits.shape().rc();
    assert_eq!(targets.len(), n, "target count mismatch");
    let probs = softmax_rows(logits);
    let mut loss = 0.0f64;
    let mut dlogits = probs.clone();
    let inv_n = 1.0 / n as f32;
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < k, "target {t} out of range for {k} classes");
        let p = probs.at(&[i, t]).max(1e-12);
        loss -= (p as f64).ln();
        *dlogits.at_mut(&[i, t]) -= 1.0;
    }
    dlogits.scale(inv_n);
    (loss / n as f64, dlogits)
}

/// Classification accuracy of `[N, K]` logits against integer targets.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f64 {
    let (n, k) = logits.shape().rc();
    assert_eq!(targets.len(), n);
    let mut correct = 0usize;
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        let row = &logits.as_slice()[i * k..(i + 1) * k];
        let mut best = 0usize;
        for (j, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = j;
            }
        }
        if best == targets[i] {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

/// Mean squared error; returns `(mean_loss, dpred)`.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f64, Tensor) {
    assert_eq!(pred.dims(), target.dims(), "mse shape mismatch");
    let n = pred.numel() as f64;
    let mut loss = 0.0f64;
    let mut grad = Tensor::zeros(pred.dims());
    let scale = 2.0 / n as f32;
    for ((g, &p), &t) in grad.as_mut_slice().iter_mut().zip(pred.as_slice()).zip(target.as_slice())
    {
        let d = p - t;
        loss += (d as f64) * (d as f64);
        *g = scale * d;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_perfect_prediction_near_zero() {
        let logits = Tensor::from_vec([1, 3], vec![100.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::zeros([2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 3]);
        assert!((loss - (4.0f64).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_grad_matches_finite_difference() {
        let logits = Tensor::from_vec([2, 3], vec![0.5, -0.2, 1.0, 0.0, 0.3, -0.7]);
        let targets = [2usize, 0usize];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for flat in 0..logits.numel() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[flat] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[flat] -= eps;
            let (lossp, _) = softmax_cross_entropy(&lp, &targets);
            let (lossm, _) = softmax_cross_entropy(&lm, &targets);
            let num = ((lossp - lossm) / (2.0 * eps as f64)) as f32;
            assert!((num - grad.as_slice()[flat]).abs() < 1e-3, "grad[{flat}]");
        }
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::from_vec([3, 2], vec![1.0, 0.0, 0.0, 1.0, 0.9, 0.1]);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn mse_zero_for_identical() {
        let a = Tensor::from_fn([5], |i| i as f32);
        let (loss, grad) = mse(&a, &a);
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_grad_direction() {
        let pred = Tensor::from_vec([2], vec![1.0, 0.0]);
        let target = Tensor::from_vec([2], vec![0.0, 0.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 0.5).abs() < 1e-6);
        assert!(grad.as_slice()[0] > 0.0);
        assert_eq!(grad.as_slice()[1], 0.0);
    }
}

/// Per-pixel softmax cross-entropy for dense prediction (FCN-style):
/// `logits` is `[N, K, H, W]`, `targets[n*H*W + h*W + w]` is the class of
/// each pixel. Returns `(mean_loss, dlogits)` with the `1/(N·H·W)` factor
/// folded into the gradient.
pub fn pixel_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f64, Tensor) {
    let (n, k, h, w) = logits.shape().nchw();
    assert_eq!(targets.len(), n * h * w, "target count mismatch");
    let mut loss = 0.0f64;
    let mut grad = Tensor::zeros(logits.dims());
    let hw = h * w;
    let inv = 1.0 / (n * hw) as f32;
    let xs = logits.as_slice();
    let gs = grad.as_mut_slice();
    for ni in 0..n {
        for px in 0..hw {
            // softmax over the K channel values of this pixel
            let mut maxv = f32::NEG_INFINITY;
            for ci in 0..k {
                maxv = maxv.max(xs[(ni * k + ci) * hw + px]);
            }
            let mut denom = 0.0f32;
            for ci in 0..k {
                denom += (xs[(ni * k + ci) * hw + px] - maxv).exp();
            }
            let t = targets[ni * hw + px];
            assert!(t < k, "pixel target {t} out of range");
            for ci in 0..k {
                let p = (xs[(ni * k + ci) * hw + px] - maxv).exp() / denom;
                gs[(ni * k + ci) * hw + px] = inv * (p - if ci == t { 1.0 } else { 0.0 });
                if ci == t {
                    loss -= (p.max(1e-12) as f64).ln();
                }
            }
        }
    }
    (loss / (n * hw) as f64, grad)
}

/// Per-pixel argmax accuracy for dense `[N, K, H, W]` logits.
pub fn pixel_accuracy(logits: &Tensor, targets: &[usize]) -> f64 {
    let (n, k, h, w) = logits.shape().nchw();
    assert_eq!(targets.len(), n * h * w);
    let hw = h * w;
    let xs = logits.as_slice();
    let mut correct = 0usize;
    for ni in 0..n {
        for px in 0..hw {
            let mut best = 0usize;
            for ci in 1..k {
                if xs[(ni * k + ci) * hw + px] > xs[(ni * k + best) * hw + px] {
                    best = ci;
                }
            }
            if best == targets[ni * hw + px] {
                correct += 1;
            }
        }
    }
    correct as f64 / (n * hw) as f64
}

/// Mean intersection-over-union across classes for dense `[N, K, H, W]`
/// logits (the paper's FCN metric). Classes absent from both prediction
/// and ground truth are skipped.
pub fn mean_iou(logits: &Tensor, targets: &[usize]) -> f64 {
    let (n, k, h, w) = logits.shape().nchw();
    assert_eq!(targets.len(), n * h * w);
    let hw = h * w;
    let xs = logits.as_slice();
    let mut inter = vec![0u64; k];
    let mut union = vec![0u64; k];
    for ni in 0..n {
        for px in 0..hw {
            let mut pred = 0usize;
            for ci in 1..k {
                if xs[(ni * k + ci) * hw + px] > xs[(ni * k + pred) * hw + px] {
                    pred = ci;
                }
            }
            let t = targets[ni * hw + px];
            if pred == t {
                inter[t] += 1;
                union[t] += 1;
            } else {
                union[t] += 1;
                union[pred] += 1;
            }
        }
    }
    let mut acc = 0.0f64;
    let mut classes = 0usize;
    for ci in 0..k {
        if union[ci] > 0 {
            acc += inter[ci] as f64 / union[ci] as f64;
            classes += 1;
        }
    }
    if classes == 0 {
        0.0
    } else {
        acc / classes as f64
    }
}

#[cfg(test)]
mod dense_tests {
    use super::*;

    #[test]
    fn pixel_ce_perfect_prediction() {
        // logits heavily favoring the right class per pixel -> ~0 loss
        let mut logits = Tensor::zeros([1, 2, 2, 2]);
        let targets = [0usize, 1, 1, 0];
        for (px, &t) in targets.iter().enumerate() {
            *logits.at_mut(&[0, t, px / 2, px % 2]) = 50.0;
        }
        let (loss, _) = pixel_cross_entropy(&logits, &targets);
        assert!(loss < 1e-6, "{loss}");
        assert_eq!(pixel_accuracy(&logits, &targets), 1.0);
        assert_eq!(mean_iou(&logits, &targets), 1.0);
    }

    #[test]
    fn pixel_ce_grad_matches_finite_difference() {
        let mut logits = Tensor::from_fn([1, 3, 2, 2], |i| ((i * 7) % 5) as f32 * 0.3 - 0.5);
        let targets = [0usize, 2, 1, 1];
        let (_, grad) = pixel_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for flat in 0..logits.numel() {
            let orig = logits.as_slice()[flat];
            logits.as_mut_slice()[flat] = orig + eps;
            let (lp, _) = pixel_cross_entropy(&logits, &targets);
            logits.as_mut_slice()[flat] = orig - eps;
            let (lm, _) = pixel_cross_entropy(&logits, &targets);
            logits.as_mut_slice()[flat] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - grad.as_slice()[flat]).abs() < 1e-3,
                "grad[{flat}]: {num} vs {}",
                grad.as_slice()[flat]
            );
        }
    }

    #[test]
    fn iou_penalizes_false_positives() {
        // All pixels truly class 0; predict half as class 1.
        let mut logits = Tensor::zeros([1, 2, 1, 4]);
        for px in 0..4 {
            let c = if px < 2 { 0 } else { 1 };
            *logits.at_mut(&[0, c, 0, px]) = 10.0;
        }
        let targets = [0usize; 4];
        let acc = pixel_accuracy(&logits, &targets);
        assert_eq!(acc, 0.5);
        // class 0: inter 2, union 4 -> 0.5; class 1: inter 0, union 2 -> 0
        let iou = mean_iou(&logits, &targets);
        assert!((iou - 0.25).abs() < 1e-9, "{iou}");
    }
}
