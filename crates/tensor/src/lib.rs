//! # adcnn-tensor
//!
//! Dense `f32` tensor library underpinning the ADCNN reproduction.
//!
//! The paper's experiments ran on PyTorch; this crate is the from-scratch
//! substitute. It provides exactly what a CNN inference + retraining stack
//! needs and nothing more:
//!
//! - [`Tensor`]: a row-major, heap-allocated N-d array of `f32`.
//! - [`gemm`]: packed, register-tiled, rayon-parallel matrix multiply with
//!   optional fused bias+activation epilogues.
//! - [`conv`]: 2-D convolution (im2col + gemm) with full backward pass.
//! - [`scratch`]: reusable arenas ([`scratch::Scratch`],
//!   [`scratch::ActBuf`]) backing the allocation-free inference hot path.
//! - [`pool`]: max/average pooling with backward.
//! - [`norm`]: batch normalization (training and folded inference forms).
//! - [`activ`]: ReLU and the paper's clipped `ReLU[a,b]` (§4.1), softmax.
//! - [`linear`]: fully connected layers.
//! - [`loss`]: softmax cross-entropy and MSE.
//! - [`init`]: Kaiming/Xavier weight initialization.
//!
//! Layout convention: activations are `[N, C, H, W]`; convolution weights are
//! `[OC, IC, KH, KW]`; linear weights are `[IN, OUT]`.

pub mod activ;
pub mod conv;
pub mod gemm;
pub mod init;
pub mod linear;
pub mod loss;
pub mod norm;
pub mod pool;
pub mod scratch;
pub mod shape;
pub mod tensor;

pub use conv::{conv2d, conv2d_backward, Conv2dParams};
pub use scratch::{ActBuf, Scratch};
pub use shape::Shape;
pub use tensor::Tensor;

/// Approximate float comparison used across the workspace's tests.
#[inline]
pub fn approx_eq(a: f32, b: f32, tol: f32) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}
