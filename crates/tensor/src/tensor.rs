//! The dense `f32` tensor type.

use crate::shape::Shape;
use rand::Rng;
use std::fmt;

/// A dense, row-major, heap-allocated tensor of `f32`.
///
/// This is deliberately a simple owning container: views and broadcasting are
/// not supported; ops that need sub-regions (tile extraction, padding) copy.
/// For the feature-map sizes ADCNN works with this is cheap relative to the
/// convolution arithmetic, and it keeps ownership trivially safe across the
/// thread boundaries of the distributed runtime.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Build a tensor from a shape and matching data buffer.
    ///
    /// Panics if `data.len() != shape.numel()`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor { shape, data: vec![value; n] }
    }

    /// Tensor whose elements are produced by `f(flat_index)`.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let data = (0..n).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// Tensor with i.i.d. samples from `N(0, std^2)` (Box–Muller, driven by
    /// the caller's RNG so experiments stay reproducible).
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // Box–Muller transform: two uniforms -> two independent normals.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape, data }
    }

    /// Tensor with i.i.d. uniform samples from `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Extents as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the flat data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// Mutable element at a multi-index.
    #[inline]
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.shape.offset(idx);
        &mut self.data[off]
    }

    /// Reinterpret with a new shape of identical element count (no copy).
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "reshape to {:?} changes element count from {}",
            shape,
            self.data.len()
        );
        self.shape = shape;
        self
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combine with another tensor of identical shape.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += alpha * other` (same shape).
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise sum into a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Multiply every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Set every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Maximum absolute element, or 0 for empty tensors.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Fraction of elements equal to exactly zero.
    pub fn sparsity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        let zeros = self.data.iter().filter(|&&x| x == 0.0).count();
        zeros as f64 / self.data.len() as f64
    }

    /// True if every pair of elements differs by at most `tol`
    /// (absolute or relative, whichever is looser).
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self.data.iter().zip(&other.data).all(|(&a, &b)| crate::approx_eq(a, b, tol))
    }

    /// Extract a spatial crop `[rows, cols]` from a `[N,C,H,W]` tensor,
    /// zero-filling any part of the window that falls outside the input.
    ///
    /// This is the primitive underneath FDSP tile extraction: the window is
    /// given by its top-left corner `(r0, c0)` (may be negative) and size
    /// `(rows, cols)`.
    pub fn crop_spatial(&self, r0: isize, c0: isize, rows: usize, cols: usize) -> Tensor {
        let (n, c, h, w) = self.shape.nchw();
        let mut out = Tensor::zeros([n, c, rows, cols]);
        for ni in 0..n {
            for ci in 0..c {
                for ri in 0..rows {
                    let sr = r0 + ri as isize;
                    if sr < 0 || sr >= h as isize {
                        continue;
                    }
                    for cj in 0..cols {
                        let sc = c0 + cj as isize;
                        if sc < 0 || sc >= w as isize {
                            continue;
                        }
                        let v = self.at(&[ni, ci, sr as usize, sc as usize]);
                        *out.at_mut(&[ni, ci, ri, cj]) = v;
                    }
                }
            }
        }
        out
    }

    /// Paste `patch` (a `[N,C,h,w]` tensor) into this `[N,C,H,W]` tensor with
    /// its top-left spatial corner at `(r0, c0)`. Out-of-range parts of the
    /// patch are dropped.
    pub fn paste_spatial(&mut self, patch: &Tensor, r0: usize, c0: usize) {
        let (n, c, h, w) = self.shape.nchw();
        let (pn, pc, ph, pw) = patch.shape.nchw();
        assert_eq!((n, c), (pn, pc), "paste_spatial N/C mismatch");
        for ni in 0..n {
            for ci in 0..c {
                for ri in 0..ph {
                    let dr = r0 + ri;
                    if dr >= h {
                        break;
                    }
                    for cj in 0..pw {
                        let dc = c0 + cj;
                        if dc >= w {
                            break;
                        }
                        *self.at_mut(&[ni, ci, dr, dc]) = patch.at(&[ni, ci, ri, cj]);
                    }
                }
            }
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({:?}, {} elems)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn from_vec_and_at() {
        let t = Tensor::from_vec([2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(t.at(&[0, 2]), 2.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    #[should_panic]
    fn from_vec_len_mismatch_panics() {
        Tensor::from_vec([2, 2], vec![1.0; 5]);
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn([100, 100], 2.0, &mut rng);
        let mean = t.sum() / t.numel() as f64;
        let var =
            t.as_slice().iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / t.numel() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn([4, 3], |i| i as f32).reshape([2, 6]);
        assert_eq!(t.at(&[1, 0]), 6.0);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec([3], vec![1.0, -2.0, 3.0]);
        let b = a.map(|x| x * x);
        assert_eq!(b.as_slice(), &[1.0, 4.0, 9.0]);
        let c = a.zip_map(&b, |x, y| x + y);
        assert_eq!(c.as_slice(), &[2.0, 2.0, 12.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::zeros([4]);
        let g = Tensor::full([4], 2.0);
        a.add_scaled(&g, -0.5);
        assert_eq!(a.as_slice(), &[-1.0; 4]);
    }

    #[test]
    fn sparsity_counts_exact_zeros() {
        let t = Tensor::from_vec([4], vec![0.0, 1.0, 0.0, -3.0]);
        assert_eq!(t.sparsity(), 0.5);
    }

    #[test]
    fn crop_inside() {
        // 1x1x4x4 ramp image.
        let t = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let c = t.crop_spatial(1, 1, 2, 2);
        assert_eq!(c.dims(), &[1, 1, 2, 2]);
        assert_eq!(c.as_slice(), &[5.0, 6.0, 9.0, 10.0]);
    }

    #[test]
    fn crop_out_of_range_zero_fills() {
        let t = Tensor::from_fn([1, 1, 2, 2], |i| (i + 1) as f32);
        let c = t.crop_spatial(-1, -1, 3, 3);
        // Top row and left column must be zero-padded.
        assert_eq!(c.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(c.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(c.at(&[0, 0, 2, 2]), 4.0);
    }

    #[test]
    fn paste_roundtrips_crop() {
        let t = Tensor::from_fn([1, 2, 4, 4], |i| i as f32);
        let tile = t.crop_spatial(2, 0, 2, 2);
        let mut out = Tensor::zeros([1, 2, 4, 4]);
        out.paste_spatial(&tile, 2, 0);
        for ci in 0..2 {
            for r in 2..4 {
                for c in 0..2 {
                    assert_eq!(out.at(&[0, ci, r, c]), t.at(&[0, ci, r, c]));
                }
            }
        }
    }

    #[test]
    fn approx_eq_tolerates_small_error() {
        let a = Tensor::full([3], 1.0);
        let mut b = a.clone();
        b.as_mut_slice()[1] = 1.0 + 1e-6;
        assert!(a.approx_eq(&b, 1e-5));
        b.as_mut_slice()[1] = 1.1;
        assert!(!a.approx_eq(&b, 1e-5));
    }
}
