//! Blocked, packed, rayon-parallel single-precision matrix multiply.
//!
//! The convolution path (im2col) reduces to `C = A · B` where `A` is the
//! filter matrix `[OC, IC·KH·KW]` and `B` is the unrolled input
//! `[IC·KH·KW, OH·OW]`. The forward kernel packs `B` once per call into
//! cache-friendly `KC×NR` panels and runs a register-tiled `MR×NR`
//! microkernel with the accumulators in locals, so the hot loop streams one
//! `A` panel and one `B` panel with no `C` traffic until write-back. An
//! optional fused epilogue applies the conv bias and activation on the final
//! k-block write-back, which lets the inference path skip separate
//! bias/activation passes over the output map.
//!
//! Blocking parameters (also documented in DESIGN.md §"Performance
//! architecture"): `MR×NR = 4×8` register tile, `KC = 256` k-blocking, so a
//! packed A panel (`4·256` f32) plus a packed B panel (`256·8` f32) stay
//! resident in L1 while a k-block is processed. On x86-64 the microkernel
//! dispatches at runtime to an AVX2+FMA variant (one YMM accumulator per
//! output row) when the CPU supports it, since the build targets baseline
//! SSE2; other architectures use the portable scalar tile.

use crate::scratch::Scratch;
use rayon::prelude::*;
use std::cell::RefCell;

/// Microkernel row count (output rows accumulated per register tile).
pub const MR: usize = 4;
/// Microkernel column count (output columns per register tile).
pub const NR: usize = 8;
/// Tile edge for the k-dimension blocking. Chosen so one packed `A` panel
/// and one packed `B` panel fit comfortably in L1 for f32.
pub const KC: usize = 256;

/// Below this work threshold the parallel dispatch overhead outweighs the
/// speedup, so we stay single-threaded.
const PAR_FLOP_THRESHOLD: usize = 1 << 16;

/// Activation fused into the GEMM epilogue (applied on the last k-block
/// write-back, together with the optional per-row bias).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FusedAct {
    /// No activation.
    Identity,
    /// `max(0, x)`.
    Relu,
    /// The paper's shifted clipped ReLU: `0` below `lo`, `x - lo` inside
    /// `[lo, hi]`, saturating at `hi - lo` (mirrors
    /// [`crate::activ::ClippedRelu::apply`]).
    Clipped { lo: f32, hi: f32 },
}

impl FusedAct {
    /// Apply the activation to one element.
    #[inline(always)]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            FusedAct::Identity => x,
            FusedAct::Relu => {
                if x > 0.0 {
                    x
                } else {
                    0.0
                }
            }
            FusedAct::Clipped { lo, hi } => {
                if x > hi {
                    hi - lo
                } else if x >= lo {
                    x - lo
                } else {
                    0.0
                }
            }
        }
    }
}

thread_local! {
    /// Per-thread pack buffer backing the scratch-less public [`gemm`]; the
    /// allocation-free path passes an explicit [`Scratch`] instead.
    static PACK_TLS: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Number of worker threads the parallel dispatch sees (rayon's pool size;
/// benches report it alongside throughput numbers).
pub fn current_threads() -> usize {
    rayon::current_num_threads()
}

/// `c[m×n] = a[m×k] · b[k×n] + beta · c`.
///
/// All matrices are dense row-major slices. Panics if the slice lengths do
/// not match the stated dimensions. Uses a per-thread pack buffer; steady
/// state allocates nothing once the buffer has grown to the largest shape
/// seen on the thread.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    PACK_TLS.with(|p| {
        gemm_packed(m, k, n, a, b, c, beta, None, FusedAct::Identity, &mut p.borrow_mut())
    });
}

/// Fused-epilogue GEMM with caller-provided pack scratch:
/// `c = act(a·b + bias)`, row `i` of `c` offset by `bias[i]`.
///
/// This is the inference hot-path entry: `beta` is fixed at 0, the pack
/// buffer comes from the worker's [`Scratch`] arena, and bias + activation
/// are applied in the last k-block write-back instead of a separate pass.
#[allow(clippy::too_many_arguments)]
pub fn gemm_fused(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    bias: Option<&[f32]>,
    act: FusedAct,
    scratch: &mut Scratch,
) {
    gemm_packed(m, k, n, a, b, c, 0.0, bias, act, scratch.pack_buf());
}

/// Shared implementation behind [`gemm`] and [`gemm_fused`]; `conv2d` calls
/// it directly so the im2col and pack buffers can come from one [`Scratch`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_packed(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    beta: f32,
    bias: Option<&[f32]>,
    act: FusedAct,
    pack: &mut Vec<f32>,
) {
    assert_eq!(a.len(), m * k, "A dims mismatch");
    assert_eq!(b.len(), k * n, "B dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");
    if let Some(bs) = bias {
        assert_eq!(bs.len(), m, "bias dims mismatch");
    }

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // Degenerate reduction: the product is zero, but the epilogue still
        // owes bias + activation.
        if bias.is_some() || act != FusedAct::Identity {
            for (i, crow) in c.chunks_mut(n).enumerate() {
                let badd = bias.map_or(0.0, |bs| bs[i]);
                for cv in crow.iter_mut() {
                    *cv = act.apply(*cv + badd);
                }
            }
        }
        return;
    }

    let flops = m * n * k;
    let parallel = flops >= PAR_FLOP_THRESHOLD && rayon::current_num_threads() > 1;

    if m == 1 {
        // Single-row (fully-connected) case: no point packing; split the N
        // dimension across threads instead so large layers still parallelize.
        let b0 = bias.map_or(0.0, |bs| bs[0]);
        if parallel {
            let chunk = n.div_ceil(rayon::current_num_threads() * 4).max(NR);
            c.par_chunks_mut(chunk)
                .enumerate()
                .for_each(|(ci, ccols)| gemm_row1(ci * chunk, k, n, a, b, ccols, b0, act));
        } else {
            gemm_row1(0, k, n, a, b, c, b0, act);
        }
        return;
    }

    pack_b(k, n, b, pack);
    if parallel && m > MR {
        c.par_chunks_mut(MR * n).enumerate().for_each(|(ib, cblock)| {
            let i0 = ib * MR;
            row_block(i0, MR.min(m - i0), k, n, a, pack, cblock, bias, act);
        });
    } else {
        for (ib, cblock) in c.chunks_mut(MR * n).enumerate() {
            let i0 = ib * MR;
            row_block(i0, MR.min(m - i0), k, n, a, pack, cblock, bias, act);
        }
    }
}

/// Pack `b` (`[k, n]` row-major) into `KC`-row blocks of `NR`-column panels.
///
/// Block for rows `k0..k0+kb` starts at `k0 · np · NR`; within it, panel `p`
/// (columns `p·NR..`) is `kb·NR` contiguous floats in k-major order, with
/// tail columns zero-padded so the microkernel never branches on `n % NR`.
fn pack_b(k: usize, n: usize, b: &[f32], pack: &mut Vec<f32>) {
    let np = n.div_ceil(NR);
    pack.clear();
    pack.resize(k * np * NR, 0.0);
    let mut k0 = 0;
    while k0 < k {
        let kb = KC.min(k - k0);
        let block = &mut pack[k0 * np * NR..(k0 + kb) * np * NR];
        for (pj, panel) in block.chunks_exact_mut(kb * NR).enumerate() {
            let j0 = pj * NR;
            let jb = NR.min(n - j0);
            for kk in 0..kb {
                let src = &b[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + jb];
                panel[kk * NR..kk * NR + jb].copy_from_slice(src);
                if jb < NR {
                    // The buffer is reused across calls, so stale tail
                    // values must be re-zeroed explicitly.
                    panel[kk * NR + jb..(kk + 1) * NR].fill(0.0);
                }
            }
        }
        k0 += kb;
    }
}

/// Compute `MR` output rows (`i0..i0+mb`) of the packed product into
/// `cblock` (`mb` rows of stride `n`), applying bias + activation on the
/// final k-block write-back.
#[allow(clippy::too_many_arguments)]
fn row_block(
    i0: usize,
    mb: usize,
    k: usize,
    n: usize,
    a: &[f32],
    pack: &[f32],
    cblock: &mut [f32],
    bias: Option<&[f32]>,
    act: FusedAct,
) {
    let np = n.div_ceil(NR);
    let mut a_panel = [0.0f32; MR * KC];
    let mut k0 = 0;
    while k0 < k {
        let kb = KC.min(k - k0);
        let last = k0 + kb == k;
        // Interleave the A rows (k-major, MR-wide) so the microkernel reads
        // one contiguous MR-vector per k step; missing tail rows stay zero.
        for kk in 0..kb {
            for r in 0..MR {
                a_panel[kk * MR + r] = if r < mb { a[(i0 + r) * k + k0 + kk] } else { 0.0 };
            }
        }
        let block = &pack[k0 * np * NR..(k0 + kb) * np * NR];
        for (pj, bpanel) in block.chunks_exact(kb * NR).enumerate() {
            let j0 = pj * NR;
            let jb = NR.min(n - j0);
            let mut acc = [[0.0f32; NR]; MR];
            microkernel_dispatch(&a_panel, bpanel, kb, &mut acc);
            for (r, accr) in acc.iter().enumerate().take(mb) {
                let crow = &mut cblock[r * n + j0..r * n + j0 + jb];
                if last {
                    let badd = bias.map_or(0.0, |bs| bs[i0 + r]);
                    for (cv, &av) in crow.iter_mut().zip(accr.iter()) {
                        *cv = act.apply(*cv + av + badd);
                    }
                } else {
                    for (cv, &av) in crow.iter_mut().zip(accr.iter()) {
                        *cv += av;
                    }
                }
            }
        }
        k0 += kb;
    }
}

/// Pick the widest microkernel the CPU supports. The crate builds against
/// baseline x86-64 (SSE2 only), so AVX2+FMA has to be a *runtime* dispatch:
/// probed once, then a predictable branch per panel.
#[inline]
fn microkernel_dispatch(a_panel: &[f32], bpanel: &[f32], kb: usize, acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    if x86::fma_available() {
        // SAFETY: the feature probe passed; `a_panel` holds `kb` MR-wide
        // k-steps and `bpanel` exactly `kb` NR-wide k-steps (panel layout
        // established by `pack_b`/`row_block`).
        unsafe { x86::microkernel_fma(a_panel, bpanel, kb, acc) };
        return;
    }
    let _ = kb;
    microkernel(a_panel, bpanel, acc);
}

/// The portable register tile: `acc[MR][NR] += a_panel ⊗ bpanel` over one
/// k-block. `bpanel` (`kb` chunks of `NR`) drives the zip, `a_panel` is
/// k-major `MR`-interleaved. Accumulators live in locals across the whole
/// block.
#[inline]
fn microkernel(a_panel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (arow, brow) in a_panel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        for (r, accr) in acc.iter_mut().enumerate() {
            let ar = arow[r];
            for (jj, av) in accr.iter_mut().enumerate() {
                *av += ar * brow[jj];
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    // The FMA kernel hardcodes 4 row accumulators of one YMM each.
    const _: () = assert!(MR == 4 && NR == 8, "microkernel_fma assumes a 4x8 tile");

    /// One-time probe for the wide microkernel; an atomic load thereafter.
    pub fn fma_available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }

    /// AVX2+FMA register tile: `NR == 8` is exactly one YMM, so each output
    /// row is a single vector accumulator. Two accumulator sets per row
    /// (even/odd k-steps, summed at the end) keep 8 independent FMA chains
    /// in flight, hiding the 4–5 cycle FMA latency a single set would
    /// serialize on.
    ///
    /// # Safety
    /// Caller must have checked [`fma_available`], and `a_panel`/`bpanel`
    /// must hold at least `kb` packed k-steps (`MR`- resp. `NR`-wide).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn microkernel_fma(
        a_panel: &[f32],
        bpanel: &[f32],
        kb: usize,
        acc: &mut [[f32; NR]; MR],
    ) {
        debug_assert!(a_panel.len() >= kb * MR && bpanel.len() >= kb * NR);
        let a = a_panel.as_ptr();
        let b = bpanel.as_ptr();
        let mut c0 = _mm256_loadu_ps(acc[0].as_ptr());
        let mut c1 = _mm256_loadu_ps(acc[1].as_ptr());
        let mut c2 = _mm256_loadu_ps(acc[2].as_ptr());
        let mut c3 = _mm256_loadu_ps(acc[3].as_ptr());
        let mut d0 = _mm256_setzero_ps();
        let mut d1 = _mm256_setzero_ps();
        let mut d2 = _mm256_setzero_ps();
        let mut d3 = _mm256_setzero_ps();
        for p in 0..kb / 2 {
            let kk = 2 * p;
            let bv0 = _mm256_loadu_ps(b.add(kk * NR));
            let ap0 = a.add(kk * MR);
            c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap0), bv0, c0);
            c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap0.add(1)), bv0, c1);
            c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap0.add(2)), bv0, c2);
            c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap0.add(3)), bv0, c3);
            let bv1 = _mm256_loadu_ps(b.add((kk + 1) * NR));
            let ap1 = a.add((kk + 1) * MR);
            d0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap1), bv1, d0);
            d1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap1.add(1)), bv1, d1);
            d2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap1.add(2)), bv1, d2);
            d3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap1.add(3)), bv1, d3);
        }
        if kb % 2 == 1 {
            let kk = kb - 1;
            let bv = _mm256_loadu_ps(b.add(kk * NR));
            let ap = a.add(kk * MR);
            c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap), bv, c0);
            c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(1)), bv, c1);
            c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(2)), bv, c2);
            c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(&*ap.add(3)), bv, c3);
        }
        _mm256_storeu_ps(acc[0].as_mut_ptr(), _mm256_add_ps(c0, d0));
        _mm256_storeu_ps(acc[1].as_mut_ptr(), _mm256_add_ps(c1, d1));
        _mm256_storeu_ps(acc[2].as_mut_ptr(), _mm256_add_ps(c2, d2));
        _mm256_storeu_ps(acc[3].as_mut_ptr(), _mm256_add_ps(c3, d3));
    }
}

/// `m == 1` kernel over the column span `j0..j0+ccols.len()`: k-blocked axpy
/// with zero-skip (the seed kernel's shape), then the fused epilogue.
#[allow(clippy::too_many_arguments)]
fn gemm_row1(
    j0: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    ccols: &mut [f32],
    bias0: f32,
    act: FusedAct,
) {
    let jb = ccols.len();
    let mut k0 = 0;
    while k0 < k {
        let kb = KC.min(k - k0);
        for kk in 0..kb {
            let aik = a[k0 + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + jb];
            for (cj, &bj) in ccols.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
        k0 += kb;
    }
    if bias0 != 0.0 || act != FusedAct::Identity {
        for cv in ccols.iter_mut() {
            *cv = act.apply(*cv + bias0);
        }
    }
}

/// The seed's unpacked row kernel, kept as the benchmark baseline so
/// `benches/micro.rs` can report the packed kernel's speedup against it
/// (`BENCH_gemm.json`).
pub fn gemm_unpacked(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    assert_eq!(a.len(), m * k, "A dims mismatch");
    assert_eq!(b.len(), k * n, "B dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let flops = m * n * k;
    if flops >= PAR_FLOP_THRESHOLD && m > 1 {
        c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| unpacked_row(i, k, n, a, b, crow));
    } else {
        for (i, crow) in c.chunks_mut(n).enumerate() {
            unpacked_row(i, k, n, a, b, crow);
        }
    }
}

/// Accumulate one output row: `crow += a[i, :] · b` (seed kernel body).
#[inline]
fn unpacked_row(i: usize, k: usize, n: usize, a: &[f32], b: &[f32], crow: &mut [f32]) {
    let arow = &a[i * k..(i + 1) * k];
    // k-blocking keeps the active B panel hot in cache.
    let mut k0 = 0;
    while k0 < k {
        let kb = KC.min(k - k0);
        for kk in 0..kb {
            let aik = arow[k0 + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[(k0 + kk) * n..(k0 + kk) * n + n];
            // This inner loop autovectorizes: c[j] += aik * b[kk, j].
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
        k0 += kb;
    }
}

/// `c[m×n] = a^T[k×m]^T · b[k×n] + beta·c`, i.e. A is stored transposed
/// (`a` is `[k, m]` row-major). Used by the convolution backward pass where
/// the filter matrix must be applied transposed without materializing a copy.
pub fn gemm_at(m: usize, k: usize, n: usize, a_t: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    assert_eq!(a_t.len(), k * m, "A^T dims mismatch");
    assert_eq!(b.len(), k * n, "B dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    // Process sequentially in k (outer) so each B row is streamed once;
    // parallelism over output rows would race, so split m instead.
    let flops = m * n * k;
    if flops >= PAR_FLOP_THRESHOLD && m > 1 {
        c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
            for kk in 0..k {
                let aik = a_t[kk * m + i];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..kk * n + n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        });
    } else {
        for (i, crow) in c.chunks_mut(n).enumerate() {
            for kk in 0..k {
                let aik = a_t[kk * m + i];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..kk * n + n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        }
    }
}

/// `c[m×n] = a[m×k] · b^T[n×k]^T + beta·c`, i.e. B is stored transposed
/// (`b_t` is `[n, k]` row-major). Used for weight gradients
/// (`dW = dY · X^T`) where X naturally sits row-major as `[n, k]`.
pub fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], b_t: &[f32], c: &mut [f32], beta: f32) {
    assert_eq!(a.len(), m * k, "A dims mismatch");
    assert_eq!(b_t.len(), n * k, "B^T dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let flops = m * n * k;
    let body = |i: usize, crow: &mut [f32]| {
        let arow = &a[i * k..(i + 1) * k];
        for (j, cij) in crow.iter_mut().enumerate() {
            let brow = &b_t[j * k..(j + 1) * k];
            // Dot product of two contiguous rows; autovectorizes well.
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *cij += acc;
        }
    };
    if flops >= PAR_FLOP_THRESHOLD && m > 1 {
        c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| body(i, crow));
    } else {
        for (i, crow) in c.chunks_mut(n).enumerate() {
            body(i, crow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn rand_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn matches_naive_small() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 8, 8)] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c, 0.0);
            let want = naive(m, k, n, &a, &b);
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn matches_naive_large_parallel() {
        let mut rng = StdRng::seed_from_u64(2);
        let (m, k, n) = (64, 300, 50);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c, 0.0);
        let want = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matches_unpacked_across_shapes() {
        // Shapes chosen to cross every blocking boundary: MR/NR remainders,
        // multiple KC blocks, and the single-row N-split path.
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in
            &[(1, 700, 300), (3, 5, 9), (4, 256, 8), (5, 257, 9), (13, 520, 33), (16, 300, 64)]
        {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c1 = vec![0.0; m * n];
            let mut c2 = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c1, 0.0);
            gemm_unpacked(m, k, n, &a, &b, &mut c2, 0.0);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-3, "({m},{k},{n}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn fused_epilogue_matches_separate_passes() {
        let mut rng = StdRng::seed_from_u64(8);
        let (m, k, n) = (6, 40, 19);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.1 - 0.2).collect();
        for act in [FusedAct::Identity, FusedAct::Relu, FusedAct::Clipped { lo: -0.5, hi: 0.8 }] {
            let mut fused = vec![0.0; m * n];
            let mut scratch = Scratch::new();
            gemm_fused(m, k, n, &a, &b, &mut fused, Some(&bias), act, &mut scratch);

            let mut want = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut want, 0.0);
            for (i, row) in want.chunks_mut(n).enumerate() {
                for v in row.iter_mut() {
                    *v = act.apply(*v + bias[i]);
                }
            }
            for (x, y) in fused.iter().zip(&want) {
                assert!((x - y).abs() < 1e-4, "{act:?}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn fused_single_row_applies_epilogue() {
        let mut rng = StdRng::seed_from_u64(9);
        let (k, n) = (30, 700);
        let a = rand_vec(k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let bias = [0.3f32];
        let act = FusedAct::Relu;
        let mut fused = vec![0.0; n];
        let mut scratch = Scratch::new();
        gemm_fused(1, k, n, &a, &b, &mut fused, Some(&bias), act, &mut scratch);

        let mut want = vec![0.0; n];
        gemm(1, k, n, &a, &b, &mut want, 0.0);
        for v in want.iter_mut() {
            *v = act.apply(*v + bias[0]);
        }
        for (x, y) in fused.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn zero_k_fused_is_activated_bias() {
        let mut c = vec![7.0; 6]; // beta=0 clears this first
        let mut scratch = Scratch::new();
        let bias = [1.0f32, -2.0];
        gemm_fused(2, 0, 3, &[], &[], &mut c, Some(&bias), FusedAct::Relu, &mut scratch);
        assert_eq!(c, vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn beta_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity 2x2
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![10.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c, 1.0);
        assert_eq!(c, vec![11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn gemm_at_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let (m, k, n) = (6, 9, 5);
        let a = rand_vec(m * k, &mut rng); // logical A [m,k]
        let b = rand_vec(k * n, &mut rng);
        // store A transposed as [k, m]
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c1, 0.0);
        gemm_at(m, k, n, &at, &b, &mut c2, 0.0);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_bt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(4);
        let (m, k, n) = (4, 7, 6);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng); // logical B [k,n]
        let mut bt = vec![0.0; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c1, 0.0);
        gemm_bt(m, k, n, &a, &bt, &mut c2, 0.0);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut c: Vec<f32> = vec![];
        gemm(0, 3, 0, &[], &[], &mut c, 0.0);
        let mut c2 = vec![5.0; 4];
        gemm(2, 0, 2, &[], &[], &mut c2, 1.0);
        assert_eq!(c2, vec![5.0; 4]);
    }
}
