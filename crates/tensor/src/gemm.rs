//! Blocked, rayon-parallel single-precision matrix multiply.
//!
//! The convolution path (im2col) reduces to `C = A · B` where `A` is the
//! filter matrix `[OC, IC·KH·KW]` and `B` is the unrolled input
//! `[IC·KH·KW, OH·OW]`. A straightforward cache-blocked kernel with
//! row-parallelism is plenty for the model sizes the reproduction runs
//! natively (the Raspberry-Pi-scale numbers come from the simulator's cost
//! model, not from timing this kernel).

use rayon::prelude::*;

/// Tile edge for the k-dimension blocking. Chosen so one `A` row block and a
/// `B` panel fit comfortably in L1 for f32.
const KC: usize = 256;

/// Below this work threshold the parallel dispatch overhead outweighs the
/// speedup, so we stay single-threaded.
const PAR_FLOP_THRESHOLD: usize = 1 << 16;

/// `c[m×n] = a[m×k] · b[k×n] + beta · c`.
///
/// All matrices are dense row-major slices. Panics if the slice lengths do
/// not match the stated dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    assert_eq!(a.len(), m * k, "A dims mismatch");
    assert_eq!(b.len(), k * n, "B dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let flops = m * n * k;
    if flops >= PAR_FLOP_THRESHOLD && m > 1 {
        c.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, crow)| gemm_row(i, k, n, a, b, crow));
    } else {
        for (i, crow) in c.chunks_mut(n).enumerate() {
            gemm_row(i, k, n, a, b, crow);
        }
    }
}

/// Accumulate one output row: `crow += a[i, :] · b`.
#[inline]
fn gemm_row(i: usize, k: usize, n: usize, a: &[f32], b: &[f32], crow: &mut [f32]) {
    let arow = &a[i * k..(i + 1) * k];
    // k-blocking keeps the active B panel hot in cache.
    let mut k0 = 0;
    while k0 < k {
        let kb = KC.min(k - k0);
        for kk in 0..kb {
            let aik = arow[k0 + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[(k0 + kk) * n..(k0 + kk) * n + n];
            // This inner loop autovectorizes: c[j] += aik * b[kk, j].
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
        k0 += kb;
    }
}

/// `c[m×n] = a^T[k×m]^T · b[k×n] + beta·c`, i.e. A is stored transposed
/// (`a` is `[k, m]` row-major). Used by the convolution backward pass where
/// the filter matrix must be applied transposed without materializing a copy.
pub fn gemm_at(m: usize, k: usize, n: usize, a_t: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    assert_eq!(a_t.len(), k * m, "A^T dims mismatch");
    assert_eq!(b.len(), k * n, "B dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    // Process sequentially in k (outer) so each B row is streamed once;
    // parallelism over output rows would race, so split m instead.
    let flops = m * n * k;
    if flops >= PAR_FLOP_THRESHOLD && m > 1 {
        c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
            for kk in 0..k {
                let aik = a_t[kk * m + i];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..kk * n + n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        });
    } else {
        for (i, crow) in c.chunks_mut(n).enumerate() {
            for kk in 0..k {
                let aik = a_t[kk * m + i];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..kk * n + n];
                for (cj, &bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        }
    }
}

/// `c[m×n] = a[m×k] · b^T[n×k]^T + beta·c`, i.e. B is stored transposed
/// (`b_t` is `[n, k]` row-major). Used for weight gradients
/// (`dW = dY · X^T`) where X naturally sits row-major as `[n, k]`.
pub fn gemm_bt(m: usize, k: usize, n: usize, a: &[f32], b_t: &[f32], c: &mut [f32], beta: f32) {
    assert_eq!(a.len(), m * k, "A dims mismatch");
    assert_eq!(b_t.len(), n * k, "B^T dims mismatch");
    assert_eq!(c.len(), m * n, "C dims mismatch");

    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let flops = m * n * k;
    let body = |i: usize, crow: &mut [f32]| {
        let arow = &a[i * k..(i + 1) * k];
        for (j, cij) in crow.iter_mut().enumerate() {
            let brow = &b_t[j * k..(j + 1) * k];
            // Dot product of two contiguous rows; autovectorizes well.
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *cij += acc;
        }
    };
    if flops >= PAR_FLOP_THRESHOLD && m > 1 {
        c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| body(i, crow));
    } else {
        for (i, crow) in c.chunks_mut(n).enumerate() {
            body(i, crow);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn rand_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn matches_naive_small() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 8, 8)] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut c = vec![0.0; m * n];
            gemm(m, k, n, &a, &b, &mut c, 0.0);
            let want = naive(m, k, n, &a, &b);
            for (x, y) in c.iter().zip(&want) {
                assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn matches_naive_large_parallel() {
        let mut rng = StdRng::seed_from_u64(2);
        let (m, k, n) = (64, 300, 50);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut c = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c, 0.0);
        let want = naive(m, k, n, &a, &b);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn beta_accumulates() {
        let a = vec![1.0, 0.0, 0.0, 1.0]; // identity 2x2
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut c = vec![10.0; 4];
        gemm(2, 2, 2, &a, &b, &mut c, 1.0);
        assert_eq!(c, vec![11.0, 12.0, 13.0, 14.0]);
    }

    #[test]
    fn gemm_at_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(3);
        let (m, k, n) = (6, 9, 5);
        let a = rand_vec(m * k, &mut rng); // logical A [m,k]
        let b = rand_vec(k * n, &mut rng);
        // store A transposed as [k, m]
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c1, 0.0);
        gemm_at(m, k, n, &at, &b, &mut c2, 0.0);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn gemm_bt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(4);
        let (m, k, n) = (4, 7, 6);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng); // logical B [k,n]
        let mut bt = vec![0.0; n * k];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let mut c1 = vec![0.0; m * n];
        let mut c2 = vec![0.0; m * n];
        gemm(m, k, n, &a, &b, &mut c1, 0.0);
        gemm_bt(m, k, n, &a, &bt, &mut c2, 0.0);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut c: Vec<f32> = vec![];
        gemm(0, 3, 0, &[], &[], &mut c, 0.0);
        let mut c2 = vec![5.0; 4];
        gemm(2, 0, 2, &[], &[], &mut c2, 1.0);
        assert_eq!(c2, vec![5.0; 4]);
    }
}
