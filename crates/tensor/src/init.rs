//! Weight initialization schemes.

use crate::tensor::Tensor;
use rand::Rng;

/// Kaiming (He) normal initialization for a conv weight `[OC, IC, K, K]`:
/// `std = sqrt(2 / fan_in)` with `fan_in = IC·K·K`. Appropriate for
/// ReLU-family activations, which is every activation in the paper's models.
pub fn kaiming_conv(oc: usize, ic: usize, k: usize, rng: &mut impl Rng) -> Tensor {
    let fan_in = (ic * k * k) as f32;
    let std = (2.0 / fan_in).sqrt();
    Tensor::randn([oc, ic, k, k], std, rng)
}

/// Kaiming normal initialization for a linear weight `[D, O]`.
pub fn kaiming_linear(d: usize, o: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / d as f32).sqrt();
    Tensor::randn([d, o], std, rng)
}

/// Xavier/Glorot uniform initialization for a linear weight `[D, O]`:
/// `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_linear(d: usize, o: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (d + o) as f32).sqrt();
    Tensor::rand_uniform([d, o], -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn kaiming_conv_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = kaiming_conv(64, 32, 3, &mut rng);
        let n = w.numel() as f64;
        let mean = w.sum() / n;
        let var = w.as_slice().iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
        let expect = 2.0 / (32.0 * 9.0);
        assert!((var - expect).abs() / expect < 0.1, "var {var} expect {expect}");
    }

    #[test]
    fn xavier_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = xavier_linear(100, 50, &mut rng);
        let a = (6.0f32 / 150.0).sqrt();
        for &v in w.as_slice() {
            assert!(v.abs() <= a);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let w1 = kaiming_linear(10, 10, &mut r1);
        let w2 = kaiming_linear(10, 10, &mut r2);
        assert!(w1.approx_eq(&w2, 0.0));
    }
}
