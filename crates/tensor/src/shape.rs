//! Shape arithmetic for row-major tensors.

use std::fmt;

/// The extents of an N-dimensional tensor, row-major.
///
/// `Shape` is a thin wrapper over a `Vec<usize>` with the index arithmetic
/// the rest of the crate needs (flat offsets, stride computation, element
/// counts). Dimension 0 is the slowest-varying axis.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Build a shape from dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of dimension `d`.
    #[inline]
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// All extents as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    #[inline]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides: `strides[i]` is the flat distance between
    /// consecutive indices along dimension `i`.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Flat offset of a multi-index. Panics (debug) on out-of-range indices.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.0.len(), "index rank mismatch");
        let mut off = 0usize;
        let mut stride = 1usize;
        for d in (0..self.0.len()).rev() {
            debug_assert!(idx[d] < self.0[d], "index {} out of range dim {}", idx[d], d);
            off += idx[d] * stride;
            stride *= self.0[d];
        }
        off
    }

    /// Interpret this shape as `[N, C, H, W]`. Panics unless rank is 4.
    #[inline]
    pub fn nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.rank(), 4, "expected rank-4 [N,C,H,W] shape, got {self:?}");
        (self.0[0], self.0[1], self.0[2], self.0[3])
    }

    /// Interpret this shape as a matrix `[rows, cols]`. Panics unless rank is 2.
    #[inline]
    pub fn rc(&self) -> (usize, usize) {
        assert_eq!(self.rank(), 2, "expected rank-2 matrix shape, got {self:?}");
        (self.0[0], self.0[1])
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn empty_dim_gives_zero_numel() {
        assert_eq!(Shape::new(&[4, 0, 7]).numel(), 0);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        let st = s.strides();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    assert_eq!(s.offset(&[i, j, k]), i * st[0] + j * st[1] + k * st[2]);
                }
            }
        }
    }

    #[test]
    fn offsets_cover_dense_range() {
        let s = Shape::new(&[3, 5]);
        let mut seen = [false; 15];
        for i in 0..3 {
            for j in 0..5 {
                seen[s.offset(&[i, j])] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn nchw_accessor() {
        let s = Shape::new(&[1, 3, 224, 224]);
        assert_eq!(s.nchw(), (1, 3, 224, 224));
    }

    #[test]
    #[should_panic]
    fn nchw_wrong_rank_panics() {
        Shape::new(&[3, 224, 224]).nchw();
    }
}
