//! 2-D convolution via im2col + gemm, with a full backward pass.
//!
//! FDSP (§3.2 of the paper) is *built on* the semantics of zero padding: a
//! tile convolved with `pad = k/2` produces exactly the output the full image
//! would, except at tile borders where the halo has been replaced by zeros.
//! Getting the padding arithmetic right here is therefore load-bearing for
//! the whole reproduction; the tests include an explicit naive reference.
//!
//! The forward path borrows its im2col and GEMM-pack buffers from a
//! [`Scratch`] arena (a per-thread one for the plain [`conv2d`] API, the
//! caller's own for [`conv2d_into`]), so steady-state inference re-runs the
//! same shapes with zero heap allocation.

use crate::gemm::{gemm_at, gemm_bt, gemm_packed, FusedAct};
use crate::scratch::{ActBuf, Scratch};
use crate::tensor::Tensor;
use std::cell::RefCell;

/// Hyper-parameters of a conv layer application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Filter height/width (square filters, as in all the paper's models).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Symmetric zero padding in both spatial dimensions.
    pub pad: usize,
}

impl Conv2dParams {
    /// "Same" convolution for odd kernels at stride 1.
    pub fn same(kernel: usize) -> Self {
        assert!(kernel % 2 == 1, "same-padding requires odd kernel");
        Conv2dParams { kernel, stride: 1, pad: kernel / 2 }
    }

    /// Output spatial extent for an input extent `in_dim`.
    #[inline]
    pub fn out_dim(&self, in_dim: usize) -> usize {
        let padded = in_dim + 2 * self.pad;
        if padded < self.kernel {
            0
        } else {
            (padded - self.kernel) / self.stride + 1
        }
    }
}

/// Half-open range of output coordinates whose input sample
/// `o·stride + k_off - pad` lands inside `[0, extent)`. Everything outside
/// the range reads padding (zeros), so callers can bulk-fill instead of
/// branching per element.
#[inline]
fn valid_out_range(k_off: usize, extent: usize, out: usize, p: Conv2dParams) -> (usize, usize) {
    let shift = k_off as isize - p.pad as isize;
    let lo = if shift >= 0 { 0 } else { ((-shift) as usize).div_ceil(p.stride).min(out) };
    let max_s = extent as isize - 1 - shift;
    let hi = if max_s < 0 { lo } else { out.min((max_s as usize) / p.stride + 1).max(lo) };
    (lo, hi)
}

/// Unroll input patches into the im2col matrix `[IC*KH*KW, OH*OW]` for one
/// image `[C, H, W]` given as a flat slice.
///
/// The valid output-column span is hoisted out of the row loop per
/// `(ki, kj)`: the interior is one `copy_from_slice` at stride 1 (a strided
/// gather otherwise) and the padding margins are bulk `fill(0.0)` — no
/// per-element bounds branch.
fn im2col(input: &[f32], c: usize, h: usize, w: usize, p: Conv2dParams, col: &mut [f32]) {
    let oh = p.out_dim(h);
    let ow = p.out_dim(w);
    let k = p.kernel;
    debug_assert_eq!(col.len(), c * k * k * oh * ow);
    // col[(ci*k*k + ki*k + kj), (oi*ow + oj)] = x[ci, oi*s + ki - pad, oj*s + kj - pad]
    let mut row = 0usize;
    for ci in 0..c {
        let plane = &input[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            let (ilo, ihi) = valid_out_range(ki, h, oh, p);
            for kj in 0..k {
                let (jlo, jhi) = valid_out_range(kj, w, ow, p);
                // First input column read at oj = jlo (known in-range).
                let sj0 = (jlo * p.stride + kj) as isize - p.pad as isize;
                debug_assert!(jlo >= jhi || sj0 >= 0);
                let dst = &mut col[row * oh * ow..(row + 1) * oh * ow];
                dst[..ilo * ow].fill(0.0);
                dst[ihi * ow..].fill(0.0);
                for oi in ilo..ihi {
                    let si = (oi * p.stride + ki) - p.pad; // in range by construction
                    let src_row = &plane[si * w..si * w + w];
                    let drow = &mut dst[oi * ow..(oi + 1) * ow];
                    drow[..jlo].fill(0.0);
                    drow[jhi..].fill(0.0);
                    if jlo < jhi {
                        let s0 = sj0 as usize;
                        if p.stride == 1 {
                            drow[jlo..jhi].copy_from_slice(&src_row[s0..s0 + (jhi - jlo)]);
                        } else {
                            let mut sj = s0;
                            for d in &mut drow[jlo..jhi] {
                                *d = src_row[sj];
                                sj += p.stride;
                            }
                        }
                    }
                }
                row += 1;
            }
        }
    }
}

/// Scatter-add the im2col matrix back into an image (`col2im`), the adjoint
/// of [`im2col`]. Used to accumulate input gradients.
fn col2im(col: &[f32], c: usize, h: usize, w: usize, p: Conv2dParams, out: &mut [f32]) {
    let oh = p.out_dim(h);
    let ow = p.out_dim(w);
    let k = p.kernel;
    debug_assert_eq!(col.len(), c * k * k * oh * ow);
    debug_assert_eq!(out.len(), c * h * w);
    let mut row = 0usize;
    for ci in 0..c {
        let plane = &mut out[ci * h * w..(ci + 1) * h * w];
        for ki in 0..k {
            for kj in 0..k {
                let src = &col[row * oh * ow..(row + 1) * oh * ow];
                let mut idx = 0usize;
                for oi in 0..oh {
                    let si = (oi * p.stride + ki) as isize - p.pad as isize;
                    if si < 0 || si >= h as isize {
                        idx += ow;
                        continue;
                    }
                    let dst_row = &mut plane[si as usize * w..si as usize * w + w];
                    for oj in 0..ow {
                        let sj = (oj * p.stride + kj) as isize - p.pad as isize;
                        if sj >= 0 && (sj as usize) < w {
                            dst_row[sj as usize] += src[idx];
                        }
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

thread_local! {
    /// Scratch backing the allocation-implicit [`conv2d`] API; the inference
    /// hot path passes an explicit arena to [`conv2d_into`] instead.
    static CONV_TLS: RefCell<Scratch> = RefCell::new(Scratch::new());
}

/// One image forward: im2col into the arena's col buffer, then a packed GEMM
/// with bias + activation fused into the last-k-block epilogue.
#[allow(clippy::too_many_arguments)]
fn conv2d_image(
    img: &[f32],
    ic: usize,
    h: usize,
    w: usize,
    weight: &Tensor,
    oc: usize,
    bias: Option<&[f32]>,
    p: Conv2dParams,
    act: FusedAct,
    scratch: &mut Scratch,
    dst: &mut [f32],
) {
    let oh = p.out_dim(h);
    let ow = p.out_dim(w);
    let kk = ic * p.kernel * p.kernel;
    let (col, pack) = scratch.col_and_pack();
    col.clear();
    col.resize(kk * oh * ow, 0.0);
    im2col(img, ic, h, w, p, col);
    gemm_packed(oc, kk, oh * ow, weight.as_slice(), col, dst, 0.0, bias, act, pack);
}

/// Forward 2-D convolution.
///
/// * `input`: `[N, IC, H, W]`
/// * `weight`: `[OC, IC, KH, KW]` with `KH == KW == p.kernel`
/// * `bias`: length `OC` (may be empty for no bias)
///
/// Returns `[N, OC, OH, OW]`.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &[f32], p: Conv2dParams) -> Tensor {
    let (n, ic, h, w) = input.shape().nchw();
    let (oc, wic, kh, kw) = weight.shape().nchw();
    assert_eq!(ic, wic, "input channels {ic} != weight channels {wic}");
    assert_eq!(kh, p.kernel, "weight kernel height mismatch");
    assert_eq!(kw, p.kernel, "weight kernel width mismatch");
    assert!(bias.is_empty() || bias.len() == oc, "bias length mismatch");

    let oh = p.out_dim(h);
    let ow = p.out_dim(w);
    let mut out = Tensor::zeros([n, oc, oh, ow]);

    // One image per rayon task: each thread borrows its own scratch arena,
    // and the batched forward dominates training time.
    let in_stride = ic * h * w;
    let out_stride = oc * oh * ow;
    let b = if bias.is_empty() { None } else { Some(bias) };
    let body = |ni: usize, dst: &mut [f32]| {
        let img = &input.as_slice()[ni * in_stride..(ni + 1) * in_stride];
        CONV_TLS.with(|s| {
            conv2d_image(
                img,
                ic,
                h,
                w,
                weight,
                oc,
                b,
                p,
                FusedAct::Identity,
                &mut s.borrow_mut(),
                dst,
            )
        });
    };
    if n > 1 {
        use rayon::prelude::*;
        out.as_mut_slice()
            .par_chunks_mut(out_stride)
            .enumerate()
            .for_each(|(ni, dst)| body(ni, dst));
    } else if n == 1 {
        body(0, out.as_mut_slice());
    }
    out
}

/// Allocation-free forward 2-D convolution for the inference hot path.
///
/// Reads a flat `[n, ic, h, w]` activation slice, writes `out` (reshaped to
/// `[n, oc, oh, ow]`, storage reused), and fuses `act` plus the optional
/// bias into the GEMM epilogue. All intermediate buffers come from
/// `scratch`; after a warm-up call at the same shape this performs zero heap
/// allocation. Images are processed serially — the tile hot path runs one
/// image per call, and worker threads are themselves the parallel axis.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_into(
    input: &[f32],
    (n, ic, h, w): (usize, usize, usize, usize),
    weight: &Tensor,
    bias: &[f32],
    p: Conv2dParams,
    act: FusedAct,
    scratch: &mut Scratch,
    out: &mut ActBuf,
) {
    assert_eq!(input.len(), n * ic * h * w, "input dims mismatch");
    let (oc, wic, kh, kw) = weight.shape().nchw();
    assert_eq!(ic, wic, "input channels {ic} != weight channels {wic}");
    assert_eq!(kh, p.kernel, "weight kernel height mismatch");
    assert_eq!(kw, p.kernel, "weight kernel width mismatch");
    assert!(bias.is_empty() || bias.len() == oc, "bias length mismatch");

    let oh = p.out_dim(h);
    let ow = p.out_dim(w);
    out.reshape(&[n, oc, oh, ow]);
    let in_stride = ic * h * w;
    let out_stride = oc * oh * ow;
    let b = if bias.is_empty() { None } else { Some(bias) };
    for ni in 0..n {
        let img = &input[ni * in_stride..(ni + 1) * in_stride];
        let dst = &mut out.as_mut_slice()[ni * out_stride..(ni + 1) * out_stride];
        conv2d_image(img, ic, h, w, weight, oc, b, p, act, scratch, dst);
    }
}

/// Gradients of [`conv2d`].
pub struct Conv2dGrads {
    /// `d loss / d input`, same shape as the forward input.
    pub dinput: Tensor,
    /// `d loss / d weight`, same shape as the weight.
    pub dweight: Tensor,
    /// `d loss / d bias`, length `OC`.
    pub dbias: Vec<f32>,
}

/// Backward 2-D convolution: given `dout = d loss / d output`, produce
/// gradients w.r.t. input, weight and bias.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    dout: &Tensor,
    p: Conv2dParams,
) -> Conv2dGrads {
    let (n, ic, h, w) = input.shape().nchw();
    let (oc, _, _, _) = weight.shape().nchw();
    let oh = p.out_dim(h);
    let ow = p.out_dim(w);
    let (dn, doc, doh, dow) = dout.shape().nchw();
    assert_eq!((dn, doc, doh, dow), (n, oc, oh, ow), "dout shape mismatch");

    let kk = ic * p.kernel * p.kernel;
    let mut dinput = Tensor::zeros([n, ic, h, w]);
    let mut dweight = Tensor::zeros([oc, ic, p.kernel, p.kernel]);
    let mut dbias = vec![0.0f32; oc];
    let in_stride = ic * h * w;
    let out_stride = oc * oh * ow;

    // Per-image work: the input gradient slices are disjoint (parallel
    // writes), while the weight/bias gradients are summed in a reduction.
    let per_image = |ni: usize, dimg: &mut [f32]| -> (Vec<f32>, Vec<f32>) {
        let img = &input.as_slice()[ni * in_stride..(ni + 1) * in_stride];
        let dy = &dout.as_slice()[ni * out_stride..(ni + 1) * out_stride];

        let mut db = vec![0.0f32; oc];
        for co in 0..oc {
            let mut acc = 0.0f32;
            for &g in &dy[co * oh * ow..(co + 1) * oh * ow] {
                acc += g;
            }
            db[co] = acc;
        }

        // dW[oc, kk] = dy[oc, ohw] · col[kk, ohw]^T
        let mut col = vec![0.0f32; kk * oh * ow];
        im2col(img, ic, h, w, p, &mut col);
        let mut dw = vec![0.0f32; oc * kk];
        gemm_bt(oc, oh * ow, kk, dy, &col, &mut dw, 0.0);

        // dcol[kk, ohw] = W^T[kk, oc] · dy[oc, ohw]; W stored as [oc, kk].
        let mut dcol = vec![0.0f32; kk * oh * ow];
        gemm_at(kk, oc, oh * ow, weight.as_slice(), dy, &mut dcol, 0.0);
        col2im(&dcol, ic, h, w, p, dimg);
        (dw, db)
    };

    if n > 1 {
        use rayon::prelude::*;
        let partials: Vec<(Vec<f32>, Vec<f32>)> = dinput
            .as_mut_slice()
            .par_chunks_mut(in_stride)
            .enumerate()
            .map(|(ni, dimg)| per_image(ni, dimg))
            .collect();
        for (dw, db) in partials {
            for (a, b) in dweight.as_mut_slice().iter_mut().zip(&dw) {
                *a += b;
            }
            for (a, b) in dbias.iter_mut().zip(&db) {
                *a += b;
            }
        }
    } else if n == 1 {
        let (dw, db) = per_image(0, dinput.as_mut_slice());
        dweight.as_mut_slice().copy_from_slice(&dw);
        dbias.copy_from_slice(&db);
    }

    Conv2dGrads { dinput, dweight, dbias }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    /// Direct (quadruple-loop) convolution used as ground truth.
    fn conv_naive(input: &Tensor, weight: &Tensor, bias: &[f32], p: Conv2dParams) -> Tensor {
        let (n, ic, h, w) = input.shape().nchw();
        let (oc, _, k, _) = weight.shape().nchw();
        let oh = p.out_dim(h);
        let ow = p.out_dim(w);
        let mut out = Tensor::zeros([n, oc, oh, ow]);
        for ni in 0..n {
            for co in 0..oc {
                for oi in 0..oh {
                    for oj in 0..ow {
                        let mut acc = if bias.is_empty() { 0.0 } else { bias[co] };
                        for ci in 0..ic {
                            for ki in 0..k {
                                for kj in 0..k {
                                    let si = (oi * p.stride + ki) as isize - p.pad as isize;
                                    let sj = (oj * p.stride + kj) as isize - p.pad as isize;
                                    if si >= 0 && sj >= 0 && (si as usize) < h && (sj as usize) < w
                                    {
                                        acc += input.at(&[ni, ci, si as usize, sj as usize])
                                            * weight.at(&[co, ci, ki, kj]);
                                    }
                                }
                            }
                        }
                        *out.at_mut(&[ni, co, oi, oj]) = acc;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn out_dim_arithmetic() {
        let p = Conv2dParams { kernel: 3, stride: 1, pad: 1 };
        assert_eq!(p.out_dim(224), 224);
        let p2 = Conv2dParams { kernel: 3, stride: 2, pad: 1 };
        assert_eq!(p2.out_dim(224), 112);
        let p3 = Conv2dParams { kernel: 7, stride: 2, pad: 3 };
        assert_eq!(p3.out_dim(224), 112);
        // Degenerate: window larger than padded input.
        let p4 = Conv2dParams { kernel: 5, stride: 1, pad: 0 };
        assert_eq!(p4.out_dim(3), 0);
    }

    #[test]
    fn matches_naive_various_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        let cases = [
            (1, 1, 5, 5, 1, 3, 1, 1),
            (2, 3, 8, 8, 4, 3, 1, 1),
            (1, 2, 9, 7, 3, 3, 2, 1),
            (1, 3, 6, 6, 2, 1, 1, 0),
            (1, 2, 8, 8, 2, 5, 1, 2),
        ];
        for (n, ic, h, w, oc, k, s, pad) in cases {
            let p = Conv2dParams { kernel: k, stride: s, pad };
            let x = Tensor::randn([n, ic, h, w], 1.0, &mut rng);
            let wt = Tensor::randn([oc, ic, k, k], 0.5, &mut rng);
            let b: Vec<f32> = (0..oc).map(|i| i as f32 * 0.1).collect();
            let got = conv2d(&x, &wt, &b, p);
            let want = conv_naive(&x, &wt, &b, p);
            assert!(
                got.approx_eq(&want, 1e-4),
                "mismatch for case {:?}",
                (n, ic, h, w, oc, k, s, pad)
            );
        }
    }

    #[test]
    fn conv2d_into_matches_conv2d() {
        let mut rng = StdRng::seed_from_u64(13);
        let cases = [(1, 3, 8, 8, 4, 3, 1, 1), (2, 2, 9, 7, 3, 3, 2, 1), (1, 3, 6, 6, 2, 1, 1, 0)];
        let mut scratch = Scratch::new();
        let mut out = ActBuf::new();
        for (n, ic, h, w, oc, k, s, pad) in cases {
            let p = Conv2dParams { kernel: k, stride: s, pad };
            let x = Tensor::randn([n, ic, h, w], 1.0, &mut rng);
            let wt = Tensor::randn([oc, ic, k, k], 0.5, &mut rng);
            let b: Vec<f32> = (0..oc).map(|i| i as f32 * 0.1).collect();
            let want = conv2d(&x, &wt, &b, p);
            conv2d_into(
                x.as_slice(),
                (n, ic, h, w),
                &wt,
                &b,
                p,
                FusedAct::Identity,
                &mut scratch,
                &mut out,
            );
            assert_eq!(out.dims(), want.dims());
            assert!(out.to_tensor().approx_eq(&want, 1e-5));
        }
    }

    #[test]
    fn conv2d_into_fused_relu_matches_post_relu() {
        let mut rng = StdRng::seed_from_u64(17);
        let p = Conv2dParams::same(3);
        let x = Tensor::randn([1, 3, 7, 7], 1.0, &mut rng);
        let wt = Tensor::randn([4, 3, 3, 3], 0.5, &mut rng);
        let b = vec![0.1f32; 4];
        let want = conv2d(&x, &wt, &b, p).map(|v| v.max(0.0));
        let mut scratch = Scratch::new();
        let mut out = ActBuf::new();
        conv2d_into(x.as_slice(), (1, 3, 7, 7), &wt, &b, p, FusedAct::Relu, &mut scratch, &mut out);
        assert!(out.to_tensor().approx_eq(&want, 1e-5));
    }

    #[test]
    fn degenerate_zero_output_dim() {
        // Window larger than the padded input: 0×0 output, no panic.
        let p = Conv2dParams { kernel: 5, stride: 1, pad: 0 };
        let x = Tensor::full([1, 2, 3, 3], 1.0);
        let wt = Tensor::full([2, 2, 5, 5], 1.0);
        let y = conv2d(&x, &wt, &[], p);
        assert_eq!(y.dims(), &[1, 2, 0, 0]);
        let mut scratch = Scratch::new();
        let mut out = ActBuf::new();
        conv2d_into(
            x.as_slice(),
            (1, 2, 3, 3),
            &wt,
            &[],
            p,
            FusedAct::Relu,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.dims(), &[1, 2, 0, 0]);
    }

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 conv with identity weight reproduces the input channel.
        let x = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let w = Tensor::from_vec([1, 1, 1, 1], vec![1.0]);
        let y = conv2d(&x, &w, &[], Conv2dParams { kernel: 1, stride: 1, pad: 0 });
        assert!(y.approx_eq(&x, 0.0));
    }

    #[test]
    fn zero_padding_semantics_at_border() {
        // A 3x3 all-ones kernel over an all-ones image: interior outputs are 9,
        // edges 6, corners 4 — exactly the zero-padding behaviour FDSP relies on.
        let x = Tensor::full([1, 1, 5, 5], 1.0);
        let w = Tensor::full([1, 1, 3, 3], 1.0);
        let y = conv2d(&x, &w, &[], Conv2dParams::same(3));
        assert_eq!(y.at(&[0, 0, 2, 2]), 9.0);
        assert_eq!(y.at(&[0, 0, 0, 2]), 6.0);
        assert_eq!(y.at(&[0, 0, 0, 0]), 4.0);
    }

    /// Central finite difference of the scalar loss `sum(conv(x, w))`.
    fn grad_check(n: usize, ic: usize, h: usize, w: usize, oc: usize, p: Conv2dParams) {
        let mut rng = StdRng::seed_from_u64(42);
        let x = Tensor::randn([n, ic, h, w], 1.0, &mut rng);
        let wt = Tensor::randn([oc, ic, p.kernel, p.kernel], 0.5, &mut rng);
        let b: Vec<f32> = vec![0.05; oc];

        let y = conv2d(&x, &wt, &b, p);
        // loss = sum(y) => dout = ones
        let dout = Tensor::full(y.shape().clone(), 1.0);
        let grads = conv2d_backward(&x, &wt, &dout, p);

        let eps = 1e-2f32;
        let loss = |x: &Tensor, wt: &Tensor, b: &[f32]| -> f64 { conv2d(x, wt, b, p).sum() };

        // check a scattering of input grads
        for &flat in &[0usize, x.numel() / 2, x.numel() - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[flat] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[flat] -= eps;
            let num = ((loss(&xp, &wt, &b) - loss(&xm, &wt, &b)) / (2.0 * eps as f64)) as f32;
            let ana = grads.dinput.as_slice()[flat];
            assert!((num - ana).abs() < 2e-2, "dinput[{flat}]: num {num} vs ana {ana}");
        }
        // weight grads
        for &flat in &[0usize, wt.numel() / 2, wt.numel() - 1] {
            let mut wp = wt.clone();
            wp.as_mut_slice()[flat] += eps;
            let mut wm = wt.clone();
            wm.as_mut_slice()[flat] -= eps;
            let num = ((loss(&x, &wp, &b) - loss(&x, &wm, &b)) / (2.0 * eps as f64)) as f32;
            let ana = grads.dweight.as_slice()[flat];
            assert!((num - ana).abs() < 2e-2, "dweight[{flat}]: num {num} vs ana {ana}");
        }
        // bias grad: d sum(y) / d b[o] = OH*OW*N
        let (_, _, yh, yw) = y.shape().nchw();
        for co in 0..oc {
            let expect = (n * yh * yw) as f32;
            assert!((grads.dbias[co] - expect).abs() < 1e-2);
        }
    }

    #[test]
    fn gradients_match_finite_difference_same_pad() {
        grad_check(1, 2, 6, 6, 3, Conv2dParams::same(3));
    }

    #[test]
    fn gradients_match_finite_difference_strided() {
        grad_check(2, 2, 7, 7, 2, Conv2dParams { kernel: 3, stride: 2, pad: 1 });
    }

    #[test]
    fn gradients_match_finite_difference_no_pad() {
        grad_check(1, 1, 5, 5, 1, Conv2dParams { kernel: 3, stride: 1, pad: 0 });
    }
}
