//! Batch normalization.
//!
//! §2.1 of the paper describes both forms we implement:
//! - training: normalize by batch statistics, then scale/shift by learnable
//!   `γ`, `β`, maintaining running statistics;
//! - inference: the whole layer folds to the affine `y = a·x + b` with
//!   `a = γ/σ` and `b = β − μγ/σ`, which is what Conv nodes execute.

use crate::tensor::Tensor;

/// Learnable parameters and running statistics of a BN layer over `C` channels.
#[derive(Clone, Debug)]
pub struct BatchNorm {
    /// Per-channel scale `γ`.
    pub gamma: Vec<f32>,
    /// Per-channel shift `β`.
    pub beta: Vec<f32>,
    /// Running mean `μ` (EMA over training batches).
    pub running_mean: Vec<f32>,
    /// Running variance `σ²`.
    pub running_var: Vec<f32>,
    /// EMA momentum for the running statistics.
    pub momentum: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
}

/// Saved forward state needed by [`BatchNorm::backward`].
pub struct BnCtx {
    /// Batch mean per channel.
    pub mean: Vec<f32>,
    /// Batch variance per channel.
    pub var: Vec<f32>,
    /// Normalized activations `x̂` (pre-γ/β).
    pub xhat: Tensor,
}

impl BatchNorm {
    /// Identity-initialized BN over `c` channels (`γ=1`, `β=0`).
    pub fn new(c: usize) -> Self {
        BatchNorm {
            gamma: vec![1.0; c],
            beta: vec![0.0; c],
            running_mean: vec![0.0; c],
            running_var: vec![1.0; c],
            momentum: 0.1,
            eps: 1e-5,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Training-mode forward over `[N, C, H, W]`: normalizes by batch
    /// statistics and updates the running statistics.
    pub fn forward_train(&mut self, x: &Tensor) -> (Tensor, BnCtx) {
        let (n, c, h, w) = x.shape().nchw();
        assert_eq!(c, self.channels(), "channel mismatch");
        let count = (n * h * w) as f64;
        let mut mean = vec![0.0f32; c];
        let mut var = vec![0.0f32; c];
        let xs = x.as_slice();
        #[allow(clippy::needless_range_loop)]
        for ci in 0..c {
            let mut acc = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for &v in &xs[base..base + h * w] {
                    acc += v as f64;
                }
            }
            mean[ci] = (acc / count) as f32;
        }
        for ci in 0..c {
            let m = mean[ci] as f64;
            let mut acc = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for &v in &xs[base..base + h * w] {
                    let d = v as f64 - m;
                    acc += d * d;
                }
            }
            var[ci] = (acc / count) as f32;
        }
        for ci in 0..c {
            self.running_mean[ci] =
                (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean[ci];
            self.running_var[ci] =
                (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var[ci];
        }

        let mut xhat = Tensor::zeros(x.dims());
        let mut y = Tensor::zeros(x.dims());
        {
            let xh = xhat.as_mut_slice();
            let ys = y.as_mut_slice();
            for ni in 0..n {
                for ci in 0..c {
                    let inv_std = 1.0 / (var[ci] + self.eps).sqrt();
                    let base = (ni * c + ci) * h * w;
                    for i in base..base + h * w {
                        let xn = (xs[i] - mean[ci]) * inv_std;
                        xh[i] = xn;
                        ys[i] = self.gamma[ci] * xn + self.beta[ci];
                    }
                }
            }
        }
        (y, BnCtx { mean, var, xhat })
    }

    /// Inference-mode forward: the folded affine `y = a·x + b` from the paper.
    pub fn forward_infer(&self, x: &Tensor) -> Tensor {
        let (a, b) = self.fold();
        let (n, c, h, w) = x.shape().nchw();
        assert_eq!(c, self.channels(), "channel mismatch");
        let mut y = Tensor::zeros(x.dims());
        let xs = x.as_slice();
        let ys = y.as_mut_slice();
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    ys[i] = a[ci] * xs[i] + b[ci];
                }
            }
        }
        y
    }

    /// Allocation-free inference forward: same folded affine as
    /// [`BatchNorm::forward_infer`], but reads a flat `[n, c, h, w]` slice,
    /// reuses `out`'s storage, and computes the per-channel `(a, b)`
    /// coefficients inline instead of materializing the fold vectors.
    pub fn forward_infer_into(
        &self,
        x: &[f32],
        (n, c, h, w): (usize, usize, usize, usize),
        out: &mut crate::scratch::ActBuf,
    ) {
        assert_eq!(c, self.channels(), "channel mismatch");
        assert_eq!(x.len(), n * c * h * w, "input dims mismatch");
        out.reshape(&[n, c, h, w]);
        let ys = out.as_mut_slice();
        for ni in 0..n {
            for ci in 0..c {
                let inv_std = 1.0 / (self.running_var[ci] + self.eps).sqrt();
                let a = self.gamma[ci] * inv_std;
                let b = self.beta[ci] - self.running_mean[ci] * a;
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    ys[i] = a * x[i] + b;
                }
            }
        }
    }

    /// Per-channel folded coefficients `(a, b)` with `a = γ/σ`,
    /// `b = β − μγ/σ` (the paper's §2.1 inference identity).
    pub fn fold(&self) -> (Vec<f32>, Vec<f32>) {
        let c = self.channels();
        let mut a = vec![0.0f32; c];
        let mut b = vec![0.0f32; c];
        for ci in 0..c {
            let inv_std = 1.0 / (self.running_var[ci] + self.eps).sqrt();
            a[ci] = self.gamma[ci] * inv_std;
            b[ci] = self.beta[ci] - self.running_mean[ci] * a[ci];
        }
        (a, b)
    }

    /// Backward pass: returns `(dx, dgamma, dbeta)` given upstream `dy`.
    pub fn backward(&self, ctx: &BnCtx, dy: &Tensor) -> (Tensor, Vec<f32>, Vec<f32>) {
        let (n, c, h, w) = dy.shape().nchw();
        let m = (n * h * w) as f32;
        let dys = dy.as_slice();
        let xh = ctx.xhat.as_slice();

        let mut dgamma = vec![0.0f32; c];
        let mut dbeta = vec![0.0f32; c];
        for ni in 0..n {
            for ci in 0..c {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    dgamma[ci] += dys[i] * xh[i];
                    dbeta[ci] += dys[i];
                }
            }
        }

        // dx = (γ/σ) * (dy − mean(dy) − x̂ * mean(dy·x̂))
        let mut dx = Tensor::zeros(dy.dims());
        let dxs = dx.as_mut_slice();
        for ci in 0..c {
            let inv_std = 1.0 / (ctx.var[ci] + self.eps).sqrt();
            let g = self.gamma[ci] * inv_std;
            let mean_dy = dbeta[ci] / m;
            let mean_dy_xhat = dgamma[ci] / m;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for i in base..base + h * w {
                    dxs[i] = g * (dys[i] - mean_dy - xh[i] * mean_dy_xhat);
                }
            }
        }
        (dx, dgamma, dbeta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn train_forward_normalizes() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = Tensor::randn([4, 3, 5, 5], 3.0, &mut rng);
        let mut bn = BatchNorm::new(3);
        let (y, _) = bn.forward_train(&x);
        // Per channel, output should have ~zero mean and ~unit variance.
        let (n, c, h, w) = y.shape().nchw();
        for ci in 0..c {
            let mut acc = 0.0f64;
            let mut acc2 = 0.0f64;
            for ni in 0..n {
                let base = (ni * c + ci) * h * w;
                for &v in &y.as_slice()[base..base + h * w] {
                    acc += v as f64;
                    acc2 += (v as f64) * (v as f64);
                }
            }
            let cnt = (n * h * w) as f64;
            let mean = acc / cnt;
            let var = acc2 / cnt - mean * mean;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn folded_inference_matches_manual_affine() {
        let mut bn = BatchNorm::new(2);
        bn.running_mean = vec![1.0, -2.0];
        bn.running_var = vec![4.0, 0.25];
        bn.gamma = vec![2.0, 0.5];
        bn.beta = vec![0.1, -0.1];
        bn.eps = 0.0;
        let x = Tensor::from_vec([1, 2, 1, 2], vec![3.0, 5.0, 0.0, -2.0]);
        let y = bn.forward_infer(&x);
        // ch0: a = 2/2 = 1, b = 0.1 - 1*1 = -0.9  -> [2.1, 4.1]
        // ch1: a = 0.5/0.5 = 1, b = -0.1 + 2*1 = 1.9 -> [1.9, -0.1]
        assert!(crate::approx_eq(y.at(&[0, 0, 0, 0]), 2.1, 1e-5));
        assert!(crate::approx_eq(y.at(&[0, 0, 0, 1]), 4.1, 1e-5));
        assert!(crate::approx_eq(y.at(&[0, 1, 0, 0]), 1.9, 1e-5));
        assert!(crate::approx_eq(y.at(&[0, 1, 0, 1]), -0.1, 1e-5));
    }

    #[test]
    fn forward_infer_into_matches_forward_infer() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut bn = BatchNorm::new(3);
        bn.running_mean = vec![0.5, -1.0, 2.0];
        bn.running_var = vec![1.5, 0.3, 2.2];
        bn.gamma = vec![1.1, 0.9, -0.4];
        bn.beta = vec![0.0, 0.2, -0.3];
        let x = Tensor::randn([2, 3, 4, 4], 1.0, &mut rng);
        let want = bn.forward_infer(&x);
        let mut out = crate::scratch::ActBuf::new();
        bn.forward_infer_into(x.as_slice(), (2, 3, 4, 4), &mut out);
        assert!(out.to_tensor().approx_eq(&want, 1e-6));
    }

    #[test]
    fn running_stats_converge_to_batch_stats() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut bn = BatchNorm::new(1);
        // Feed the same distribution many times; running stats approach truth.
        for _ in 0..200 {
            let x = Tensor::randn([8, 1, 4, 4], 2.0, &mut rng);
            let shifted = x.map(|v| v + 5.0);
            bn.forward_train(&shifted);
        }
        assert!((bn.running_mean[0] - 5.0).abs() < 0.2, "{}", bn.running_mean[0]);
        assert!((bn.running_var[0] - 4.0).abs() < 0.6, "{}", bn.running_var[0]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(10);
        let x = Tensor::randn([2, 2, 3, 3], 1.0, &mut rng);
        let mut bn = BatchNorm::new(2);
        bn.gamma = vec![1.3, 0.7];
        bn.beta = vec![0.2, -0.4];

        // loss = sum(y * mask) with a fixed random mask, to get nontrivial dy.
        let mask = Tensor::randn(x.dims(), 1.0, &mut rng);
        let loss = |bn: &BatchNorm, x: &Tensor| -> f64 {
            let mut b2 = bn.clone();
            let (y, _) = b2.forward_train(x);
            y.zip_map(&mask, |a, b| a * b).sum()
        };

        let (y, ctx) = bn.clone().forward_train(&x);
        let _ = y;
        let dy = mask.clone();
        let (dx, dgamma, dbeta) = bn.backward(&ctx, &dy);

        let eps = 1e-2f32;
        for &flat in &[0usize, 10, x.numel() - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[flat] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[flat] -= eps;
            let num = ((loss(&bn, &xp) - loss(&bn, &xm)) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.as_slice()[flat]).abs() < 3e-2,
                "dx[{flat}]: {num} vs {}",
                dx.as_slice()[flat]
            );
        }
        for ci in 0..2 {
            let mut bp = bn.clone();
            bp.gamma[ci] += eps;
            let mut bm = bn.clone();
            bm.gamma[ci] -= eps;
            let num = ((loss(&bp, &x) - loss(&bm, &x)) / (2.0 * eps as f64)) as f32;
            assert!((num - dgamma[ci]).abs() < 3e-2, "dgamma[{ci}]");
            let mut bp = bn.clone();
            bp.beta[ci] += eps;
            let mut bm = bn.clone();
            bm.beta[ci] -= eps;
            let num = ((loss(&bp, &x) - loss(&bm, &x)) / (2.0 * eps as f64)) as f32;
            assert!((num - dbeta[ci]).abs() < 3e-2, "dbeta[{ci}]");
        }
    }
}
