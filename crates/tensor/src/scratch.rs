//! Reusable scratch memory for the inference hot path.
//!
//! The steady-state tile loop of a Conv node runs the same network shape on
//! every tile, so every intermediate buffer it needs — the im2col matrix,
//! the packed GEMM B-panels, the per-layer activation maps — has a fixed
//! size after the first tile. [`Scratch`] and [`ActBuf`] own those buffers
//! and hand out grow-only views, so after a warm-up pass the whole forward
//! path performs zero heap allocation (see `tests/alloc_steady_state.rs` at
//! the workspace root for the counting-allocator proof).
//!
//! Ownership rules (also documented in DESIGN.md §"Performance
//! architecture"):
//!
//! - Each worker thread owns one `Scratch` (and the `InferScratch` wrapper
//!   in `adcnn-nn` that embeds it). Scratch is never shared across threads.
//! - Ops *borrow* buffers for the duration of one call and must not assume
//!   contents survive between calls.
//! - Buffers only ever grow; `clear()`/`resize()` keep capacity.

use crate::tensor::Tensor;

/// Arena of reusable buffers for convolution / GEMM internals.
///
/// `col` holds the im2col matrix, `pack` holds the packed B panels of the
/// blocked GEMM. They are separate fields (not a bump allocator) because
/// `conv2d` needs both alive at once.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    col: Vec<f32>,
    pack: Vec<f32>,
}

impl Scratch {
    /// Empty arena; buffers grow on first use.
    pub fn new() -> Self {
        Scratch::default()
    }

    /// Borrow the im2col and pack buffers simultaneously (distinct fields,
    /// so the borrows are disjoint).
    pub fn col_and_pack(&mut self) -> (&mut Vec<f32>, &mut Vec<f32>) {
        (&mut self.col, &mut self.pack)
    }

    /// Borrow just the GEMM pack buffer.
    pub fn pack_buf(&mut self) -> &mut Vec<f32> {
        &mut self.pack
    }

    /// Bytes currently held across all buffers (capacity, not length).
    pub fn capacity_bytes(&self) -> usize {
        (self.col.capacity() + self.pack.capacity()) * std::mem::size_of::<f32>()
    }
}

/// A reusable activation buffer: flat `f32` storage plus its current dims.
///
/// This is the ping/pong unit of the allocation-free forward path: layers
/// read one `ActBuf` and write the next, and the pair is swapped (pointer
/// swap, no copy) between layers. Unlike [`Tensor`] it is deliberately
/// mutable-in-shape so one buffer can serve every layer of a network.
#[derive(Clone, Debug, Default)]
pub struct ActBuf {
    data: Vec<f32>,
    dims: Vec<usize>,
}

impl ActBuf {
    /// Empty buffer; storage grows on first `reshape`.
    pub fn new() -> Self {
        ActBuf::default()
    }

    /// Resize to hold `dims`, growing storage if needed (contents are
    /// unspecified afterwards — every writer fills the whole buffer).
    pub fn reshape(&mut self, dims: &[usize]) {
        let n: usize = dims.iter().product();
        self.data.resize(n, 0.0);
        self.dims.clear();
        self.dims.extend_from_slice(dims);
    }

    /// Replace the dims without touching data (used by `Flatten`, which is
    /// a pure reinterpretation). Panics if the element count changes.
    pub fn set_dims(&mut self, dims: &[usize]) {
        assert_eq!(
            dims.iter().product::<usize>(),
            self.data.len(),
            "set_dims changes element count"
        );
        self.dims.clear();
        self.dims.extend_from_slice(dims);
    }

    /// Current dims.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Interpret as `[N, C, H, W]`; panics unless rank 4.
    #[inline]
    pub fn nchw(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.dims.len(), 4, "expected rank-4 ActBuf, got {:?}", self.dims);
        (self.dims[0], self.dims[1], self.dims[2], self.dims[3])
    }

    /// Element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Flat data view.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data view.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Fill from a tensor (reuses storage).
    pub fn copy_from_tensor(&mut self, t: &Tensor) {
        self.reshape(t.dims());
        self.data.copy_from_slice(t.as_slice());
    }

    /// Fill from another `ActBuf` (reuses storage).
    pub fn copy_from(&mut self, other: &ActBuf) {
        self.reshape(&other.dims);
        self.data.copy_from_slice(&other.data);
    }

    /// `self += other` elementwise; shapes must match.
    pub fn add_assign(&mut self, other: &ActBuf) {
        assert_eq!(self.dims, other.dims, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Materialize as an owning [`Tensor`] (allocates — boundary use only).
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(self.dims.as_slice(), self.data.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshape_grows_and_keeps_capacity() {
        let mut b = ActBuf::new();
        b.reshape(&[2, 8]);
        assert_eq!(b.numel(), 16);
        let cap = b.as_slice().as_ptr();
        b.reshape(&[1, 4]); // shrink: same storage
        assert_eq!(b.numel(), 4);
        b.reshape(&[2, 8]);
        assert_eq!(b.as_slice().as_ptr(), cap, "shrink/regrow must not reallocate");
    }

    #[test]
    fn copy_roundtrip_tensor() {
        let t = Tensor::from_fn([2, 3], |i| i as f32);
        let mut b = ActBuf::new();
        b.copy_from_tensor(&t);
        assert_eq!(b.dims(), &[2, 3]);
        assert!(b.to_tensor().approx_eq(&t, 0.0));
    }

    #[test]
    fn set_dims_is_reinterpret_only() {
        let mut b = ActBuf::new();
        b.reshape(&[2, 6]);
        b.as_mut_slice()[11] = 7.0;
        b.set_dims(&[3, 4]);
        assert_eq!(b.as_slice()[11], 7.0);
    }

    #[test]
    #[should_panic]
    fn set_dims_rejects_count_change() {
        let mut b = ActBuf::new();
        b.reshape(&[2, 2]);
        b.set_dims(&[5]);
    }

    #[test]
    fn add_assign_sums() {
        let mut a = ActBuf::new();
        a.reshape(&[3]);
        a.as_mut_slice().copy_from_slice(&[1.0, 2.0, 3.0]);
        let mut b = ActBuf::new();
        b.reshape(&[3]);
        b.as_mut_slice().copy_from_slice(&[10.0, 20.0, 30.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11.0, 22.0, 33.0]);
    }
}
