//! Activation functions, including the paper's clipped `ReLU[a,b]` (§4.1).

use crate::tensor::Tensor;

/// Standard rectified linear unit.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// Backward of ReLU: passes gradient where the *input* was positive.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    x.zip_map(dy, |xi, gi| if xi > 0.0 { gi } else { 0.0 })
}

/// The paper's clipped ReLU with lower bound `a` and upper bound `b`:
///
/// ```text
/// ReLU[a,b](x) = b − a   if x > b
///              = x − a   if a ≤ x ≤ b
///              = 0       if x < a
/// ```
///
/// Outputs lie in `[0, b − a]`; everything below `a` becomes an exact zero,
/// which is what makes the Conv-node outputs sparse and RLE-compressible.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClippedRelu {
    /// Lower bound `a` (values below it are zeroed).
    pub lo: f32,
    /// Upper bound `b` (values above it saturate at `b − a`).
    pub hi: f32,
}

impl ClippedRelu {
    /// Construct; panics unless `lo < hi`.
    pub fn new(lo: f32, hi: f32) -> Self {
        assert!(lo < hi, "clipped ReLU requires lo < hi (got {lo} >= {hi})");
        ClippedRelu { lo, hi }
    }

    /// The output range width `b − a`.
    #[inline]
    pub fn range(&self) -> f32 {
        self.hi - self.lo
    }

    /// Scalar application.
    #[inline]
    pub fn apply(&self, x: f32) -> f32 {
        if x > self.hi {
            self.hi - self.lo
        } else if x >= self.lo {
            x - self.lo
        } else {
            0.0
        }
    }

    /// Elementwise forward.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.map(|v| self.apply(v))
    }

    /// Backward: gradient passes only inside the linear region `a ≤ x ≤ b`
    /// (the paper trains with full-precision gradients through this gate).
    pub fn backward(&self, x: &Tensor, dy: &Tensor) -> Tensor {
        x.zip_map(dy, |xi, gi| if xi >= self.lo && xi <= self.hi { gi } else { 0.0 })
    }
}

/// Numerically stable row-wise softmax over a `[N, K]` matrix.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    let (n, k) = logits.shape().rc();
    let mut out = Tensor::zeros([n, k]);
    for i in 0..n {
        let row = &logits.as_slice()[i * k..(i + 1) * k];
        let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        let dst = &mut out.as_mut_slice()[i * k..(i + 1) * k];
        for (d, &v) in dst.iter_mut().zip(row) {
            let e = (v - m).exp();
            *d = e;
            denom += e;
        }
        let inv = 1.0 / denom;
        for d in dst.iter_mut() {
            *d *= inv;
        }
    }
    out
}

/// Hyperbolic tangent activation (mentioned in §2.1 as an alternative).
pub fn tanh(x: &Tensor) -> Tensor {
    x.map(f32::tanh)
}

/// Backward of tanh given the forward *output* `y`: `dx = dy · (1 − y²)`.
pub fn tanh_backward(y: &Tensor, dy: &Tensor) -> Tensor {
    y.zip_map(dy, |yi, gi| gi * (1.0 - yi * yi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec([4], vec![-1.0, 0.0, 0.5, 2.0]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn relu_backward_gates_on_input() {
        let x = Tensor::from_vec([3], vec![-1.0, 1.0, 3.0]);
        let dy = Tensor::full([3], 2.0);
        assert_eq!(relu_backward(&x, &dy).as_slice(), &[0.0, 2.0, 2.0]);
    }

    #[test]
    fn clipped_relu_piecewise_definition() {
        // Mirrors the paper's Figure 5(b) with a = 0.2, b = 2.
        let cr = ClippedRelu::new(0.2, 2.0);
        assert_eq!(cr.apply(-1.0), 0.0); // below a
        assert_eq!(cr.apply(0.1), 0.0); // below a
        assert!(crate::approx_eq(cr.apply(0.2), 0.0, 1e-6)); // at a
        assert!(crate::approx_eq(cr.apply(1.0), 0.8, 1e-6)); // linear region
        assert!(crate::approx_eq(cr.apply(2.0), 1.8, 1e-6)); // at b
        assert!(crate::approx_eq(cr.apply(5.0), 1.8, 1e-6)); // saturated
    }

    #[test]
    fn clipped_relu_output_range() {
        let cr = ClippedRelu::new(-0.5, 1.5);
        let x = Tensor::from_fn([100], |i| (i as f32 - 50.0) / 10.0);
        let y = cr.forward(&x);
        for &v in y.as_slice() {
            assert!((0.0..=cr.range() + 1e-6).contains(&v));
        }
    }

    #[test]
    fn clipped_relu_increases_sparsity() {
        let x = Tensor::from_fn([1000], |i| ((i as f32) * 0.7).sin());
        let plain = relu(&x);
        let cr = ClippedRelu::new(0.3, 0.9);
        let clipped = cr.forward(&x);
        assert!(clipped.sparsity() > plain.sparsity());
    }

    #[test]
    fn clipped_relu_gradient_gate() {
        let cr = ClippedRelu::new(0.0, 1.0);
        let x = Tensor::from_vec([4], vec![-0.5, 0.5, 1.5, 0.9]);
        let dy = Tensor::full([4], 1.0);
        let dx = cr.backward(&x, &dy);
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn clipped_relu_rejects_inverted_bounds() {
        ClippedRelu::new(2.0, 1.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 100.0]);
        let s = softmax_rows(&x);
        for i in 0..2 {
            let row_sum: f32 = s.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            assert!(crate::approx_eq(row_sum, 1.0, 1e-5));
        }
        // the 100 logit should dominate
        assert!(s.at(&[1, 2]) > 0.999);
    }

    #[test]
    fn tanh_backward_formula() {
        let x = Tensor::from_vec([2], vec![0.0, 1.0]);
        let y = tanh(&x);
        let dy = Tensor::full([2], 1.0);
        let dx = tanh_backward(&y, &dy);
        assert!(crate::approx_eq(dx.as_slice()[0], 1.0, 1e-6));
        let t1 = 1.0f32.tanh();
        assert!(crate::approx_eq(dx.as_slice()[1], 1.0 - t1 * t1, 1e-6));
    }
}
