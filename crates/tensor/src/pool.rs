//! Max and average pooling with backward passes.
//!
//! The paper (§3.2) keeps pooling receptive fields entirely inside one FDSP
//! tile, so pooling never needs cross-tile data. That constraint lives in
//! `adcnn-core`; here we just implement the numerics.

use crate::scratch::ActBuf;
use crate::tensor::Tensor;

/// Pooling hyper-parameters (square window).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pool2dParams {
    /// Window edge length.
    pub kernel: usize,
    /// Stride (the paper's models all use `stride == kernel`, i.e.
    /// non-overlapping receptive fields).
    pub stride: usize,
}

impl Pool2dParams {
    /// Non-overlapping `k×k` pooling, the form used by every model in the paper.
    pub fn non_overlapping(kernel: usize) -> Self {
        Pool2dParams { kernel, stride: kernel }
    }

    /// Output spatial extent for input extent `in_dim` (floor mode, no padding).
    #[inline]
    pub fn out_dim(&self, in_dim: usize) -> usize {
        if in_dim < self.kernel {
            0
        } else {
            (in_dim - self.kernel) / self.stride + 1
        }
    }
}

/// Result of a max-pool forward: output plus the argmax indices needed by the
/// backward pass.
pub struct MaxPoolOut {
    /// Pooled `[N, C, OH, OW]` tensor.
    pub output: Tensor,
    /// For each output element, the flat index (within the input tensor) of
    /// the input element that produced it.
    pub argmax: Vec<usize>,
}

/// Max pooling over `[N, C, H, W]`.
pub fn maxpool2d(input: &Tensor, p: Pool2dParams) -> MaxPoolOut {
    let (n, c, h, w) = input.shape().nchw();
    let oh = p.out_dim(h);
    let ow = p.out_dim(w);
    let mut output = Tensor::zeros([n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let x = input.as_slice();
    let out = output.as_mut_slice();
    let mut oidx = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let r0 = oi * p.stride;
                    let c0 = oj * p.stride;
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = base + r0 * w + c0;
                    for ki in 0..p.kernel {
                        for kj in 0..p.kernel {
                            let idx = base + (r0 + ki) * w + (c0 + kj);
                            let v = x[idx];
                            if v > best {
                                best = v;
                                best_idx = idx;
                            }
                        }
                    }
                    out[oidx] = best;
                    argmax[oidx] = best_idx;
                    oidx += 1;
                }
            }
        }
    }
    MaxPoolOut { output, argmax }
}

/// Allocation-free max pooling for the inference hot path: reads a flat
/// `[n, c, h, w]` slice, writes `out` (storage reused), and skips the argmax
/// bookkeeping that only the backward pass needs.
pub fn maxpool2d_into(
    x: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    p: Pool2dParams,
    out: &mut ActBuf,
) {
    assert_eq!(x.len(), n * c * h * w, "input dims mismatch");
    let oh = p.out_dim(h);
    let ow = p.out_dim(w);
    out.reshape(&[n, c, oh, ow]);
    let o = out.as_mut_slice();
    let mut oidx = 0usize;
    for plane in 0..n * c {
        let base = plane * h * w;
        for oi in 0..oh {
            for oj in 0..ow {
                let r0 = oi * p.stride;
                let c0 = oj * p.stride;
                let mut best = f32::NEG_INFINITY;
                for ki in 0..p.kernel {
                    for kj in 0..p.kernel {
                        let v = x[base + (r0 + ki) * w + (c0 + kj)];
                        if v > best {
                            best = v;
                        }
                    }
                }
                o[oidx] = best;
                oidx += 1;
            }
        }
    }
}

/// Backward of max pooling: routes each output gradient to its argmax input.
pub fn maxpool2d_backward(ctx: &MaxPoolOut, dout: &Tensor, input_shape: &[usize]) -> Tensor {
    assert_eq!(dout.numel(), ctx.argmax.len(), "dout/argmax length mismatch");
    let mut dinput = Tensor::zeros(input_shape);
    let dx = dinput.as_mut_slice();
    for (g, &idx) in dout.as_slice().iter().zip(&ctx.argmax) {
        dx[idx] += g;
    }
    dinput
}

/// Average pooling over `[N, C, H, W]`.
pub fn avgpool2d(input: &Tensor, p: Pool2dParams) -> Tensor {
    let (n, c, h, w) = input.shape().nchw();
    let oh = p.out_dim(h);
    let ow = p.out_dim(w);
    let inv = 1.0 / (p.kernel * p.kernel) as f32;
    let mut output = Tensor::zeros([n, c, oh, ow]);
    let x = input.as_slice();
    let out = output.as_mut_slice();
    let mut oidx = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let r0 = oi * p.stride;
                    let c0 = oj * p.stride;
                    let mut acc = 0.0f32;
                    for ki in 0..p.kernel {
                        for kj in 0..p.kernel {
                            acc += x[base + (r0 + ki) * w + (c0 + kj)];
                        }
                    }
                    out[oidx] = acc * inv;
                    oidx += 1;
                }
            }
        }
    }
    output
}

/// Allocation-free average pooling (flat-slice input, reused output buffer).
pub fn avgpool2d_into(
    x: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    p: Pool2dParams,
    out: &mut ActBuf,
) {
    assert_eq!(x.len(), n * c * h * w, "input dims mismatch");
    let oh = p.out_dim(h);
    let ow = p.out_dim(w);
    let inv = 1.0 / (p.kernel * p.kernel) as f32;
    out.reshape(&[n, c, oh, ow]);
    let o = out.as_mut_slice();
    let mut oidx = 0usize;
    for plane in 0..n * c {
        let base = plane * h * w;
        for oi in 0..oh {
            for oj in 0..ow {
                let r0 = oi * p.stride;
                let c0 = oj * p.stride;
                let mut acc = 0.0f32;
                for ki in 0..p.kernel {
                    for kj in 0..p.kernel {
                        acc += x[base + (r0 + ki) * w + (c0 + kj)];
                    }
                }
                o[oidx] = acc * inv;
                oidx += 1;
            }
        }
    }
}

/// Backward of average pooling (only defined for non-overlapping windows,
/// which is all the paper's models use).
pub fn avgpool2d_backward(dout: &Tensor, p: Pool2dParams, input_shape: &[usize]) -> Tensor {
    assert_eq!(p.stride, p.kernel, "avgpool backward assumes non-overlapping windows");
    let mut dinput = Tensor::zeros(input_shape);
    let (n, c, h, w) = dinput.shape().nchw();
    let oh = p.out_dim(h);
    let ow = p.out_dim(w);
    let inv = 1.0 / (p.kernel * p.kernel) as f32;
    let dy = dout.as_slice();
    let dx = dinput.as_mut_slice();
    let mut oidx = 0usize;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oi in 0..oh {
                for oj in 0..ow {
                    let g = dy[oidx] * inv;
                    oidx += 1;
                    for ki in 0..p.kernel {
                        for kj in 0..p.kernel {
                            dx[base + (oi * p.stride + ki) * w + (oj * p.stride + kj)] += g;
                        }
                    }
                }
            }
        }
    }
    dinput
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
pub fn global_avgpool(input: &Tensor) -> Tensor {
    let (n, c, h, w) = input.shape().nchw();
    let inv = 1.0 / (h * w) as f32;
    let mut out = Tensor::zeros([n, c]);
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let s: f32 = input.as_slice()[base..base + h * w].iter().sum();
            *out.at_mut(&[ni, ci]) = s * inv;
        }
    }
    out
}

/// Allocation-free global average pooling: `[n, c, h, w] -> [n, c]`.
pub fn global_avgpool_into(
    x: &[f32],
    (n, c, h, w): (usize, usize, usize, usize),
    out: &mut ActBuf,
) {
    assert_eq!(x.len(), n * c * h * w, "input dims mismatch");
    let inv = 1.0 / (h * w) as f32;
    out.reshape(&[n, c]);
    let o = out.as_mut_slice();
    for (plane, dst) in o.iter_mut().enumerate() {
        let base = plane * h * w;
        let s: f32 = x[base..base + h * w].iter().sum();
        *dst = s * inv;
    }
}

/// Backward of global average pooling.
pub fn global_avgpool_backward(dout: &Tensor, input_shape: &[usize]) -> Tensor {
    let mut dinput = Tensor::zeros(input_shape);
    let (n, c, h, w) = dinput.shape().nchw();
    let inv = 1.0 / (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let g = dout.at(&[ni, ci]) * inv;
            let base = (ni * c + ci) * h * w;
            for v in &mut dinput.as_mut_slice()[base..base + h * w] {
                *v += g;
            }
        }
    }
    dinput
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_2x2_basic() {
        let x = Tensor::from_vec(
            [1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let out = maxpool2d(&x, Pool2dParams::non_overlapping(2));
        assert_eq!(out.output.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]);
        let ctx = maxpool2d(&x, Pool2dParams::non_overlapping(2));
        let dout = Tensor::full([1, 1, 1, 1], 5.0);
        let dx = maxpool2d_backward(&ctx, &dout, &[1, 1, 2, 2]);
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avgpool_matches_mean() {
        let x = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let out = avgpool2d(&x, Pool2dParams::non_overlapping(2));
        // window [0,1,4,5] -> 2.5
        assert_eq!(out.at(&[0, 0, 0, 0]), 2.5);
    }

    #[test]
    fn avgpool_backward_distributes_evenly() {
        let dout = Tensor::full([1, 1, 1, 1], 4.0);
        let dx = avgpool2d_backward(&dout, Pool2dParams::non_overlapping(2), &[1, 1, 2, 2]);
        assert_eq!(dx.as_slice(), &[1.0; 4]);
    }

    #[test]
    fn odd_input_truncates() {
        let x = Tensor::zeros([1, 1, 5, 5]);
        let out = maxpool2d(&x, Pool2dParams::non_overlapping(2));
        assert_eq!(out.output.dims(), &[1, 1, 2, 2]);
    }

    #[test]
    fn global_avgpool_roundtrip() {
        let x = Tensor::from_fn([2, 3, 2, 2], |i| i as f32);
        let y = global_avgpool(&x);
        assert_eq!(y.dims(), &[2, 3]);
        // channel 0 of image 0: elems 0..4 -> mean 1.5
        assert_eq!(y.at(&[0, 0]), 1.5);
        let dy = Tensor::full([2, 3], 4.0);
        let dx = global_avgpool_backward(&dy, &[2, 3, 2, 2]);
        assert_eq!(dx.at(&[0, 0, 0, 0]), 1.0);
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::randn([2, 3, 5, 4], 1.0, &mut rng);
        let p = Pool2dParams::non_overlapping(2);
        let mut buf = ActBuf::new();

        maxpool2d_into(x.as_slice(), (2, 3, 5, 4), p, &mut buf);
        assert!(buf.to_tensor().approx_eq(&maxpool2d(&x, p).output, 0.0));

        avgpool2d_into(x.as_slice(), (2, 3, 5, 4), p, &mut buf);
        assert!(buf.to_tensor().approx_eq(&avgpool2d(&x, p), 0.0));

        global_avgpool_into(x.as_slice(), (2, 3, 5, 4), &mut buf);
        assert!(buf.to_tensor().approx_eq(&global_avgpool(&x), 0.0));
    }

    #[test]
    fn maxpool_grad_finite_difference() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn([1, 2, 4, 4], 1.0, &mut rng);
        let p = Pool2dParams::non_overlapping(2);
        let ctx = maxpool2d(&x, p);
        let dout = Tensor::full(ctx.output.shape().clone(), 1.0);
        let dx = maxpool2d_backward(&ctx, &dout, x.dims());
        let eps = 1e-3f32;
        for &flat in &[0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[flat] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[flat] -= eps;
            let lp = maxpool2d(&xp, p).output.sum();
            let lm = maxpool2d(&xm, p).output.sum();
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((num - dx.as_slice()[flat]).abs() < 1e-2);
        }
    }
}
