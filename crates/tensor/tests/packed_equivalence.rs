//! Randomized equivalence tests for the packed inference kernels.
//!
//! The packed GEMM and the scratch-arena conv path must agree with naive
//! reference implementations across random shapes — including the awkward
//! ones: single rows, panel-tail widths, stride 2, 1x1 kernels, and
//! degenerate zero-sized outputs. Plain seeded-rand loops (not proptest) so
//! the shapes exercised are identical on every run and every platform.

use adcnn_tensor::conv::{conv2d, conv2d_into, Conv2dParams};
use adcnn_tensor::gemm::{gemm, gemm_fused, FusedAct};
use adcnn_tensor::{ActBuf, Scratch, Tensor};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn rand_vec(rng: &mut StdRng, n: usize) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect()
}

/// Naive triple-loop reference: `c = a·b + beta·c`.
fn gemm_ref(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32], beta: f32) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc + beta * c[i * n + j];
        }
    }
}

fn max_rel_err(got: &[f32], want: &[f32]) -> f32 {
    got.iter().zip(want).map(|(&g, &w)| (g - w).abs() / w.abs().max(1.0)).fold(0.0, f32::max)
}

#[test]
fn packed_gemm_matches_naive_across_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0xADC);
    for trial in 0..40 {
        let m = rng.gen_range(1..40);
        let k = rng.gen_range(1..90);
        let n = rng.gen_range(1..70);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let beta = [0.0f32, 1.0, -0.5][trial % 3];
        let mut want = rand_vec(&mut rng, m * n);
        let mut got = want.clone();
        gemm_ref(m, k, n, &a, &b, &mut want, beta);
        gemm(m, k, n, &a, &b, &mut got, beta);
        let err = max_rel_err(&got, &want);
        assert!(err < 1e-4, "trial {trial} ({m}x{k}x{n}, beta {beta}): rel err {err}");
    }
}

#[test]
fn packed_gemm_matches_naive_on_large_parallel_shapes() {
    // Shapes big enough to cross the parallel-dispatch threshold, including
    // the m == 1 split-N case.
    let mut rng = StdRng::seed_from_u64(0xBEE);
    for &(m, k, n) in &[(1usize, 512usize, 300usize), (67, 129, 95), (128, 64, 33), (4, 300, 256)] {
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let mut want = vec![0.0f32; m * n];
        let mut got = vec![0.0f32; m * n];
        gemm_ref(m, k, n, &a, &b, &mut want, 0.0);
        gemm(m, k, n, &a, &b, &mut got, 0.0);
        let err = max_rel_err(&got, &want);
        assert!(err < 1e-3, "({m}x{k}x{n}): rel err {err}");
    }
}

#[test]
fn fused_gemm_matches_naive_plus_epilogue() {
    let mut rng = StdRng::seed_from_u64(0xCAB);
    let mut scratch = Scratch::new();
    for trial in 0..20 {
        let m = rng.gen_range(1..20);
        let k = rng.gen_range(1..60);
        let n = rng.gen_range(1..50);
        let a = rand_vec(&mut rng, m * k);
        let b = rand_vec(&mut rng, k * n);
        let bias = rand_vec(&mut rng, m);
        let act =
            [FusedAct::Identity, FusedAct::Relu, FusedAct::Clipped { lo: 0.2, hi: 1.4 }][trial % 3];
        let mut want = vec![0.0f32; m * n];
        gemm_ref(m, k, n, &a, &b, &mut want, 0.0);
        for i in 0..m {
            for v in &mut want[i * n..(i + 1) * n] {
                *v = act.apply(*v + bias[i]);
            }
        }
        let mut got = vec![0.0f32; m * n];
        gemm_fused(m, k, n, &a, &b, &mut got, Some(&bias), act, &mut scratch);
        let err = max_rel_err(&got, &want);
        assert!(err < 1e-4, "trial {trial} ({m}x{k}x{n}, {act:?}): rel err {err}");
    }
}

/// Naive direct convolution (zero padding), the ground truth for conv2d.
fn conv_ref(x: &Tensor, w: &Tensor, bias: &[f32], p: Conv2dParams) -> Tensor {
    let (n, ic, h, ww) = x.shape().nchw();
    let oc = w.dims()[0];
    let oh = p.out_dim(h);
    let ow = p.out_dim(ww);
    let mut out = Tensor::zeros([n, oc, oh, ow]);
    let xs = x.as_slice();
    let ws = w.as_slice();
    let os = out.as_mut_slice();
    for img in 0..n {
        for o in 0..oc {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = if bias.is_empty() { 0.0 } else { bias[o] };
                    for c in 0..ic {
                        for ki in 0..p.kernel {
                            for kj in 0..p.kernel {
                                let si = (oi * p.stride + ki) as isize - p.pad as isize;
                                let sj = (oj * p.stride + kj) as isize - p.pad as isize;
                                if si < 0 || sj < 0 || si >= h as isize || sj >= ww as isize {
                                    continue;
                                }
                                let xv = xs[((img * ic + c) * h + si as usize) * ww + sj as usize];
                                let wv = ws[((o * ic + c) * p.kernel + ki) * p.kernel + kj];
                                acc += xv * wv;
                            }
                        }
                    }
                    os[((img * oc + o) * oh + oi) * ow + oj] = acc;
                }
            }
        }
    }
    out
}

#[test]
fn conv2d_matches_direct_reference_across_shapes() {
    let mut rng = StdRng::seed_from_u64(0xD0C);
    // (ic, oc, h, w, kernel, stride, pad) — includes stride 2, kernel 1,
    // pad 0, and asymmetric spatial dims.
    let cases = [
        (1usize, 1usize, 5usize, 5usize, 3usize, 1usize, 1usize),
        (3, 8, 8, 8, 3, 1, 1),
        (2, 4, 9, 7, 3, 2, 1),
        (4, 6, 8, 8, 1, 1, 0),
        (2, 3, 11, 5, 5, 2, 2),
        (3, 2, 6, 6, 3, 1, 0),
    ];
    for &(ic, oc, h, w, kernel, stride, pad) in &cases {
        let p = Conv2dParams { kernel, stride, pad };
        for n in [1usize, 2] {
            let x = Tensor::randn([n, ic, h, w], 1.0, &mut rng);
            let wt = Tensor::randn([oc, ic, kernel, kernel], 0.5, &mut rng);
            let bias = rand_vec(&mut rng, oc);
            let want = conv_ref(&x, &wt, &bias, p);
            let got = conv2d(&x, &wt, &bias, p);
            assert_eq!(got.dims(), want.dims());
            let err = max_rel_err(got.as_slice(), want.as_slice());
            assert!(err < 1e-4, "{ic}->{oc} {h}x{w} k{kernel} s{stride} p{pad}: err {err}");
        }
    }
}

#[test]
fn conv2d_into_matches_public_conv2d_across_shapes() {
    let mut rng = StdRng::seed_from_u64(0xF00);
    let mut scratch = Scratch::new();
    let mut out = ActBuf::new();
    let cases = [
        (1usize, 2usize, 6usize, 6usize, 3usize, 1usize, 1usize),
        (3, 5, 7, 9, 3, 2, 1),
        (2, 2, 5, 5, 1, 1, 0),
        (2, 3, 10, 10, 5, 2, 2),
    ];
    for &(ic, oc, h, w, kernel, stride, pad) in &cases {
        let p = Conv2dParams { kernel, stride, pad };
        let x = Tensor::randn([1, ic, h, w], 1.0, &mut rng);
        let wt = Tensor::randn([oc, ic, kernel, kernel], 0.5, &mut rng);
        let bias = rand_vec(&mut rng, oc);
        let mut want = conv2d(&x, &wt, &bias, p);
        for v in want.as_mut_slice() {
            *v = v.max(0.0);
        }
        conv2d_into(
            x.as_slice(),
            (1, ic, h, w),
            &wt,
            &bias,
            p,
            FusedAct::Relu,
            &mut scratch,
            &mut out,
        );
        assert_eq!(out.dims(), want.dims());
        let err = max_rel_err(out.as_slice(), want.as_slice());
        assert!(err < 1e-5, "{ic}->{oc} {h}x{w} k{kernel} s{stride} p{pad}: err {err}");
    }
}

#[test]
fn degenerate_zero_output_shapes_are_consistent() {
    // Kernel larger than the padded input: out_dim == 0. Both paths must
    // agree on the (empty) result instead of panicking.
    let mut rng = StdRng::seed_from_u64(0xE00);
    let p = Conv2dParams { kernel: 5, stride: 1, pad: 0 };
    let x = Tensor::randn([1, 2, 3, 3], 1.0, &mut rng);
    let wt = Tensor::randn([4, 2, 5, 5], 0.5, &mut rng);
    let got = conv2d(&x, &wt, &[], p);
    assert_eq!(got.dims(), &[1, 4, 0, 0]);
    let mut scratch = Scratch::new();
    let mut out = ActBuf::new();
    conv2d_into(
        x.as_slice(),
        (1, 2, 3, 3),
        &wt,
        &[],
        p,
        FusedAct::Identity,
        &mut scratch,
        &mut out,
    );
    assert_eq!(out.dims(), &[1, 4, 0, 0]);
    assert_eq!(out.numel(), 0);

    // Zero-k GEMM: m×0 · 0×n must yield the epilogue of a zero matrix.
    let mut c = vec![7.0f32; 6];
    gemm(2, 0, 3, &[], &[], &mut c, 0.0);
    assert_eq!(c, vec![0.0; 6]);
}
