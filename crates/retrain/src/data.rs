//! Procedurally generated datasets.
//!
//! - [`shapes`]: 3×32×32 images of geometric glyphs (the image-classification
//!   stand-in for Caltech101/ImageNet). The class is determined by *local*
//!   structure — edges, corners, strokes — which is exactly the feature
//!   family the paper argues early CNN layers extract (§2.3), so FDSP's
//!   border effects are exercised realistically.
//! - [`char_seqs`]: one-hot character sequences where the class is decided
//!   by which trigram motif appears (the CharCNN/AG-news stand-in).

use adcnn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labeled dataset with a train/test split.
pub struct Dataset {
    /// Training inputs `[N, C, H, W]`.
    pub train_x: Tensor,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Held-out inputs.
    pub test_x: Tensor,
    /// Held-out labels.
    pub test_y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_y.len()
    }

    /// Number of test samples.
    pub fn test_len(&self) -> usize {
        self.test_y.len()
    }

    /// Slice a training mini-batch given shuffled indices.
    pub fn batch(&self, idx: &[usize]) -> (Tensor, Vec<usize>) {
        gather(&self.train_x, &self.train_y, idx)
    }
}

fn gather(x: &Tensor, y: &[usize], idx: &[usize]) -> (Tensor, Vec<usize>) {
    let dims = x.dims();
    let stride: usize = dims[1..].iter().product();
    let mut out = Vec::with_capacity(idx.len() * stride);
    let mut labels = Vec::with_capacity(idx.len());
    for &i in idx {
        out.extend_from_slice(&x.as_slice()[i * stride..(i + 1) * stride]);
        labels.push(y[i]);
    }
    let mut shape = vec![idx.len()];
    shape.extend_from_slice(&dims[1..]);
    (Tensor::from_vec(shape.as_slice(), out), labels)
}

/// The shape-glyph classes.
pub const SHAPE_CLASSES: usize = 6;

/// Draw one glyph class into a `size × size` single-channel canvas.
fn draw_glyph(class: usize, size: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut img = vec![0.0f32; size * size];
    let s = size as f32;
    // jittered center and scale
    let cx = s / 2.0 + rng.gen_range(-s / 8.0..s / 8.0);
    let cy = s / 2.0 + rng.gen_range(-s / 8.0..s / 8.0);
    let r = rng.gen_range(s / 5.0..s / 3.2);
    let mut put = |x: isize, y: isize, v: f32| {
        if x >= 0 && y >= 0 && (x as usize) < size && (y as usize) < size {
            img[y as usize * size + x as usize] = v;
        }
    };
    match class {
        // 0: filled circle
        0 => {
            for y in 0..size {
                for x in 0..size {
                    let d = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)).sqrt();
                    if d < r {
                        put(x as isize, y as isize, 1.0);
                    }
                }
            }
        }
        // 1: ring (circle outline)
        1 => {
            for y in 0..size {
                for x in 0..size {
                    let d = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)).sqrt();
                    if (d - r).abs() < 1.5 {
                        put(x as isize, y as isize, 1.0);
                    }
                }
            }
        }
        // 2: filled square
        2 => {
            for y in 0..size {
                for x in 0..size {
                    if (x as f32 - cx).abs() < r && (y as f32 - cy).abs() < r {
                        put(x as isize, y as isize, 1.0);
                    }
                }
            }
        }
        // 3: cross (+)
        3 => {
            for t in -(r as isize)..=(r as isize) {
                for w in -1..=1isize {
                    put(cx as isize + t, cy as isize + w, 1.0);
                    put(cx as isize + w, cy as isize + t, 1.0);
                }
            }
        }
        // 4: diagonal X
        4 => {
            for t in -(r as isize)..=(r as isize) {
                for w in -1..=1isize {
                    put(cx as isize + t + w, cy as isize + t, 1.0);
                    put(cx as isize + t + w, cy as isize - t, 1.0);
                }
            }
        }
        // 5: horizontal bars
        5 => {
            let gap = (r / 2.0).max(2.0) as isize;
            for row in [-gap, 0, gap] {
                for t in -(r as isize)..=(r as isize) {
                    put(cx as isize + t, cy as isize + row, 1.0);
                }
            }
        }
        _ => panic!("unknown shape class {class}"),
    }
    img
}

/// Generate the shapes dataset: `train + test` images of `SHAPE_CLASSES`
/// glyph classes on 3×`size`×`size` canvases with color jitter and noise.
pub fn shapes(train: usize, test: usize, size: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = train + test;
    let mut xs = Vec::with_capacity(total * 3 * size * size);
    let mut ys = Vec::with_capacity(total);
    for i in 0..total {
        let class = i % SHAPE_CLASSES;
        ys.push(class);
        let glyph = draw_glyph(class, size, &mut rng);
        // random (but bright) color and additive noise per channel
        for _c in 0..3 {
            let tint: f32 = rng.gen_range(0.6..1.0);
            for &g in &glyph {
                let noise: f32 = rng.gen_range(-0.08..0.08);
                xs.push((g * tint + noise).clamp(-0.2, 1.2));
            }
        }
        let _ = i;
    }
    let x = Tensor::from_vec([total, 3, size, size], xs);
    split(x, ys, train, test, SHAPE_CLASSES, seed ^ 0x5eed)
}

/// Alphabet size for [`char_seqs`].
pub const CHAR_ALPHABET: usize = 16;
/// Classes for [`char_seqs`].
pub const CHAR_CLASSES: usize = 4;

/// Generate the character-sequence dataset: random symbol streams of length
/// `len` in which one of four trigram motifs is planted; the label is the
/// motif. One-hot `[N, CHAR_ALPHABET, 1, len]`.
pub fn char_seqs(train: usize, test: usize, len: usize, seed: u64) -> Dataset {
    assert!(len >= 8, "sequence too short");
    let motifs: [[usize; 3]; CHAR_CLASSES] = [[1, 2, 3], [4, 5, 6], [7, 8, 9], [10, 11, 12]];
    let mut rng = StdRng::seed_from_u64(seed);
    let total = train + test;
    let mut xs = vec![0.0f32; total * CHAR_ALPHABET * len];
    let mut ys = Vec::with_capacity(total);
    for i in 0..total {
        let class = i % CHAR_CLASSES;
        ys.push(class);
        let mut seq: Vec<usize> = (0..len).map(|_| rng.gen_range(0..CHAR_ALPHABET)).collect();
        // plant the motif at 2-3 random positions
        for _ in 0..rng.gen_range(2..4) {
            let pos = rng.gen_range(0..len - 3);
            seq[pos..pos + 3].copy_from_slice(&motifs[class]);
        }
        // make sure no *other* motif appears by clobbering accidental hits
        #[allow(clippy::needless_range_loop)]
        for other in 0..CHAR_CLASSES {
            if other == class {
                continue;
            }
            for p in 0..len - 2 {
                if seq[p..p + 3] == motifs[other] {
                    seq[p] = 0;
                }
            }
        }
        for (p, &sym) in seq.iter().enumerate() {
            xs[i * CHAR_ALPHABET * len + sym * len + p] = 1.0;
        }
    }
    let x = Tensor::from_vec([total, CHAR_ALPHABET, 1, len], xs);
    split(x, ys, train, test, CHAR_CLASSES, seed ^ 0xc0de)
}

/// Shuffle and split into train/test.
fn split(
    x: Tensor,
    y: Vec<usize>,
    train: usize,
    test: usize,
    classes: usize,
    seed: u64,
) -> Dataset {
    let total = train + test;
    assert_eq!(y.len(), total);
    let mut order: Vec<usize> = (0..total).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher-Yates
    for i in (1..total).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let (train_x, train_y) = gather(&x, &y, &order[..train]);
    let (test_x, test_y) = gather(&x, &y, &order[train..]);
    Dataset { train_x, train_y, test_x, test_y, classes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_dims_and_labels() {
        let d = shapes(60, 30, 16, 1);
        assert_eq!(d.train_x.dims(), &[60, 3, 16, 16]);
        assert_eq!(d.test_x.dims(), &[30, 3, 16, 16]);
        assert!(d.train_y.iter().all(|&y| y < SHAPE_CLASSES));
        assert_eq!(d.classes, SHAPE_CLASSES);
    }

    #[test]
    fn shapes_classes_are_distinguishable() {
        // Mean images of different classes must differ substantially.
        let d = shapes(120, 0, 16, 2);
        let stride = 3 * 16 * 16;
        let mut means = vec![vec![0.0f64; stride]; SHAPE_CLASSES];
        let mut counts = vec![0usize; SHAPE_CLASSES];
        for (i, &y) in d.train_y.iter().enumerate() {
            counts[y] += 1;
            #[allow(clippy::needless_range_loop)]
            for j in 0..stride {
                means[y][j] += d.train_x.as_slice()[i * stride + j] as f64;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f64;
            }
        }
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt()
        };
        for a in 0..SHAPE_CLASSES {
            for b in a + 1..SHAPE_CLASSES {
                assert!(dist(&means[a], &means[b]) > 1.0, "classes {a},{b} too similar");
            }
        }
    }

    #[test]
    fn shapes_deterministic_per_seed() {
        let a = shapes(20, 10, 16, 7);
        let b = shapes(20, 10, 16, 7);
        assert!(a.train_x.approx_eq(&b.train_x, 0.0));
        assert_eq!(a.train_y, b.train_y);
        let c = shapes(20, 10, 16, 8);
        assert!(!a.train_x.approx_eq(&c.train_x, 0.0));
    }

    #[test]
    fn char_seqs_one_hot() {
        let d = char_seqs(40, 20, 32, 3);
        assert_eq!(d.train_x.dims(), &[40, CHAR_ALPHABET, 1, 32]);
        // each position has exactly one hot symbol
        for i in 0..40 {
            for p in 0..32 {
                let mut hot = 0;
                for s in 0..CHAR_ALPHABET {
                    if d.train_x.at(&[i, s, 0, p]) == 1.0 {
                        hot += 1;
                    }
                }
                assert_eq!(hot, 1, "sample {i} pos {p}");
            }
        }
    }

    #[test]
    fn char_seqs_motif_present_only_for_label() {
        let d = char_seqs(40, 0, 32, 4);
        let motifs: [[usize; 3]; 4] = [[1, 2, 3], [4, 5, 6], [7, 8, 9], [10, 11, 12]];
        for i in 0..40 {
            // reconstruct symbol sequence
            let seq: Vec<usize> = (0..32)
                .map(|p| (0..CHAR_ALPHABET).find(|&s| d.train_x.at(&[i, s, 0, p]) == 1.0).unwrap())
                .collect();
            let has = |m: &[usize; 3]| (0..30).any(|p| seq[p..p + 3] == m[..]);
            let y = d.train_y[i];
            assert!(has(&motifs[y]), "sample {i}: own motif missing");
            #[allow(clippy::needless_range_loop)]
            for other in 0..4 {
                if other != y {
                    assert!(!has(&motifs[other]), "sample {i}: foreign motif {other}");
                }
            }
        }
    }

    #[test]
    fn batch_gathers_correct_rows() {
        let d = shapes(10, 5, 16, 5);
        let (bx, by) = d.batch(&[3, 7]);
        assert_eq!(bx.dims(), &[2, 3, 16, 16]);
        assert_eq!(by, vec![d.train_y[3], d.train_y[7]]);
        let stride = 3 * 16 * 16;
        assert_eq!(&bx.as_slice()[..stride], &d.train_x.as_slice()[3 * stride..4 * stride]);
    }

    #[test]
    fn split_is_shuffled() {
        // Labels should not come out in strict generation order.
        let d = shapes(60, 0, 16, 6);
        let in_order = d.train_y.iter().enumerate().all(|(i, &y)| y == i % SHAPE_CLASSES);
        assert!(!in_order, "train labels unshuffled");
    }
}

/// A dense-prediction (segmentation) dataset: per-pixel labels, class 0 is
/// background and classes `1..=SHAPE_CLASSES` are glyphs. The FCN stand-in
/// task (paper §7.1 evaluates FCN on CamVid).
pub struct SegDataset {
    /// Training inputs `[N, 3, H, W]`.
    pub train_x: Tensor,
    /// Flattened per-pixel training labels, length `N·H·W`.
    pub train_y: Vec<usize>,
    /// Held-out inputs.
    pub test_x: Tensor,
    /// Flattened per-pixel held-out labels.
    pub test_y: Vec<usize>,
    /// Classes including background.
    pub classes: usize,
}

impl SegDataset {
    /// Number of training images.
    pub fn train_len(&self) -> usize {
        self.train_x.dims()[0]
    }

    /// Number of test images.
    pub fn test_len(&self) -> usize {
        self.test_x.dims()[0]
    }

    /// Gather a training mini-batch (inputs + flattened pixel labels).
    pub fn batch(&self, idx: &[usize]) -> (Tensor, Vec<usize>) {
        let dims = self.train_x.dims();
        let stride: usize = dims[1..].iter().product();
        let hw = dims[2] * dims[3];
        let mut xs = Vec::with_capacity(idx.len() * stride);
        let mut ys = Vec::with_capacity(idx.len() * hw);
        for &i in idx {
            xs.extend_from_slice(&self.train_x.as_slice()[i * stride..(i + 1) * stride]);
            ys.extend_from_slice(&self.train_y[i * hw..(i + 1) * hw]);
        }
        let shape = [idx.len(), dims[1], dims[2], dims[3]];
        (Tensor::from_vec(shape, xs), ys)
    }
}

/// Generate the shapes *segmentation* dataset: the glyph pixels carry the
/// glyph's class (1-based), everything else is background (0).
pub fn shapes_seg(train: usize, test: usize, size: usize, seed: u64) -> SegDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = train + test;
    let mut xs = Vec::with_capacity(total * 3 * size * size);
    let mut ys = Vec::with_capacity(total * size * size);
    for i in 0..total {
        let class = i % SHAPE_CLASSES;
        let glyph = draw_glyph(class, size, &mut rng);
        for &g in &glyph {
            ys.push(if g > 0.5 { class + 1 } else { 0 });
        }
        for _c in 0..3 {
            let tint: f32 = rng.gen_range(0.6..1.0);
            for &g in &glyph {
                let noise: f32 = rng.gen_range(-0.08..0.08);
                xs.push((g * tint + noise).clamp(-0.2, 1.2));
            }
        }
    }
    let hw = size * size;
    let stride = 3 * hw;
    SegDataset {
        train_x: Tensor::from_vec([train, 3, size, size], xs[..train * stride].to_vec()),
        train_y: ys[..train * hw].to_vec(),
        test_x: Tensor::from_vec([test, 3, size, size], xs[train * stride..].to_vec()),
        test_y: ys[train * hw..].to_vec(),
        classes: SHAPE_CLASSES + 1,
    }
}

#[cfg(test)]
mod seg_tests {
    use super::*;

    #[test]
    fn seg_labels_align_with_pixels() {
        let d = shapes_seg(8, 4, 16, 41);
        assert_eq!(d.train_y.len(), 8 * 256);
        assert_eq!(d.test_y.len(), 4 * 256);
        // glyph pixels must carry a non-zero class and match bright pixels
        let hw = 256;
        for i in 0..8 {
            let mut fg = 0usize;
            for px in 0..hw {
                let y = d.train_y[i * hw + px];
                assert!(y <= SHAPE_CLASSES);
                if y > 0 {
                    fg += 1;
                }
            }
            assert!(fg > 10, "image {i} has almost no foreground");
            assert!(fg < hw / 2, "image {i} is mostly foreground");
        }
    }

    #[test]
    fn seg_batch_shapes() {
        let d = shapes_seg(6, 2, 16, 42);
        let (x, y) = d.batch(&[1, 4]);
        assert_eq!(x.dims(), &[2, 3, 16, 16]);
        assert_eq!(y.len(), 2 * 256);
        assert_eq!(&y[..256], &d.train_y[256..512]);
    }
}
