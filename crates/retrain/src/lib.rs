//! # adcnn-retrain
//!
//! The paper's machine-learning side: synthetic datasets, a training loop,
//! FDSP-partitioned training graphs (Figure 7), and **Algorithm 1** —
//! progressive retraining that folds in FDSP, the clipped ReLU and the
//! quantizer one at a time, recovering accuracy after each step.
//!
//! The paper retrains ImageNet/VOC/AG-news models; that is substituted with
//! procedurally generated tasks (see `DESIGN.md`) whose decisive property is
//! shared with the originals: labels depend on *local* features that early
//! conv layers detect, so FDSP's zero-padded tile borders cost a little
//! accuracy that retraining can win back.

pub mod data;
pub mod partitioned;
pub mod progressive;
pub mod trainer;

pub use data::Dataset;
pub use partitioned::PartitionedModel;
pub use progressive::{progressive_retrain, ProgressiveReport, RetrainConfig, StageReport};
pub use trainer::{train, TrainConfig, TrainReport};
