//! Mini-batch SGD training loop shared by all retraining stages.

use crate::data::Dataset;
use crate::partitioned::PartitionedModel;
use adcnn_nn::Sgd;
use adcnn_tensor::loss::{accuracy, softmax_cross_entropy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training-loop hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Maximum epochs to run.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Stop early once held-out accuracy reaches this value (1.1 disables).
    pub target_accuracy: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            target_accuracy: 1.1,
            seed: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub losses: Vec<f64>,
    /// Held-out accuracy after each epoch.
    pub accuracies: Vec<f64>,
    /// Epochs actually executed (≤ `cfg.epochs` with early stopping).
    pub epochs_used: usize,
}

impl TrainReport {
    /// Final held-out accuracy.
    pub fn final_accuracy(&self) -> f64 {
        self.accuracies.last().copied().unwrap_or(0.0)
    }
}

/// Train `model` on `data`, evaluating on the test split each epoch.
pub fn train(model: &mut PartitionedModel, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    let opt = Sgd::with_momentum(cfg.lr, cfg.momentum, cfg.weight_decay);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = data.train_len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut losses = Vec::new();
    let mut accuracies = Vec::new();
    let mut epochs_used = 0;

    for _epoch in 0..cfg.epochs {
        epochs_used += 1;
        // shuffle
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let (bx, by) = data.batch(chunk);
            let (logits, ctx) = model.forward_train(&bx);
            let (loss, dl) = softmax_cross_entropy(&logits, &by);
            model.backward(&ctx, &dl);
            opt.step(&mut model.net);
            epoch_loss += loss;
            batches += 1;
        }
        losses.push(epoch_loss / batches.max(1) as f64);
        accuracies.push(evaluate(model, data));
        if accuracies.last().copied().unwrap_or(0.0) >= cfg.target_accuracy {
            break;
        }
    }
    TrainReport { losses, accuracies, epochs_used }
}

/// Held-out accuracy of the model (inference mode).
pub fn evaluate(model: &mut PartitionedModel, data: &Dataset) -> f64 {
    // Evaluate in batches to bound peak memory.
    let n = data.test_len();
    let mut correct = 0.0;
    let mut seen = 0usize;
    let idx: Vec<usize> = (0..n).collect();
    for chunk in idx.chunks(64) {
        let (bx, by) = gather_test(data, chunk);
        let logits = model.infer(&bx);
        correct += accuracy(&logits, &by) * by.len() as f64;
        seen += by.len();
    }
    correct / seen.max(1) as f64
}

fn gather_test(data: &Dataset, idx: &[usize]) -> (adcnn_tensor::Tensor, Vec<usize>) {
    let dims = data.test_x.dims();
    let stride: usize = dims[1..].iter().product();
    let mut out = Vec::with_capacity(idx.len() * stride);
    let mut labels = Vec::with_capacity(idx.len());
    for &i in idx {
        out.extend_from_slice(&data.test_x.as_slice()[i * stride..(i + 1) * stride]);
        labels.push(data.test_y[i]);
    }
    let mut shape = vec![idx.len()];
    shape.extend_from_slice(&dims[1..]);
    (adcnn_tensor::Tensor::from_vec(shape.as_slice(), out), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::shapes;
    use adcnn_core::fdsp::TileGrid;
    use adcnn_nn::small::shapes_cnn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_learns_shapes() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = shapes(180, 60, 16, 11);
        let small = shapes_cnn_16(&mut rng, data.classes);
        let mut model = PartitionedModel::unpartitioned(small);
        let cfg = TrainConfig { epochs: 8, target_accuracy: 0.9, ..Default::default() };
        let rep = train(&mut model, &data, &cfg);
        assert!(
            rep.final_accuracy() > 0.8,
            "accuracy {:.3} after {} epochs (losses {:?})",
            rep.final_accuracy(),
            rep.epochs_used,
            rep.losses
        );
        // loss decreased
        assert!(rep.losses.last().unwrap() < &rep.losses[0]);
    }

    #[test]
    fn early_stop_respects_target() {
        let mut rng = StdRng::seed_from_u64(12);
        let data = shapes(180, 60, 16, 12);
        let small = shapes_cnn_16(&mut rng, data.classes);
        let mut model = PartitionedModel::unpartitioned(small);
        let cfg = TrainConfig { epochs: 30, target_accuracy: 0.7, ..Default::default() };
        let rep = train(&mut model, &data, &cfg);
        assert!(rep.epochs_used < 30, "never early-stopped");
        assert!(rep.final_accuracy() >= 0.7);
    }

    /// A 16×16 variant of the small shapes CNN for fast tests.
    fn shapes_cnn_16(rng: &mut StdRng, classes: usize) -> adcnn_nn::small::SmallModel {
        let m = shapes_cnn(classes, rng);
        // Re-derive the classifier for 16x16 inputs (32 channels at 4x4).
        let mut net = m.net;
        net.blocks.pop();
        net.blocks.push(adcnn_nn::Block::Seq(vec![
            adcnn_nn::Layer::Flatten,
            adcnn_nn::Layer::linear(32 * 4 * 4, classes, rng),
        ]));
        adcnn_nn::small::SmallModel {
            net,
            name: "ShapesCNN16",
            input: (3, 16, 16),
            classes,
            separable_prefix: 2,
            prefix_scale: (2, 2),
        }
    }

    #[test]
    fn partitioned_trainer_also_learns() {
        let mut rng = StdRng::seed_from_u64(13);
        let data = shapes(180, 60, 16, 13);
        let small = shapes_cnn_16(&mut rng, data.classes);
        let mut model = PartitionedModel::fdsp(small, TileGrid::new(2, 2));
        let cfg = TrainConfig { epochs: 8, target_accuracy: 0.85, ..Default::default() };
        let rep = train(&mut model, &data, &cfg);
        assert!(rep.final_accuracy() > 0.7, "accuracy {:.3}", rep.final_accuracy());
    }
}

/// Dense-prediction training loop (FCN-style): same SGD schedule as
/// [`train`] but with per-pixel cross-entropy over `[N, K, H, W]` logits.
/// Returns per-epoch losses plus held-out pixel accuracy and mean IoU.
pub fn train_dense(
    model: &mut PartitionedModel,
    data: &crate::data::SegDataset,
    cfg: &TrainConfig,
) -> TrainReport {
    use adcnn_tensor::loss::pixel_cross_entropy;
    let opt = Sgd::with_momentum(cfg.lr, cfg.momentum, cfg.weight_decay);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = data.train_len();
    let mut order: Vec<usize> = (0..n).collect();
    let mut losses = Vec::new();
    let mut accuracies = Vec::new();
    let mut epochs_used = 0;
    for _ in 0..cfg.epochs {
        epochs_used += 1;
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let (bx, by) = data.batch(chunk);
            let (logits, ctx) = model.forward_train(&bx);
            let (loss, dl) = pixel_cross_entropy(&logits, &by);
            model.backward(&ctx, &dl);
            opt.step(&mut model.net);
            epoch_loss += loss;
            batches += 1;
        }
        losses.push(epoch_loss / batches.max(1) as f64);
        accuracies.push(evaluate_dense(model, data).0);
        if accuracies.last().copied().unwrap_or(0.0) >= cfg.target_accuracy {
            break;
        }
    }
    TrainReport { losses, accuracies, epochs_used }
}

/// Held-out `(pixel accuracy, mean IoU)` of a dense model — the two FCN
/// metrics the paper's Figure 10 reports.
pub fn evaluate_dense(model: &mut PartitionedModel, data: &crate::data::SegDataset) -> (f64, f64) {
    use adcnn_tensor::loss::{mean_iou, pixel_accuracy};
    let n = data.test_len();
    let dims = data.test_x.dims().to_vec();
    let stride: usize = dims[1..].iter().product();
    let hw = dims[2] * dims[3];
    let mut acc = 0.0;
    let mut iou = 0.0;
    let mut batches = 0usize;
    let idx: Vec<usize> = (0..n).collect();
    for chunk in idx.chunks(32) {
        let mut xs = Vec::with_capacity(chunk.len() * stride);
        let mut ys = Vec::with_capacity(chunk.len() * hw);
        for &i in chunk {
            xs.extend_from_slice(&data.test_x.as_slice()[i * stride..(i + 1) * stride]);
            ys.extend_from_slice(&data.test_y[i * hw..(i + 1) * hw]);
        }
        let bx = adcnn_tensor::Tensor::from_vec([chunk.len(), dims[1], dims[2], dims[3]], xs);
        let logits = model.infer(&bx);
        acc += pixel_accuracy(&logits, &ys);
        iou += mean_iou(&logits, &ys);
        batches += 1;
    }
    (acc / batches.max(1) as f64, iou / batches.max(1) as f64)
}

#[cfg(test)]
mod dense_tests {
    use super::*;
    use crate::data::shapes_seg;
    use adcnn_core::fdsp::TileGrid;
    use adcnn_nn::small::small_fcn;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn dense_training_learns_segmentation() {
        let data = shapes_seg(96, 32, 16, 81);
        let mut rng = StdRng::seed_from_u64(81);
        let mut model = PartitionedModel::unpartitioned(small_fcn_16(data.classes, &mut rng));
        let cfg = TrainConfig { epochs: 10, target_accuracy: 0.93, lr: 0.1, ..Default::default() };
        let rep = train_dense(&mut model, &data, &cfg);
        let (acc, iou) = evaluate_dense(&mut model, &data);
        assert!(acc > 0.85, "pixel acc {acc} (losses {:?})", rep.losses);
        assert!(iou > 0.2, "mean IoU {iou}");
    }

    #[test]
    fn fdsp_dense_model_still_segments() {
        // FDSP on a dense-prediction model: the suffix consumes a tiled
        // boundary and still emits a full-resolution map.
        let data = shapes_seg(96, 32, 16, 83);
        let mut rng = StdRng::seed_from_u64(83);
        let mut model =
            PartitionedModel::fdsp(small_fcn_16(data.classes, &mut rng), TileGrid::new(2, 2));
        let cfg = TrainConfig { epochs: 10, target_accuracy: 0.93, lr: 0.1, ..Default::default() };
        train_dense(&mut model, &data, &cfg);
        let (acc, iou) = evaluate_dense(&mut model, &data);
        assert!(acc > 0.8, "pixel acc {acc}");
        assert!(iou > 0.15, "mean IoU {iou}");
    }

    /// 16×16 variant of the small FCN for fast tests.
    fn small_fcn_16(classes: usize, rng: &mut StdRng) -> adcnn_nn::small::SmallModel {
        let m = small_fcn(classes, rng);
        adcnn_nn::small::SmallModel { input: (3, 16, 16), ..m }
    }
}
