//! FDSP-partitioned training graph (Figure 7 of the paper).
//!
//! The separable prefix runs per tile: tiles are stacked along the batch
//! dimension, so the prefix's zero-padded convolutions apply FDSP's border
//! semantics automatically. At the prefix/suffix boundary — the tensor
//! that would cross the network at inference time — the optional clipped
//! ReLU and straight-through quantizer are applied, exactly where Figure
//! 7(b) inserts them. The suffix then runs on the reassembled map.

use adcnn_core::fdsp::TileGrid;
use adcnn_nn::layer::QuantizeSte;
use adcnn_nn::small::SmallModel;
use adcnn_nn::{BlockCtx, Network};
use adcnn_tensor::activ::ClippedRelu;
use adcnn_tensor::Tensor;

/// A model whose separable prefix is executed per-FDSP-tile.
pub struct PartitionedModel {
    /// The underlying network (prefix blocks + suffix blocks).
    pub net: Network,
    /// Number of leading blocks in the separable prefix.
    pub prefix: usize,
    /// The FDSP grid; `1×1` means unpartitioned.
    pub grid: TileGrid,
    /// Clipped ReLU at the prefix/suffix boundary (§4.1), if enabled.
    pub boundary_crelu: Option<ClippedRelu>,
    /// Straight-through quantizer at the boundary (§4.2), if enabled.
    pub boundary_quant: Option<QuantizeSte>,
    /// Model metadata (input dims, classes).
    pub input: (usize, usize, usize),
    /// Number of classes.
    pub classes: usize,
}

/// Backward context of one partitioned forward pass.
pub struct PartCtx {
    prefix_ctxs: Vec<BlockCtx>,
    suffix_ctxs: Vec<BlockCtx>,
    /// Boundary tensor *before* the clipped ReLU (needed for its backward).
    pre_crelu: Option<Tensor>,
}

impl PartitionedModel {
    /// Wrap a small model without partitioning (grid 1×1).
    pub fn unpartitioned(m: SmallModel) -> Self {
        PartitionedModel {
            net: m.net,
            prefix: m.separable_prefix,
            grid: TileGrid::new(1, 1),
            boundary_crelu: None,
            boundary_quant: None,
            input: m.input,
            classes: m.classes,
        }
    }

    /// Wrap a small model with FDSP over `grid`.
    pub fn fdsp(m: SmallModel, grid: TileGrid) -> Self {
        let (_, h, w) = m.input;
        assert!(
            h % grid.rows == 0 && w % grid.cols == 0,
            "input {h}x{w} not divisible by grid {grid}"
        );
        PartitionedModel {
            net: m.net,
            prefix: m.separable_prefix,
            grid,
            boundary_crelu: None,
            boundary_quant: None,
            input: m.input,
            classes: m.classes,
        }
    }

    /// Enable the boundary clipped ReLU (Algorithm 1, step 4).
    pub fn with_crelu(mut self, cr: ClippedRelu) -> Self {
        self.boundary_crelu = Some(cr);
        self
    }

    /// Enable the boundary quantizer (Algorithm 1, step 5).
    pub fn with_quant(mut self, q: QuantizeSte) -> Self {
        self.boundary_quant = Some(q);
        self
    }

    fn tiled(&self) -> bool {
        self.grid.tiles() > 1
    }

    /// Training-mode forward: returns logits and the backward context.
    pub fn forward_train(&mut self, x: &Tensor) -> (Tensor, PartCtx) {
        self.forward_inner(x, true)
    }

    /// Inference-mode forward (no context capture, folded BN).
    pub fn infer(&mut self, x: &Tensor) -> Tensor {
        self.forward_inner(x, false).0
    }

    fn forward_inner(&mut self, x: &Tensor, train: bool) -> (Tensor, PartCtx) {
        let p = self.prefix;
        let total = self.net.len();
        // 1. prefix, per tile (stacked into the batch dimension)
        let (boundary_tiled, prefix_ctxs) = if self.tiled() {
            let stacked = self.grid.stack(x);
            self.net.forward_range(&stacked, 0..p, train)
        } else {
            self.net.forward_range(x, 0..p, train)
        };
        // 2. reassemble
        let mut boundary =
            if self.tiled() { self.grid.unstack_assemble(&boundary_tiled) } else { boundary_tiled };
        // 3. boundary compression ops
        let mut pre_crelu = None;
        if let Some(cr) = self.boundary_crelu {
            if train {
                pre_crelu = Some(boundary.clone());
            }
            boundary = cr.forward(&boundary);
        }
        if let Some(q) = self.boundary_quant {
            boundary = boundary.map(|v| q.apply(v));
        }
        // 4. suffix on the full map
        let (out, suffix_ctxs) = self.net.forward_range(&boundary, p..total, train);
        (out, PartCtx { prefix_ctxs, suffix_ctxs, pre_crelu })
    }

    /// Backward pass; accumulates gradients into the network's parameters.
    pub fn backward(&mut self, ctx: &PartCtx, dlogits: &Tensor) -> Tensor {
        let p = self.prefix;
        let total = self.net.len();
        // suffix
        let mut d = self.net.backward_range(&ctx.suffix_ctxs, dlogits, p..total);
        // quantizer: straight-through (full-precision gradients, §4.4)
        // clipped ReLU: gate on the saved pre-activation
        if let Some(cr) = self.boundary_crelu {
            let pre = ctx.pre_crelu.as_ref().expect("forward_train must be used before backward");
            d = cr.backward(pre, &d);
        }
        // split the boundary gradient back into tiles
        let d_tiled = if self.tiled() { self.grid.stack_gradient(&d) } else { d };
        let d_in = self.net.backward_range(&ctx.prefix_ctxs, &d_tiled, 0..p);
        if self.tiled() {
            self.grid.unstack_assemble(&d_in)
        } else {
            d_in
        }
    }

    /// Boundary activations for a batch (used to choose clipped-ReLU
    /// bounds from output statistics, §7.1).
    pub fn boundary_activations(&mut self, x: &Tensor) -> Tensor {
        let p = self.prefix;
        let (b, _) = if self.tiled() {
            let stacked = self.grid.stack(x);
            self.net.forward_range(&stacked, 0..p, false)
        } else {
            self.net.forward_range(x, 0..p, false)
        };
        if self.tiled() {
            self.grid.unstack_assemble(&b)
        } else {
            b
        }
    }
}

/// Pick clipped-ReLU bounds from boundary-activation statistics: `lo` at
/// the quantile that yields the target sparsity, `hi` near the top of the
/// distribution (the paper's "coarse range from output statistics, then
/// grid search", §7.1, first half).
pub fn choose_crelu_bounds(acts: &Tensor, target_sparsity: f64) -> ClippedRelu {
    assert!((0.0..1.0).contains(&target_sparsity));
    let mut vals: Vec<f32> = acts.as_slice().to_vec();
    vals.sort_by(f32::total_cmp);
    let n = vals.len();
    let lo_idx = ((n as f64 * target_sparsity) as usize).min(n - 2);
    let hi_idx = ((n as f64 * 0.995) as usize).clamp(lo_idx + 1, n - 1);
    let lo = vals[lo_idx];
    let mut hi = vals[hi_idx];
    if hi <= lo {
        hi = lo + 1e-3;
    }
    ClippedRelu::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcnn_nn::small::shapes_cnn;
    use rand::{rngs::StdRng, SeedableRng};

    fn model(seed: u64) -> SmallModel {
        let mut rng = StdRng::seed_from_u64(seed);
        shapes_cnn(6, &mut rng)
    }

    #[test]
    fn grid_1x1_matches_plain_network() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::randn([2, 3, 32, 32], 1.0, &mut rng);
        let m1 = model(5);
        let mut m2 = model(5); // same seed -> same weights
        let mut part = PartitionedModel::unpartitioned(m1);
        let got = part.infer(&x);
        let want = m2.net.infer(&x);
        assert!(got.approx_eq(&want, 1e-5));
    }

    #[test]
    fn fdsp_changes_border_math_only_slightly() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Tensor::randn([1, 3, 32, 32], 0.5, &mut rng);
        let mut plain = PartitionedModel::unpartitioned(model(7));
        let mut tiled = PartitionedModel::fdsp(model(7), TileGrid::new(2, 2));
        let a = plain.infer(&x);
        let b = tiled.infer(&x);
        // different (border effects) but same scale of logits
        assert!(!a.approx_eq(&b, 1e-6));
        assert!(a.max_abs() > 0.0 && b.max_abs() > 0.0);
        let diff = a.zip_map(&b, |p, q| p - q).max_abs();
        assert!(diff < 10.0 * a.max_abs().max(1.0), "diff {diff}");
    }

    #[test]
    fn backward_runs_and_populates_grads() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::randn([2, 3, 32, 32], 0.5, &mut rng);
        let mut m = PartitionedModel::fdsp(model(9), TileGrid::new(2, 2))
            .with_crelu(ClippedRelu::new(0.0, 2.0))
            .with_quant(QuantizeSte::new(4, 2.0));
        let (y, ctx) = m.forward_train(&x);
        let dl = Tensor::full(y.shape().clone(), 0.1);
        let dx = m.backward(&ctx, &dl);
        assert_eq!(dx.dims(), x.dims());
        let mut any = false;
        m.net.visit_params(&mut |p| {
            if p.grad.max_abs() > 0.0 {
                any = true;
            }
        });
        assert!(any, "no gradients accumulated");
    }

    #[test]
    fn fdsp_gradcheck_through_tiling() {
        // Finite-difference check of the whole partitioned pipeline without
        // boundary ops (they are piecewise-linear; checked separately).
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::randn([1, 3, 8, 8], 0.5, &mut rng);
        // build a tiny 2-block model on 8x8 inputs
        let mut net_rng = StdRng::seed_from_u64(77);
        let same = adcnn_tensor::conv::Conv2dParams::same(3);
        let net = Network::new(vec![
            adcnn_nn::Block::Seq(vec![adcnn_nn::Layer::conv2d(3, 4, 3, same, &mut net_rng)]),
            adcnn_nn::Block::Seq(vec![
                adcnn_nn::Layer::Flatten,
                adcnn_nn::Layer::linear(4 * 8 * 8, 3, &mut net_rng),
            ]),
        ]);
        let mut m = PartitionedModel {
            net,
            prefix: 1,
            grid: TileGrid::new(2, 2),
            boundary_crelu: None,
            boundary_quant: None,
            input: (3, 8, 8),
            classes: 3,
        };
        let (y, ctx) = m.forward_train(&x);
        let dl = Tensor::full(y.shape().clone(), 1.0);
        let dx = m.backward(&ctx, &dl);

        let eps = 1e-2f32;
        for &flat in &[0usize, 50, 100, 191] {
            let mut xp = x.clone();
            xp.as_mut_slice()[flat] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[flat] -= eps;
            let lp = m.infer(&xp).sum();
            let lm = m.infer(&xm).sum();
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (num - dx.as_slice()[flat]).abs() < 3e-2,
                "dx[{flat}]: {num} vs {}",
                dx.as_slice()[flat]
            );
        }
    }

    #[test]
    fn crelu_bounds_hit_target_sparsity() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::randn([1, 3, 32, 32], 0.5, &mut rng);
        let mut m = PartitionedModel::fdsp(model(11), TileGrid::new(2, 2));
        let acts = m.boundary_activations(&x);
        let cr = choose_crelu_bounds(&acts, 0.9);
        let clipped = cr.forward(&acts);
        let s = clipped.sparsity();
        assert!((0.8..0.99).contains(&s), "sparsity {s}");
        assert!(cr.lo < cr.hi);
    }

    #[test]
    #[should_panic]
    fn fdsp_rejects_indivisible_grid() {
        PartitionedModel::fdsp(model(1), TileGrid::new(3, 3));
    }
}
