//! Algorithm 1: progressive retraining.
//!
//! Starting from a converged original model, the modifications are folded
//! in one at a time — FDSP, clipped ReLU, quantization — retraining a few
//! epochs after each until accuracy recovers. The paper's Table 1 reports
//! the per-stage epoch counts; [`progressive_retrain`] returns the same
//! accounting, plus a one-shot [`direct_retrain`] ablation that applies all
//! modifications at once (§5 reports it plateaus 4–5% below the original).

use crate::data::Dataset;
use crate::partitioned::{choose_crelu_bounds, PartitionedModel};
use crate::trainer::{evaluate, train, TrainConfig};
use adcnn_core::fdsp::TileGrid;
use adcnn_nn::layer::QuantizeSte;
use adcnn_nn::small::SmallModel;
use serde::{Deserialize, Serialize};

/// Configuration of the progressive retraining run.
#[derive(Clone, Copy, Debug)]
pub struct RetrainConfig {
    /// Acceptable accuracy drop versus the original model (paper: ≤1%).
    pub tolerance: f64,
    /// Epoch cap per stage.
    pub max_epochs_per_stage: usize,
    /// Target sparsity for the clipped ReLU bound search.
    pub target_sparsity: f64,
    /// Quantizer bit width (paper: 4).
    pub quant_bits: u8,
    /// Inner training-loop settings.
    pub train: TrainConfig,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        RetrainConfig {
            tolerance: 0.01,
            max_epochs_per_stage: 8,
            target_sparsity: 0.9,
            quant_bits: 4,
            train: TrainConfig::default(),
        }
    }
}

/// Per-stage accounting (one row of the paper's Table 1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage name: `"FDSP"`, `"Clipped ReLU"`, `"Quantization"`.
    pub stage: String,
    /// Held-out accuracy right after applying the modification, before any
    /// retraining.
    pub acc_before: f64,
    /// Accuracy after this stage's retraining.
    pub acc_after: f64,
    /// Epochs this stage needed.
    pub epochs: usize,
}

/// Full Algorithm 1 outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProgressiveReport {
    /// Accuracy of the original (unpartitioned) model.
    pub original_accuracy: f64,
    /// Accuracy of the final modified model.
    pub final_accuracy: f64,
    /// The three stages, in order.
    pub stages: Vec<StageReport>,
}

impl ProgressiveReport {
    /// Total extra epochs (the paper's Table 1 "Total" column).
    pub fn total_epochs(&self) -> usize {
        self.stages.iter().map(|s| s.epochs).sum()
    }

    /// `original − final` accuracy (positive = degradation).
    pub fn accuracy_drop(&self) -> f64 {
        self.original_accuracy - self.final_accuracy
    }
}

/// The paper's §7.1 bound selection: "first search for a coarse parameter
/// range based on separable layer block output statistics, and then perform
/// grid search to produce expected output sparsity."
///
/// The coarse range comes from activation quantiles
/// ([`choose_crelu_bounds`]); the grid then perturbs `(lo, hi)` around it
/// and keeps the candidate with the highest held-out accuracy among those
/// that reach `target_sparsity` on the boundary activations.
pub fn grid_search_crelu(
    model: &mut PartitionedModel,
    data: &Dataset,
    target_sparsity: f64,
) -> adcnn_tensor::activ::ClippedRelu {
    let sample_n = data.train_len().min(64);
    let idx: Vec<usize> = (0..sample_n).collect();
    let (sample_x, _) = data.batch(&idx);
    let acts = model.boundary_activations(&sample_x);
    let coarse = choose_crelu_bounds(&acts, target_sparsity);

    let mut best = (coarse, f64::NEG_INFINITY);
    let lo_grid = [-0.1f32, 0.0, 0.1];
    let hi_grid = [0.8f32, 1.0, 1.25];
    let saved = (model.boundary_crelu, model.boundary_quant);
    for dlo in lo_grid {
        for shi in hi_grid {
            let lo = coarse.lo + dlo * coarse.range();
            let hi = coarse.lo + shi * coarse.range();
            if hi <= lo {
                continue;
            }
            let cand = adcnn_tensor::activ::ClippedRelu::new(lo, hi);
            let sparsity = cand.forward(&acts).sparsity();
            if sparsity + 0.02 < target_sparsity {
                continue; // misses the compression target
            }
            model.boundary_crelu = Some(cand);
            model.boundary_quant = None;
            let acc = evaluate(model, data);
            if acc > best.1 {
                best = (cand, acc);
            }
        }
    }
    model.boundary_crelu = saved.0;
    model.boundary_quant = saved.1;
    best.0
}

fn retrain_until(
    model: &mut PartitionedModel,
    data: &Dataset,
    target: f64,
    cfg: &RetrainConfig,
) -> (f64, usize) {
    let mut tc = cfg.train;
    tc.epochs = cfg.max_epochs_per_stage;
    tc.target_accuracy = target;
    let rep = train(model, data, &tc);
    (rep.final_accuracy(), rep.epochs_used)
}

/// Run Algorithm 1. `original` must already be trained to convergence on
/// `data` (`M_ori` in the paper); its weights are reused as the starting
/// point of each stage.
pub fn progressive_retrain(
    original: SmallModel,
    data: &Dataset,
    grid: TileGrid,
    cfg: &RetrainConfig,
) -> (PartitionedModel, ProgressiveReport) {
    // Step 2 of Algorithm 1: measure the original model.
    let mut model = PartitionedModel::unpartitioned(original);
    let original_accuracy = evaluate(&mut model, data);
    let target = original_accuracy - cfg.tolerance;
    let mut stages = Vec::with_capacity(3);

    // Step 3: apply FDSP, retrain until recovered (M1).
    model.grid = grid;
    let acc_before = evaluate(&mut model, data);
    let (acc_after, epochs) = retrain_until(&mut model, data, target, cfg);
    stages.push(StageReport { stage: "FDSP".into(), acc_before, acc_after, epochs });

    // Step 4: insert the clipped ReLU on the separable-block outputs (M2),
    // with the §7.1 coarse-statistics + grid-search bound selection.
    let cr = grid_search_crelu(&mut model, data, cfg.target_sparsity);
    model.boundary_crelu = Some(cr);
    let acc_before = evaluate(&mut model, data);
    let (acc_after, epochs) = retrain_until(&mut model, data, target, cfg);
    stages.push(StageReport { stage: "Clipped ReLU".into(), acc_before, acc_after, epochs });

    // Step 5: quantize the clipped-ReLU output (M_final).
    model.boundary_quant = Some(QuantizeSte::new(cfg.quant_bits, cr.range()));
    let acc_before = evaluate(&mut model, data);
    let (acc_after, epochs) = retrain_until(&mut model, data, target, cfg);
    stages.push(StageReport { stage: "Quantization".into(), acc_before, acc_after, epochs });

    let final_accuracy = stages.last().unwrap().acc_after;
    (model, ProgressiveReport { original_accuracy, final_accuracy, stages })
}

/// Ablation: apply every modification at once and retrain once (the
/// non-progressive strategy §5 argues against).
pub fn direct_retrain(
    original: SmallModel,
    data: &Dataset,
    grid: TileGrid,
    cfg: &RetrainConfig,
) -> (PartitionedModel, ProgressiveReport) {
    let mut model = PartitionedModel::unpartitioned(original);
    let original_accuracy = evaluate(&mut model, data);
    let target = original_accuracy - cfg.tolerance;

    model.grid = grid;
    let sample_n = data.train_len().min(64);
    let idx: Vec<usize> = (0..sample_n).collect();
    let (sample_x, _) = data.batch(&idx);
    let acts = model.boundary_activations(&sample_x);
    let cr = choose_crelu_bounds(&acts, cfg.target_sparsity);
    model.boundary_crelu = Some(cr);
    model.boundary_quant = Some(QuantizeSte::new(cfg.quant_bits, cr.range()));

    let acc_before = evaluate(&mut model, data);
    // Give the one-shot strategy the same *total* epoch budget as the
    // three progressive stages combined.
    let mut big = *cfg;
    big.max_epochs_per_stage = cfg.max_epochs_per_stage * 3;
    let (acc_after, epochs) = retrain_until(&mut model, data, target, &big);
    let report = ProgressiveReport {
        original_accuracy,
        final_accuracy: acc_after,
        stages: vec![StageReport { stage: "All-at-once".into(), acc_before, acc_after, epochs }],
    };
    (model, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::shapes;
    use adcnn_nn::small::SmallModel;
    use adcnn_nn::{Block, Layer, Network};
    use rand::{rngs::StdRng, SeedableRng};

    /// A compact 16×16 shapes model trained to convergence.
    fn trained_original(seed: u64, data: &Dataset) -> (SmallModel, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let same = adcnn_tensor::conv::Conv2dParams::same(3);
        let net = Network::new(vec![
            Block::Seq(vec![
                Layer::conv2d(3, 12, 3, same, &mut rng),
                Layer::batch_norm(12),
                Layer::Relu,
            ]),
            Block::Seq(vec![
                Layer::conv2d(12, 12, 3, same, &mut rng),
                Layer::batch_norm(12),
                Layer::Relu,
                Layer::MaxPool(adcnn_tensor::pool::Pool2dParams::non_overlapping(2)),
            ]),
            Block::Seq(vec![Layer::Flatten, Layer::linear(12 * 8 * 8, 6, &mut rng)]),
        ]);
        let m = SmallModel {
            net,
            name: "Shapes16",
            input: (3, 16, 16),
            classes: 6,
            separable_prefix: 2,
            prefix_scale: (2, 2),
        };
        let mut part = PartitionedModel::unpartitioned(m);
        let tc = TrainConfig { epochs: 30, target_accuracy: 0.93, ..Default::default() };
        let rep = train(&mut part, data, &tc);
        let acc = rep.final_accuracy();
        let m = SmallModel {
            net: part.net,
            name: "Shapes16",
            input: (3, 16, 16),
            classes: 6,
            separable_prefix: 2,
            prefix_scale: (2, 2),
        };
        (m, acc)
    }

    #[test]
    fn progressive_recovers_accuracy() {
        let data = shapes(360, 120, 16, 21);
        let (original, base_acc) = trained_original(21, &data);
        assert!(base_acc > 0.8, "original failed to train: {base_acc}");
        let cfg = RetrainConfig {
            tolerance: 0.03,
            max_epochs_per_stage: 6,
            target_sparsity: 0.85,
            ..Default::default()
        };
        let (_, report) = progressive_retrain(original, &data, TileGrid::new(2, 2), &cfg);
        assert_eq!(report.stages.len(), 3);
        assert!(
            report.accuracy_drop() <= 0.08,
            "final {} vs original {} (stages {:?})",
            report.final_accuracy,
            report.original_accuracy,
            report.stages
        );
        // each stage used at least one epoch and a small total (Table 1's
        // point: far fewer than training from scratch)
        assert!(report.total_epochs() >= 3);
        assert!(report.total_epochs() <= 18);
    }

    #[test]
    fn stage_order_matches_algorithm_1() {
        let data = shapes(120, 60, 16, 22);
        let (original, _) = trained_original(22, &data);
        let cfg = RetrainConfig { tolerance: 0.05, max_epochs_per_stage: 2, ..Default::default() };
        let (model, report) = progressive_retrain(original, &data, TileGrid::new(2, 2), &cfg);
        let names: Vec<&str> = report.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(names, ["FDSP", "Clipped ReLU", "Quantization"]);
        assert!(model.boundary_crelu.is_some());
        assert!(model.boundary_quant.is_some());
        assert_eq!(model.grid, TileGrid::new(2, 2));
    }

    #[test]
    fn direct_retrain_reports_single_stage() {
        let data = shapes(120, 60, 16, 23);
        let (original, _) = trained_original(23, &data);
        let cfg = RetrainConfig { tolerance: 0.05, max_epochs_per_stage: 2, ..Default::default() };
        let (_, report) = direct_retrain(original, &data, TileGrid::new(2, 2), &cfg);
        assert_eq!(report.stages.len(), 1);
        assert!(report.final_accuracy > 0.0);
    }
}

#[cfg(test)]
mod grid_search_tests {
    use super::*;
    use crate::data::shapes;
    use adcnn_nn::small::shapes_cnn;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn grid_search_meets_sparsity_and_keeps_model_intact() {
        let data = shapes(120, 60, 32, 31);
        let mut rng = StdRng::seed_from_u64(31);
        let mut model =
            PartitionedModel::fdsp(shapes_cnn(data.classes, &mut rng), TileGrid::new(2, 2));
        let before = (model.boundary_crelu, model.boundary_quant);
        let cr = grid_search_crelu(&mut model, &data, 0.85);
        // the search must not leave candidate bounds installed
        assert_eq!(model.boundary_crelu, before.0);
        assert_eq!(model.boundary_quant, before.1);
        // the chosen bounds actually reach the sparsity target
        let idx: Vec<usize> = (0..32).collect();
        let (x, _) = data.batch(&idx);
        let acts = model.boundary_activations(&x);
        let s = cr.forward(&acts).sparsity();
        assert!(s >= 0.8, "sparsity {s}");
    }

    #[test]
    fn grid_search_prefers_accurate_bounds() {
        // With a trained model, the selected bounds should not be wildly
        // worse than the quantile heuristic.
        let data = shapes(180, 90, 32, 33);
        let mut rng = StdRng::seed_from_u64(33);
        let mut model = PartitionedModel::unpartitioned(shapes_cnn(data.classes, &mut rng));
        let tc = crate::trainer::TrainConfig { epochs: 8, ..Default::default() };
        crate::trainer::train(&mut model, &data, &tc);
        model.grid = TileGrid::new(2, 2);

        let cr = grid_search_crelu(&mut model, &data, 0.8);
        model.boundary_crelu = Some(cr);
        let acc = evaluate(&mut model, &data);
        assert!(acc > 0.5, "grid-searched bounds destroyed the model: {acc}");
    }
}
