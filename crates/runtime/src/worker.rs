//! Conv-node worker threads.
//!
//! Each worker owns a clone of the separable-prefix network (the paper
//! stores "the filter weights for the separable layer blocks … in the Conv
//! nodes", §6.1). It processes [`TileTask`]s as they arrive, applies the
//! clipped-ReLU + quantize + RLE pipeline, and sends [`TileResult`]s back.

use adcnn_core::compress::Quantizer;
use adcnn_core::wire::{make_result, TileResult, TileTask};
use adcnn_nn::Network;
use adcnn_tensor::activ::ClippedRelu;
use crossbeam::channel::{Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Duration;

/// Behaviour knobs for one worker (heterogeneity / fault injection).
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerOptions {
    /// Extra sleep per tile (simulates a slower device; §7.3 CPUlimit).
    pub artificial_delay: Duration,
    /// Stop responding after this many tiles (simulates a node crash).
    pub fail_after_tiles: Option<usize>,
}

/// Control messages from the Central node.
pub enum WorkerMsg {
    /// A tile to process.
    Tile(TileTask),
    /// Terminate the worker.
    Shutdown,
}

/// One worker's compression configuration (applied at the boundary).
#[derive(Clone, Copy, Debug)]
pub struct Compression {
    /// Clipped ReLU bounds.
    pub crelu: ClippedRelu,
    /// Wire quantizer (usually `Quantizer::paper_default(crelu)`).
    pub quantizer: Quantizer,
}

/// Spawn a Conv-node worker thread.
///
/// `prefix` is the worker's clone of the separable blocks; results go to
/// `results` tagged with `worker_id`.
pub fn spawn_worker(
    worker_id: usize,
    mut prefix: Network,
    compression: Option<Compression>,
    opts: WorkerOptions,
    tasks: Receiver<WorkerMsg>,
    results: Sender<(usize, TileResult)>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("conv-node-{worker_id}"))
        .spawn(move || {
            let mut processed = 0usize;
            let n_blocks = prefix.len();
            while let Ok(msg) = tasks.recv() {
                let task = match msg {
                    WorkerMsg::Tile(t) => t,
                    WorkerMsg::Shutdown => break,
                };
                if let Some(limit) = opts.fail_after_tiles {
                    if processed >= limit {
                        // Crashed node: swallow work silently (the Central
                        // node's timeout + statistics handle it).
                        continue;
                    }
                }
                if !opts.artificial_delay.is_zero() {
                    std::thread::sleep(opts.artificial_delay);
                }
                let (out, _) = prefix.forward_range(&task.tile, 0..n_blocks, false);
                let (boundary, quantizer) = match compression {
                    Some(c) => (c.crelu.forward(&out), c.quantizer),
                    // Uncompressed mode still needs a wire quantizer (the
                    // nibble codec carries at most 4-bit levels); use the
                    // observed range. This mode exists for comparisons only.
                    None => {
                        let range = out.max_abs().max(1e-6);
                        let relu = out.map(|v| v.max(0.0));
                        (relu, Quantizer::new(4, range))
                    }
                };
                let result = make_result(task.key, &boundary, quantizer);
                processed += 1;
                if results.send((worker_id, result)).is_err() {
                    break; // central gone
                }
            }
        })
        .expect("failed to spawn worker thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcnn_core::wire::TileKey;
    use adcnn_nn::{Block, Layer, Network};
    use adcnn_tensor::conv::Conv2dParams;
    use adcnn_tensor::Tensor;
    use crossbeam::channel::unbounded;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_prefix(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![Block::Seq(vec![
            Layer::conv2d(1, 2, 3, Conv2dParams::same(3), &mut rng),
            Layer::Relu,
        ])])
    }

    #[test]
    fn worker_processes_and_replies() {
        let (task_tx, task_rx) = unbounded();
        let (res_tx, res_rx) = unbounded();
        let cr = ClippedRelu::new(0.0, 1.0);
        let comp = Compression { crelu: cr, quantizer: Quantizer::paper_default(cr) };
        let h = spawn_worker(3, tiny_prefix(1), Some(comp), WorkerOptions::default(), task_rx, res_tx);

        let tile = Tensor::full([1, 1, 4, 4], 0.5);
        task_tx
            .send(WorkerMsg::Tile(TileTask { key: TileKey { image_id: 9, tile_id: 2 }, tile }))
            .unwrap();
        let (wid, res) = res_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(wid, 3);
        assert_eq!(res.key, TileKey { image_id: 9, tile_id: 2 });
        let t = res.to_tensor().unwrap();
        assert_eq!(t.dims(), &[1, 2, 4, 4]);

        task_tx.send(WorkerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn failed_worker_goes_silent() {
        let (task_tx, task_rx) = unbounded();
        let (res_tx, res_rx) = unbounded();
        let opts = WorkerOptions { fail_after_tiles: Some(1), ..Default::default() };
        let h = spawn_worker(0, tiny_prefix(2), None, opts, task_rx, res_tx);

        for i in 0..3u32 {
            task_tx
                .send(WorkerMsg::Tile(TileTask {
                    key: TileKey { image_id: 0, tile_id: i },
                    tile: Tensor::full([1, 1, 4, 4], 0.1),
                }))
                .unwrap();
        }
        // exactly one reply, then silence
        assert!(res_rx.recv_timeout(Duration::from_secs(5)).is_ok());
        assert!(res_rx.recv_timeout(Duration::from_millis(200)).is_err());
        task_tx.send(WorkerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn worker_exits_when_central_drops() {
        let (task_tx, task_rx) = unbounded();
        let (res_tx, res_rx) = unbounded();
        let h = spawn_worker(0, tiny_prefix(3), None, WorkerOptions::default(), task_rx, res_tx);
        drop(res_rx);
        task_tx
            .send(WorkerMsg::Tile(TileTask {
                key: TileKey { image_id: 0, tile_id: 0 },
                tile: Tensor::zeros([1, 1, 4, 4]),
            }))
            .unwrap();
        drop(task_tx);
        h.join().unwrap();
    }
}
