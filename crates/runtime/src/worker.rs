//! Conv-node worker threads.
//!
//! Each worker owns a clone of the separable-prefix network (the paper
//! stores "the filter weights for the separable layer blocks … in the Conv
//! nodes", §6.1). It processes [`TileTask`]s as they arrive, applies the
//! clipped-ReLU + quantize + RLE pipeline, and sends [`TileResult`]s back.

use adcnn_core::compress::{clip_and_compress_into, compress_into, CompressScratch, Quantizer};
use adcnn_core::config::{check_probability, ConfigError};
use adcnn_core::obs::{ObsEvent, SinkHandle};
use adcnn_core::wire::{make_result_from_parts, TileResult, TileTask};
use adcnn_nn::infer::InferScratch;
use adcnn_nn::Network;
use adcnn_tensor::activ::ClippedRelu;
use crossbeam::channel::{Receiver, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Behaviour knobs for one worker (heterogeneity / fault injection).
///
/// The fault modes compose: a worker can be slow *and* lossy *and* crash
/// after `n` tiles, which is exactly the kind of edge device the re-dispatch
/// machinery in [`crate::central`] exists to survive.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerOptions {
    /// Extra sleep per tile (simulates a slower device; §7.3 CPUlimit).
    pub artificial_delay: Duration,
    /// Stop responding after this many tiles (simulates a node crash).
    pub fail_after_tiles: Option<usize>,
    /// If true, `fail_after_tiles` makes the thread *exit* — its task
    /// channel disconnects, which the Central node detects eagerly on the
    /// next send — instead of silently swallowing work.
    pub disconnect_on_fail: bool,
    /// Per-tile probability that the finished result is silently lost
    /// (lossy wireless link / crashed send).
    pub drop_prob: f64,
    /// Extra uniform random delay in `[0, delay_jitter]` per tile
    /// (contended channel / noisy neighbour).
    pub delay_jitter: Duration,
    /// Per-tile probability that the payload is corrupted in transit: the
    /// result arrives but fails to decode at the Central node.
    pub corrupt_prob: f64,
    /// Seed for the fault-injection RNG (mixed with the worker id so
    /// identically-configured workers fault independently).
    pub fault_seed: u64,
}

impl WorkerOptions {
    /// Start building validated options from the defaults.
    pub fn builder() -> WorkerOptionsBuilder {
        WorkerOptionsBuilder { opts: WorkerOptions::default() }
    }

    /// Check the invariants the builder enforces; `AdcnnRuntime::launch`
    /// re-validates so a hand-mutated struct fails just as loudly.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_probability("drop_prob", self.drop_prob)?;
        check_probability("corrupt_prob", self.corrupt_prob)
    }
}

/// Builder for [`WorkerOptions`]; see [`WorkerOptions::builder`].
#[derive(Clone, Debug)]
pub struct WorkerOptionsBuilder {
    opts: WorkerOptions,
}

impl WorkerOptionsBuilder {
    /// Extra sleep per tile.
    pub fn artificial_delay(mut self, d: Duration) -> Self {
        self.opts.artificial_delay = d;
        self
    }

    /// Stop responding after this many tiles.
    pub fn fail_after_tiles(mut self, n: usize) -> Self {
        self.opts.fail_after_tiles = Some(n);
        self
    }

    /// Exit (disconnecting the task channel) instead of going silent.
    pub fn disconnect_on_fail(mut self, yes: bool) -> Self {
        self.opts.disconnect_on_fail = yes;
        self
    }

    /// Per-tile probability that the result is silently lost.
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.opts.drop_prob = p;
        self
    }

    /// Extra uniform random delay in `[0, jitter]` per tile.
    pub fn delay_jitter(mut self, jitter: Duration) -> Self {
        self.opts.delay_jitter = jitter;
        self
    }

    /// Per-tile probability that the payload fails to decode.
    pub fn corrupt_prob(mut self, p: f64) -> Self {
        self.opts.corrupt_prob = p;
        self
    }

    /// Fault-injection RNG seed.
    pub fn fault_seed(mut self, seed: u64) -> Self {
        self.opts.fault_seed = seed;
        self
    }

    /// Validate and produce the options.
    pub fn build(self) -> Result<WorkerOptions, ConfigError> {
        self.opts.validate()?;
        Ok(self.opts)
    }
}

/// Control messages from the Central node.
pub enum WorkerMsg {
    /// A tile to process.
    Tile(TileTask),
    /// Terminate the worker.
    Shutdown,
}

/// One worker's compression configuration (applied at the boundary).
#[derive(Clone, Copy, Debug)]
pub struct Compression {
    /// Clipped ReLU bounds.
    pub crelu: ClippedRelu,
    /// Wire quantizer (usually `Quantizer::paper_default(crelu)`).
    pub quantizer: Quantizer,
}

/// Lock-free per-worker counters, updated by the worker thread after every
/// tile and snapshotted by the Central node (the runtime-stats-context
/// idiom: one shared `Arc`, relaxed atomics, no channel traffic).
#[derive(Debug, Default)]
pub struct WorkerStats {
    /// Tiles fully processed (computed + compressed + sent).
    pub tiles: AtomicU64,
    /// Cumulative prefix-network forward time, nanoseconds.
    pub compute_ns: AtomicU64,
    /// Cumulative clip + quantize + RLE time, nanoseconds.
    pub compress_ns: AtomicU64,
}

impl WorkerStats {
    /// Record one processed tile.
    pub fn record(&self, compute: Duration, compress: Duration) {
        self.tiles.fetch_add(1, Ordering::Relaxed);
        self.compute_ns.fetch_add(compute.as_nanos() as u64, Ordering::Relaxed);
        self.compress_ns.fetch_add(compress.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Consistent-enough snapshot for reporting (relaxed loads).
    pub fn snapshot(&self) -> WorkerStatsSnapshot {
        WorkerStatsSnapshot {
            tiles: self.tiles.load(Ordering::Relaxed),
            compute_ns: self.compute_ns.load(Ordering::Relaxed),
            compress_ns: self.compress_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`WorkerStats`] surfaced in
/// [`crate::central::InferOutcome`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStatsSnapshot {
    /// Tiles fully processed since launch.
    pub tiles: u64,
    /// Cumulative prefix-network forward time, nanoseconds.
    pub compute_ns: u64,
    /// Cumulative clip + quantize + RLE time, nanoseconds.
    pub compress_ns: u64,
}

impl WorkerStatsSnapshot {
    /// Mean per-tile compute time, if any tiles were processed.
    pub fn mean_compute(&self) -> Option<Duration> {
        (self.tiles > 0).then(|| Duration::from_nanos(self.compute_ns / self.tiles))
    }

    /// Mean per-tile compression time, if any tiles were processed.
    pub fn mean_compress(&self) -> Option<Duration> {
        (self.tiles > 0).then(|| Duration::from_nanos(self.compress_ns / self.tiles))
    }
}

/// Run one tile through the Conv-node pipeline: prefix forward in the
/// reusable scratch, boundary compression, result assembly. Returns the
/// result plus the (compute, compress) durations for stats/observability.
///
/// This is the single tile-processing path: the in-process worker threads
/// ([`spawn_worker`]) and the remote worker loop
/// ([`crate::transport::run_worker`]) both call it, so a tile produces a
/// byte-identical [`TileResult`] no matter which transport carried it.
pub(crate) fn process_tile(
    prefix: &Network,
    compression: Option<Compression>,
    task: &TileTask,
    scratch: &mut InferScratch,
    cs: &mut CompressScratch,
) -> (TileResult, Duration, Duration) {
    let t0 = Instant::now();
    let out = prefix.forward_infer_with(&task.tile, scratch);
    let t1 = Instant::now();
    let dims = out.dims();
    assert_eq!(dims.len(), 4, "tile results are [1,C,H,W]");
    let shape = [dims[0], dims[1], dims[2], dims[3]];
    let elems = out.numel();
    let (encoded, quantizer) = match compression {
        Some(c) => (clip_and_compress_into(out.as_slice(), c.crelu, c.quantizer, cs), c.quantizer),
        // Uncompressed mode still needs a wire quantizer (the nibble codec
        // carries at most 4-bit levels); use the observed range. The
        // quantizer clamps into [0, range], which subsumes the ReLU the
        // seed path applied. This mode exists for comparisons only.
        None => {
            let range = out.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs())).max(1e-6);
            let q = Quantizer::new(4, range);
            (compress_into(out.as_slice(), q, cs), q)
        }
    };
    // Timestamp *before* building the result: the per-shipped-tile payload
    // copy is transport, not compression, and must not be billed to
    // `compress_ns`.
    let t2 = Instant::now();
    let result = make_result_from_parts(task.key, shape, elems, encoded, quantizer);
    (result, t1.duration_since(t0), t2.duration_since(t1))
}

/// Spawn a Conv-node worker thread.
///
/// `prefix` is the worker's clone of the separable blocks; results go to
/// `results` tagged with `worker_id`. The thread owns one [`InferScratch`]
/// and one [`CompressScratch`], so its steady-state tile loop performs zero
/// heap allocation up to the final per-result payload copy. Per-tile
/// compute/compress spans are mirrored into `sink` with timestamps
/// relative to `epoch` — the same time axis the Central node's lifecycle
/// events use.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spawn_worker(
    worker_id: usize,
    prefix: Network,
    compression: Option<Compression>,
    opts: WorkerOptions,
    tasks: Receiver<WorkerMsg>,
    results: Sender<(usize, TileResult)>,
    stats: Arc<WorkerStats>,
    sink: SinkHandle,
    epoch: Instant,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("conv-node-{worker_id}"))
        .spawn(move || {
            let mut processed = 0usize;
            let mut scratch = InferScratch::new();
            let mut cs = CompressScratch::new();
            let mut faults = StdRng::seed_from_u64(
                opts.fault_seed ^ (worker_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            while let Ok(msg) = tasks.recv() {
                let task = match msg {
                    WorkerMsg::Tile(t) => t,
                    WorkerMsg::Shutdown => break,
                };
                if let Some(limit) = opts.fail_after_tiles {
                    if processed >= limit {
                        if opts.disconnect_on_fail {
                            // Hard crash: exiting drops `tasks`, so the
                            // Central node's next send fails fast and marks
                            // this worker dead.
                            break;
                        }
                        // Crashed node: swallow work silently (the Central
                        // node's timeout + statistics handle it).
                        continue;
                    }
                }
                if !opts.artificial_delay.is_zero() {
                    std::thread::sleep(opts.artificial_delay);
                }
                if !opts.delay_jitter.is_zero() {
                    std::thread::sleep(opts.delay_jitter.mul_f64(faults.gen::<f64>()));
                }
                let (mut result, compute, compress) =
                    process_tile(&prefix, compression, &task, &mut scratch, &mut cs);
                let done = Instant::now();
                stats.record(compute, compress);
                sink.emit_with(|| ObsEvent::TileCompute {
                    at: (done - compress).duration_since(epoch).as_secs_f64(),
                    image: task.key.image_id,
                    tile: task.key.tile_id,
                    worker: worker_id as u32,
                    dur: compute.as_secs_f64(),
                });
                sink.emit_with(|| {
                    let bits = result.wire_bits();
                    let elems = result.payload.elems;
                    ObsEvent::TileCompress {
                        at: done.duration_since(epoch).as_secs_f64(),
                        image: task.key.image_id,
                        tile: task.key.tile_id,
                        worker: worker_id as u32,
                        dur: compress.as_secs_f64(),
                        bytes: bits / 8,
                        ratio: bits as f64 / (elems as f64 * 32.0),
                    }
                });
                processed += 1;
                if opts.drop_prob > 0.0 && faults.gen_bool(opts.drop_prob) {
                    continue; // the result vanishes on the "wire"
                }
                if opts.corrupt_prob > 0.0 && faults.gen_bool(opts.corrupt_prob) {
                    // Truncate the payload: it arrives but fails to decode,
                    // so the Central node must treat the tile as missing.
                    let half = result.payload.payload.len() / 2;
                    result.payload.payload = result.payload.payload.slice(0..half);
                }
                if results.send((worker_id, result)).is_err() {
                    break; // central gone
                }
            }
        })
        .expect("failed to spawn worker thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcnn_core::wire::TileKey;
    use adcnn_nn::{Block, Layer, Network};
    use adcnn_tensor::conv::Conv2dParams;
    use adcnn_tensor::Tensor;
    use crossbeam::channel::unbounded;
    use rand::{rngs::StdRng, SeedableRng};

    fn tiny_prefix(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(vec![Block::Seq(vec![
            Layer::conv2d(1, 2, 3, Conv2dParams::same(3), &mut rng),
            Layer::Relu,
        ])])
    }

    #[test]
    fn worker_processes_and_replies() {
        let (task_tx, task_rx) = unbounded();
        let (res_tx, res_rx) = unbounded();
        let cr = ClippedRelu::new(0.0, 1.0);
        let comp = Compression { crelu: cr, quantizer: Quantizer::paper_default(cr) };
        let stats = Arc::new(WorkerStats::default());
        let h = spawn_worker(
            3,
            tiny_prefix(1),
            Some(comp),
            WorkerOptions::default(),
            task_rx,
            res_tx,
            stats.clone(),
            SinkHandle::null(),
            Instant::now(),
        );

        let tile = Tensor::full([1, 1, 4, 4], 0.5);
        task_tx
            .send(WorkerMsg::Tile(TileTask { key: TileKey { image_id: 9, tile_id: 2 }, tile }))
            .unwrap();
        let (wid, res) = res_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(wid, 3);
        assert_eq!(res.key, TileKey { image_id: 9, tile_id: 2 });
        let t = res.to_tensor().unwrap();
        assert_eq!(t.dims(), &[1, 2, 4, 4]);
        let snap = stats.snapshot();
        assert_eq!(snap.tiles, 1);
        assert!(snap.mean_compute().is_some());

        task_tx.send(WorkerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn failed_worker_goes_silent() {
        let (task_tx, task_rx) = unbounded();
        let (res_tx, res_rx) = unbounded();
        let opts = WorkerOptions { fail_after_tiles: Some(1), ..Default::default() };
        let stats = Arc::new(WorkerStats::default());
        let h = spawn_worker(
            0,
            tiny_prefix(2),
            None,
            opts,
            task_rx,
            res_tx,
            stats.clone(),
            SinkHandle::null(),
            Instant::now(),
        );

        for i in 0..3u32 {
            task_tx
                .send(WorkerMsg::Tile(TileTask {
                    key: TileKey { image_id: 0, tile_id: i },
                    tile: Tensor::full([1, 1, 4, 4], 0.1),
                }))
                .unwrap();
        }
        // exactly one reply, then silence
        assert!(res_rx.recv_timeout(Duration::from_secs(5)).is_ok());
        assert!(res_rx.recv_timeout(Duration::from_millis(200)).is_err());
        task_tx.send(WorkerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn disconnecting_worker_drops_its_task_channel() {
        let (task_tx, task_rx) = unbounded();
        let (res_tx, res_rx) = unbounded();
        let opts = WorkerOptions {
            fail_after_tiles: Some(1),
            disconnect_on_fail: true,
            ..Default::default()
        };
        let h = spawn_worker(
            0,
            tiny_prefix(4),
            None,
            opts,
            task_rx,
            res_tx,
            Arc::new(WorkerStats::default()),
            SinkHandle::null(),
            Instant::now(),
        );
        for i in 0..2u32 {
            task_tx
                .send(WorkerMsg::Tile(TileTask {
                    key: TileKey { image_id: 0, tile_id: i },
                    tile: Tensor::full([1, 1, 4, 4], 0.1),
                }))
                .unwrap();
        }
        assert!(res_rx.recv_timeout(Duration::from_secs(5)).is_ok());
        h.join().unwrap(); // the thread exited on tile 2 …
        assert!(task_tx.send(WorkerMsg::Shutdown).is_err()); // … and the channel is dead
    }

    #[test]
    fn drop_prob_one_swallows_every_result_but_counts_work() {
        let (task_tx, task_rx) = unbounded();
        let (res_tx, res_rx) = unbounded();
        let opts = WorkerOptions { drop_prob: 1.0, ..Default::default() };
        let stats = Arc::new(WorkerStats::default());
        let h = spawn_worker(
            0,
            tiny_prefix(5),
            None,
            opts,
            task_rx,
            res_tx,
            stats.clone(),
            SinkHandle::null(),
            Instant::now(),
        );
        for i in 0..3u32 {
            task_tx
                .send(WorkerMsg::Tile(TileTask {
                    key: TileKey { image_id: 0, tile_id: i },
                    tile: Tensor::full([1, 1, 4, 4], 0.2),
                }))
                .unwrap();
        }
        assert!(res_rx.recv_timeout(Duration::from_millis(500)).is_err());
        assert_eq!(stats.snapshot().tiles, 3, "dropped results still burned compute");
        task_tx.send(WorkerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn corrupt_prob_one_yields_undecodable_results() {
        let (task_tx, task_rx) = unbounded();
        let (res_tx, res_rx) = unbounded();
        let cr = ClippedRelu::new(0.0, 1.0);
        let comp = Compression { crelu: cr, quantizer: Quantizer::paper_default(cr) };
        let opts = WorkerOptions { corrupt_prob: 1.0, ..Default::default() };
        let h = spawn_worker(
            0,
            tiny_prefix(6),
            Some(comp),
            opts,
            task_rx,
            res_tx,
            Arc::new(WorkerStats::default()),
            SinkHandle::null(),
            Instant::now(),
        );
        task_tx
            .send(WorkerMsg::Tile(TileTask {
                key: TileKey { image_id: 0, tile_id: 0 },
                tile: Tensor::full([1, 1, 4, 4], 0.5),
            }))
            .unwrap();
        let (_, res) = res_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(res.to_tensor().is_none(), "truncated payload must fail to decode");
        task_tx.send(WorkerMsg::Shutdown).unwrap();
        h.join().unwrap();
    }

    #[test]
    fn options_builder_validates_probabilities() {
        let opts = WorkerOptions::builder()
            .artificial_delay(Duration::from_millis(5))
            .fail_after_tiles(3)
            .disconnect_on_fail(true)
            .drop_prob(0.25)
            .delay_jitter(Duration::from_millis(2))
            .corrupt_prob(0.5)
            .fault_seed(7)
            .build()
            .unwrap();
        assert_eq!(opts.fail_after_tiles, Some(3));
        assert!(opts.disconnect_on_fail);
        assert_eq!(opts.drop_prob, 0.25);
        assert!(matches!(
            WorkerOptions::builder().drop_prob(1.5).build(),
            Err(ConfigError::ProbabilityOutOfRange { field: "drop_prob", .. })
        ));
        assert!(matches!(
            WorkerOptions::builder().corrupt_prob(-0.1).build(),
            Err(ConfigError::ProbabilityOutOfRange { field: "corrupt_prob", .. })
        ));
        assert!(WorkerOptions::builder().drop_prob(f64::NAN).build().is_err());
    }

    #[test]
    fn worker_mirrors_compute_and_compress_spans() {
        use adcnn_core::obs::RecordingSink;
        let (task_tx, task_rx) = unbounded();
        let (res_tx, res_rx) = unbounded();
        let rec = Arc::new(RecordingSink::new());
        let epoch = Instant::now();
        let h = spawn_worker(
            2,
            tiny_prefix(8),
            None,
            WorkerOptions::default(),
            task_rx,
            res_tx,
            Arc::new(WorkerStats::default()),
            SinkHandle::new(rec.clone()),
            epoch,
        );
        task_tx
            .send(WorkerMsg::Tile(TileTask {
                key: TileKey { image_id: 4, tile_id: 1 },
                tile: Tensor::full([1, 1, 4, 4], 0.5),
            }))
            .unwrap();
        let _ = res_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        task_tx.send(WorkerMsg::Shutdown).unwrap();
        h.join().unwrap();
        let events = rec.events();
        assert_eq!(rec.kinds(), vec!["tile_compute", "tile_compress"]);
        for ev in &events {
            match *ev {
                ObsEvent::TileCompute { at, image, tile, worker, dur } => {
                    assert_eq!((image, tile, worker), (4, 1, 2));
                    assert!(at >= dur && dur >= 0.0);
                }
                ObsEvent::TileCompress { image, tile, worker, dur, bytes, ratio, .. } => {
                    assert_eq!((image, tile, worker), (4, 1, 2));
                    assert!(dur >= 0.0);
                    assert!(bytes > 0);
                    assert!(ratio > 0.0 && ratio <= 1.0, "ratio {ratio}");
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn worker_exits_when_central_drops() {
        let (task_tx, task_rx) = unbounded();
        let (res_tx, res_rx) = unbounded();
        let h = spawn_worker(
            0,
            tiny_prefix(3),
            None,
            WorkerOptions::default(),
            task_rx,
            res_tx,
            Arc::new(WorkerStats::default()),
            SinkHandle::null(),
            Instant::now(),
        );
        drop(res_rx);
        task_tx
            .send(WorkerMsg::Tile(TileTask {
                key: TileKey { image_id: 0, tile_id: 0 },
                tile: Tensor::zeros([1, 1, 4, 4]),
            }))
            .unwrap();
        drop(task_tx);
        h.join().unwrap();
    }
}
