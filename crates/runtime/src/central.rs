//! The Central node (§6.1, Figure 8): input partition block, statistics
//! collection block, and layer computation block, driving real worker
//! threads.

use crate::worker::{
    spawn_worker, Compression, WorkerMsg, WorkerOptions, WorkerStats, WorkerStatsSnapshot,
};
use adcnn_core::compress::Quantizer;
use adcnn_core::fdsp::TileGrid;
use adcnn_core::sched::{StatsCollector, TileAllocator};
use adcnn_core::wire::{TileKey, TileResult, TileTask};
use adcnn_core::ClippedRelu;
use adcnn_nn::infer::InferScratch;
use adcnn_nn::Network;
use adcnn_retrain::PartitionedModel;
use adcnn_tensor::Tensor;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Central-node configuration.
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Timeout grace `T_L` (the paper uses 30 ms): once the first result
    /// lands, the Central node waits for the expected makespan
    /// (first-result time x the largest allocation, +25% slack) plus this
    /// grace, then zero-fills the missing tiles.
    pub t_l: Duration,
    /// Hard cap on the total wait for one image.
    pub hard_timeout: Duration,
    /// Algorithm 2 decay γ.
    pub gamma: f64,
    /// Tile-allocation tie-break seed.
    pub seed: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            t_l: Duration::from_millis(30),
            hard_timeout: Duration::from_secs(5),
            gamma: 0.9,
            seed: 42,
        }
    }
}

/// Result of one distributed inference.
#[derive(Debug)]
pub struct InferOutcome {
    /// The network output (logits / dense map).
    pub output: Tensor,
    /// Wall-clock end-to-end latency.
    pub latency: Duration,
    /// Tiles allocated per worker.
    pub alloc: Vec<u32>,
    /// Results received in time per worker.
    pub received: Vec<u32>,
    /// Tiles zero-filled after the timeout.
    pub dropped: u32,
    /// Total compressed payload bits received (communication accounting).
    pub wire_bits: u64,
    /// Cumulative per-worker compute/compress timings (since launch),
    /// snapshotted when this image finished.
    pub worker_stats: Vec<WorkerStatsSnapshot>,
}

/// A dispatched-but-not-yet-collected image.
struct Pending {
    image_id: u64,
    alloc: Vec<u32>,
    start: Instant,
}

/// The live system: Central node state plus its worker threads.
pub struct AdcnnRuntime {
    grid: TileGrid,
    suffix: Network,
    task_txs: Vec<Sender<WorkerMsg>>,
    result_rx: Receiver<(usize, TileResult)>,
    handles: Vec<JoinHandle<()>>,
    worker_stats: Vec<Arc<WorkerStats>>,
    /// Reusable buffers for the suffix-network forward.
    infer_scratch: InferScratch,
    stats: StatsCollector,
    allocator: TileAllocator,
    rng: StdRng,
    cfg: RuntimeConfig,
    next_image: u64,
    /// Assembled boundary map dims `(C, H, W)`.
    boundary: (usize, usize, usize),
    /// Per-tile boundary dims `(C, h, w)`.
    tile_out: (usize, usize, usize),
}

impl AdcnnRuntime {
    /// Split a (retrained) [`PartitionedModel`] into Conv-node prefixes and
    /// the Central suffix, and launch one worker thread per entry of
    /// `worker_opts`.
    pub fn launch(
        model: PartitionedModel,
        worker_opts: &[WorkerOptions],
        cfg: RuntimeConfig,
    ) -> Self {
        assert!(!worker_opts.is_empty(), "need at least one worker");
        let k = worker_opts.len();
        let grid = model.grid;
        let prefix_net = Network::new(model.net.blocks[..model.prefix].to_vec());
        let suffix = Network::new(model.net.blocks[model.prefix..].to_vec());

        // Probe the per-tile boundary dims with a zero tile.
        let (c, h, w) = model.input;
        assert!(
            h % grid.rows == 0 && w % grid.cols == 0,
            "input {h}x{w} not divisible by {grid}"
        );
        let mut probe_net = prefix_net.clone();
        let probe = Tensor::zeros([1, c, h / grid.rows, w / grid.cols]);
        let n_prefix = probe_net.len();
        let (out, _) = probe_net.forward_range(&probe, 0..n_prefix, false);
        let (_, oc, oh, ow) = out.shape().nchw();
        let tile_out = (oc, oh, ow);
        let boundary = (oc, oh * grid.rows, ow * grid.cols);

        let compression = model.boundary_crelu.map(|cr: ClippedRelu| Compression {
            crelu: cr,
            quantizer: Quantizer::new(
                model.boundary_quant.map(|q| q.bits).unwrap_or(4),
                cr.range(),
            ),
        });

        let (result_tx, result_rx) = unbounded();
        let mut task_txs = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);
        let mut worker_stats = Vec::with_capacity(k);
        for (i, opts) in worker_opts.iter().enumerate() {
            let (tx, rx) = unbounded();
            let stats = Arc::new(WorkerStats::default());
            handles.push(spawn_worker(
                i,
                prefix_net.clone(),
                compression,
                *opts,
                rx,
                result_tx.clone(),
                stats.clone(),
            ));
            task_txs.push(tx);
            worker_stats.push(stats);
        }

        AdcnnRuntime {
            grid,
            suffix,
            task_txs,
            result_rx,
            handles,
            worker_stats,
            infer_scratch: InferScratch::new(),
            stats: StatsCollector::new(k, cfg.gamma),
            allocator: TileAllocator::unbounded(k),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            next_image: 0,
            boundary,
            tile_out,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.task_txs.len()
    }

    /// Current Algorithm 2 speed estimates.
    pub fn speeds(&self) -> &[f64] {
        self.stats.speeds()
    }

    /// Snapshot the per-worker tile/compute/compress counters.
    pub fn worker_stats(&self) -> Vec<WorkerStatsSnapshot> {
        self.worker_stats.iter().map(|s| s.snapshot()).collect()
    }

    /// Run one image `[1, C, H, W]` through the distributed pipeline.
    pub fn infer(&mut self, x: &Tensor) -> InferOutcome {
        let pending = self.dispatch(x);
        let mut stash = Vec::new();
        self.collect(pending, &mut stash)
    }

    /// Run a stream of images with Figure 9 pipelining: the tiles of image
    /// `i+1` are dispatched before image `i`'s results are collected, so
    /// Conv nodes never starve between images.
    pub fn infer_stream(&mut self, images: &[Tensor]) -> Vec<InferOutcome> {
        let mut out = Vec::with_capacity(images.len());
        let mut stash: Vec<(usize, TileResult)> = Vec::new();
        let mut window: std::collections::VecDeque<Pending> = Default::default();
        let mut next = 0usize;
        while out.len() < images.len() {
            while next < images.len() && window.len() < 2 {
                window.push_back(self.dispatch(&images[next]));
                next += 1;
            }
            let pending = window.pop_front().expect("window non-empty");
            out.push(self.collect(pending, &mut stash));
        }
        out
    }

    /// Input partition block: extract tiles, allocate with Algorithm 3,
    /// push them to the workers. Returns the collection state.
    fn dispatch(&mut self, x: &Tensor) -> Pending {
        let image_id = self.next_image;
        self.next_image += 1;
        let d = self.grid.tiles();
        let tiles = self.grid.extract(x);
        let alloc = self.allocator.allocate(d, self.stats.speeds(), &mut self.rng);
        let mut assignment: Vec<usize> = Vec::with_capacity(d);
        {
            // round-robin across nodes honoring the allocation counts
            let mut remaining = alloc.clone();
            while assignment.len() < d {
                for (node, rem) in remaining.iter_mut().enumerate() {
                    if *rem > 0 {
                        *rem -= 1;
                        assignment.push(node);
                    }
                }
            }
        }
        for (t, tile) in tiles.into_iter().enumerate() {
            let node = assignment[t];
            let task = TileTask { key: TileKey { image_id, tile_id: t as u32 }, tile };
            // A closed channel means the worker died; the timeout handles it.
            let _ = self.task_txs[node].send(WorkerMsg::Tile(task));
        }
        Pending { image_id, alloc, start: Instant::now() }
    }

    /// Statistics collection + reassembly + suffix for one dispatched
    /// image. Results belonging to later images land in `stash` (they are
    /// consumed when their image is collected); earlier-image stragglers
    /// are discarded.
    fn collect(&mut self, pending: Pending, stash: &mut Vec<(usize, TileResult)>) -> InferOutcome {
        let Pending { image_id, alloc, start } = pending;
        let d = self.grid.tiles();
        let k = self.workers();
        let (bc, bh, bw) = self.boundary;
        let (_, th, tw) = self.tile_out;
        let mut assembled = Tensor::zeros([1, bc, bh, bw]);
        let mut received = vec![0u32; k];
        // Arrival time of each worker's latest result (Algorithm 2 rates).
        let mut last_result_at: Vec<Option<Instant>> = vec![None; k];
        // Expected-makespan deadline, armed by the first result.
        let mut deadline: Option<Instant> = None;
        let max_alloc = alloc.iter().copied().max().unwrap_or(1).max(1);
        let mut got = vec![false; d];
        let mut got_total = 0usize;
        let mut wire_bits = 0u64;

        let paste = |res: &TileResult,
                         worker: usize,
                         got: &mut Vec<bool>,
                         got_total: &mut usize,
                         received: &mut Vec<u32>,
                         wire_bits: &mut u64,
                         assembled: &mut Tensor| {
            let t = res.key.tile_id as usize;
            if t >= d || got[t] {
                return;
            }
            *wire_bits += res.wire_bits();
            if let Some(tensor) = res.to_tensor() {
                let (gr, gc) = self.grid.tile_pos(t);
                assembled.paste_spatial(&tensor, gr * th, gc * tw);
                got[t] = true;
                *got_total += 1;
                received[worker] += 1;
            }
        };

        // First drain any stashed results for this image (they arrived
        // while a previous image was being collected).
        let mut i = 0;
        while i < stash.len() {
            if stash[i].1.key.image_id == image_id {
                let (worker, res) = stash.remove(i);
                let before = got_total;
                paste(&res, worker, &mut got, &mut got_total, &mut received, &mut wire_bits, &mut assembled);
                if got_total > before {
                    let now = Instant::now();
                    last_result_at[worker] = Some(now);
                    if deadline.is_none() {
                        let per_unit = now.duration_since(start);
                        deadline =
                            Some(now + per_unit.mul_f64(1.25 * (max_alloc - 1) as f64) + self.cfg.t_l);
                    }
                }
            } else {
                i += 1;
            }
        }

        let hard_deadline = Instant::now() + self.cfg.hard_timeout;
        while got_total < d {
            let limit = deadline.map_or(hard_deadline, |dl| dl.min(hard_deadline));
            let wait = limit.saturating_duration_since(Instant::now());
            if wait.is_zero() {
                break;
            }
            match self.result_rx.recv_timeout(wait) {
                Ok((worker, res)) => {
                    use std::cmp::Ordering;
                    match res.key.image_id.cmp(&image_id) {
                        Ordering::Less => continue, // straggler: discard
                        Ordering::Greater => {
                            stash.push((worker, res)); // future image
                            continue;
                        }
                        Ordering::Equal => {
                            let before = got_total;
                            paste(
                                &res, worker, &mut got, &mut got_total, &mut received,
                                &mut wire_bits, &mut assembled,
                            );
                            if got_total > before {
                                let now = Instant::now();
                                last_result_at[worker] = Some(now);
                                if deadline.is_none() {
                                    let per_unit = now.duration_since(start);
                                    deadline = Some(
                                        now + per_unit.mul_f64(1.25 * (max_alloc - 1) as f64)
                                            + self.cfg.t_l,
                                    );
                                }
                            }
                        }
                    }
                }
                Err(_) => break, // idle gap: zero-fill the rest
            }
        }

        // Algorithm 2 update: per-node throughput — in-time results per
        // elapsed second, scaled by T_L to match the paper's "results
        // within the time limit" unit. Nodes with no work this image keep
        // their previous estimate.
        for node in 0..k {
            if alloc[node] > 0 {
                let rate = match last_result_at[node] {
                    Some(t) if received[node] > 0 => {
                        let elapsed = t.duration_since(start).as_secs_f64().max(1e-6);
                        received[node] as f64 / elapsed * self.cfg.t_l.as_secs_f64()
                    }
                    _ => 0.0,
                };
                self.stats.record_node(node, rate);
            }
        }

        // Layer computation block: the rest of the network, through the
        // allocation-free inference path with runtime-owned scratch.
        let n_suffix = self.suffix.len();
        let output = self
            .suffix
            .forward_infer_range_with(&assembled, 0..n_suffix, &mut self.infer_scratch)
            .to_tensor();
        InferOutcome {
            output,
            latency: start.elapsed(),
            alloc,
            received,
            dropped: (d - got_total) as u32,
            wire_bits,
            worker_stats: self.worker_stats.iter().map(|s| s.snapshot()).collect(),
        }
    }

    /// Stop all workers and join their threads.
    pub fn shutdown(mut self) {
        for tx in &self.task_txs {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for AdcnnRuntime {
    fn drop(&mut self) {
        for tx in &self.task_txs {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcnn_nn::layer::QuantizeSte;
    use adcnn_nn::small::shapes_cnn;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn build_model(seed: u64, grid: TileGrid) -> PartitionedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let cr = ClippedRelu::new(0.0, 2.0);
        PartitionedModel::fdsp(shapes_cnn(6, &mut rng), grid)
            .with_crelu(cr)
            .with_quant(QuantizeSte::new(4, cr.range()))
    }

    fn rand_image(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn([1, 3, 32, 32], 0.5, &mut rng)
    }

    #[test]
    fn distributed_matches_local_partitioned_model() {
        let grid = TileGrid::new(2, 2);
        let mut local = build_model(5, grid);
        let model = build_model(5, grid); // identical weights (same seed)
        let mut rt = AdcnnRuntime::launch(
            model,
            &[WorkerOptions::default(); 3],
            RuntimeConfig::default(),
        );
        for s in 0..3 {
            let x = rand_image(100 + s);
            let want = local.infer(&x);
            let out = rt.infer(&x);
            assert_eq!(out.dropped, 0, "dropped tiles: {:?}", out.received);
            assert!(
                out.output.approx_eq(&want, 2e-3),
                "distributed output diverges from local model"
            );
        }
        rt.shutdown();
    }

    #[test]
    fn allocation_adapts_to_slow_worker() {
        let grid = TileGrid::new(4, 4);
        let model = build_model(7, grid);
        // The slow worker's per-tile time must exceed T_L so its stragglers
        // miss the idle-gap deadline and Algorithm 2 marks it slow.
        let opts = [
            WorkerOptions::default(),
            WorkerOptions::default(),
            WorkerOptions { artificial_delay: Duration::from_millis(100), ..Default::default() },
        ];
        let cfg = RuntimeConfig { t_l: Duration::from_millis(50), ..Default::default() };
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg);
        let mut last_alloc = vec![0u32; 3];
        for s in 0..6 {
            let out = rt.infer(&rand_image(s));
            last_alloc = out.alloc.clone();
        }
        // the slow worker must end up with fewer tiles than the fast ones
        assert!(
            last_alloc[2] < last_alloc[0] && last_alloc[2] < last_alloc[1],
            "allocation did not adapt: {last_alloc:?} (speeds {:?})",
            rt.speeds()
        );
        rt.shutdown();
    }

    #[test]
    fn failed_worker_is_tolerated_and_starved() {
        let grid = TileGrid::new(4, 4);
        let model = build_model(9, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions { fail_after_tiles: Some(0), ..Default::default() },
        ];
        let cfg = RuntimeConfig { t_l: Duration::from_millis(50), ..Default::default() };
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg);
        let first = rt.infer(&rand_image(1));
        assert!(first.dropped > 0, "dead worker's tiles should drop");
        assert_eq!(first.output.dims()[0], 1); // output still produced
        for s in 2..6 {
            rt.infer(&rand_image(s));
        }
        let last = rt.infer(&rand_image(99));
        assert_eq!(last.alloc[1], 0, "dead worker still allocated: {:?}", last.alloc);
        assert_eq!(last.dropped, 0, "steady state should not drop");
        rt.shutdown();
    }

    #[test]
    fn worker_stats_surface_in_outcome() {
        let grid = TileGrid::new(2, 2);
        let model = build_model(31, grid);
        let mut rt =
            AdcnnRuntime::launch(model, &[WorkerOptions::default(); 2], RuntimeConfig::default());
        let out = rt.infer(&rand_image(4));
        assert_eq!(out.worker_stats.len(), 2);
        if out.dropped == 0 {
            let total: u64 = out.worker_stats.iter().map(|s| s.tiles).sum();
            assert_eq!(total, 4, "every received tile must be counted");
            assert!(out.worker_stats.iter().any(|s| s.compute_ns > 0));
            assert!(out.worker_stats.iter().any(|s| s.compress_ns > 0));
        }
        let again = rt.infer(&rand_image(5));
        let t1: u64 = out.worker_stats.iter().map(|s| s.tiles).sum();
        let t2: u64 = again.worker_stats.iter().map(|s| s.tiles).sum();
        assert!(t2 > t1, "counters must accumulate across images");
        assert_eq!(rt.worker_stats().len(), 2);
        rt.shutdown();
    }

    #[test]
    fn wire_bits_shrink_with_compression() {
        let grid = TileGrid::new(2, 2);
        // Compressed model (tight clipped ReLU -> sparse)
        let model = build_model(11, grid);
        let mut rt = AdcnnRuntime::launch(model, &[WorkerOptions::default(); 2], RuntimeConfig::default());
        let out = rt.infer(&rand_image(3));
        let raw_bits = (16 * 16 * 16 * 4) as u64 * 32; // boundary map at f32
        assert!(out.wire_bits > 0);
        assert!(
            out.wire_bits < raw_bits,
            "compression ineffective: {} vs {raw_bits}",
            out.wire_bits
        );
        rt.shutdown();
    }

    #[test]
    fn image_ids_keep_results_separated() {
        // Run several images back-to-back; stragglers from image i must not
        // corrupt image i+1 (exercised by a slow worker + short timeout).
        let grid = TileGrid::new(2, 2);
        let model = build_model(13, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions { artificial_delay: Duration::from_millis(30), ..Default::default() },
        ];
        let cfg = RuntimeConfig { t_l: Duration::from_millis(10), ..Default::default() };
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg);
        let mut local = build_model(13, grid);
        let x = rand_image(42);
        let want = local.infer(&x);
        // warm-up images that will leave stragglers in flight
        for s in 0..3 {
            rt.infer(&rand_image(s));
        }
        // let the allocator starve the slow worker, then verify correctness
        for _ in 0..3 {
            rt.infer(&x);
        }
        let out = rt.infer(&x);
        if out.dropped == 0 {
            assert!(out.output.approx_eq(&want, 2e-3));
        }
        rt.shutdown();
    }

    #[test]
    fn random_inputs_never_panic() {
        let grid = TileGrid::new(2, 2);
        let model = build_model(17, grid);
        let mut rt =
            AdcnnRuntime::launch(model, &[WorkerOptions::default(); 4], RuntimeConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            let x = Tensor::rand_uniform([1, 3, 32, 32], -2.0, 2.0, &mut rng);
            let out = rt.infer(&x);
            assert_eq!(out.output.dims(), &[1, 6]);
            let _ = rng.gen::<u32>();
        }
        rt.shutdown();
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use adcnn_core::fdsp::TileGrid;
    use adcnn_core::ClippedRelu;
    use adcnn_nn::layer::QuantizeSte;
    use adcnn_nn::small::shapes_cnn;
    use adcnn_retrain::PartitionedModel;
    use rand::{rngs::StdRng, SeedableRng};

    fn build_model(seed: u64, grid: TileGrid) -> PartitionedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let cr = ClippedRelu::new(0.0, 2.0);
        PartitionedModel::fdsp(shapes_cnn(6, &mut rng), grid)
            .with_crelu(cr)
            .with_quant(QuantizeSte::new(4, cr.range()))
    }

    fn rand_images(n: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Tensor::randn([1, 3, 32, 32], 0.5, &mut rng)).collect()
    }

    #[test]
    fn stream_matches_sequential_outputs() {
        let grid = TileGrid::new(2, 2);
        let images = rand_images(6, 77);
        // sequential reference
        let mut rt_seq =
            AdcnnRuntime::launch(build_model(21, grid), &[WorkerOptions::default(); 3], RuntimeConfig::default());
        let seq: Vec<Tensor> = images.iter().map(|x| rt_seq.infer(x).output).collect();
        rt_seq.shutdown();
        // streamed
        let mut rt =
            AdcnnRuntime::launch(build_model(21, grid), &[WorkerOptions::default(); 3], RuntimeConfig::default());
        let stream = rt.infer_stream(&images);
        rt.shutdown();
        assert_eq!(stream.len(), 6);
        for (s, r) in stream.iter().zip(&seq) {
            assert_eq!(s.dropped, 0);
            assert!(s.output.approx_eq(r, 1e-4), "streamed output diverged");
        }
    }

    #[test]
    fn stream_interleaves_without_cross_talk() {
        // Distinct images must map to their own outputs even when results
        // of consecutive images interleave on the shared result channel.
        let grid = TileGrid::new(4, 4);
        let images = rand_images(8, 91);
        let mut local = build_model(23, grid);
        let want: Vec<Tensor> = images.iter().map(|x| local.infer(x)).collect();
        let mut rt =
            AdcnnRuntime::launch(build_model(23, grid), &[WorkerOptions::default(); 4], RuntimeConfig::default());
        let got = rt.infer_stream(&images);
        rt.shutdown();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.dropped, 0);
            assert!(g.output.approx_eq(w, 2e-3));
        }
    }

    #[test]
    fn probe_window_favors_faster_worker() {
        // Nobody misses the deadline here — the fast worker simply returns
        // more results inside the T_L probe window, and Algorithm 3 should
        // reward it with more tiles (the paper's throughput semantics).
        let grid = TileGrid::new(4, 4);
        let model = build_model(41, grid);
        let workers = [
            WorkerOptions::default(),
            WorkerOptions { artificial_delay: Duration::from_millis(15), ..Default::default() },
            WorkerOptions { artificial_delay: Duration::from_millis(15), ..Default::default() },
        ];
        let cfg = RuntimeConfig { t_l: Duration::from_millis(50), ..Default::default() };
        let mut rt = AdcnnRuntime::launch(model, &workers, cfg);
        let images = rand_images(8, 17);
        let got = rt.infer_stream(&images);
        let last = got.last().unwrap();
        assert!(
            last.alloc[0] > last.alloc[1] && last.alloc[0] > last.alloc[2],
            "fast worker not favored: {:?} (speeds {:?})",
            last.alloc,
            rt.speeds()
        );
        rt.shutdown();
    }

    #[test]
    fn stream_survives_failed_worker() {
        let grid = TileGrid::new(2, 2);
        let images = rand_images(8, 13);
        let workers = [
            WorkerOptions::default(),
            WorkerOptions { fail_after_tiles: Some(2), ..Default::default() },
        ];
        let cfg = RuntimeConfig { t_l: Duration::from_millis(40), ..Default::default() };
        let mut rt = AdcnnRuntime::launch(build_model(29, grid), &workers, cfg);
        let got = rt.infer_stream(&images);
        rt.shutdown();
        assert_eq!(got.len(), 8);
        // early images drop tiles, the tail is clean
        assert!(got.iter().any(|o| o.dropped > 0));
        assert_eq!(got.last().unwrap().dropped, 0);
        assert_eq!(got.last().unwrap().alloc[1], 0);
    }
}
