//! The Central node (§6.1, Figure 8): input partition block, statistics
//! collection block, and layer computation block, driving real worker
//! threads.
//!
//! All tile-lifecycle *decisions* — the expected-makespan deadline,
//! speculative re-dispatch rounds, zero-fill, duplicate handling and the
//! Algorithm 2 measurement cutoff — live in the shared sans-IO state
//! machine, [`adcnn_core::lifecycle::TileLifecycle`]. This module is the
//! wall-clock *driver*: it maps `Instant`s onto the machine's abstract
//! seconds (via a per-runtime epoch), crossbeam channel sends onto
//! [`Dispatch`](adcnn_core::lifecycle::Action::Dispatch)/
//! [`Redispatch`](adcnn_core::lifecycle::Action::Redispatch) actions, and
//! `recv_timeout` onto the machine's `next_deadline()`. The network
//! simulator (`adcnn-netsim`) drives the *same* machine from simulated
//! timestamps, so simulated and real scheduling decisions cannot drift.
//! See DESIGN.md §11 for the policy/mechanism split and §10 for the
//! lifecycle policy itself.
//!
//! Worker death is detected eagerly — a failed send on a worker's
//! (bounded) task queue marks it dead in the Algorithm 2 statistics and
//! feeds [`WorkerDied`](adcnn_core::lifecycle::Event::WorkerDied)/
//! [`SendRejected`](adcnn_core::lifecycle::Event::SendRejected) back into
//! the machine, which reroutes the tile immediately — so a crashed node
//! costs one deadline, not an accuracy loss.

use crate::worker::{
    spawn_worker, Compression, WorkerMsg, WorkerOptions, WorkerStats, WorkerStatsSnapshot,
};
use adcnn_core::compress::Quantizer;
use adcnn_core::config::ConfigError;
use adcnn_core::fdsp::TileGrid;
use adcnn_core::lifecycle::{Action, Event, LifecyclePolicy, TileLifecycle, TimerPolicy};
use adcnn_core::obs::{RecordingSink, SinkHandle};
use adcnn_core::report::{AttributionSink, ImageReport};
use adcnn_core::sched::{StatsCollector, TileAllocator};
use adcnn_core::wire::{TileKey, TileResult, TileTask};
use adcnn_core::ClippedRelu;
use adcnn_nn::infer::InferScratch;
use adcnn_nn::Network;
use adcnn_retrain::PartitionedModel;
use adcnn_tensor::Tensor;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Central-node configuration: the shared [`LifecyclePolicy`] (deadline
/// slack, `T_L`, re-dispatch rounds, hard timeout, timer interpretation)
/// plus the runtime-only transport/statistics knobs and the observability
/// sink both the Central node and its workers emit into.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// The shared tile-lifecycle policy — identical in meaning to the
    /// simulator's copy in `AdcnnSimConfig`, so a plan validated there
    /// runs under the same decisions here.
    pub policy: LifecyclePolicy,
    /// Algorithm 2 decay γ.
    pub gamma: f64,
    /// Tile-allocation tie-break seed.
    pub seed: u64,
    /// Depth of each worker's bounded task queue. A dead or wedged worker
    /// can hold at most this many tiles hostage; further sends fail fast
    /// and the tiles are rerouted to live workers.
    pub task_queue_cap: usize,
    /// Structured-event sink shared by the lifecycle machine and the
    /// worker threads. The default ([`SinkHandle::null()`]) never even
    /// constructs events.
    pub sink: SinkHandle,
    /// Optional per-image critical-path attribution. When set, the sink is
    /// tee'd into the attribution fold and every [`InferOutcome`] carries
    /// its [`ImageReport`]; the handle stays shared so the caller can also
    /// pull the run aggregate.
    pub attribution: Option<Arc<AttributionSink>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            policy: LifecyclePolicy::default(),
            gamma: 0.9,
            seed: 42,
            task_queue_cap: 64,
            sink: SinkHandle::null(),
            attribution: None,
        }
    }
}

impl RuntimeConfig {
    /// Start building a validated config from the defaults.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder { cfg: RuntimeConfig::default() }
    }

    /// Check the invariants the builder enforces;
    /// [`AdcnnRuntime::launch`] re-validates so a hand-mutated config
    /// fails just as loudly.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.policy.validate()?;
        if !(self.gamma > 0.0 && self.gamma <= 1.0) {
            return Err(ConfigError::GammaOutOfRange(self.gamma));
        }
        if self.task_queue_cap == 0 {
            return Err(ConfigError::ZeroTaskQueueCap);
        }
        Ok(())
    }
}

/// Builder for [`RuntimeConfig`]; see [`RuntimeConfig::builder`]. The
/// lifecycle-policy knobs are inlined (with `Duration` ergonomics for the
/// time-valued ones) so most callers never touch the nested struct.
#[derive(Clone, Debug)]
pub struct RuntimeConfigBuilder {
    cfg: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Replace the whole lifecycle policy (e.g. one validated by
    /// [`LifecyclePolicy::builder`]).
    pub fn policy(mut self, policy: LifecyclePolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Base timer `T_L`.
    pub fn t_l(mut self, t_l: Duration) -> Self {
        self.cfg.policy.t_l = t_l.as_secs_f64();
        self
    }

    /// Deadline slack factor over the expected makespan.
    pub fn slack(mut self, slack: f64) -> Self {
        self.cfg.policy.slack = slack;
        self
    }

    /// Speculative re-dispatch rounds before zero-filling (0 disables
    /// recovery).
    pub fn max_redispatch_rounds(mut self, rounds: u32) -> Self {
        self.cfg.policy.max_redispatch_rounds = rounds;
        self
    }

    /// Absolute per-image lifetime bound.
    pub fn hard_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.policy.hard_timeout = timeout.as_secs_f64();
        self
    }

    /// When the recovery timer arms.
    pub fn timer(mut self, timer: TimerPolicy) -> Self {
        self.cfg.policy.timer = timer;
        self
    }

    /// Algorithm 2 decay γ.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.cfg.gamma = gamma;
        self
    }

    /// Tile-allocation tie-break seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Depth of each worker's bounded task queue.
    pub fn task_queue_cap(mut self, cap: usize) -> Self {
        self.cfg.task_queue_cap = cap;
        self
    }

    /// Install a structured-event sink.
    pub fn sink(mut self, sink: SinkHandle) -> Self {
        self.cfg.sink = sink;
        self
    }

    /// Attach per-image critical-path attribution. Keep a clone of the
    /// `Arc` to read the run aggregate after the fact.
    pub fn attribution(mut self, attribution: Arc<AttributionSink>) -> Self {
        self.cfg.attribution = Some(attribution);
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<RuntimeConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Result of one distributed inference.
#[derive(Debug)]
pub struct InferOutcome {
    /// The network output (logits / dense map).
    pub output: Tensor,
    /// Wall-clock end-to-end latency.
    pub latency: Duration,
    /// Tiles allocated per worker.
    pub alloc: Vec<u32>,
    /// Results received in time per worker (re-dispatched tiles credit the
    /// worker that actually delivered them).
    pub received: Vec<u32>,
    /// Tiles zero-filled after every recovery attempt failed.
    pub zero_filled: u32,
    /// Re-dispatch sends issued after the expected-makespan deadline fired
    /// (duplicate results are deduplicated by `TileKey`, so re-dispatch is
    /// always safe).
    pub redispatched: u32,
    /// Total compressed payload bits received (communication accounting).
    pub wire_bits: u64,
    /// Cumulative per-worker compute/compress timings (since launch),
    /// snapshotted when this image finished.
    pub worker_stats: Vec<WorkerStatsSnapshot>,
    /// Per-image critical-path attribution, present when
    /// [`RuntimeConfig::attribution`] was set at launch.
    pub report: Option<ImageReport>,
}

/// A dispatched-but-not-yet-collected image: the input tiles (kept so
/// missed tiles can be re-dispatched) plus its lifecycle state machine.
struct Pending {
    image_id: u64,
    start: Instant,
    tiles: Vec<Tensor>,
    lc: TileLifecycle,
}

/// Results that arrived while another image was being collected, stamped
/// with their true arrival time (draining later must not inflate the
/// Algorithm 2 rates or the makespan deadline).
type Stash = Vec<(usize, TileResult, Instant)>;

/// The live system: Central node state plus its worker threads.
pub struct AdcnnRuntime {
    grid: TileGrid,
    suffix: Network,
    task_txs: Vec<Sender<WorkerMsg>>,
    result_rx: Receiver<(usize, TileResult)>,
    handles: Vec<JoinHandle<()>>,
    worker_stats: Vec<Arc<WorkerStats>>,
    /// Reusable buffers for the suffix-network forward.
    infer_scratch: InferScratch,
    stats: StatsCollector,
    allocator: TileAllocator,
    /// Workers whose task channel is still connected. Cleared on the first
    /// failed send; a dead worker is never sent to again.
    live: Vec<bool>,
    rng: StdRng,
    cfg: RuntimeConfig,
    /// The effective event sink: `cfg.sink` tee'd with the attribution
    /// fold when one is configured.
    sink: SinkHandle,
    next_image: u64,
    /// Origin of the machine's abstract time axis: every `Instant` is
    /// expressed as seconds since this epoch before it reaches the
    /// lifecycle machine.
    epoch: Instant,
    /// Assembled boundary map dims `(C, H, W)`.
    boundary: (usize, usize, usize),
    /// Per-tile boundary dims `(C, h, w)`.
    tile_out: (usize, usize, usize),
}

impl AdcnnRuntime {
    /// Split a (retrained) [`PartitionedModel`] into Conv-node prefixes and
    /// the Central suffix, and launch one worker thread per entry of
    /// `worker_opts`.
    pub fn launch(
        model: PartitionedModel,
        worker_opts: &[WorkerOptions],
        cfg: RuntimeConfig,
    ) -> Self {
        assert!(!worker_opts.is_empty(), "need at least one worker");
        if let Err(e) = cfg.validate() {
            panic!("invalid RuntimeConfig: {e}");
        }
        for (i, opts) in worker_opts.iter().enumerate() {
            if let Err(e) = opts.validate() {
                panic!("invalid WorkerOptions for worker {i}: {e}");
            }
        }
        let k = worker_opts.len();
        let grid = model.grid;
        let prefix_net = Network::new(model.net.blocks[..model.prefix].to_vec());
        let suffix = Network::new(model.net.blocks[model.prefix..].to_vec());

        // Probe the per-tile boundary dims with a zero tile.
        let (c, h, w) = model.input;
        assert!(h % grid.rows == 0 && w % grid.cols == 0, "input {h}x{w} not divisible by {grid}");
        let mut probe_net = prefix_net.clone();
        let probe = Tensor::zeros([1, c, h / grid.rows, w / grid.cols]);
        let n_prefix = probe_net.len();
        let (out, _) = probe_net.forward_range(&probe, 0..n_prefix, false);
        let (_, oc, oh, ow) = out.shape().nchw();
        let tile_out = (oc, oh, ow);
        let boundary = (oc, oh * grid.rows, ow * grid.cols);

        let compression = model.boundary_crelu.map(|cr: ClippedRelu| Compression {
            crelu: cr,
            quantizer: Quantizer::new(
                model.boundary_quant.map(|q| q.bits).unwrap_or(4),
                cr.range(),
            ),
        });

        // The epoch — origin of the abstract time axis — must exist before
        // the workers do: they stamp their compute/compress spans against
        // it, and a span must never predate the axis.
        let epoch = Instant::now();
        // Attribution rides the same event stream as any user sink: tee it
        // in once, so the lifecycle machine and every worker share one
        // effective sink (still `null` when neither is configured).
        let sink = match &cfg.attribution {
            Some(attr) => cfg.sink.tee(attr.clone()),
            None => cfg.sink.clone(),
        };
        let (result_tx, result_rx) = unbounded();
        let mut task_txs = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);
        let mut worker_stats = Vec::with_capacity(k);
        for (i, opts) in worker_opts.iter().enumerate() {
            // Bounded queues: a worker that stops draining can absorb at
            // most `task_queue_cap` tiles before sends fail fast.
            let (tx, rx) = bounded(cfg.task_queue_cap.max(1));
            let stats = Arc::new(WorkerStats::default());
            handles.push(spawn_worker(
                i,
                prefix_net.clone(),
                compression,
                *opts,
                rx,
                result_tx.clone(),
                stats.clone(),
                sink.clone(),
                epoch,
            ));
            task_txs.push(tx);
            worker_stats.push(stats);
        }

        AdcnnRuntime {
            grid,
            suffix,
            task_txs,
            result_rx,
            handles,
            worker_stats,
            infer_scratch: InferScratch::new(),
            stats: StatsCollector::new(k, cfg.gamma),
            allocator: TileAllocator::unbounded(k),
            live: vec![true; k],
            rng: StdRng::seed_from_u64(cfg.seed),
            sink,
            cfg,
            next_image: 0,
            epoch,
            boundary,
            tile_out,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.task_txs.len()
    }

    /// Current Algorithm 2 speed estimates.
    pub fn speeds(&self) -> &[f64] {
        self.stats.speeds()
    }

    /// Which workers still have a connected task channel (supervision
    /// view). A `false` entry is a positively-detected death, not merely a
    /// slow node.
    pub fn live_workers(&self) -> &[bool] {
        &self.live
    }

    /// Replace the tile allocator (e.g. with per-worker storage caps, the
    /// Equation 1 `M·x_k ≤ H_k` constraint). Panics if the allocator does
    /// not cover exactly this runtime's workers.
    pub fn set_allocator(&mut self, allocator: TileAllocator) {
        assert_eq!(
            allocator.storage_bits.len(),
            self.workers(),
            "allocator node count must match the worker count"
        );
        self.allocator = allocator;
    }

    /// Snapshot the per-worker tile/compute/compress counters.
    pub fn worker_stats(&self) -> Vec<WorkerStatsSnapshot> {
        self.worker_stats.iter().map(|s| s.snapshot()).collect()
    }

    /// Run one image `[1, C, H, W]` through the distributed pipeline.
    pub fn infer(&mut self, x: &Tensor) -> InferOutcome {
        let pending = self.dispatch(x);
        let mut stash = Stash::new();
        self.collect(pending, &mut stash)
    }

    /// Run a stream of images with Figure 9 pipelining: the tiles of image
    /// `i+1` are dispatched before image `i`'s results are collected, so
    /// Conv nodes never starve between images.
    pub fn infer_stream(&mut self, images: &[Tensor]) -> Vec<InferOutcome> {
        let mut out = Vec::with_capacity(images.len());
        let mut stash = Stash::new();
        let mut window: std::collections::VecDeque<Pending> = Default::default();
        let mut next = 0usize;
        while out.len() < images.len() {
            while next < images.len() && window.len() < 2 {
                window.push_back(self.dispatch(&images[next]));
                next += 1;
            }
            let pending = window.pop_front().expect("window non-empty");
            out.push(self.collect(pending, &mut stash));
        }
        out
    }

    /// `Instant` → the machine's abstract seconds.
    fn rel(&self, at: Instant) -> f64 {
        at.duration_since(self.epoch).as_secs_f64()
    }

    /// Try to hand one tile to `node`'s bounded queue. On failure the task
    /// is returned for rerouting; a disconnected channel additionally marks
    /// the worker dead — speed 0 in the Algorithm 2 statistics — so the
    /// very next allocation assigns it nothing.
    fn send_to(&mut self, node: usize, task: TileTask) -> Result<(), TileTask> {
        if !self.live[node] {
            return Err(task);
        }
        match self.task_txs[node].try_send(WorkerMsg::Tile(task)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(WorkerMsg::Tile(t))) => Err(t),
            Err(TrySendError::Disconnected(WorkerMsg::Tile(t))) => {
                self.live[node] = false;
                self.stats.mark_failed(node);
                Err(t)
            }
            Err(_) => unreachable!("only Tile messages are routed through send_to"),
        }
    }

    /// Execute machine actions against the real transport. Sends that the
    /// transport refuses are fed back as [`Event::SendRejected`] (after
    /// [`Event::WorkerDied`] when the refusal revealed a disconnect), and
    /// the machine's follow-up actions join the worklist, until it drains.
    fn drive(
        &mut self,
        lc: &mut TileLifecycle,
        acts: Vec<Action>,
        image_id: u64,
        tiles: &[Tensor],
    ) {
        let mut queue: std::collections::VecDeque<Action> = acts.into();
        while let Some(act) = queue.pop_front() {
            let (tile, to, original) = match act {
                Action::Dispatch { tile, to } => (tile, to, true),
                Action::Redispatch { tile, to } => (tile, to, false),
                Action::RecordRate { worker, rate } => {
                    // The machine only observes deaths it was told about;
                    // the driver may have marked the worker failed (e.g. on
                    // a disconnect discovered for another image) after this
                    // measurement window opened. A stale observation would
                    // resurrect a starved node's EWMA.
                    if self.live[worker] {
                        self.stats.record_node(worker, rate);
                    }
                    continue;
                }
                // Timers are derived from `next_deadline()` in the collect
                // loop; zero-fill needs no work (the boundary map starts
                // zeroed); Accept is pasted where the result was decoded.
                Action::ArmDeadline { .. }
                | Action::ZeroFill { .. }
                | Action::Complete
                | Action::Accept { .. } => continue,
            };
            let task = TileTask {
                key: TileKey { image_id, tile_id: tile as u32 },
                tile: tiles[tile].clone(),
            };
            match self.send_to(to, task) {
                Ok(()) => {
                    if original {
                        // A queue handoff is "delivered" for the runtime:
                        // there is no modeled transit.
                        lc.handle(Event::TileDelivered { tile });
                    }
                }
                Err(_) => {
                    if !self.live[to] {
                        lc.handle(Event::WorkerDied { worker: to });
                    }
                    queue.extend(lc.handle(Event::SendRejected { tile, worker: to }));
                }
            }
        }
    }

    /// Feed one of this image's results into the machine: account wire
    /// bits, decode, paste on [`Action::Accept`], run everything else.
    #[allow(clippy::too_many_arguments)]
    fn ingest(
        &mut self,
        lc: &mut TileLifecycle,
        image_id: u64,
        tiles: &[Tensor],
        worker: usize,
        res: &TileResult,
        at: f64,
        assembled: &mut Tensor,
        wire_bits: &mut u64,
    ) {
        let tile = res.key.tile_id as usize;
        let mut decoded = None;
        let ok = if lc.tile_open(tile) {
            *wire_bits += res.wire_bits();
            decoded = res.to_tensor();
            decoded.is_some()
        } else {
            true // duplicate or late: the machine counts it, nothing to decode
        };
        let acts = lc.handle(Event::ResultArrived { at, tile, worker, ok });
        let mut rest = Vec::with_capacity(acts.len());
        for act in acts {
            if let Action::Accept { tile: t, .. } = act {
                let (_, th, tw) = self.tile_out;
                let tensor = decoded.take().expect("Accept without a decoded payload");
                let (gr, gc) = self.grid.tile_pos(t);
                assembled.paste_spatial(&tensor, gr * th, gc * tw);
            } else {
                rest.push(act);
            }
        }
        self.drive(lc, rest, image_id, tiles);
    }

    /// Input partition block: extract tiles, allocate with Algorithm 3,
    /// start the lifecycle machine and push its initial dispatch batch to
    /// the workers. Returns the collection state.
    fn dispatch(&mut self, x: &Tensor) -> Pending {
        let image_id = self.next_image;
        self.next_image += 1;
        let d = self.grid.tiles();
        let tiles = self.grid.extract(x);
        let alloc = self.allocator.allocate(d, self.stats.speeds(), &mut self.rng);
        let start = Instant::now();
        let (mut lc, acts) = TileLifecycle::begin_observed(
            self.cfg.policy,
            self.rel(start),
            d,
            &alloc,
            self.stats.speeds(),
            &self.live,
            image_id,
            self.sink.clone(),
        );
        self.drive(&mut lc, acts, image_id, &tiles);
        let at = self.rel(Instant::now());
        let acts = lc.handle(Event::SendComplete { at });
        self.drive(&mut lc, acts, image_id, &tiles);
        Pending { image_id, start, tiles, lc }
    }

    /// Statistics collection + reassembly + suffix for one dispatched
    /// image. Results belonging to later images land in `stash` (they are
    /// consumed when their image is collected); earlier-image stragglers
    /// are discarded.
    fn collect(&mut self, pending: Pending, stash: &mut Stash) -> InferOutcome {
        let Pending { image_id, start, tiles, mut lc } = pending;
        let k = self.workers();
        let (bc, bh, bw) = self.boundary;
        let mut assembled = Tensor::zeros([1, bc, bh, bw]);
        let mut wire_bits = 0u64;

        // First drain any stashed results for this image (they arrived
        // while a previous image was being collected). Their *stash-time*
        // instant is authoritative: drain time would inflate the makespan
        // deadline and deflate the Algorithm 2 speeds under pipelining.
        let mut i = 0;
        while i < stash.len() {
            if stash[i].1.key.image_id == image_id {
                let (worker, res, when) = stash.remove(i);
                let at = self.rel(when);
                self.ingest(
                    &mut lc,
                    image_id,
                    &tiles,
                    worker,
                    &res,
                    at,
                    &mut assembled,
                    &mut wire_bits,
                );
            } else {
                i += 1;
            }
        }

        while !lc.is_complete() {
            // The machine owns the deadline arithmetic; the driver only
            // turns `next_deadline()` into a `recv_timeout` budget.
            let limit = self.epoch + Duration::from_secs_f64(lc.next_deadline());
            let now = Instant::now();
            if now >= limit {
                // `max` guards the f64↔Duration roundtrip: the machine
                // must never see a fire time before its own deadline.
                let at = self.rel(now).max(lc.next_deadline());
                let acts = lc.handle(Event::DeadlineFired { at });
                self.drive(&mut lc, acts, image_id, &tiles);
                continue;
            }
            match self.result_rx.recv_timeout(limit - now) {
                Ok((worker, res)) => {
                    use std::cmp::Ordering;
                    let when = Instant::now();
                    match res.key.image_id.cmp(&image_id) {
                        Ordering::Less => continue, // straggler: discard
                        Ordering::Greater => stash.push((worker, res, when)), // future image
                        Ordering::Equal => {
                            let at = self.rel(when);
                            self.ingest(
                                &mut lc,
                                image_id,
                                &tiles,
                                worker,
                                &res,
                                at,
                                &mut assembled,
                                &mut wire_bits,
                            );
                        }
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue, // deadline handling above
                Err(RecvTimeoutError::Disconnected) => {
                    // Every worker thread has exited: nothing will ever
                    // arrive again.
                    for w in 0..k {
                        if self.live[w] {
                            self.live[w] = false;
                            self.stats.mark_failed(w);
                            lc.handle(Event::WorkerDied { worker: w });
                        }
                    }
                    let acts = lc.handle(Event::Abort);
                    self.drive(&mut lc, acts, image_id, &tiles);
                }
            }
        }

        // Layer computation block: the rest of the network, through the
        // allocation-free inference path with runtime-owned scratch.
        let n_suffix = self.suffix.len();
        let output = self
            .suffix
            .forward_infer_range_with(&assembled, 0..n_suffix, &mut self.infer_scratch)
            .to_tensor();
        let c = lc.counters();
        InferOutcome {
            output,
            latency: start.elapsed(),
            alloc: lc.alloc().to_vec(),
            received: c.received.clone(),
            zero_filled: c.zero_filled,
            redispatched: c.redispatched,
            wire_bits,
            worker_stats: self.worker_stats.iter().map(|s| s.snapshot()).collect(),
            report: self.cfg.attribution.as_ref().and_then(|a| a.report_for(image_id)),
        }
    }

    /// Stop all workers and join their threads.
    pub fn shutdown(mut self) {
        for tx in &self.task_txs {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for AdcnnRuntime {
    fn drop(&mut self) {
        for tx in &self.task_txs {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Replay an abstract event trace through the runtime's *time mapping* and
/// the shared lifecycle machine, returning the Debug-formatted decision
/// sequence. Every timestamp makes the same journey it makes in
/// production: abstract seconds → an `Instant` offset from an epoch → back
/// to abstract seconds at the machine boundary. The cross-driver
/// differential test asserts this sequence is byte-identical to the
/// simulator driver's (`adcnn_netsim::replay_lifecycle_trace`).
pub fn replay_lifecycle_trace(
    policy: LifecyclePolicy,
    d: usize,
    alloc: &[u32],
    speeds: &[f64],
    live: &[bool],
    trace: &[Event],
) -> Vec<String> {
    let epoch = Instant::now();
    // The production mapping, both directions (ns-grain, so millisecond
    // trace timestamps survive the roundtrip bit-exactly).
    let roundtrip = |at: f64| -> f64 {
        let instant = epoch + Duration::from_secs_f64(at);
        instant.duration_since(epoch).as_secs_f64()
    };
    let (mut lc, acts) = TileLifecycle::begin(policy, roundtrip(0.0), d, alloc, speeds, live);
    let mut out: Vec<String> = acts.iter().map(|a| format!("{a:?}")).collect();
    for ev in trace {
        let ev = match *ev {
            Event::SendComplete { at } => Event::SendComplete { at: roundtrip(at) },
            Event::ResultArrived { at, tile, worker, ok } => {
                Event::ResultArrived { at: roundtrip(at), tile, worker, ok }
            }
            Event::DeadlineFired { at } => Event::DeadlineFired { at: roundtrip(at) },
            other => other,
        };
        out.extend(lc.handle(ev).iter().map(|a| format!("{a:?}")));
    }
    out
}

/// Like [`replay_lifecycle_trace`], but returns the Debug-formatted
/// sequence of structured [`ObsEvent`](adcnn_core::obs::ObsEvent)s the
/// lifecycle machine emitted while replaying — the observability schema
/// rather than the decision stream. The cross-driver differential test
/// asserts this sequence is byte-identical to the simulator driver's
/// (`adcnn_netsim::replay_lifecycle_events`).
pub fn replay_lifecycle_events(
    policy: LifecyclePolicy,
    d: usize,
    alloc: &[u32],
    speeds: &[f64],
    live: &[bool],
    trace: &[Event],
) -> Vec<String> {
    let epoch = Instant::now();
    let roundtrip = |at: f64| -> f64 {
        let instant = epoch + Duration::from_secs_f64(at);
        instant.duration_since(epoch).as_secs_f64()
    };
    let rec = Arc::new(RecordingSink::new());
    let (mut lc, _) = TileLifecycle::begin_observed(
        policy,
        roundtrip(0.0),
        d,
        alloc,
        speeds,
        live,
        0,
        SinkHandle::new(rec.clone()),
    );
    for ev in trace {
        let ev = match *ev {
            Event::SendComplete { at } => Event::SendComplete { at: roundtrip(at) },
            Event::ResultArrived { at, tile, worker, ok } => {
                Event::ResultArrived { at: roundtrip(at), tile, worker, ok }
            }
            Event::DeadlineFired { at } => Event::DeadlineFired { at: roundtrip(at) },
            other => other,
        };
        lc.handle(ev);
    }
    rec.events().iter().map(|e| format!("{e:?}")).collect()
}

/// Like [`replay_lifecycle_events`], but folds the replayed events through
/// an [`AttributionSink`] and returns the resulting [`ImageReport`] as its
/// canonical JSON — the critical-path decision the attribution layer makes
/// from the runtime driver's time mapping. The cross-driver differential
/// test asserts this is byte-identical to the simulator driver's
/// (`adcnn_netsim::replay_lifecycle_report`). `None` if the trace never
/// finished the image.
pub fn replay_lifecycle_report(
    policy: LifecyclePolicy,
    d: usize,
    alloc: &[u32],
    speeds: &[f64],
    live: &[bool],
    trace: &[Event],
) -> Option<String> {
    let epoch = Instant::now();
    let roundtrip = |at: f64| -> f64 {
        let instant = epoch + Duration::from_secs_f64(at);
        instant.duration_since(epoch).as_secs_f64()
    };
    let attr = Arc::new(AttributionSink::new());
    let (mut lc, _) = TileLifecycle::begin_observed(
        policy,
        roundtrip(0.0),
        d,
        alloc,
        speeds,
        live,
        0,
        SinkHandle::new(attr.clone()),
    );
    for ev in trace {
        let ev = match *ev {
            Event::SendComplete { at } => Event::SendComplete { at: roundtrip(at) },
            Event::ResultArrived { at, tile, worker, ok } => {
                Event::ResultArrived { at: roundtrip(at), tile, worker, ok }
            }
            Event::DeadlineFired { at } => Event::DeadlineFired { at: roundtrip(at) },
            other => other,
        };
        lc.handle(ev);
    }
    attr.report_for(0).map(|r| r.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcnn_nn::layer::QuantizeSte;
    use adcnn_nn::small::shapes_cnn;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn build_model(seed: u64, grid: TileGrid) -> PartitionedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let cr = ClippedRelu::new(0.0, 2.0);
        PartitionedModel::fdsp(shapes_cnn(6, &mut rng), grid)
            .with_crelu(cr)
            .with_quant(QuantizeSte::new(4, cr.range()))
    }

    fn rand_image(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn([1, 3, 32, 32], 0.5, &mut rng)
    }

    /// The default config with a different `T_L` grace (the old
    /// `RuntimeConfig::with_t_l` shorthand, through the builder).
    fn cfg_t_l(ms: u64) -> RuntimeConfig {
        RuntimeConfig::builder().t_l(Duration::from_millis(ms)).build().unwrap()
    }

    #[test]
    fn builder_validates_and_surfaces_typed_errors() {
        let cfg = RuntimeConfig::builder()
            .t_l(Duration::from_millis(25))
            .slack(2.0)
            .max_redispatch_rounds(1)
            .hard_timeout(Duration::from_secs(3))
            .timer(TimerPolicy::AfterSend)
            .gamma(0.8)
            .seed(7)
            .task_queue_cap(16)
            .build()
            .unwrap();
        assert_eq!(cfg.policy.t_l, 0.025);
        assert_eq!(cfg.policy.slack, 2.0);
        assert_eq!(cfg.policy.max_redispatch_rounds, 1);
        assert_eq!(cfg.policy.hard_timeout, 3.0);
        assert_eq!(cfg.policy.timer, TimerPolicy::AfterSend);
        assert_eq!((cfg.gamma, cfg.seed, cfg.task_queue_cap), (0.8, 7, 16));
        assert!(!cfg.sink.enabled());
        assert_eq!(
            RuntimeConfig::builder().gamma(0.0).build().unwrap_err(),
            ConfigError::GammaOutOfRange(0.0)
        );
        assert_eq!(
            RuntimeConfig::builder().gamma(1.5).build().unwrap_err(),
            ConfigError::GammaOutOfRange(1.5)
        );
        assert_eq!(
            RuntimeConfig::builder().task_queue_cap(0).build().unwrap_err(),
            ConfigError::ZeroTaskQueueCap
        );
        assert_eq!(
            RuntimeConfig::builder().slack(0.5).build().unwrap_err(),
            ConfigError::SlackBelowOne(0.5)
        );
    }

    #[test]
    fn distributed_matches_local_partitioned_model() {
        let grid = TileGrid::new(2, 2);
        let mut local = build_model(5, grid);
        let model = build_model(5, grid); // identical weights (same seed)
        let mut rt =
            AdcnnRuntime::launch(model, &[WorkerOptions::default(); 3], RuntimeConfig::default());
        for s in 0..3 {
            let x = rand_image(100 + s);
            let want = local.infer(&x);
            let out = rt.infer(&x);
            assert_eq!(out.zero_filled, 0, "dropped tiles: {:?}", out.received);
            assert!(
                out.output.approx_eq(&want, 2e-3),
                "distributed output diverges from local model"
            );
        }
        rt.shutdown();
    }

    #[test]
    fn allocation_adapts_to_slow_worker() {
        let grid = TileGrid::new(4, 4);
        let model = build_model(7, grid);
        // The slow worker's per-tile time must exceed T_L so its stragglers
        // miss the idle-gap deadline and Algorithm 2 marks it slow.
        let opts = [
            WorkerOptions::default(),
            WorkerOptions::default(),
            WorkerOptions { artificial_delay: Duration::from_millis(100), ..Default::default() },
        ];
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg_t_l(50));
        let mut last_alloc = vec![0u32; 3];
        for s in 0..6 {
            let out = rt.infer(&rand_image(s));
            last_alloc = out.alloc.clone();
        }
        // the slow worker must end up with fewer tiles than the fast ones
        assert!(
            last_alloc[2] < last_alloc[0] && last_alloc[2] < last_alloc[1],
            "allocation did not adapt: {last_alloc:?} (speeds {:?})",
            rt.speeds()
        );
        rt.shutdown();
    }

    #[test]
    fn failed_worker_tiles_recovered_by_redispatch_then_starved() {
        // A worker that goes silent from tile 0 used to cost one image's
        // worth of zero-filled tiles (§6.3); the lifecycle machine now
        // recovers them through re-dispatch well before the hard timeout.
        let grid = TileGrid::new(4, 4);
        let model = build_model(9, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions { fail_after_tiles: Some(0), ..Default::default() },
        ];
        let cfg = cfg_t_l(50);
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg.clone());
        let first = rt.infer(&rand_image(1));
        assert_eq!(first.zero_filled, 0, "re-dispatch should recover every tile");
        assert!(first.redispatched > 0, "dead worker's tiles must be re-dispatched");
        assert!(
            first.latency.as_secs_f64() < cfg.policy.hard_timeout / 2.0,
            "recovery must not wait for the hard timeout: {:?}",
            first.latency
        );
        assert_eq!(first.output.dims()[0], 1); // output still produced
        for s in 2..6 {
            rt.infer(&rand_image(s));
        }
        let last = rt.infer(&rand_image(99));
        assert_eq!(last.alloc[1], 0, "dead worker still allocated: {:?}", last.alloc);
        assert_eq!(last.zero_filled, 0, "steady state should not drop");
        assert_eq!(last.redispatched, 0, "steady state should not re-dispatch");
        rt.shutdown();
    }

    #[test]
    fn zero_fill_fallback_when_redispatch_disabled() {
        // `max_redispatch_rounds: 0` restores the paper's pure zero-fill
        // policy: a silent worker's tiles are dropped, not recovered.
        let grid = TileGrid::new(4, 4);
        let model = build_model(9, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions { fail_after_tiles: Some(0), ..Default::default() },
        ];
        let cfg = RuntimeConfig::builder()
            .t_l(Duration::from_millis(50))
            .max_redispatch_rounds(0)
            .build()
            .unwrap();
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg);
        let first = rt.infer(&rand_image(1));
        assert!(first.zero_filled > 0, "zero-fill policy should drop the dead worker's tiles");
        assert_eq!(first.redispatched, 0);
        rt.shutdown();
    }

    #[test]
    fn worker_killed_mid_image_recovers_without_hard_timeout() {
        // The fault-injection acceptance scenario: the worker processes a
        // few tiles of the image, then dies. Its remaining tiles must come
        // back through re-dispatch, not zero-fill.
        let grid = TileGrid::new(4, 4);
        let mut local = build_model(15, grid);
        let model = build_model(15, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions { fail_after_tiles: Some(3), ..Default::default() },
        ];
        let cfg = cfg_t_l(50);
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg.clone());
        let x = rand_image(7);
        let want = local.infer(&x);
        let out = rt.infer(&x);
        assert_eq!(out.zero_filled, 0, "mid-image death must be recovered: {:?}", out.received);
        assert!(out.redispatched > 0, "expected re-dispatched tiles");
        assert!(
            out.latency.as_secs_f64() < cfg.policy.hard_timeout / 2.0,
            "recovery waited too long: {:?}",
            out.latency
        );
        assert!(out.output.approx_eq(&want, 2e-3), "recovered output diverges");
        rt.shutdown();
    }

    #[test]
    fn disconnected_worker_detected_eagerly_and_rerouted() {
        // `disconnect_on_fail` drops the worker's task channel; from the
        // next dispatch on, sends fail fast, the worker is marked dead
        // (speed 0) and its tiles are rerouted without any deadline.
        let grid = TileGrid::new(4, 4);
        let model = build_model(19, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions {
                fail_after_tiles: Some(2),
                disconnect_on_fail: true,
                ..Default::default()
            },
        ];
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg_t_l(50));
        let first = rt.infer(&rand_image(1));
        assert_eq!(first.zero_filled, 0, "death mid-image must be recovered");
        // By the next image the disconnect has been observed: the worker
        // is supervised out and everything routes to the live one.
        let second = rt.infer(&rand_image(2));
        assert_eq!(second.zero_filled, 0);
        assert!(!rt.live_workers()[1], "disconnect not detected");
        assert_eq!(rt.speeds()[1], 0.0, "dead worker's speed must be zeroed");
        let third = rt.infer(&rand_image(3));
        assert_eq!(third.alloc[1], 0, "dead worker still allocated: {:?}", third.alloc);
        assert_eq!(third.redispatched, 0, "steady state needs no recovery");
        rt.shutdown();
    }

    #[test]
    fn corrupt_payloads_are_recovered_by_redispatch() {
        // Every payload from worker 1 fails to decode; the tiles must be
        // re-dispatched to worker 0 and the image completed cleanly.
        let grid = TileGrid::new(2, 2);
        let mut local = build_model(25, grid);
        let model = build_model(25, grid);
        let opts =
            [WorkerOptions::default(), WorkerOptions { corrupt_prob: 1.0, ..Default::default() }];
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg_t_l(50));
        let x = rand_image(9);
        let want = local.infer(&x);
        let out = rt.infer(&x);
        assert_eq!(out.zero_filled, 0, "corrupt tiles must be recovered");
        assert!(out.redispatched > 0);
        assert!(out.output.approx_eq(&want, 2e-3));
        rt.shutdown();
    }

    #[test]
    fn storage_capped_dispatch_completes_without_hanging() {
        // Regression: a storage-capped allocator returning Σ alloc < d made
        // the seed's round-robin assignment loop spin forever. The
        // shortfall must now zero-fill immediately.
        let grid = TileGrid::new(4, 4); // d = 16
        let model = build_model(33, grid);
        let mut rt =
            AdcnnRuntime::launch(model, &[WorkerOptions::default(); 2], RuntimeConfig::default());
        // Each worker can hold 3 tiles: only 6 of 16 are schedulable.
        rt.set_allocator(TileAllocator::with_storage(100, vec![300, 300]));
        let out = rt.infer(&rand_image(3));
        assert_eq!(out.alloc.iter().sum::<u32>(), 6);
        assert_eq!(out.zero_filled, 10, "shortfall must be dropped: {:?}", out.alloc);
        assert_eq!(out.redispatched, 0, "unschedulable tiles must not be re-dispatched");
        assert!(
            out.latency < Duration::from_secs(2),
            "storage shortfall must not stall: {:?}",
            out.latency
        );
        rt.shutdown();
    }

    #[test]
    fn worker_stats_surface_in_outcome() {
        let grid = TileGrid::new(2, 2);
        let model = build_model(31, grid);
        let mut rt =
            AdcnnRuntime::launch(model, &[WorkerOptions::default(); 2], RuntimeConfig::default());
        let out = rt.infer(&rand_image(4));
        assert_eq!(out.worker_stats.len(), 2);
        if out.zero_filled == 0 && out.redispatched == 0 {
            let total: u64 = out.worker_stats.iter().map(|s| s.tiles).sum();
            assert_eq!(total, 4, "every received tile must be counted");
            assert!(out.worker_stats.iter().any(|s| s.compute_ns > 0));
            assert!(out.worker_stats.iter().any(|s| s.compress_ns > 0));
        }
        let again = rt.infer(&rand_image(5));
        let t1: u64 = out.worker_stats.iter().map(|s| s.tiles).sum();
        let t2: u64 = again.worker_stats.iter().map(|s| s.tiles).sum();
        assert!(t2 > t1, "counters must accumulate across images");
        assert_eq!(rt.worker_stats().len(), 2);
        rt.shutdown();
    }

    #[test]
    fn wire_bits_shrink_with_compression() {
        let grid = TileGrid::new(2, 2);
        // Compressed model (tight clipped ReLU -> sparse)
        let model = build_model(11, grid);
        let mut rt =
            AdcnnRuntime::launch(model, &[WorkerOptions::default(); 2], RuntimeConfig::default());
        let out = rt.infer(&rand_image(3));
        let raw_bits = (16 * 16 * 16 * 4) as u64 * 32; // boundary map at f32
        assert!(out.wire_bits > 0);
        assert!(
            out.wire_bits < raw_bits,
            "compression ineffective: {} vs {raw_bits}",
            out.wire_bits
        );
        rt.shutdown();
    }

    #[test]
    fn image_ids_keep_results_separated() {
        // Run several images back-to-back; stragglers from image i must not
        // corrupt image i+1 (exercised by a slow worker + short timeout).
        let grid = TileGrid::new(2, 2);
        let model = build_model(13, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions { artificial_delay: Duration::from_millis(30), ..Default::default() },
        ];
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg_t_l(10));
        let mut local = build_model(13, grid);
        let x = rand_image(42);
        let want = local.infer(&x);
        // warm-up images that will leave stragglers in flight
        for s in 0..3 {
            rt.infer(&rand_image(s));
        }
        // let the allocator starve the slow worker, then verify correctness
        for _ in 0..3 {
            rt.infer(&x);
        }
        let out = rt.infer(&x);
        if out.zero_filled == 0 {
            assert!(out.output.approx_eq(&want, 2e-3));
        }
        rt.shutdown();
    }

    #[test]
    fn random_inputs_never_panic() {
        let grid = TileGrid::new(2, 2);
        let model = build_model(17, grid);
        let mut rt =
            AdcnnRuntime::launch(model, &[WorkerOptions::default(); 4], RuntimeConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            let x = Tensor::rand_uniform([1, 3, 32, 32], -2.0, 2.0, &mut rng);
            let out = rt.infer(&x);
            assert_eq!(out.output.dims(), &[1, 6]);
            let _ = rng.gen::<u32>();
        }
        rt.shutdown();
    }

    #[test]
    fn lossy_worker_never_loses_tiles() {
        // Per-tile drop probability on one worker: every swallowed result
        // must come back through a re-dispatch round.
        let grid = TileGrid::new(4, 4);
        let model = build_model(37, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions { drop_prob: 0.5, fault_seed: 3, ..Default::default() },
        ];
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg_t_l(50));
        let mut total_redispatched = 0u32;
        for s in 0..4 {
            let out = rt.infer(&rand_image(200 + s));
            assert_eq!(out.zero_filled, 0, "lossy worker must be recovered, image {s}");
            total_redispatched += out.redispatched;
        }
        assert!(total_redispatched > 0, "a 50% lossy worker must trigger recovery");
        rt.shutdown();
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use adcnn_core::fdsp::TileGrid;
    use adcnn_core::ClippedRelu;
    use adcnn_nn::layer::QuantizeSte;
    use adcnn_nn::small::shapes_cnn;
    use adcnn_retrain::PartitionedModel;
    use rand::{rngs::StdRng, SeedableRng};

    fn build_model(seed: u64, grid: TileGrid) -> PartitionedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let cr = ClippedRelu::new(0.0, 2.0);
        PartitionedModel::fdsp(shapes_cnn(6, &mut rng), grid)
            .with_crelu(cr)
            .with_quant(QuantizeSte::new(4, cr.range()))
    }

    fn rand_images(n: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Tensor::randn([1, 3, 32, 32], 0.5, &mut rng)).collect()
    }

    fn cfg_t_l(ms: u64) -> RuntimeConfig {
        RuntimeConfig::builder().t_l(Duration::from_millis(ms)).build().unwrap()
    }

    #[test]
    fn stream_matches_sequential_outputs() {
        let grid = TileGrid::new(2, 2);
        let images = rand_images(6, 77);
        // sequential reference
        let mut rt_seq = AdcnnRuntime::launch(
            build_model(21, grid),
            &[WorkerOptions::default(); 3],
            RuntimeConfig::default(),
        );
        let seq: Vec<Tensor> = images.iter().map(|x| rt_seq.infer(x).output).collect();
        rt_seq.shutdown();
        // streamed
        let mut rt = AdcnnRuntime::launch(
            build_model(21, grid),
            &[WorkerOptions::default(); 3],
            RuntimeConfig::default(),
        );
        let stream = rt.infer_stream(&images);
        rt.shutdown();
        assert_eq!(stream.len(), 6);
        for (s, r) in stream.iter().zip(&seq) {
            assert_eq!(s.zero_filled, 0);
            assert!(s.output.approx_eq(r, 1e-4), "streamed output diverged");
        }
    }

    #[test]
    fn stream_interleaves_without_cross_talk() {
        // Distinct images must map to their own outputs even when results
        // of consecutive images interleave on the shared result channel.
        let grid = TileGrid::new(4, 4);
        let images = rand_images(8, 91);
        let mut local = build_model(23, grid);
        let want: Vec<Tensor> = images.iter().map(|x| local.infer(x)).collect();
        let mut rt = AdcnnRuntime::launch(
            build_model(23, grid),
            &[WorkerOptions::default(); 4],
            RuntimeConfig::default(),
        );
        let got = rt.infer_stream(&images);
        rt.shutdown();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.zero_filled, 0);
            assert!(g.output.approx_eq(w, 2e-3));
        }
    }

    #[test]
    fn probe_window_favors_faster_worker() {
        // Nobody misses the deadline here — the fast worker simply returns
        // more results inside the T_L probe window, and Algorithm 3 should
        // reward it with more tiles (the paper's throughput semantics).
        let grid = TileGrid::new(4, 4);
        let model = build_model(41, grid);
        let workers = [
            WorkerOptions::default(),
            WorkerOptions { artificial_delay: Duration::from_millis(15), ..Default::default() },
            WorkerOptions { artificial_delay: Duration::from_millis(15), ..Default::default() },
        ];
        let mut rt = AdcnnRuntime::launch(model, &workers, cfg_t_l(50));
        let images = rand_images(8, 17);
        let got = rt.infer_stream(&images);
        let last = got.last().unwrap();
        assert!(
            last.alloc[0] > last.alloc[1] && last.alloc[0] > last.alloc[2],
            "fast worker not favored: {:?} (speeds {:?})",
            last.alloc,
            rt.speeds()
        );
        rt.shutdown();
    }

    #[test]
    fn stream_survives_failed_worker() {
        let grid = TileGrid::new(2, 2);
        let images = rand_images(8, 13);
        let workers = [
            WorkerOptions::default(),
            WorkerOptions { fail_after_tiles: Some(2), ..Default::default() },
        ];
        let mut rt = AdcnnRuntime::launch(build_model(29, grid), &workers, cfg_t_l(40));
        let got = rt.infer_stream(&images);
        rt.shutdown();
        assert_eq!(got.len(), 8);
        // the crash is absorbed by re-dispatch, never by zero-fill …
        assert!(got.iter().all(|o| o.zero_filled == 0), "no image may lose tiles");
        assert!(got.iter().any(|o| o.redispatched > 0), "the crash must trigger recovery");
        // … and the statistics still starve the dead worker out
        assert_eq!(got.last().unwrap().alloc[1], 0);
        assert_eq!(got.last().unwrap().redispatched, 0);
    }

    #[test]
    fn stream_stays_correct_when_duplicates_race_stashed_originals() {
        // A jittery-slow worker makes the deadline fire while its originals
        // are still in flight: the duplicate (re-dispatched) results race
        // the originals across consecutive pipelined images, and both can
        // land in the stash of the *next* image's collection. Outputs must
        // match the local model whenever nothing was zero-filled.
        let grid = TileGrid::new(2, 2);
        let images = rand_images(8, 57);
        let mut local = build_model(47, grid);
        let want: Vec<Tensor> = images.iter().map(|x| local.infer(x)).collect();
        let workers = [
            WorkerOptions::default(),
            WorkerOptions {
                artificial_delay: Duration::from_millis(20),
                delay_jitter: Duration::from_millis(20),
                fault_seed: 11,
                ..Default::default()
            },
        ];
        let mut rt = AdcnnRuntime::launch(build_model(47, grid), &workers, cfg_t_l(10));
        let got = rt.infer_stream(&images);
        rt.shutdown();
        assert!(
            got.iter().any(|o| o.redispatched > 0),
            "scenario must actually exercise re-dispatch: {:?}",
            got.iter().map(|o| o.redispatched).collect::<Vec<_>>()
        );
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            if g.zero_filled == 0 {
                assert!(
                    g.output.approx_eq(w, 2e-3),
                    "image {i} diverged despite full tile set (redispatched {})",
                    g.redispatched
                );
            }
        }
    }
}
