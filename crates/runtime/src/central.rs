//! The Central node (§6.1, Figure 8): input partition block, statistics
//! collection block, and layer computation block, driving real worker
//! threads behind a pipelined admission queue.
//!
//! All tile-lifecycle *decisions* — the expected-makespan deadline,
//! speculative re-dispatch rounds, zero-fill, duplicate handling and the
//! Algorithm 2 measurement cutoff — live in the shared sans-IO state
//! machine, [`adcnn_core::lifecycle::TileLifecycle`]. This module is the
//! wall-clock *driver*: it maps `Instant`s onto the machine's abstract
//! seconds (via a per-runtime epoch), crossbeam channel sends onto
//! [`Dispatch`](adcnn_core::lifecycle::Action::Dispatch)/
//! [`Redispatch`](adcnn_core::lifecycle::Action::Redispatch) actions, and
//! `recv_timeout` onto the machine's `next_deadline()`. The network
//! simulator (`adcnn-netsim`) drives the *same* machine from simulated
//! timestamps, so simulated and real scheduling decisions cannot drift.
//! See DESIGN.md §11 for the policy/mechanism split, §10 for the
//! lifecycle policy itself, and §14 for the pipeline architecture.
//!
//! # Pipeline
//!
//! Caller threads [`submit`](AdcnnRuntime::submit) images into a bounded
//! intake queue ([`RuntimeConfig::intake_cap`]; a full queue blocks the
//! submitter — backpressure, not an unbounded buffer) and receive an
//! [`InferHandle`] per image. A single collector thread admits up to
//! [`RuntimeConfig::pipeline_depth`] images in flight at once — each
//! owning its own [`TileLifecycle`] instance — demultiplexes the shared
//! worker result channel by image id to the owning lifecycle, and
//! resolves each handle with its own image's [`InferOutcome`] the moment
//! that image completes, regardless of submission order (out-of-order
//! completion). [`infer`](AdcnnRuntime::infer) and
//! [`infer_stream`](AdcnnRuntime::infer_stream) are thin wrappers over
//! `submit`/`wait`: the pipeline is the only lifecycle driver in the
//! runtime.
//!
//! Worker death is detected eagerly — a failed send on a worker's
//! (bounded) task queue marks it dead in the Algorithm 2 statistics and
//! feeds [`WorkerDied`](adcnn_core::lifecycle::Event::WorkerDied)/
//! [`SendRejected`](adcnn_core::lifecycle::Event::SendRejected) back into
//! the machine, which reroutes the tile immediately — so a crashed node
//! costs one deadline, not an accuracy loss.

use crate::transport::{
    prefix_and_compression, RemoteCluster, RemoteModelSpec, TransportHooks, WorkerListener,
};
use crate::worker::{
    spawn_worker, Compression, WorkerMsg, WorkerOptions, WorkerStats, WorkerStatsSnapshot,
};
use adcnn_core::config::ConfigError;
use adcnn_core::fdsp::TileGrid;
use adcnn_core::lifecycle::{Action, Event, LifecyclePolicy, TileLifecycle, TimerPolicy};
use adcnn_core::obs::{ObsEvent, RecordingSink, SinkHandle};
use adcnn_core::report::{AttributionSink, ImageReport};
use adcnn_core::sched::{StatsCollector, TileAllocator};
use adcnn_core::wire::{TileKey, TileResult, TileTask};
use adcnn_nn::infer::InferScratch;
use adcnn_nn::Network;
use adcnn_retrain::PartitionedModel;
use adcnn_tensor::Tensor;
use crossbeam::channel::{
    bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError,
};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Central-node configuration: the shared [`LifecyclePolicy`] (deadline
/// slack, `T_L`, re-dispatch rounds, hard timeout, timer interpretation)
/// plus the runtime-only transport/statistics knobs and the observability
/// sink both the Central node and its workers emit into.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// The shared tile-lifecycle policy — identical in meaning to the
    /// simulator's copy in `AdcnnSimConfig`, so a plan validated there
    /// runs under the same decisions here.
    pub policy: LifecyclePolicy,
    /// Algorithm 2 decay γ.
    pub gamma: f64,
    /// Tile-allocation tie-break seed.
    pub seed: u64,
    /// Depth of each worker's bounded task queue. A dead or wedged worker
    /// can hold at most this many tiles hostage; further sends fail fast
    /// and the tiles are rerouted to live workers.
    pub task_queue_cap: usize,
    /// Maximum images in flight at once, each with its own
    /// [`TileLifecycle`]. The default of 1 is the paper's
    /// dispatch-merge-dispatch loop (and keeps re-dispatch recovery as
    /// strong as the serial runtime: no concurrent image drains a faulty
    /// worker between an image's dispatch and its recovery rounds); 2
    /// matches the Figure 9 pipelining window (image `i+1` dispatched
    /// before image `i` merges); higher depths trade per-image latency
    /// for sustained images/s.
    pub pipeline_depth: usize,
    /// Capacity of the admission queue between `submit` callers and the
    /// collector. A full queue blocks `submit` (backpressure) and makes
    /// `try_submit` return `None`.
    pub intake_cap: usize,
    /// Structured-event sink shared by the lifecycle machine and the
    /// worker threads. The default ([`SinkHandle::null()`]) never even
    /// constructs events.
    pub sink: SinkHandle,
    /// Optional per-image critical-path attribution. When set, the sink is
    /// tee'd into the attribution fold and every [`InferOutcome`] carries
    /// its [`ImageReport`]; the handle stays shared so the caller can also
    /// pull the run aggregate.
    pub attribution: Option<Arc<AttributionSink>>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            policy: LifecyclePolicy::default(),
            gamma: 0.9,
            seed: 42,
            task_queue_cap: 64,
            pipeline_depth: 1,
            intake_cap: 16,
            sink: SinkHandle::null(),
            attribution: None,
        }
    }
}

impl RuntimeConfig {
    /// Start building a validated config from the defaults.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder { cfg: RuntimeConfig::default() }
    }

    /// Check the invariants the builder enforces;
    /// [`AdcnnRuntime::launch`] re-validates so a hand-mutated config
    /// fails just as loudly.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.policy.validate()?;
        if !(self.gamma > 0.0 && self.gamma <= 1.0) {
            return Err(ConfigError::GammaOutOfRange(self.gamma));
        }
        if self.task_queue_cap == 0 {
            return Err(ConfigError::ZeroTaskQueueCap);
        }
        if self.pipeline_depth == 0 {
            return Err(ConfigError::ZeroPipelineDepth);
        }
        if self.intake_cap == 0 {
            return Err(ConfigError::ZeroIntakeCap);
        }
        Ok(())
    }
}

/// Builder for [`RuntimeConfig`]; see [`RuntimeConfig::builder`]. The
/// lifecycle-policy knobs are inlined (with `Duration` ergonomics for the
/// time-valued ones) so most callers never touch the nested struct.
#[derive(Clone, Debug)]
pub struct RuntimeConfigBuilder {
    cfg: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Replace the whole lifecycle policy (e.g. one validated by
    /// [`LifecyclePolicy::builder`]).
    pub fn policy(mut self, policy: LifecyclePolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Base timer `T_L`.
    pub fn t_l(mut self, t_l: Duration) -> Self {
        self.cfg.policy.t_l = t_l.as_secs_f64();
        self
    }

    /// Deadline slack factor over the expected makespan.
    pub fn slack(mut self, slack: f64) -> Self {
        self.cfg.policy.slack = slack;
        self
    }

    /// Speculative re-dispatch rounds before zero-filling (0 disables
    /// recovery).
    pub fn max_redispatch_rounds(mut self, rounds: u32) -> Self {
        self.cfg.policy.max_redispatch_rounds = rounds;
        self
    }

    /// Absolute per-image lifetime bound.
    pub fn hard_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.policy.hard_timeout = timeout.as_secs_f64();
        self
    }

    /// When the recovery timer arms.
    pub fn timer(mut self, timer: TimerPolicy) -> Self {
        self.cfg.policy.timer = timer;
        self
    }

    /// Algorithm 2 decay γ.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.cfg.gamma = gamma;
        self
    }

    /// Tile-allocation tie-break seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Depth of each worker's bounded task queue.
    pub fn task_queue_cap(mut self, cap: usize) -> Self {
        self.cfg.task_queue_cap = cap;
        self
    }

    /// Maximum images in flight at once.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.cfg.pipeline_depth = depth;
        self
    }

    /// Capacity of the admission queue (backpressure bound).
    pub fn intake_cap(mut self, cap: usize) -> Self {
        self.cfg.intake_cap = cap;
        self
    }

    /// Install a structured-event sink.
    pub fn sink(mut self, sink: SinkHandle) -> Self {
        self.cfg.sink = sink;
        self
    }

    /// Attach per-image critical-path attribution. Keep a clone of the
    /// `Arc` to read the run aggregate after the fact.
    pub fn attribution(mut self, attribution: Arc<AttributionSink>) -> Self {
        self.cfg.attribution = Some(attribution);
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<RuntimeConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Result of one distributed inference.
#[derive(Debug)]
pub struct InferOutcome {
    /// The network output (logits / dense map).
    pub output: Tensor,
    /// The image id this outcome belongs to (matches
    /// [`InferHandle::image`]).
    pub image: u64,
    /// Time spent waiting in the admission queue before the collector
    /// admitted the image.
    pub queued: Duration,
    /// Wall-clock end-to-end latency from admission to merge (excludes
    /// `queued`, so it is comparable across pipeline depths).
    pub latency: Duration,
    /// Tiles allocated per worker.
    pub alloc: Vec<u32>,
    /// Results received in time per worker (re-dispatched tiles credit the
    /// worker that actually delivered them).
    pub received: Vec<u32>,
    /// Tiles zero-filled after every recovery attempt failed.
    pub zero_filled: u32,
    /// Re-dispatch sends issued after the expected-makespan deadline fired
    /// (duplicate results are deduplicated by `TileKey`, so re-dispatch is
    /// always safe).
    pub redispatched: u32,
    /// Total compressed payload bits received (communication accounting).
    pub wire_bits: u64,
    /// Cumulative per-worker compute/compress timings (since launch),
    /// snapshotted when this image finished.
    pub worker_stats: Vec<WorkerStatsSnapshot>,
    /// Per-image critical-path attribution, present when
    /// [`RuntimeConfig::attribution`] was set at launch.
    pub report: Option<ImageReport>,
}

/// One image waiting in the admission queue: the input plus the reply
/// channel its [`InferHandle`] waits on.
struct Submission {
    image_id: u64,
    x: Tensor,
    queued_at: Instant,
    reply: Sender<InferOutcome>,
}

/// A claim on one submitted image's future [`InferOutcome`]. Handles
/// resolve out of order: each waits only for its own image, not for
/// earlier submissions.
#[derive(Debug)]
pub struct InferHandle {
    image_id: u64,
    rx: Receiver<InferOutcome>,
}

impl InferHandle {
    /// The image id this handle will resolve with
    /// ([`InferOutcome::image`] on the delivered outcome is equal).
    pub fn image(&self) -> u64 {
        self.image_id
    }

    /// Block until this image completes. Exactly one outcome is ever
    /// delivered per handle; dropping the handle instead discards the
    /// outcome without stalling the pipeline.
    pub fn wait(self) -> InferOutcome {
        self.rx.recv().expect("collector thread exited before resolving this image")
    }
}

/// State shared between submitter threads, accessor methods and the
/// collector thread.
struct Shared {
    /// Algorithm 2 statistics (EWMA speeds). The collector updates them
    /// per result; accessors snapshot them.
    stats: Mutex<StatsCollector>,
    /// Algorithm 3 allocator; replaceable at runtime via
    /// [`AdcnnRuntime::set_allocator`].
    allocator: Mutex<TileAllocator>,
    /// Workers whose task channel is still connected. Cleared on the first
    /// failed send; a dead worker is never sent to again.
    live: Vec<AtomicBool>,
    /// Images currently admitted (gauge mirrored by
    /// [`ObsEvent::ImageAdmitted`]/[`ObsEvent::ImageRetired`]).
    inflight: AtomicUsize,
    /// Submissions sitting in the admission queue.
    queued: AtomicUsize,
}

/// An admitted image: its input tiles (kept so missed tiles can be
/// re-dispatched), its own lifecycle machine, and its partially assembled
/// boundary map.
struct InFlight {
    image_id: u64,
    queued_at: Instant,
    start: Instant,
    tiles: Vec<Tensor>,
    lc: TileLifecycle,
    assembled: Tensor,
    wire_bits: u64,
    reply: Sender<InferOutcome>,
}

/// The collector thread: the single lifecycle driver in the runtime. It
/// admits images from the intake queue (up to `depth` at once),
/// demultiplexes worker results by image id, turns the earliest
/// `next_deadline()` across all in-flight images into a `recv_timeout`
/// budget, and resolves each image's reply channel on completion.
struct Collector {
    grid: TileGrid,
    suffix: Network,
    /// Reusable buffers for the suffix-network forward.
    infer_scratch: InferScratch,
    task_txs: Vec<Sender<WorkerMsg>>,
    result_rx: Receiver<(usize, TileResult)>,
    worker_stats: Vec<Arc<WorkerStats>>,
    shared: Arc<Shared>,
    rng: StdRng,
    policy: LifecyclePolicy,
    depth: usize,
    attribution: Option<Arc<AttributionSink>>,
    /// The effective event sink: the user sink tee'd with the attribution
    /// fold when one is configured.
    sink: SinkHandle,
    /// Origin of the machine's abstract time axis: every `Instant` is
    /// expressed as seconds since this epoch before it reaches the
    /// lifecycle machine.
    epoch: Instant,
    /// Assembled boundary map dims `(C, H, W)`.
    boundary: (usize, usize, usize),
    /// Per-tile boundary dims `(C, h, w)`.
    tile_out: (usize, usize, usize),
    intake_rx: Receiver<Submission>,
}

impl Collector {
    /// `Instant` → the machine's abstract seconds.
    fn rel(&self, at: Instant) -> f64 {
        at.duration_since(self.epoch).as_secs_f64()
    }

    /// Try to hand one tile to `node`'s bounded queue. On failure the task
    /// is returned for rerouting; a disconnected channel additionally marks
    /// the worker dead — speed 0 in the Algorithm 2 statistics — so the
    /// very next allocation assigns it nothing.
    fn send_to(&mut self, node: usize, task: TileTask) -> Result<(), TileTask> {
        if !self.shared.live[node].load(Ordering::Relaxed) {
            return Err(task);
        }
        match self.task_txs[node].try_send(WorkerMsg::Tile(task)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(WorkerMsg::Tile(t))) => Err(t),
            Err(TrySendError::Disconnected(WorkerMsg::Tile(t))) => {
                self.shared.live[node].store(false, Ordering::Relaxed);
                self.shared.stats.lock().mark_failed(node);
                Err(t)
            }
            Err(_) => unreachable!("only Tile messages are routed through send_to"),
        }
    }

    /// Execute machine actions against the real transport. Sends that the
    /// transport refuses are fed back as [`Event::SendRejected`] (after
    /// [`Event::WorkerDied`] when the refusal revealed a disconnect), and
    /// the machine's follow-up actions join the worklist, until it drains.
    fn drive(
        &mut self,
        lc: &mut TileLifecycle,
        acts: Vec<Action>,
        image_id: u64,
        tiles: &[Tensor],
    ) {
        let mut queue: std::collections::VecDeque<Action> = acts.into();
        while let Some(act) = queue.pop_front() {
            let (tile, to, original) = match act {
                Action::Dispatch { tile, to } => (tile, to, true),
                Action::Redispatch { tile, to } => (tile, to, false),
                Action::RecordRate { worker, rate } => {
                    // The machine only observes deaths it was told about;
                    // the driver may have marked the worker failed (e.g. on
                    // a disconnect discovered for another image) after this
                    // measurement window opened. A stale observation would
                    // resurrect a starved node's EWMA.
                    if self.shared.live[worker].load(Ordering::Relaxed) {
                        self.shared.stats.lock().record_node(worker, rate);
                    }
                    continue;
                }
                // Timers are derived from `next_deadline()` in the run
                // loop; zero-fill needs no work (the boundary map starts
                // zeroed); Accept is pasted where the result was decoded.
                Action::ArmDeadline { .. }
                | Action::ZeroFill { .. }
                | Action::Complete
                | Action::Accept { .. } => continue,
            };
            let task = TileTask {
                key: TileKey { image_id, tile_id: tile as u32 },
                tile: tiles[tile].clone(),
            };
            match self.send_to(to, task) {
                Ok(()) => {
                    if original {
                        // A queue handoff is "delivered" for the runtime:
                        // there is no modeled transit.
                        lc.handle(Event::TileDelivered { tile });
                    }
                }
                Err(_) => {
                    if !self.shared.live[to].load(Ordering::Relaxed) {
                        lc.handle(Event::WorkerDied { worker: to });
                    }
                    queue.extend(lc.handle(Event::SendRejected { tile, worker: to }));
                }
            }
        }
    }

    /// Input partition block for one admitted image: extract tiles,
    /// allocate with Algorithm 3, start its lifecycle machine and push the
    /// initial dispatch batch to the workers.
    fn admit(&mut self, sub: Submission, inflight_now: usize) -> InFlight {
        let Submission { image_id, x, queued_at, reply } = sub;
        let d = self.grid.tiles();
        let tiles = self.grid.extract(&x);
        let speeds = self.shared.stats.lock().speeds().to_vec();
        let live: Vec<bool> = self.shared.live.iter().map(|l| l.load(Ordering::Relaxed)).collect();
        let alloc = self.shared.allocator.lock().allocate(d, &speeds, &mut self.rng);
        let start = Instant::now();
        let queue_wait = start.duration_since(queued_at).as_secs_f64();
        let depth_now = inflight_now + 1;
        self.shared.inflight.store(depth_now, Ordering::Relaxed);
        // Driver-emitted (never by the lifecycle), before the machine's
        // own ImageStart: admission is a pipeline fact, not a decision.
        let at = self.rel(start);
        self.sink.emit_with(|| ObsEvent::ImageAdmitted {
            at,
            image: image_id,
            queue_wait,
            inflight: depth_now as u32,
        });
        let (mut lc, acts) = TileLifecycle::begin_observed(
            self.policy,
            at,
            d,
            &alloc,
            &speeds,
            &live,
            image_id,
            self.sink.clone(),
        );
        self.drive(&mut lc, acts, image_id, &tiles);
        let at = self.rel(Instant::now());
        let acts = lc.handle(Event::SendComplete { at });
        self.drive(&mut lc, acts, image_id, &tiles);
        let (bc, bh, bw) = self.boundary;
        InFlight {
            image_id,
            queued_at,
            start,
            tiles,
            lc,
            assembled: Tensor::zeros([1, bc, bh, bw]),
            wire_bits: 0,
            reply,
        }
    }

    /// Feed one of an image's results into its machine: account wire
    /// bits, decode, paste on [`Action::Accept`], run everything else.
    fn ingest(&mut self, inf: &mut InFlight, worker: usize, res: &TileResult, at: f64) {
        let InFlight {
            image_id, ref tiles, ref mut lc, ref mut assembled, ref mut wire_bits, ..
        } = *inf;
        let tile = res.key.tile_id as usize;
        let mut decoded = None;
        let ok = if lc.tile_open(tile) {
            *wire_bits += res.wire_bits();
            decoded = res.to_tensor();
            decoded.is_some()
        } else {
            true // duplicate or late: the machine counts it, nothing to decode
        };
        let acts = lc.handle(Event::ResultArrived { at, tile, worker, ok });
        let mut rest = Vec::with_capacity(acts.len());
        for act in acts {
            if let Action::Accept { tile: t, .. } = act {
                let (_, th, tw) = self.tile_out;
                let tensor = decoded.take().expect("Accept without a decoded payload");
                let (gr, gc) = self.grid.tile_pos(t);
                assembled.paste_spatial(&tensor, gr * th, gc * tw);
            } else {
                rest.push(act);
            }
        }
        self.drive(lc, rest, image_id, tiles);
    }

    /// Layer computation block + handle resolution for one completed
    /// image: run the suffix network and deliver the outcome.
    fn finish(&mut self, inf: InFlight, remaining: usize) {
        let InFlight { image_id, queued_at, start, lc, assembled, wire_bits, reply, .. } = inf;
        let n_suffix = self.suffix.len();
        let output = self
            .suffix
            .forward_infer_range_with(&assembled, 0..n_suffix, &mut self.infer_scratch)
            .to_tensor();
        self.shared.inflight.store(remaining, Ordering::Relaxed);
        let at = self.rel(Instant::now());
        self.sink.emit_with(|| ObsEvent::ImageRetired {
            at,
            image: image_id,
            inflight: remaining as u32,
        });
        let c = lc.counters();
        let outcome = InferOutcome {
            output,
            image: image_id,
            queued: start.duration_since(queued_at),
            latency: start.elapsed(),
            alloc: lc.alloc().to_vec(),
            received: c.received.clone(),
            zero_filled: c.zero_filled,
            redispatched: c.redispatched,
            wire_bits,
            worker_stats: self.worker_stats.iter().map(|s| s.snapshot()).collect(),
            report: self.attribution.as_ref().and_then(|a| a.report_for(image_id)),
        };
        // `bounded(1)` reply never blocks; a dropped handle just discards.
        let _ = reply.send(outcome);
    }

    /// Every worker thread has exited: nothing will ever arrive again.
    /// Mark the whole cluster dead and abort every in-flight image (the
    /// machine zero-fills what is still open); the sweep in the run loop
    /// retires them.
    fn abort_all(&mut self, inflight: &mut [InFlight]) {
        let k = self.shared.live.len();
        {
            let mut stats = self.shared.stats.lock();
            for w in 0..k {
                if self.shared.live[w].swap(false, Ordering::Relaxed) {
                    stats.mark_failed(w);
                }
            }
        }
        for inf in inflight.iter_mut() {
            let InFlight { image_id, ref tiles, ref mut lc, .. } = *inf;
            // WorkerDied and Abort are idempotent in the machine, so
            // feeding every image the full death list is safe.
            for w in 0..k {
                lc.handle(Event::WorkerDied { worker: w });
            }
            let acts = lc.handle(Event::Abort);
            self.drive(lc, acts, image_id, tiles);
        }
    }

    /// The collector loop. Exits when the intake channel disconnects
    /// (runtime shutdown) *and* every admitted image has been retired, so
    /// shutdown never strands a handle.
    fn run(mut self) {
        let mut inflight: Vec<InFlight> = Vec::new();
        let mut intake_open = true;
        loop {
            // Admission: fill up to `depth`. Block only when idle —
            // otherwise in-flight deadlines must keep being serviced.
            while intake_open && inflight.len() < self.depth {
                if inflight.is_empty() {
                    match self.intake_rx.recv() {
                        Ok(sub) => {
                            self.shared.queued.fetch_sub(1, Ordering::Relaxed);
                            let inf = self.admit(sub, inflight.len());
                            inflight.push(inf);
                        }
                        Err(_) => {
                            intake_open = false;
                            break;
                        }
                    }
                } else {
                    match self.intake_rx.try_recv() {
                        Ok(sub) => {
                            self.shared.queued.fetch_sub(1, Ordering::Relaxed);
                            let inf = self.admit(sub, inflight.len());
                            inflight.push(inf);
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            intake_open = false;
                            break;
                        }
                    }
                }
            }

            // Retire every completed image (admission can complete an
            // image synchronously when all its sends fail, and ingest /
            // deadline handling below completes them asynchronously).
            let mut i = 0;
            while i < inflight.len() {
                if inflight[i].lc.is_complete() {
                    let done = inflight.swap_remove(i);
                    self.finish(done, inflight.len());
                } else {
                    i += 1;
                }
            }

            if inflight.is_empty() {
                if !intake_open {
                    return;
                }
                continue;
            }

            // The machines own the deadline arithmetic; the driver only
            // turns the *earliest* `next_deadline()` across all in-flight
            // images into a `recv_timeout` budget.
            let (idx, limit) = inflight
                .iter()
                .enumerate()
                .map(|(i, f)| (i, self.epoch + Duration::from_secs_f64(f.lc.next_deadline())))
                .min_by_key(|e| e.1)
                .expect("inflight is non-empty");
            let now = Instant::now();
            if now >= limit {
                let inf = &mut inflight[idx];
                // `max` guards the f64↔Duration roundtrip: the machine
                // must never see a fire time before its own deadline.
                let at = self.rel(now).max(inf.lc.next_deadline());
                let InFlight { image_id, ref tiles, ref mut lc, .. } = *inf;
                let acts = lc.handle(Event::DeadlineFired { at });
                self.drive(lc, acts, image_id, tiles);
                continue;
            }
            match self.result_rx.recv_timeout(limit - now) {
                Ok((worker, res)) => {
                    let when = Instant::now();
                    // Demultiplex by image id to the owning lifecycle. A
                    // miss is a straggler from an already-retired image
                    // (every result originates from a tile this collector
                    // dispatched): discard.
                    if let Some(pos) = inflight.iter().position(|f| f.image_id == res.key.image_id)
                    {
                        let at = self.rel(when);
                        self.ingest(&mut inflight[pos], worker, &res, at);
                    }
                }
                Err(RecvTimeoutError::Timeout) => continue, // deadline handling above
                Err(RecvTimeoutError::Disconnected) => {
                    self.abort_all(&mut inflight);
                }
            }
        }
    }
}

/// Model geometry and pipeline pieces shared by the in-process and remote
/// launch paths: the Conv-side prefix (with its boundary compression) and
/// the Central-side suffix, plus the probed boundary-map dimensions.
struct SplitModel {
    grid: TileGrid,
    prefix: Network,
    suffix: Network,
    compression: Option<Compression>,
    tile_out: (usize, usize, usize),
    boundary: (usize, usize, usize),
}

/// Split a model into its Conv/Central halves and probe the per-tile
/// boundary dims with a zero tile.
fn split_model(model: &PartitionedModel) -> SplitModel {
    let grid = model.grid;
    let (prefix, compression) = prefix_and_compression(model);
    let suffix = Network::new(model.net.blocks[model.prefix..].to_vec());
    let (c, h, w) = model.input;
    assert!(h % grid.rows == 0 && w % grid.cols == 0, "input {h}x{w} not divisible by {grid}");
    let mut probe_net = prefix.clone();
    let probe = Tensor::zeros([1, c, h / grid.rows, w / grid.cols]);
    let n_prefix = probe_net.len();
    let (out, _) = probe_net.forward_range(&probe, 0..n_prefix, false);
    let (_, oc, oh, ow) = out.shape().nchw();
    let tile_out = (oc, oh, ow);
    let boundary = (oc, oh * grid.rows, ow * grid.cols);
    SplitModel { grid, prefix, suffix, compression, tile_out, boundary }
}

/// The live system: the pipeline front-end plus its worker threads (or
/// remote-worker supervisors) and the collector thread.
pub struct AdcnnRuntime {
    /// `Some` until shutdown; dropping it is the collector's stop signal.
    intake_tx: Option<Sender<Submission>>,
    collector: Option<JoinHandle<()>>,
    task_txs: Vec<Sender<WorkerMsg>>,
    handles: Vec<JoinHandle<()>>,
    worker_stats: Vec<Arc<WorkerStats>>,
    shared: Arc<Shared>,
    /// `Some` when launched via [`launch_remote`](Self::launch_remote):
    /// the acceptor half of the transport (the per-slot supervisors are
    /// `handles`).
    transport: Option<RemoteCluster>,
    next_image: AtomicU64,
}

impl AdcnnRuntime {
    /// Split a (retrained) [`PartitionedModel`] into Conv-node prefixes and
    /// the Central suffix, launch one worker thread per entry of
    /// `worker_opts`, and start the collector thread.
    pub fn launch(
        model: PartitionedModel,
        worker_opts: &[WorkerOptions],
        cfg: RuntimeConfig,
    ) -> Self {
        assert!(!worker_opts.is_empty(), "need at least one worker");
        if let Err(e) = cfg.validate() {
            panic!("invalid RuntimeConfig: {e}");
        }
        for (i, opts) in worker_opts.iter().enumerate() {
            if let Err(e) = opts.validate() {
                panic!("invalid WorkerOptions for worker {i}: {e}");
            }
        }
        let k = worker_opts.len();
        let sm = split_model(&model);

        // The epoch — origin of the abstract time axis — must exist before
        // the workers do: they stamp their compute/compress spans against
        // it, and a span must never predate the axis.
        let epoch = Instant::now();
        // Attribution rides the same event stream as any user sink: tee it
        // in once, so the lifecycle machine and every worker share one
        // effective sink (still `null` when neither is configured).
        let sink = match &cfg.attribution {
            Some(attr) => cfg.sink.tee(attr.clone()),
            None => cfg.sink.clone(),
        };
        let (result_tx, result_rx) = unbounded();
        let mut task_txs = Vec::with_capacity(k);
        let mut handles = Vec::with_capacity(k);
        let mut worker_stats = Vec::with_capacity(k);
        for (i, opts) in worker_opts.iter().enumerate() {
            // Bounded queues: a worker that stops draining can absorb at
            // most `task_queue_cap` tiles before sends fail fast.
            let (tx, rx) = bounded(cfg.task_queue_cap.max(1));
            let stats = Arc::new(WorkerStats::default());
            handles.push(spawn_worker(
                i,
                sm.prefix.clone(),
                sm.compression,
                *opts,
                rx,
                result_tx.clone(),
                stats.clone(),
                sink.clone(),
                epoch,
            ));
            task_txs.push(tx);
            worker_stats.push(stats);
        }

        let shared = Arc::new(Shared {
            stats: Mutex::new(StatsCollector::new(k, cfg.gamma)),
            allocator: Mutex::new(TileAllocator::unbounded(k)),
            live: (0..k).map(|_| AtomicBool::new(true)).collect(),
            inflight: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
        });
        let (intake_tx, intake_rx) = bounded(cfg.intake_cap);
        let collector = Collector {
            grid: sm.grid,
            suffix: sm.suffix,
            infer_scratch: InferScratch::new(),
            task_txs: task_txs.clone(),
            result_rx,
            worker_stats: worker_stats.clone(),
            shared: shared.clone(),
            rng: StdRng::seed_from_u64(cfg.seed),
            policy: cfg.policy,
            depth: cfg.pipeline_depth,
            attribution: cfg.attribution.clone(),
            sink,
            epoch,
            boundary: sm.boundary,
            tile_out: sm.tile_out,
            intake_rx,
        };
        let collector = std::thread::Builder::new()
            .name("adcnn-collector".into())
            .spawn(move || collector.run())
            .expect("failed to spawn collector thread");

        AdcnnRuntime {
            intake_tx: Some(intake_tx),
            collector: Some(collector),
            task_txs,
            handles,
            worker_stats,
            shared,
            transport: None,
            next_image: AtomicU64::new(0),
        }
    }

    /// Launch the Central node with `workers` *remote* Conv-node slots
    /// behind `listener`, instead of in-process threads. Worker processes
    /// (`adcnn-conv-worker --connect <endpoint>`) connect, handshake, and
    /// rebuild the model from `spec` — deterministic by seed, so their
    /// tiles are byte-identical to in-process workers'.
    ///
    /// Blocks until all `workers` slots have a connected worker or
    /// `join_timeout` elapses (error). After launch, supervision is live:
    /// a worker process that dies (even `kill -9`) is marked failed — its
    /// in-flight tiles recover through the lifecycle's re-dispatch
    /// machinery — and a reconnecting process rejoins its slot as a fresh
    /// worker. The collector, dispatch and deadline paths are *exactly*
    /// the ones [`launch`](Self::launch) uses; only the transport behind
    /// the channel seams differs. See DESIGN.md §15.
    pub fn launch_remote(
        spec: RemoteModelSpec,
        workers: usize,
        cfg: RuntimeConfig,
        listener: WorkerListener,
        join_timeout: Duration,
    ) -> std::io::Result<Self> {
        assert!(workers > 0, "need at least one worker");
        if let Err(e) = cfg.validate() {
            panic!("invalid RuntimeConfig: {e}");
        }
        let model = spec.build();
        let sm = split_model(&model);
        let k = workers;
        let epoch = Instant::now();
        let sink = match &cfg.attribution {
            Some(attr) => cfg.sink.tee(attr.clone()),
            None => cfg.sink.clone(),
        };
        let (result_tx, result_rx) = unbounded();
        let worker_stats: Vec<Arc<WorkerStats>> =
            (0..k).map(|_| Arc::new(WorkerStats::default())).collect();
        let shared = Arc::new(Shared {
            stats: Mutex::new(StatsCollector::new(k, cfg.gamma)),
            allocator: Mutex::new(TileAllocator::unbounded(k)),
            // A slot is dead until a worker joins it: nothing may be
            // allocated or dispatched to an empty slot.
            live: (0..k).map(|_| AtomicBool::new(false)).collect(),
            inflight: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
        });
        let hooks = TransportHooks {
            on_up: {
                let shared = shared.clone();
                let sink = sink.clone();
                Arc::new(move |w: usize| {
                    // A (re)connect is a fresh join: restore the EWMA to
                    // the fresh-join prior *before* the slot becomes
                    // allocatable, so the first allocation after a rejoin
                    // treats the worker as new — never resumes the dead
                    // incarnation's statistics.
                    shared.stats.lock().rejoin(w);
                    shared.live[w].store(true, Ordering::Relaxed);
                    sink.emit_with(|| ObsEvent::NodeUp {
                        at: epoch.elapsed().as_secs_f64(),
                        node: w as u32,
                    });
                })
            },
            on_down: {
                let shared = shared.clone();
                let sink = sink.clone();
                Arc::new(move |w: usize| {
                    // Same guard as a disconnected in-process channel: the
                    // first detection wins, later ones are no-ops — the
                    // topology stream sees exactly one NodeDown per spell.
                    if shared.live[w].swap(false, Ordering::Relaxed) {
                        shared.stats.lock().mark_failed(w);
                        sink.emit_with(|| ObsEvent::NodeDown {
                            at: epoch.elapsed().as_secs_f64(),
                            node: w as u32,
                        });
                    }
                })
            },
        };
        let (cluster, task_txs, handles) = RemoteCluster::start(
            listener,
            spec,
            k,
            cfg.task_queue_cap.max(1),
            result_tx,
            worker_stats.clone(),
            sink.clone(),
            epoch,
            hooks,
        )?;
        // Join barrier: every slot must be up before the runtime exists,
        // so callers never race their first submit against the handshake.
        let deadline = Instant::now() + join_timeout;
        while shared.live.iter().any(|l| !l.load(Ordering::Relaxed)) {
            if Instant::now() >= deadline {
                let joined = shared.live.iter().filter(|l| l.load(Ordering::Relaxed)).count();
                for tx in &task_txs {
                    let _ = tx.send(WorkerMsg::Shutdown);
                }
                for h in handles {
                    let _ = h.join();
                }
                drop(cluster); // stops and joins the acceptor
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("only {joined}/{k} workers joined within {join_timeout:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let (intake_tx, intake_rx) = bounded(cfg.intake_cap);
        let collector = Collector {
            grid: sm.grid,
            suffix: sm.suffix,
            infer_scratch: InferScratch::new(),
            task_txs: task_txs.clone(),
            result_rx,
            worker_stats: worker_stats.clone(),
            shared: shared.clone(),
            rng: StdRng::seed_from_u64(cfg.seed),
            policy: cfg.policy,
            depth: cfg.pipeline_depth,
            attribution: cfg.attribution.clone(),
            sink,
            epoch,
            boundary: sm.boundary,
            tile_out: sm.tile_out,
            intake_rx,
        };
        let collector = std::thread::Builder::new()
            .name("adcnn-collector".into())
            .spawn(move || collector.run())
            .expect("failed to spawn collector thread");
        Ok(AdcnnRuntime {
            intake_tx: Some(intake_tx),
            collector: Some(collector),
            task_txs,
            handles,
            worker_stats,
            shared,
            transport: Some(cluster),
            next_image: AtomicU64::new(0),
        })
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.task_txs.len()
    }

    /// Snapshot of the Algorithm 2 speed estimates. Owned because the
    /// collector thread updates them concurrently.
    pub fn speeds(&self) -> Vec<f64> {
        self.shared.stats.lock().speeds().to_vec()
    }

    /// Which workers still have a connected task channel (supervision
    /// view). A `false` entry is a positively-detected death, not merely a
    /// slow node.
    pub fn live_workers(&self) -> Vec<bool> {
        self.shared.live.iter().map(|l| l.load(Ordering::Relaxed)).collect()
    }

    /// Replace the tile allocator (e.g. with per-worker storage caps, the
    /// Equation 1 `M·x_k ≤ H_k` constraint). Takes effect from the next
    /// admission. Panics if the allocator does not cover exactly this
    /// runtime's workers.
    pub fn set_allocator(&mut self, allocator: TileAllocator) {
        assert_eq!(
            allocator.storage_bits.len(),
            self.workers(),
            "allocator node count must match the worker count"
        );
        *self.shared.allocator.lock() = allocator;
    }

    /// Snapshot the per-worker tile/compute/compress counters.
    pub fn worker_stats(&self) -> Vec<WorkerStatsSnapshot> {
        self.worker_stats.iter().map(|s| s.snapshot()).collect()
    }

    /// Images currently admitted by the collector (0 ..= `pipeline_depth`).
    pub fn in_flight(&self) -> usize {
        self.shared.inflight.load(Ordering::Relaxed)
    }

    /// Submissions waiting in the admission queue (0 ..= `intake_cap`).
    pub fn queued(&self) -> usize {
        self.shared.queued.load(Ordering::Relaxed)
    }

    /// Submit one image `[1, C, H, W]` to the pipeline, blocking while the
    /// admission queue is at `intake_cap` (backpressure). The returned
    /// handle resolves when *this* image completes, independent of other
    /// submissions.
    pub fn submit(&self, x: &Tensor) -> InferHandle {
        let image_id = self.next_image.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = bounded(1);
        let sub = Submission { image_id, x: x.clone(), queued_at: Instant::now(), reply: reply_tx };
        // Count before the send: the collector decrements as it pops, and
        // the gauge must never observe a pop before its push.
        self.shared.queued.fetch_add(1, Ordering::Relaxed);
        self.intake_tx
            .as_ref()
            .expect("runtime already shut down")
            .send(sub)
            .expect("collector thread exited");
        InferHandle { image_id, rx: reply_rx }
    }

    /// Non-blocking [`submit`](Self::submit): `None` when the admission
    /// queue is at `intake_cap`.
    pub fn try_submit(&self, x: &Tensor) -> Option<InferHandle> {
        let image_id = self.next_image.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = bounded(1);
        let sub = Submission { image_id, x: x.clone(), queued_at: Instant::now(), reply: reply_tx };
        self.shared.queued.fetch_add(1, Ordering::Relaxed);
        match self.intake_tx.as_ref().expect("runtime already shut down").try_send(sub) {
            Ok(()) => Some(InferHandle { image_id, rx: reply_rx }),
            Err(TrySendError::Full(_)) => {
                self.shared.queued.fetch_sub(1, Ordering::Relaxed);
                None
            }
            Err(TrySendError::Disconnected(_)) => panic!("collector thread exited"),
        }
    }

    /// Run one image `[1, C, H, W]` through the distributed pipeline.
    /// Wrapper over [`submit`](Self::submit)/[`InferHandle::wait`].
    pub fn infer(&mut self, x: &Tensor) -> InferOutcome {
        self.submit(x).wait()
    }

    /// Run a stream of images with Figure 9 pipelining: all images are
    /// submitted up front (the admission queue and `pipeline_depth` bound
    /// how many proceed at once) and the outcomes are returned in input
    /// order. Wrapper over [`submit`](Self::submit)/[`InferHandle::wait`].
    pub fn infer_stream(&mut self, images: &[Tensor]) -> Vec<InferOutcome> {
        let handles: Vec<InferHandle> = images.iter().map(|x| self.submit(x)).collect();
        handles.into_iter().map(InferHandle::wait).collect()
    }

    /// Idempotent teardown: stop intake, drain the collector (every
    /// outstanding handle resolves), then stop and join the workers.
    fn close(&mut self) {
        drop(self.intake_tx.take());
        if let Some(h) = self.collector.take() {
            let _ = h.join();
        }
        for tx in &self.task_txs {
            let _ = tx.send(WorkerMsg::Shutdown);
        }
        // In-process: joins the worker threads. Remote: joins the slot
        // supervisors, which forward the shutdown to their connected
        // worker processes first.
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        if let Some(mut t) = self.transport.take() {
            t.stop();
        }
    }

    /// Stop the collector and all workers and join their threads. Every
    /// already-submitted image is still completed and its handle resolved
    /// before the threads exit.
    pub fn shutdown(mut self) {
        self.close();
    }
}

impl Drop for AdcnnRuntime {
    fn drop(&mut self) {
        self.close();
    }
}

/// Replay an abstract event trace through the runtime's *time mapping* and
/// the shared lifecycle machine, returning the Debug-formatted decision
/// sequence. Every timestamp makes the same journey it makes in
/// production: abstract seconds → an `Instant` offset from an epoch → back
/// to abstract seconds at the machine boundary. The cross-driver
/// differential test asserts this sequence is byte-identical to the
/// simulator driver's (`adcnn_netsim::replay_lifecycle_trace`).
pub fn replay_lifecycle_trace(
    policy: LifecyclePolicy,
    d: usize,
    alloc: &[u32],
    speeds: &[f64],
    live: &[bool],
    trace: &[Event],
) -> Vec<String> {
    let epoch = Instant::now();
    // The production mapping, both directions (ns-grain, so millisecond
    // trace timestamps survive the roundtrip bit-exactly).
    let roundtrip = |at: f64| -> f64 {
        let instant = epoch + Duration::from_secs_f64(at);
        instant.duration_since(epoch).as_secs_f64()
    };
    let (mut lc, acts) = TileLifecycle::begin(policy, roundtrip(0.0), d, alloc, speeds, live);
    let mut out: Vec<String> = acts.iter().map(|a| format!("{a:?}")).collect();
    for ev in trace {
        let ev = match *ev {
            Event::SendComplete { at } => Event::SendComplete { at: roundtrip(at) },
            Event::ResultArrived { at, tile, worker, ok } => {
                Event::ResultArrived { at: roundtrip(at), tile, worker, ok }
            }
            Event::DeadlineFired { at } => Event::DeadlineFired { at: roundtrip(at) },
            other => other,
        };
        out.extend(lc.handle(ev).iter().map(|a| format!("{a:?}")));
    }
    out
}

/// Multi-image [`replay_lifecycle_trace`]: one lifecycle machine per entry
/// of `allocs` (all begun at time 0, in order), driven by an interleaved
/// trace of `(image_index, event)` pairs — the pipeline's concurrency
/// shape with the transport abstracted away. Decision lines are prefixed
/// `[i] ` with the owning image index. The cross-driver differential test
/// asserts this sequence is byte-identical to the simulator driver's
/// (`adcnn_netsim::replay_lifecycle_trace_multi`).
pub fn replay_lifecycle_trace_multi(
    policy: LifecyclePolicy,
    d: usize,
    allocs: &[Vec<u32>],
    speeds: &[f64],
    live: &[bool],
    trace: &[(usize, Event)],
) -> Vec<String> {
    let epoch = Instant::now();
    let roundtrip = |at: f64| -> f64 {
        let instant = epoch + Duration::from_secs_f64(at);
        instant.duration_since(epoch).as_secs_f64()
    };
    let mut machines = Vec::with_capacity(allocs.len());
    let mut out = Vec::new();
    for (i, alloc) in allocs.iter().enumerate() {
        let (lc, acts) = TileLifecycle::begin(policy, roundtrip(0.0), d, alloc, speeds, live);
        out.extend(acts.iter().map(|a| format!("[{i}] {a:?}")));
        machines.push(lc);
    }
    for (img, ev) in trace {
        let ev = match *ev {
            Event::SendComplete { at } => Event::SendComplete { at: roundtrip(at) },
            Event::ResultArrived { at, tile, worker, ok } => {
                Event::ResultArrived { at: roundtrip(at), tile, worker, ok }
            }
            Event::DeadlineFired { at } => Event::DeadlineFired { at: roundtrip(at) },
            other => other,
        };
        out.extend(machines[*img].handle(ev).iter().map(|a| format!("[{img}] {a:?}")));
    }
    out
}

/// Like [`replay_lifecycle_trace`], but returns the Debug-formatted
/// sequence of structured [`ObsEvent`](adcnn_core::obs::ObsEvent)s the
/// lifecycle machine emitted while replaying — the observability schema
/// rather than the decision stream. The cross-driver differential test
/// asserts this sequence is byte-identical to the simulator driver's
/// (`adcnn_netsim::replay_lifecycle_events`).
pub fn replay_lifecycle_events(
    policy: LifecyclePolicy,
    d: usize,
    alloc: &[u32],
    speeds: &[f64],
    live: &[bool],
    trace: &[Event],
) -> Vec<String> {
    let epoch = Instant::now();
    let roundtrip = |at: f64| -> f64 {
        let instant = epoch + Duration::from_secs_f64(at);
        instant.duration_since(epoch).as_secs_f64()
    };
    let rec = Arc::new(RecordingSink::new());
    let (mut lc, _) = TileLifecycle::begin_observed(
        policy,
        roundtrip(0.0),
        d,
        alloc,
        speeds,
        live,
        0,
        SinkHandle::new(rec.clone()),
    );
    for ev in trace {
        let ev = match *ev {
            Event::SendComplete { at } => Event::SendComplete { at: roundtrip(at) },
            Event::ResultArrived { at, tile, worker, ok } => {
                Event::ResultArrived { at: roundtrip(at), tile, worker, ok }
            }
            Event::DeadlineFired { at } => Event::DeadlineFired { at: roundtrip(at) },
            other => other,
        };
        lc.handle(ev);
    }
    rec.events().iter().map(|e| format!("{e:?}")).collect()
}

/// Multi-image [`replay_lifecycle_events`]: one machine per entry of
/// `allocs` (image ids are the indices), all emitting into one shared
/// recording sink, driven by an interleaved `(image_index, event)` trace.
/// The recorded stream is the pipeline's interleaved observability schema;
/// the cross-driver differential test asserts it is byte-identical to the
/// simulator driver's (`adcnn_netsim::replay_lifecycle_events_multi`).
pub fn replay_lifecycle_events_multi(
    policy: LifecyclePolicy,
    d: usize,
    allocs: &[Vec<u32>],
    speeds: &[f64],
    live: &[bool],
    trace: &[(usize, Event)],
) -> Vec<String> {
    let epoch = Instant::now();
    let roundtrip = |at: f64| -> f64 {
        let instant = epoch + Duration::from_secs_f64(at);
        instant.duration_since(epoch).as_secs_f64()
    };
    let rec = Arc::new(RecordingSink::new());
    let mut machines = Vec::with_capacity(allocs.len());
    for (i, alloc) in allocs.iter().enumerate() {
        let (lc, _) = TileLifecycle::begin_observed(
            policy,
            roundtrip(0.0),
            d,
            alloc,
            speeds,
            live,
            i as u64,
            SinkHandle::new(rec.clone()),
        );
        machines.push(lc);
    }
    for (img, ev) in trace {
        let ev = match *ev {
            Event::SendComplete { at } => Event::SendComplete { at: roundtrip(at) },
            Event::ResultArrived { at, tile, worker, ok } => {
                Event::ResultArrived { at: roundtrip(at), tile, worker, ok }
            }
            Event::DeadlineFired { at } => Event::DeadlineFired { at: roundtrip(at) },
            other => other,
        };
        machines[*img].handle(ev);
    }
    rec.events().iter().map(|e| format!("{e:?}")).collect()
}

/// Like [`replay_lifecycle_events`], but folds the replayed events through
/// an [`AttributionSink`] and returns the resulting [`ImageReport`] as its
/// canonical JSON — the critical-path decision the attribution layer makes
/// from the runtime driver's time mapping. The cross-driver differential
/// test asserts this is byte-identical to the simulator driver's
/// (`adcnn_netsim::replay_lifecycle_report`). `None` if the trace never
/// finished the image.
pub fn replay_lifecycle_report(
    policy: LifecyclePolicy,
    d: usize,
    alloc: &[u32],
    speeds: &[f64],
    live: &[bool],
    trace: &[Event],
) -> Option<String> {
    let epoch = Instant::now();
    let roundtrip = |at: f64| -> f64 {
        let instant = epoch + Duration::from_secs_f64(at);
        instant.duration_since(epoch).as_secs_f64()
    };
    let attr = Arc::new(AttributionSink::new());
    let (mut lc, _) = TileLifecycle::begin_observed(
        policy,
        roundtrip(0.0),
        d,
        alloc,
        speeds,
        live,
        0,
        SinkHandle::new(attr.clone()),
    );
    for ev in trace {
        let ev = match *ev {
            Event::SendComplete { at } => Event::SendComplete { at: roundtrip(at) },
            Event::ResultArrived { at, tile, worker, ok } => {
                Event::ResultArrived { at: roundtrip(at), tile, worker, ok }
            }
            Event::DeadlineFired { at } => Event::DeadlineFired { at: roundtrip(at) },
            other => other,
        };
        lc.handle(ev);
    }
    attr.report_for(0).map(|r| r.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcnn_core::ClippedRelu;
    use adcnn_nn::layer::QuantizeSte;
    use adcnn_nn::small::shapes_cnn;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn build_model(seed: u64, grid: TileGrid) -> PartitionedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let cr = ClippedRelu::new(0.0, 2.0);
        PartitionedModel::fdsp(shapes_cnn(6, &mut rng), grid)
            .with_crelu(cr)
            .with_quant(QuantizeSte::new(4, cr.range()))
    }

    fn rand_image(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn([1, 3, 32, 32], 0.5, &mut rng)
    }

    /// The default config with a different `T_L` grace (the old
    /// `RuntimeConfig::with_t_l` shorthand, through the builder).
    fn cfg_t_l(ms: u64) -> RuntimeConfig {
        RuntimeConfig::builder().t_l(Duration::from_millis(ms)).build().unwrap()
    }

    #[test]
    fn builder_validates_and_surfaces_typed_errors() {
        let cfg = RuntimeConfig::builder()
            .t_l(Duration::from_millis(25))
            .slack(2.0)
            .max_redispatch_rounds(1)
            .hard_timeout(Duration::from_secs(3))
            .timer(TimerPolicy::AfterSend)
            .gamma(0.8)
            .seed(7)
            .task_queue_cap(16)
            .pipeline_depth(4)
            .intake_cap(8)
            .build()
            .unwrap();
        assert_eq!(cfg.policy.t_l, 0.025);
        assert_eq!(cfg.policy.slack, 2.0);
        assert_eq!(cfg.policy.max_redispatch_rounds, 1);
        assert_eq!(cfg.policy.hard_timeout, 3.0);
        assert_eq!(cfg.policy.timer, TimerPolicy::AfterSend);
        assert_eq!((cfg.gamma, cfg.seed, cfg.task_queue_cap), (0.8, 7, 16));
        assert_eq!((cfg.pipeline_depth, cfg.intake_cap), (4, 8));
        assert!(!cfg.sink.enabled());
        assert_eq!(
            RuntimeConfig::builder().gamma(0.0).build().unwrap_err(),
            ConfigError::GammaOutOfRange(0.0)
        );
        assert_eq!(
            RuntimeConfig::builder().gamma(1.5).build().unwrap_err(),
            ConfigError::GammaOutOfRange(1.5)
        );
        assert_eq!(
            RuntimeConfig::builder().task_queue_cap(0).build().unwrap_err(),
            ConfigError::ZeroTaskQueueCap
        );
        assert_eq!(
            RuntimeConfig::builder().pipeline_depth(0).build().unwrap_err(),
            ConfigError::ZeroPipelineDepth
        );
        assert_eq!(
            RuntimeConfig::builder().intake_cap(0).build().unwrap_err(),
            ConfigError::ZeroIntakeCap
        );
        assert_eq!(
            RuntimeConfig::builder().slack(0.5).build().unwrap_err(),
            ConfigError::SlackBelowOne(0.5)
        );
    }

    #[test]
    fn distributed_matches_local_partitioned_model() {
        let grid = TileGrid::new(2, 2);
        let mut local = build_model(5, grid);
        let model = build_model(5, grid); // identical weights (same seed)
        let mut rt =
            AdcnnRuntime::launch(model, &[WorkerOptions::default(); 3], RuntimeConfig::default());
        for s in 0..3 {
            let x = rand_image(100 + s);
            let want = local.infer(&x);
            let out = rt.infer(&x);
            assert_eq!(out.zero_filled, 0, "dropped tiles: {:?}", out.received);
            assert!(
                out.output.approx_eq(&want, 2e-3),
                "distributed output diverges from local model"
            );
        }
        rt.shutdown();
    }

    #[test]
    fn allocation_adapts_to_slow_worker() {
        let grid = TileGrid::new(4, 4);
        let model = build_model(7, grid);
        // The slow worker's per-tile time must exceed T_L so its stragglers
        // miss the idle-gap deadline and Algorithm 2 marks it slow.
        let opts = [
            WorkerOptions::default(),
            WorkerOptions::default(),
            WorkerOptions { artificial_delay: Duration::from_millis(100), ..Default::default() },
        ];
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg_t_l(50));
        let mut last_alloc = vec![0u32; 3];
        for s in 0..6 {
            let out = rt.infer(&rand_image(s));
            last_alloc = out.alloc.clone();
        }
        // the slow worker must end up with fewer tiles than the fast ones
        assert!(
            last_alloc[2] < last_alloc[0] && last_alloc[2] < last_alloc[1],
            "allocation did not adapt: {last_alloc:?} (speeds {:?})",
            rt.speeds()
        );
        rt.shutdown();
    }

    #[test]
    fn failed_worker_tiles_recovered_by_redispatch_then_starved() {
        // A worker that goes silent from tile 0 used to cost one image's
        // worth of zero-filled tiles (§6.3); the lifecycle machine now
        // recovers them through re-dispatch well before the hard timeout.
        let grid = TileGrid::new(4, 4);
        let model = build_model(9, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions { fail_after_tiles: Some(0), ..Default::default() },
        ];
        let cfg = cfg_t_l(50);
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg.clone());
        let first = rt.infer(&rand_image(1));
        assert_eq!(first.zero_filled, 0, "re-dispatch should recover every tile");
        assert!(first.redispatched > 0, "dead worker's tiles must be re-dispatched");
        assert!(
            first.latency.as_secs_f64() < cfg.policy.hard_timeout / 2.0,
            "recovery must not wait for the hard timeout: {:?}",
            first.latency
        );
        assert_eq!(first.output.dims()[0], 1); // output still produced
        for s in 2..6 {
            rt.infer(&rand_image(s));
        }
        let last = rt.infer(&rand_image(99));
        assert_eq!(last.alloc[1], 0, "dead worker still allocated: {:?}", last.alloc);
        assert_eq!(last.zero_filled, 0, "steady state should not drop");
        assert_eq!(last.redispatched, 0, "steady state should not re-dispatch");
        rt.shutdown();
    }

    #[test]
    fn zero_fill_fallback_when_redispatch_disabled() {
        // `max_redispatch_rounds: 0` restores the paper's pure zero-fill
        // policy: a silent worker's tiles are dropped, not recovered.
        let grid = TileGrid::new(4, 4);
        let model = build_model(9, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions { fail_after_tiles: Some(0), ..Default::default() },
        ];
        let cfg = RuntimeConfig::builder()
            .t_l(Duration::from_millis(50))
            .max_redispatch_rounds(0)
            .build()
            .unwrap();
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg);
        let first = rt.infer(&rand_image(1));
        assert!(first.zero_filled > 0, "zero-fill policy should drop the dead worker's tiles");
        assert_eq!(first.redispatched, 0);
        rt.shutdown();
    }

    #[test]
    fn worker_killed_mid_image_recovers_without_hard_timeout() {
        // The fault-injection acceptance scenario: the worker processes a
        // few tiles of the image, then dies. Its remaining tiles must come
        // back through re-dispatch, not zero-fill.
        let grid = TileGrid::new(4, 4);
        let mut local = build_model(15, grid);
        let model = build_model(15, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions { fail_after_tiles: Some(3), ..Default::default() },
        ];
        let cfg = cfg_t_l(50);
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg.clone());
        let x = rand_image(7);
        let want = local.infer(&x);
        let out = rt.infer(&x);
        assert_eq!(out.zero_filled, 0, "mid-image death must be recovered: {:?}", out.received);
        assert!(out.redispatched > 0, "expected re-dispatched tiles");
        assert!(
            out.latency.as_secs_f64() < cfg.policy.hard_timeout / 2.0,
            "recovery waited too long: {:?}",
            out.latency
        );
        assert!(out.output.approx_eq(&want, 2e-3), "recovered output diverges");
        rt.shutdown();
    }

    #[test]
    fn disconnected_worker_detected_eagerly_and_rerouted() {
        // `disconnect_on_fail` drops the worker's task channel; from the
        // next dispatch on, sends fail fast, the worker is marked dead
        // (speed 0) and its tiles are rerouted without any deadline.
        let grid = TileGrid::new(4, 4);
        let model = build_model(19, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions {
                fail_after_tiles: Some(2),
                disconnect_on_fail: true,
                ..Default::default()
            },
        ];
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg_t_l(50));
        let first = rt.infer(&rand_image(1));
        assert_eq!(first.zero_filled, 0, "death mid-image must be recovered");
        // By the next image the disconnect has been observed: the worker
        // is supervised out and everything routes to the live one.
        let second = rt.infer(&rand_image(2));
        assert_eq!(second.zero_filled, 0);
        assert!(!rt.live_workers()[1], "disconnect not detected");
        assert_eq!(rt.speeds()[1], 0.0, "dead worker's speed must be zeroed");
        let third = rt.infer(&rand_image(3));
        assert_eq!(third.alloc[1], 0, "dead worker still allocated: {:?}", third.alloc);
        assert_eq!(third.redispatched, 0, "steady state needs no recovery");
        rt.shutdown();
    }

    #[test]
    fn corrupt_payloads_are_recovered_by_redispatch() {
        // Every payload from worker 1 fails to decode; the tiles must be
        // re-dispatched to worker 0 and the image completed cleanly.
        let grid = TileGrid::new(2, 2);
        let mut local = build_model(25, grid);
        let model = build_model(25, grid);
        let opts =
            [WorkerOptions::default(), WorkerOptions { corrupt_prob: 1.0, ..Default::default() }];
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg_t_l(50));
        let x = rand_image(9);
        let want = local.infer(&x);
        let out = rt.infer(&x);
        assert_eq!(out.zero_filled, 0, "corrupt tiles must be recovered");
        assert!(out.redispatched > 0);
        assert!(out.output.approx_eq(&want, 2e-3));
        rt.shutdown();
    }

    #[test]
    fn storage_capped_dispatch_completes_without_hanging() {
        // Regression: a storage-capped allocator returning Σ alloc < d made
        // the seed's round-robin assignment loop spin forever. The
        // shortfall must now zero-fill immediately.
        let grid = TileGrid::new(4, 4); // d = 16
        let model = build_model(33, grid);
        let mut rt =
            AdcnnRuntime::launch(model, &[WorkerOptions::default(); 2], RuntimeConfig::default());
        // Each worker can hold 3 tiles: only 6 of 16 are schedulable.
        rt.set_allocator(TileAllocator::with_storage(100, vec![300, 300]));
        let out = rt.infer(&rand_image(3));
        assert_eq!(out.alloc.iter().sum::<u32>(), 6);
        assert_eq!(out.zero_filled, 10, "shortfall must be dropped: {:?}", out.alloc);
        assert_eq!(out.redispatched, 0, "unschedulable tiles must not be re-dispatched");
        assert!(
            out.latency < Duration::from_secs(2),
            "storage shortfall must not stall: {:?}",
            out.latency
        );
        rt.shutdown();
    }

    #[test]
    fn worker_stats_surface_in_outcome() {
        let grid = TileGrid::new(2, 2);
        let model = build_model(31, grid);
        let mut rt =
            AdcnnRuntime::launch(model, &[WorkerOptions::default(); 2], RuntimeConfig::default());
        let out = rt.infer(&rand_image(4));
        assert_eq!(out.worker_stats.len(), 2);
        if out.zero_filled == 0 && out.redispatched == 0 {
            let total: u64 = out.worker_stats.iter().map(|s| s.tiles).sum();
            assert_eq!(total, 4, "every received tile must be counted");
            assert!(out.worker_stats.iter().any(|s| s.compute_ns > 0));
            assert!(out.worker_stats.iter().any(|s| s.compress_ns > 0));
        }
        let again = rt.infer(&rand_image(5));
        let t1: u64 = out.worker_stats.iter().map(|s| s.tiles).sum();
        let t2: u64 = again.worker_stats.iter().map(|s| s.tiles).sum();
        assert!(t2 > t1, "counters must accumulate across images");
        assert_eq!(rt.worker_stats().len(), 2);
        rt.shutdown();
    }

    #[test]
    fn wire_bits_shrink_with_compression() {
        let grid = TileGrid::new(2, 2);
        // Compressed model (tight clipped ReLU -> sparse)
        let model = build_model(11, grid);
        let mut rt =
            AdcnnRuntime::launch(model, &[WorkerOptions::default(); 2], RuntimeConfig::default());
        let out = rt.infer(&rand_image(3));
        let raw_bits = (16 * 16 * 16 * 4) as u64 * 32; // boundary map at f32
        assert!(out.wire_bits > 0);
        assert!(
            out.wire_bits < raw_bits,
            "compression ineffective: {} vs {raw_bits}",
            out.wire_bits
        );
        rt.shutdown();
    }

    #[test]
    fn image_ids_keep_results_separated() {
        // Run several images back-to-back; stragglers from image i must not
        // corrupt image i+1 (exercised by a slow worker + short timeout).
        let grid = TileGrid::new(2, 2);
        let model = build_model(13, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions { artificial_delay: Duration::from_millis(30), ..Default::default() },
        ];
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg_t_l(10));
        let mut local = build_model(13, grid);
        let x = rand_image(42);
        let want = local.infer(&x);
        // warm-up images that will leave stragglers in flight
        for s in 0..3 {
            rt.infer(&rand_image(s));
        }
        // let the allocator starve the slow worker, then verify correctness
        for _ in 0..3 {
            rt.infer(&x);
        }
        let out = rt.infer(&x);
        if out.zero_filled == 0 {
            assert!(out.output.approx_eq(&want, 2e-3));
        }
        rt.shutdown();
    }

    #[test]
    fn random_inputs_never_panic() {
        let grid = TileGrid::new(2, 2);
        let model = build_model(17, grid);
        let mut rt =
            AdcnnRuntime::launch(model, &[WorkerOptions::default(); 4], RuntimeConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            let x = Tensor::rand_uniform([1, 3, 32, 32], -2.0, 2.0, &mut rng);
            let out = rt.infer(&x);
            assert_eq!(out.output.dims(), &[1, 6]);
            let _ = rng.gen::<u32>();
        }
        rt.shutdown();
    }

    #[test]
    fn lossy_worker_never_loses_tiles() {
        // Per-tile drop probability on one worker: every swallowed result
        // must come back through a re-dispatch round.
        let grid = TileGrid::new(4, 4);
        let model = build_model(37, grid);
        let opts = [
            WorkerOptions::default(),
            WorkerOptions { drop_prob: 0.5, fault_seed: 3, ..Default::default() },
        ];
        let mut rt = AdcnnRuntime::launch(model, &opts, cfg_t_l(50));
        let mut total_redispatched = 0u32;
        for s in 0..4 {
            let out = rt.infer(&rand_image(200 + s));
            assert_eq!(out.zero_filled, 0, "lossy worker must be recovered, image {s}");
            total_redispatched += out.redispatched;
        }
        assert!(total_redispatched > 0, "a 50% lossy worker must trigger recovery");
        rt.shutdown();
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use adcnn_core::fdsp::TileGrid;
    use adcnn_core::ClippedRelu;
    use adcnn_nn::layer::QuantizeSte;
    use adcnn_nn::small::shapes_cnn;
    use adcnn_retrain::PartitionedModel;
    use rand::{rngs::StdRng, SeedableRng};

    fn build_model(seed: u64, grid: TileGrid) -> PartitionedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let cr = ClippedRelu::new(0.0, 2.0);
        PartitionedModel::fdsp(shapes_cnn(6, &mut rng), grid)
            .with_crelu(cr)
            .with_quant(QuantizeSte::new(4, cr.range()))
    }

    fn rand_images(n: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Tensor::randn([1, 3, 32, 32], 0.5, &mut rng)).collect()
    }

    fn cfg_t_l(ms: u64) -> RuntimeConfig {
        RuntimeConfig::builder().t_l(Duration::from_millis(ms)).build().unwrap()
    }

    #[test]
    fn stream_matches_sequential_outputs() {
        let grid = TileGrid::new(2, 2);
        let images = rand_images(6, 77);
        // sequential reference
        let mut rt_seq = AdcnnRuntime::launch(
            build_model(21, grid),
            &[WorkerOptions::default(); 3],
            RuntimeConfig::default(),
        );
        let seq: Vec<Tensor> = images.iter().map(|x| rt_seq.infer(x).output).collect();
        rt_seq.shutdown();
        // streamed
        let mut rt = AdcnnRuntime::launch(
            build_model(21, grid),
            &[WorkerOptions::default(); 3],
            RuntimeConfig::default(),
        );
        let stream = rt.infer_stream(&images);
        rt.shutdown();
        assert_eq!(stream.len(), 6);
        for (s, r) in stream.iter().zip(&seq) {
            assert_eq!(s.zero_filled, 0);
            assert!(s.output.approx_eq(r, 1e-4), "streamed output diverged");
        }
    }

    #[test]
    fn stream_interleaves_without_cross_talk() {
        // Distinct images must map to their own outputs even when results
        // of consecutive images interleave on the shared result channel.
        let grid = TileGrid::new(4, 4);
        let images = rand_images(8, 91);
        let mut local = build_model(23, grid);
        let want: Vec<Tensor> = images.iter().map(|x| local.infer(x)).collect();
        let mut rt = AdcnnRuntime::launch(
            build_model(23, grid),
            &[WorkerOptions::default(); 4],
            RuntimeConfig::default(),
        );
        let got = rt.infer_stream(&images);
        rt.shutdown();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.zero_filled, 0);
            assert!(g.output.approx_eq(w, 2e-3));
        }
    }

    #[test]
    fn probe_window_favors_faster_worker() {
        // Nobody misses the deadline here — the fast worker simply returns
        // more results inside the T_L probe window, and Algorithm 3 should
        // reward it with more tiles (the paper's throughput semantics).
        let grid = TileGrid::new(4, 4);
        let model = build_model(41, grid);
        let workers = [
            WorkerOptions::default(),
            WorkerOptions { artificial_delay: Duration::from_millis(15), ..Default::default() },
            WorkerOptions { artificial_delay: Duration::from_millis(15), ..Default::default() },
        ];
        let mut rt = AdcnnRuntime::launch(model, &workers, cfg_t_l(50));
        let images = rand_images(8, 17);
        let got = rt.infer_stream(&images);
        let last = got.last().unwrap();
        assert!(
            last.alloc[0] > last.alloc[1] && last.alloc[0] > last.alloc[2],
            "fast worker not favored: {:?} (speeds {:?})",
            last.alloc,
            rt.speeds()
        );
        rt.shutdown();
    }

    #[test]
    fn stream_survives_failed_worker() {
        let grid = TileGrid::new(2, 2);
        let images = rand_images(8, 13);
        let workers = [
            WorkerOptions::default(),
            WorkerOptions { fail_after_tiles: Some(2), ..Default::default() },
        ];
        let mut rt = AdcnnRuntime::launch(build_model(29, grid), &workers, cfg_t_l(40));
        let got = rt.infer_stream(&images);
        rt.shutdown();
        assert_eq!(got.len(), 8);
        // the crash is absorbed by re-dispatch, never by zero-fill …
        assert!(got.iter().all(|o| o.zero_filled == 0), "no image may lose tiles");
        assert!(got.iter().any(|o| o.redispatched > 0), "the crash must trigger recovery");
        // … and the statistics still starve the dead worker out
        assert_eq!(got.last().unwrap().alloc[1], 0);
        assert_eq!(got.last().unwrap().redispatched, 0);
    }

    #[test]
    fn stream_stays_correct_when_duplicates_race_stashed_originals() {
        // A jittery-slow worker makes the deadline fire while its originals
        // are still in flight: the duplicate (re-dispatched) results race
        // the originals across consecutive pipelined images. Outputs must
        // match the local model whenever nothing was zero-filled.
        let grid = TileGrid::new(2, 2);
        let images = rand_images(8, 57);
        let mut local = build_model(47, grid);
        let want: Vec<Tensor> = images.iter().map(|x| local.infer(x)).collect();
        let workers = [
            WorkerOptions::default(),
            WorkerOptions {
                artificial_delay: Duration::from_millis(20),
                delay_jitter: Duration::from_millis(20),
                fault_seed: 11,
                ..Default::default()
            },
        ];
        let mut rt = AdcnnRuntime::launch(build_model(47, grid), &workers, cfg_t_l(10));
        let got = rt.infer_stream(&images);
        rt.shutdown();
        assert!(
            got.iter().any(|o| o.redispatched > 0),
            "scenario must actually exercise re-dispatch: {:?}",
            got.iter().map(|o| o.redispatched).collect::<Vec<_>>()
        );
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            if g.zero_filled == 0 {
                assert!(
                    g.output.approx_eq(w, 2e-3),
                    "image {i} diverged despite full tile set (redispatched {})",
                    g.redispatched
                );
            }
        }
    }
}

#[cfg(test)]
mod pipeline_tests {
    use super::*;
    use adcnn_core::fdsp::TileGrid;
    use adcnn_core::ClippedRelu;
    use adcnn_nn::layer::QuantizeSte;
    use adcnn_nn::small::shapes_cnn;
    use adcnn_retrain::PartitionedModel;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn build_model(seed: u64, grid: TileGrid) -> PartitionedModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let cr = ClippedRelu::new(0.0, 2.0);
        PartitionedModel::fdsp(shapes_cnn(6, &mut rng), grid)
            .with_crelu(cr)
            .with_quant(QuantizeSte::new(4, cr.range()))
    }

    fn rand_images(n: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Tensor::randn([1, 3, 32, 32], 0.5, &mut rng)).collect()
    }

    #[test]
    fn backpressure_blocks_at_exactly_intake_cap() {
        // Depth 1 with slow workers wedges the collector on image 0, so
        // the intake queue fills deterministically: exactly `intake_cap`
        // submissions are accepted, the next is rejected.
        let grid = TileGrid::new(2, 2);
        let model = build_model(61, grid);
        let opts = [
            WorkerOptions { artificial_delay: Duration::from_millis(100), ..Default::default() },
            WorkerOptions { artificial_delay: Duration::from_millis(100), ..Default::default() },
        ];
        let cfg = RuntimeConfig::builder().pipeline_depth(1).intake_cap(3).build().unwrap();
        let rt = AdcnnRuntime::launch(model, &opts, cfg);
        let images = rand_images(5, 33);
        let h0 = rt.submit(&images[0]);
        // Wait until image 0 is admitted: from here the collector holds it
        // in flight for >= 200 ms (4 tiles x 100 ms over 2 workers) and
        // never pops the intake queue (depth 1).
        while rt.in_flight() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut handles = vec![h0];
        for x in &images[1..4] {
            handles.push(rt.try_submit(x).expect("queue below intake_cap must accept"));
        }
        assert_eq!(rt.queued(), 3, "admission queue must hold exactly intake_cap");
        assert!(rt.try_submit(&images[4]).is_none(), "submit beyond intake_cap must be rejected");
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.image(), i as u64);
            let out = h.wait();
            assert_eq!(out.image, i as u64, "handle resolved with another image's outcome");
            assert_eq!(out.output.dims(), &[1, 6]);
        }
        rt.shutdown();
    }

    #[test]
    fn pipeline_drains_and_gauges_return_to_zero() {
        let grid = TileGrid::new(2, 2);
        let model = build_model(63, grid);
        let cfg = RuntimeConfig::builder().pipeline_depth(4).build().unwrap();
        let rt = AdcnnRuntime::launch(model, &[WorkerOptions::default(); 2], cfg);
        let images = rand_images(8, 44);
        let handles: Vec<InferHandle> = images.iter().map(|x| rt.submit(x)).collect();
        for (i, h) in handles.into_iter().enumerate() {
            let out = h.wait();
            assert_eq!(out.image, i as u64);
            assert_eq!(out.zero_filled, 0);
            assert!(out.queued >= Duration::ZERO);
        }
        // The last finish stored the gauge before resolving its handle.
        assert_eq!(rt.in_flight(), 0);
        assert_eq!(rt.queued(), 0);
        rt.shutdown();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Random submit/complete interleavings — depth, worker faults
        /// (silent death mid-flight, lossy links, jitter) and the order
        /// handles are waited on all derive from the seed. Every handle
        /// must resolve exactly once with its *own* image's result.
        #[test]
        fn random_interleavings_resolve_each_handle_with_its_own_image(seed in 0u64..1000) {
            let grid = TileGrid::new(2, 2);
            let mut dice = StdRng::seed_from_u64(seed);
            let depth = 1 + dice.gen_range(0..4usize);
            let faulty = WorkerOptions {
                fail_after_tiles: if dice.gen_bool(0.3) {
                    Some(dice.gen_range(0..6usize))
                } else {
                    None
                },
                artificial_delay: Duration::from_millis(dice.gen_range(0..20u64)),
                delay_jitter: Duration::from_millis(dice.gen_range(0..10u64)),
                drop_prob: if dice.gen_bool(0.3) { 0.3 } else { 0.0 },
                fault_seed: seed,
                ..Default::default()
            };
            let cfg = RuntimeConfig::builder()
                .t_l(Duration::from_millis(20))
                .pipeline_depth(depth)
                .intake_cap(8)
                .build()
                .unwrap();
            let mut local = build_model(71, grid);
            let rt = AdcnnRuntime::launch(
                build_model(71, grid),
                &[WorkerOptions::default(), faulty],
                cfg,
            );
            let images = rand_images(6, 1000 + seed);
            let want: Vec<Tensor> = images.iter().map(|x| local.infer(x)).collect();
            let mut handles: Vec<InferHandle> = images.iter().map(|x| rt.submit(x)).collect();
            // Wait out of submission order: completion is out-of-order too.
            handles.shuffle(&mut dice);
            let mut seen = [false; 6];
            for h in handles {
                let id = h.image();
                let out = h.wait();
                prop_assert_eq!(out.image, id, "handle resolved with another image's outcome");
                prop_assert!(!seen[id as usize], "image {} resolved twice", id);
                seen[id as usize] = true;
                if out.zero_filled == 0 {
                    prop_assert!(
                        out.output.approx_eq(&want[id as usize], 2e-3),
                        "image {} produced another image's output", id
                    );
                }
            }
            prop_assert!(seen.iter().all(|s| *s), "every handle must resolve");
            rt.shutdown();
        }
    }
}
