//! Real network transport: Conv workers as separate OS processes.
//!
//! Everything below the Central node's `Sender`/`Receiver` seams. The
//! collector in [`crate::central`] still hands [`WorkerMsg`]s to per-worker
//! bounded channels and drains one shared result channel; this module
//! bridges those channels to length-prefixed frames over TCP or Unix-domain
//! sockets, so dispatch, deadlines, re-dispatch and zero-fill are untouched
//! — the lifecycle machine cannot tell a thread from a process. See
//! DESIGN.md §15.
//!
//! # Framing
//!
//! Every message is `[u32 LE length][u8 tag][body]`, where `length` counts
//! the tag byte plus the body and is capped by [`MAX_FRAME_BYTES`] —
//! reading a frame can never allocate more than the cap, and the body
//! decoders ([`TileTask::decode`], [`TileResult::decode`]) are the hardened
//! checked-arithmetic paths, so a corrupt or hostile peer can cost at most
//! one connection, never a panic or an OOM.
//!
//! # Handshake
//!
//! A worker connects and sends `HELLO {magic, version, caps}`. The
//! acceptor validates it, picks a free worker slot, and the slot's
//! supervisor replies `WELCOME {worker_id, model spec}`. The
//! [`RemoteModelSpec`] is deterministic-by-seed: both sides rebuild
//! identical weights (the paper stores the separable-block filter weights
//! in the Conv nodes, §6.1 — shipping the generating seed is the
//! reproduction's equivalent), so a freshly exec'd process computes
//! bit-identical tiles to an in-process worker thread.
//!
//! # Supervision
//!
//! One supervisor thread per worker slot owns that slot's task `Receiver`
//! *persistently* — across disconnects — so the Central node's channel
//! seam never breaks. While a slot is down its supervisor discards stale
//! tiles (the lifecycle already re-dispatched or zero-filled them: a tile
//! must never be computed twice from one queue handoff). On disconnect the
//! `on_down` hook marks the worker failed (speed 0, like a disconnected
//! channel in the in-process runtime); a reconnect is a *fresh join* — the
//! `on_up` hook restores the EWMA to the fresh-join prior via
//! [`StatsCollector::rejoin`](adcnn_core::sched::StatsCollector::rejoin).
//! A connection generation counter guards the demux: a reader whose
//! generation has been superseded stops forwarding, so a result from a
//! dead connection can neither double-count a tile nor resurrect the dead
//! worker's statistics.

use crate::worker::{process_tile, Compression, WorkerMsg, WorkerStats};
use adcnn_core::compress::{CompressScratch, Quantizer};
use adcnn_core::fdsp::TileGrid;
use adcnn_core::lifecycle::{Event, LifecyclePolicy, TileLifecycle};
use adcnn_core::obs::{ObsEvent, SinkHandle};
use adcnn_core::wire::{TileResult, TileTask};
use adcnn_core::ClippedRelu;
use adcnn_nn::infer::InferScratch;
use adcnn_nn::layer::QuantizeSte;
use adcnn_nn::small::shapes_cnn;
use adcnn_nn::Network;
use adcnn_retrain::PartitionedModel;
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Frame magic in `HELLO` ("ADCN").
pub const MAGIC: u32 = 0x4144_434E;
/// Wire protocol version; bumped on any frame-layout change.
pub const PROTOCOL_VERSION: u32 = 1;
/// Hard cap on one frame's declared length (tag + body). Large enough for
/// a [`MAX_TILE_ELEMS`](adcnn_core::wire::MAX_TILE_ELEMS)-element f32 tile
/// plus headers, small enough that a hostile length word cannot OOM the
/// receiver.
pub const MAX_FRAME_BYTES: usize = (1 << 26) + 4096;

/// Worker → Central greeting: `{magic, version, caps}`.
pub const TAG_HELLO: u8 = 1;
/// Central → worker slot assignment: `{worker_id, RemoteModelSpec}`.
pub const TAG_WELCOME: u8 = 2;
/// Central → worker tile dispatch: a [`TileTask`] body.
pub const TAG_TASK: u8 = 3;
/// Worker → Central result: `{compute_ns, compress_ns, TileResult}`.
pub const TAG_RESULT: u8 = 4;
/// Central → worker clean stop (also sent to connections with no free
/// slot).
pub const TAG_SHUTDOWN: u8 = 5;
/// A serialized lifecycle [`Event`] (loopback differential replay).
pub const TAG_EVENT: u8 = 6;

// ---------------------------------------------------------------------------
// Little-endian cursor helpers (frame bodies only; tensors go through the
// hardened decoders in `adcnn_core::wire`).

fn rd_u8(b: &mut &[u8]) -> Option<u8> {
    let (&v, rest) = b.split_first()?;
    *b = rest;
    Some(v)
}

fn rd_u32(b: &mut &[u8]) -> Option<u32> {
    let (head, rest) = b.split_at_checked(4)?;
    *b = rest;
    Some(u32::from_le_bytes(head.try_into().unwrap()))
}

fn rd_u64(b: &mut &[u8]) -> Option<u64> {
    let (head, rest) = b.split_at_checked(8)?;
    *b = rest;
    Some(u64::from_le_bytes(head.try_into().unwrap()))
}

fn rd_f32(b: &mut &[u8]) -> Option<f32> {
    rd_u32(b).map(f32::from_bits)
}

fn rd_f64(b: &mut &[u8]) -> Option<f64> {
    rd_u64(b).map(f64::from_bits)
}

// ---------------------------------------------------------------------------
// Framing

/// Write one `[len][tag][body]` frame and flush it.
pub fn write_frame<W: Write>(w: &mut W, tag: u8, body: &[u8]) -> io::Result<()> {
    let len = 1 + body.len();
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds MAX_FRAME_BYTES"));
    }
    // One buffered write per frame: small frames must not straddle
    // segments, and the flush keeps latency off the Nagle path.
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.push(tag);
    buf.extend_from_slice(body);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean EOF *between* frames; EOF inside
/// a frame is an error. A declared length of zero (no tag byte) or above
/// [`MAX_FRAME_BYTES`] is rejected before any allocation.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    // Hand-rolled first read so a clean close at a frame boundary is
    // distinguishable from a mid-frame truncation.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "EOF inside frame header"))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} out of bounds"),
        ));
    }
    let mut frame = vec![0u8; len];
    r.read_exact(&mut frame)?;
    let tag = frame[0];
    frame.remove(0);
    Ok(Some((tag, frame)))
}

/// Encode the `HELLO` body.
pub fn encode_hello(caps: u32) -> Vec<u8> {
    let mut b = Vec::with_capacity(12);
    b.extend_from_slice(&MAGIC.to_le_bytes());
    b.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    b.extend_from_slice(&caps.to_le_bytes());
    b
}

/// Decode and validate a `HELLO` body; returns the capability bits.
pub fn decode_hello(mut b: &[u8]) -> Option<u32> {
    let magic = rd_u32(&mut b)?;
    let version = rd_u32(&mut b)?;
    let caps = rd_u32(&mut b)?;
    (magic == MAGIC && version == PROTOCOL_VERSION).then_some(caps)
}

/// Encode a `WELCOME` body: the assigned worker id plus the model spec.
pub fn encode_welcome(worker_id: u32, spec: &RemoteModelSpec) -> Vec<u8> {
    let mut b = Vec::with_capacity(40);
    b.extend_from_slice(&worker_id.to_le_bytes());
    spec.encode_into(&mut b);
    b
}

/// Decode a `WELCOME` body.
pub fn decode_welcome(mut b: &[u8]) -> Option<(u32, RemoteModelSpec)> {
    let worker_id = rd_u32(&mut b)?;
    let spec = RemoteModelSpec::decode(&mut b)?;
    Some((worker_id, spec))
}

/// Encode a `RESULT` body: observed compute/compress nanoseconds, then the
/// result itself in the canonical wire layout.
pub fn encode_result_body(res: &TileResult, compute_ns: u64, compress_ns: u64) -> BytesMut {
    let mut buf = BytesMut::new();
    buf.extend_from_slice(&compute_ns.to_le_bytes());
    buf.extend_from_slice(&compress_ns.to_le_bytes());
    res.encode_into(&mut buf);
    buf
}

/// Decode a `RESULT` body; `None` on a structurally unreadable frame (a
/// readable header with a corrupt *payload* still decodes — the lifecycle
/// machine owns that case).
pub fn decode_result_body(mut b: &[u8]) -> Option<(u64, u64, TileResult)> {
    let compute_ns = rd_u64(&mut b)?;
    let compress_ns = rd_u64(&mut b)?;
    let res = TileResult::decode(b)?;
    Some((compute_ns, compress_ns, res))
}

// ---------------------------------------------------------------------------
// Lifecycle-event codec (loopback differential replay)

/// Serialize a lifecycle [`Event`] (f64s as bit patterns, so timestamps
/// survive the wire bit-exactly).
pub fn encode_event(ev: &Event) -> Vec<u8> {
    let mut b = Vec::with_capacity(32);
    match *ev {
        Event::TileDelivered { tile } => {
            b.push(0);
            b.extend_from_slice(&(tile as u64).to_le_bytes());
        }
        Event::SendComplete { at } => {
            b.push(1);
            b.extend_from_slice(&at.to_bits().to_le_bytes());
        }
        Event::ResultArrived { at, tile, worker, ok } => {
            b.push(2);
            b.extend_from_slice(&at.to_bits().to_le_bytes());
            b.extend_from_slice(&(tile as u64).to_le_bytes());
            b.extend_from_slice(&(worker as u64).to_le_bytes());
            b.push(ok as u8);
        }
        Event::DeadlineFired { at } => {
            b.push(3);
            b.extend_from_slice(&at.to_bits().to_le_bytes());
        }
        Event::WorkerDied { worker } => {
            b.push(4);
            b.extend_from_slice(&(worker as u64).to_le_bytes());
        }
        Event::SendRejected { tile, worker } => {
            b.push(5);
            b.extend_from_slice(&(tile as u64).to_le_bytes());
            b.extend_from_slice(&(worker as u64).to_le_bytes());
        }
        Event::Abort => b.push(6),
    }
    b
}

/// Deserialize a lifecycle [`Event`]; `None` on truncation or an unknown
/// discriminant.
pub fn decode_event(mut b: &[u8]) -> Option<Event> {
    let ev = match rd_u8(&mut b)? {
        0 => Event::TileDelivered { tile: rd_u64(&mut b)? as usize },
        1 => Event::SendComplete { at: rd_f64(&mut b)? },
        2 => Event::ResultArrived {
            at: rd_f64(&mut b)?,
            tile: rd_u64(&mut b)? as usize,
            worker: rd_u64(&mut b)? as usize,
            ok: rd_u8(&mut b)? != 0,
        },
        3 => Event::DeadlineFired { at: rd_f64(&mut b)? },
        4 => Event::WorkerDied { worker: rd_u64(&mut b)? as usize },
        5 => {
            Event::SendRejected { tile: rd_u64(&mut b)? as usize, worker: rd_u64(&mut b)? as usize }
        }
        6 => Event::Abort,
        _ => return None,
    };
    b.is_empty().then_some(ev)
}

// ---------------------------------------------------------------------------
// Endpoints, connections, listeners

/// Where workers connect: `tcp://host:port` or (Unix only) `uds:///path`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP; the string is a `host:port` socket address.
    Tcp(String),
    /// Unix-domain socket path.
    #[cfg(unix)]
    Uds(PathBuf),
}

impl Endpoint {
    /// Parse an endpoint URL.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(addr) = s.strip_prefix("tcp://") {
            if addr.is_empty() {
                return Err(format!("endpoint '{s}' has an empty address"));
            }
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        #[cfg(unix)]
        if let Some(path) = s.strip_prefix("uds://") {
            if path.is_empty() {
                return Err(format!("endpoint '{s}' has an empty path"));
            }
            return Ok(Endpoint::Uds(PathBuf::from(path)));
        }
        Err(format!("endpoint '{s}' must start with tcp:// or uds://"))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Uds(path) => write!(f, "uds://{}", path.display()),
        }
    }
}

/// One accepted or dialed connection, transport-agnostic.
pub enum Conn {
    /// A TCP stream (`TCP_NODELAY` set: tile latencies sit under the
    /// lifecycle's `T_L`, so delayed ACKs are not acceptable).
    Tcp(TcpStream),
    /// A Unix-domain stream.
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Conn {
    /// Dial `endpoint` once.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Conn> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            #[cfg(unix)]
            Endpoint::Uds(path) => Ok(Conn::Uds(UnixStream::connect(path)?)),
        }
    }

    /// Dial with retries (a worker process typically races the listener).
    pub fn connect_retry(endpoint: &Endpoint, attempts: u32, delay: Duration) -> io::Result<Conn> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Conn::connect(endpoint) {
                Ok(c) => return Ok(c),
                Err(e) => last = Some(e),
            }
            std::thread::sleep(delay);
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connect attempts")))
    }

    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Uds(s) => s.try_clone().map(Conn::Uds),
        }
    }

    fn shutdown(&self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(Shutdown::Both),
            #[cfg(unix)]
            Conn::Uds(s) => s.shutdown(Shutdown::Both),
        }
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            Conn::Uds(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Uds(s) => s.flush(),
        }
    }
}

enum ListenerInner {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener, PathBuf),
}

/// A bound listener workers connect to. For `tcp://…:0` the resolved
/// endpoint (with the kernel-assigned port) is available from
/// [`endpoint`](WorkerListener::endpoint) — pass *that* to the worker
/// processes. Removes its socket file on drop (UDS).
pub struct WorkerListener {
    inner: ListenerInner,
    endpoint: Endpoint,
}

impl WorkerListener {
    /// Bind `endpoint`. A stale UDS socket file (a previous run that never
    /// cleaned up) is removed and the bind retried once.
    pub fn bind(endpoint: &Endpoint) -> io::Result<WorkerListener> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let actual = l.local_addr()?;
                Ok(WorkerListener {
                    inner: ListenerInner::Tcp(l),
                    endpoint: Endpoint::Tcp(actual.to_string()),
                })
            }
            #[cfg(unix)]
            Endpoint::Uds(path) => {
                let l = match UnixListener::bind(path) {
                    Ok(l) => l,
                    Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                        std::fs::remove_file(path)?;
                        UnixListener::bind(path)?
                    }
                    Err(e) => return Err(e),
                };
                Ok(WorkerListener {
                    inner: ListenerInner::Uds(l, path.clone()),
                    endpoint: endpoint.clone(),
                })
            }
        }
    }

    /// The resolved endpoint (actual port for `tcp://…:0`).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    fn set_nonblocking(&self, yes: bool) -> io::Result<()> {
        match &self.inner {
            ListenerInner::Tcp(l) => l.set_nonblocking(yes),
            #[cfg(unix)]
            ListenerInner::Uds(l, _) => l.set_nonblocking(yes),
        }
    }

    /// Non-blocking accept: `Ok(None)` when nothing is pending.
    fn accept(&self) -> io::Result<Option<Conn>> {
        match &self.inner {
            ListenerInner::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    s.set_nodelay(true)?;
                    Ok(Some(Conn::Tcp(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            ListenerInner::Uds(l, _) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Conn::Uds(s)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

impl Drop for WorkerListener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let ListenerInner::Uds(_, path) = &self.inner {
            let _ = std::fs::remove_file(path);
        }
    }
}

// ---------------------------------------------------------------------------
// Model spec

/// Everything a worker process needs to rebuild its half of the model,
/// carried in the `WELCOME` frame. Both sides call [`build`](Self::build):
/// the weights are deterministic in `seed`, so the Central's suffix and
/// every worker's prefix come from the *same* model without shipping
/// tensors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RemoteModelSpec {
    /// Classifier width of the generated [`shapes_cnn`] model.
    pub classes: usize,
    /// Weight-generation seed.
    pub seed: u64,
    /// FDSP grid rows.
    pub grid_rows: usize,
    /// FDSP grid columns.
    pub grid_cols: usize,
    /// Boundary clipped-ReLU `(lo, hi)`; `None` disables boundary
    /// compression (comparison mode).
    pub crelu: Option<(f32, f32)>,
    /// Boundary quantizer bit width (used when `crelu` is set).
    pub quant_bits: u8,
}

impl RemoteModelSpec {
    /// The paper-default spec: 4-bit quantization over a `[0, 2]` clipped
    /// ReLU at the boundary.
    pub fn paper_default(classes: usize, seed: u64, grid: TileGrid) -> Self {
        RemoteModelSpec {
            classes,
            seed,
            grid_rows: grid.rows,
            grid_cols: grid.cols,
            crelu: Some((0.0, 2.0)),
            quant_bits: 4,
        }
    }

    /// Rebuild the partitioned model this spec describes.
    pub fn build(&self) -> PartitionedModel {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let grid = TileGrid::new(self.grid_rows, self.grid_cols);
        let mut m = PartitionedModel::fdsp(shapes_cnn(self.classes, &mut rng), grid);
        if let Some((lo, hi)) = self.crelu {
            let cr = ClippedRelu::new(lo, hi);
            m = m.with_crelu(cr).with_quant(QuantizeSte::new(self.quant_bits, cr.range()));
        }
        m
    }

    /// Serialize into `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.classes as u32).to_le_bytes());
        buf.extend_from_slice(&self.seed.to_le_bytes());
        buf.extend_from_slice(&(self.grid_rows as u32).to_le_bytes());
        buf.extend_from_slice(&(self.grid_cols as u32).to_le_bytes());
        match self.crelu {
            Some((lo, hi)) => {
                buf.push(1);
                buf.extend_from_slice(&lo.to_bits().to_le_bytes());
                buf.extend_from_slice(&hi.to_bits().to_le_bytes());
            }
            None => {
                buf.push(0);
                buf.extend_from_slice(&[0u8; 8]);
            }
        }
        buf.push(self.quant_bits);
    }

    /// Deserialize, advancing `b` past the spec.
    pub fn decode(b: &mut &[u8]) -> Option<RemoteModelSpec> {
        let classes = rd_u32(b)? as usize;
        let seed = rd_u64(b)?;
        let grid_rows = rd_u32(b)? as usize;
        let grid_cols = rd_u32(b)? as usize;
        let has_crelu = rd_u8(b)?;
        let lo = rd_f32(b)?;
        let hi = rd_f32(b)?;
        let quant_bits = rd_u8(b)?;
        if classes == 0 || grid_rows == 0 || grid_cols == 0 {
            return None;
        }
        let crelu = match has_crelu {
            0 => None,
            1 if lo.is_finite() && hi.is_finite() && lo < hi => Some((lo, hi)),
            _ => return None,
        };
        if crelu.is_some() && !(1..=8).contains(&quant_bits) {
            return None;
        }
        Some(RemoteModelSpec { classes, seed, grid_rows, grid_cols, crelu, quant_bits })
    }
}

/// Split a model into the worker-side prefix network and its boundary
/// compression — the same formula `AdcnnRuntime::launch` applies, so a
/// remote worker's pipeline is byte-identical to an in-process thread's.
pub(crate) fn prefix_and_compression(model: &PartitionedModel) -> (Network, Option<Compression>) {
    let prefix = Network::new(model.net.blocks[..model.prefix].to_vec());
    let compression = model.boundary_crelu.map(|cr| Compression {
        crelu: cr,
        quantizer: Quantizer::new(model.boundary_quant.map(|q| q.bits).unwrap_or(4), cr.range()),
    });
    (prefix, compression)
}

// ---------------------------------------------------------------------------
// Central side: acceptor + per-slot supervisors

/// Callbacks into the Central node's shared state, fired by slot
/// supervisors on connection state changes.
pub(crate) struct TransportHooks {
    /// A worker connected (or reconnected) to this slot: fresh join.
    pub on_up: Arc<dyn Fn(usize) + Send + Sync>,
    /// This slot's connection died: mark the worker failed.
    pub on_down: Arc<dyn Fn(usize) + Send + Sync>,
}

struct Slot {
    conn_tx: Sender<Conn>,
    up: Arc<AtomicBool>,
}

/// The Central node's transport half: the acceptor thread plus one
/// supervisor thread per worker slot. The supervisors double as the
/// runtime's worker "handles": they exit on [`WorkerMsg::Shutdown`], after
/// forwarding it to a connected worker process.
pub(crate) struct RemoteCluster {
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

/// What [`RemoteCluster::start`] hands back to `launch_remote`: the
/// cluster handle, the per-slot task senders (the collector's dispatch
/// seam) and the supervisor join handles.
pub(crate) type ClusterSeams = (RemoteCluster, Vec<Sender<WorkerMsg>>, Vec<JoinHandle<()>>);

impl RemoteCluster {
    /// Bind the channel seams and start the acceptor and supervisors.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        listener: WorkerListener,
        spec: RemoteModelSpec,
        workers: usize,
        task_queue_cap: usize,
        result_tx: Sender<(usize, TileResult)>,
        worker_stats: Vec<Arc<WorkerStats>>,
        sink: SinkHandle,
        epoch: Instant,
        hooks: TransportHooks,
    ) -> io::Result<ClusterSeams> {
        assert_eq!(worker_stats.len(), workers);
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let mut slots = Vec::with_capacity(workers);
        let mut task_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for (slot_id, stats) in worker_stats.into_iter().enumerate() {
            // Capacity 1: at most one accepted connection can wait for a
            // slot's supervisor, so a reconnect storm cannot queue up.
            let (conn_tx, conn_rx) = bounded::<Conn>(1);
            let (task_tx, task_rx) = bounded(task_queue_cap.max(1));
            let up = Arc::new(AtomicBool::new(false));
            slots.push(Slot { conn_tx, up: up.clone() });
            task_txs.push(task_tx);
            let result_tx = result_tx.clone();
            let sink = sink.clone();
            let on_up = hooks.on_up.clone();
            let on_down = hooks.on_down.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("conv-slot-{slot_id}"))
                    .spawn(move || {
                        supervise_slot(
                            slot_id, spec, conn_rx, task_rx, result_tx, stats, sink, epoch, up,
                            on_up, on_down,
                        )
                    })
                    .expect("failed to spawn slot supervisor"),
            );
        }
        let acceptor = {
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("adcnn-acceptor".into())
                .spawn(move || acceptor_loop(listener, slots, stop))
                .expect("failed to spawn acceptor thread")
        };
        Ok((RemoteCluster { stop, acceptor: Some(acceptor) }, task_txs, handles))
    }

    /// Stop accepting connections and join the acceptor (supervisors are
    /// joined by the runtime through their handles).
    pub(crate) fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RemoteCluster {
    fn drop(&mut self) {
        self.stop();
    }
}

fn acceptor_loop(listener: WorkerListener, slots: Vec<Slot>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(Some(conn)) => admit_connection(conn, &slots),
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // `listener` drops here: UDS socket file removed.
}

/// Validate a new connection's `HELLO` and hand it to a free slot; refuse
/// (with a best-effort `SHUTDOWN`) when every slot is occupied.
fn admit_connection(mut conn: Conn, slots: &[Slot]) {
    // Bound the handshake: a connection that never sends HELLO must not
    // wedge the acceptor.
    if conn.set_read_timeout(Some(Duration::from_secs(1))).is_err() {
        return;
    }
    let ok = matches!(
        read_frame(&mut conn),
        Ok(Some((TAG_HELLO, body))) if decode_hello(&body).is_some()
    );
    if !ok || conn.set_read_timeout(None).is_err() {
        return; // drop: not a worker speaking our protocol
    }
    let mut conn = conn;
    for slot in slots {
        if slot.up.load(Ordering::SeqCst) {
            continue;
        }
        match slot.conn_tx.try_send(conn) {
            Ok(()) => return,
            Err(TrySendError::Full(c)) | Err(TrySendError::Disconnected(c)) => conn = c,
        }
    }
    let _ = write_frame(&mut conn, TAG_SHUTDOWN, &[]);
}

/// One worker slot's supervisor: owns the task `Receiver` persistently,
/// bridges it to whatever connection currently backs the slot, and fires
/// the up/down hooks. Exits only on [`WorkerMsg::Shutdown`] or when the
/// runtime drops its channel seams.
#[allow(clippy::too_many_arguments)]
fn supervise_slot(
    slot: usize,
    spec: RemoteModelSpec,
    conn_rx: Receiver<Conn>,
    task_rx: Receiver<WorkerMsg>,
    result_tx: Sender<(usize, TileResult)>,
    stats: Arc<WorkerStats>,
    sink: SinkHandle,
    epoch: Instant,
    up: Arc<AtomicBool>,
    on_up: Arc<dyn Fn(usize) + Send + Sync>,
    on_down: Arc<dyn Fn(usize) + Send + Sync>,
) {
    // Connection generation: readers capture the value at spawn and stop
    // forwarding the moment it moves on, so a superseded connection's
    // results can never reach the demux (no double-counting, no EWMA
    // resurrection for a worker the lifecycle already buried).
    let generation = Arc::new(AtomicU64::new(0));
    loop {
        // --- down: wait for a connection, discarding stale tiles. The
        // lifecycle already recovered them (send_to refuses dead workers;
        // anything still queued predates the death) — a tile handed to a
        // dead slot must never be computed on reconnect.
        let mut conn = loop {
            match conn_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(c) => break c,
                Err(RecvTimeoutError::Timeout) => loop {
                    match task_rx.try_recv() {
                        Ok(WorkerMsg::Tile(_)) => continue,
                        Ok(WorkerMsg::Shutdown) => return,
                        Err(_) => break,
                    }
                },
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        let my_gen = generation.fetch_add(1, Ordering::SeqCst) + 1;
        if write_frame(&mut conn, TAG_WELCOME, &encode_welcome(slot as u32, &spec)).is_err() {
            continue;
        }
        let reader_conn = match conn.try_clone() {
            Ok(c) => c,
            Err(_) => continue,
        };
        let dead = Arc::new(AtomicBool::new(false));
        let reader = {
            let generation = generation.clone();
            let dead = dead.clone();
            let result_tx = result_tx.clone();
            let stats = stats.clone();
            let sink = sink.clone();
            std::thread::Builder::new()
                .name(format!("conv-slot-{slot}-rx"))
                .spawn(move || {
                    reader_loop(
                        reader_conn,
                        slot,
                        my_gen,
                        generation,
                        dead,
                        result_tx,
                        stats,
                        sink,
                        epoch,
                    )
                })
                .expect("failed to spawn slot reader")
        };
        on_up(slot);
        up.store(true, Ordering::SeqCst);

        // --- up: writer loop. The 20ms timeout bounds how long a silent
        // disconnect (reader EOF with no traffic) goes unnoticed.
        let mut shutting_down = false;
        loop {
            if dead.load(Ordering::SeqCst) {
                break;
            }
            match task_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(WorkerMsg::Tile(task)) => {
                    let mut buf = BytesMut::new();
                    task.encode_into(&mut buf);
                    if write_frame(&mut conn, TAG_TASK, &buf).is_err() {
                        break;
                    }
                }
                Ok(WorkerMsg::Shutdown) => {
                    let _ = write_frame(&mut conn, TAG_SHUTDOWN, &[]);
                    shutting_down = true;
                    break;
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    shutting_down = true;
                    break;
                }
            }
        }

        // --- teardown: supersede the reader *first* (so nothing more is
        // forwarded), then unblock and join it.
        generation.fetch_add(1, Ordering::SeqCst);
        let _ = conn.shutdown();
        let _ = reader.join();
        up.store(false, Ordering::SeqCst);
        if shutting_down {
            return;
        }
        on_down(slot);
    }
}

/// Drain `RESULT` frames from one connection into the shared result
/// channel, mirroring worker-side compute/compress spans into the stats
/// and the event sink at arrival time. Exits on EOF, error, a protocol
/// violation, or generation supersession; flags `dead` so the supervisor's
/// writer loop notices.
#[allow(clippy::too_many_arguments)]
fn reader_loop(
    mut conn: Conn,
    slot: usize,
    my_gen: u64,
    generation: Arc<AtomicU64>,
    dead: Arc<AtomicBool>,
    result_tx: Sender<(usize, TileResult)>,
    stats: Arc<WorkerStats>,
    sink: SinkHandle,
    epoch: Instant,
) {
    // Anything else out of read_frame — clean EOF, mid-frame truncation,
    // socket error, or a frame this direction never carries — ends the
    // connection.
    while let Ok(Some((TAG_RESULT, body))) = read_frame(&mut conn) {
        let Some((compute_ns, compress_ns, res)) = decode_result_body(&body) else {
            break; // structurally unreadable: protocol violation
        };
        if generation.load(Ordering::SeqCst) != my_gen {
            break; // superseded: this connection's results no longer count
        }
        let now = Instant::now();
        stats.record(Duration::from_nanos(compute_ns), Duration::from_nanos(compress_ns));
        let at = now.duration_since(epoch).as_secs_f64();
        sink.emit_with(|| ObsEvent::TileCompute {
            at,
            image: res.key.image_id,
            tile: res.key.tile_id,
            worker: slot as u32,
            dur: Duration::from_nanos(compute_ns).as_secs_f64(),
        });
        sink.emit_with(|| {
            let bits = res.wire_bits();
            ObsEvent::TileCompress {
                at,
                image: res.key.image_id,
                tile: res.key.tile_id,
                worker: slot as u32,
                dur: Duration::from_nanos(compress_ns).as_secs_f64(),
                bytes: bits / 8,
                ratio: bits as f64 / (res.payload.elems as f64 * 32.0),
            }
        });
        if result_tx.send((slot, res)).is_err() {
            break; // runtime gone
        }
    }
    dead.store(true, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Worker side

/// Connect to a Central node at `endpoint` and serve tiles until it sends
/// `SHUTDOWN` or closes the connection. This is the whole Conv-node
/// process: handshake, rebuild the prefix from the [`RemoteModelSpec`] in
/// the `WELCOME`, then a `TASK` → [`process_tile`] → `RESULT` loop sharing
/// the in-process workers' exact compute path.
pub fn run_worker(endpoint: &Endpoint) -> io::Result<()> {
    let conn = Conn::connect(endpoint)?;
    run_worker_on(conn)
}

/// [`run_worker`] with connect retries (worker processes usually race the
/// Central node's listener at startup).
pub fn run_worker_retry(endpoint: &Endpoint, attempts: u32, delay: Duration) -> io::Result<()> {
    let conn = Conn::connect_retry(endpoint, attempts, delay)?;
    run_worker_on(conn)
}

fn run_worker_on(mut conn: Conn) -> io::Result<()> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    write_frame(&mut conn, TAG_HELLO, &encode_hello(0))?;
    let (tag, body) = read_frame(&mut conn)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "closed before WELCOME"))?;
    if tag == TAG_SHUTDOWN {
        return Ok(()); // no free slot: a clean refusal, not an error
    }
    if tag != TAG_WELCOME {
        return Err(bad("expected WELCOME"));
    }
    let (_worker_id, spec) = decode_welcome(&body).ok_or_else(|| bad("unreadable WELCOME"))?;
    let model = spec.build();
    let (prefix, compression) = prefix_and_compression(&model);
    let mut scratch = InferScratch::new();
    let mut cs = CompressScratch::new();
    loop {
        match read_frame(&mut conn)? {
            None | Some((TAG_SHUTDOWN, _)) => return Ok(()),
            Some((TAG_TASK, body)) => {
                let task = TileTask::decode(&body).ok_or_else(|| bad("unreadable TASK"))?;
                let (res, compute, compress) =
                    process_tile(&prefix, compression, &task, &mut scratch, &mut cs);
                let out =
                    encode_result_body(&res, compute.as_nanos() as u64, compress.as_nanos() as u64);
                write_frame(&mut conn, TAG_RESULT, &out)?;
            }
            Some(_) => return Err(bad("unexpected frame tag")),
        }
    }
}

/// Run a worker on a thread inside this process, over a *real* socket —
/// loopback transport with in-process lifetimes (tests and benches).
pub fn spawn_loopback_worker(endpoint: Endpoint) -> JoinHandle<io::Result<()>> {
    std::thread::Builder::new()
        .name("loopback-conv-worker".into())
        .spawn(move || run_worker_retry(&endpoint, 100, Duration::from_millis(20)))
        .expect("failed to spawn loopback worker thread")
}

// ---------------------------------------------------------------------------
// Loopback differential replay

/// Replay an abstract lifecycle trace with the events carried over a real
/// loopback TCP socket: a sender thread serializes each event into an
/// `EVENT` frame; this side decodes and feeds the machine through the
/// runtime driver's exact `Instant` roundtrip. The differential test
/// asserts the decision sequence is byte-identical to
/// [`crate::central::replay_lifecycle_trace`] and the simulator's — i.e.
/// the wire neither reorders nor perturbs a single decision.
pub fn replay_lifecycle_trace_loopback(
    policy: LifecyclePolicy,
    d: usize,
    alloc: &[u32],
    speeds: &[f64],
    live: &[bool],
    trace: &[Event],
) -> Vec<String> {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("loopback addr");
    let events: Vec<Event> = trace.to_vec();
    let sender = std::thread::spawn(move || {
        let mut conn = TcpStream::connect(addr).expect("connect loopback");
        conn.set_nodelay(true).expect("nodelay");
        for ev in &events {
            write_frame(&mut conn, TAG_EVENT, &encode_event(ev)).expect("send event frame");
        }
        // Dropping the stream sends FIN: a clean end-of-trace.
    });
    let (mut conn, _) = listener.accept().expect("accept loopback");
    let epoch = Instant::now();
    let roundtrip = |at: f64| -> f64 {
        let instant = epoch + Duration::from_secs_f64(at);
        instant.duration_since(epoch).as_secs_f64()
    };
    let (mut lc, acts) = TileLifecycle::begin(policy, roundtrip(0.0), d, alloc, speeds, live);
    let mut out: Vec<String> = acts.iter().map(|a| format!("{a:?}")).collect();
    while let Some((tag, body)) = read_frame(&mut conn).expect("read event frame") {
        assert_eq!(tag, TAG_EVENT, "unexpected frame tag {tag} in replay stream");
        let ev = decode_event(&body).expect("undecodable event frame");
        let ev = match ev {
            Event::SendComplete { at } => Event::SendComplete { at: roundtrip(at) },
            Event::ResultArrived { at, tile, worker, ok } => {
                Event::ResultArrived { at: roundtrip(at), tile, worker, ok }
            }
            Event::DeadlineFired { at } => Event::DeadlineFired { at: roundtrip(at) },
            other => other,
        };
        out.extend(lc.handle(ev).iter().map(|a| format!("{a:?}")));
    }
    sender.join().expect("sender thread panicked");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcnn_core::wire::TileKey;
    use adcnn_tensor::Tensor;

    #[test]
    fn endpoint_parse_display_roundtrip() {
        let t = Endpoint::parse("tcp://127.0.0.1:9000").unwrap();
        assert_eq!(t, Endpoint::Tcp("127.0.0.1:9000".into()));
        assert_eq!(t.to_string(), "tcp://127.0.0.1:9000");
        #[cfg(unix)]
        {
            let u = Endpoint::parse("uds:///tmp/adcnn.sock").unwrap();
            assert_eq!(u, Endpoint::Uds(PathBuf::from("/tmp/adcnn.sock")));
            assert_eq!(u.to_string(), "uds:///tmp/adcnn.sock");
        }
        assert!(Endpoint::parse("http://x").is_err());
        assert!(Endpoint::parse("tcp://").is_err());
        assert!(Endpoint::parse("").is_err());
    }

    #[test]
    fn frame_roundtrip_and_clean_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, TAG_TASK, b"hello").unwrap();
        write_frame(&mut wire, TAG_SHUTDOWN, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some((TAG_TASK, b"hello".to_vec())));
        assert_eq!(read_frame(&mut r).unwrap(), Some((TAG_SHUTDOWN, Vec::new())));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF between frames");
    }

    #[test]
    fn frame_rejects_oversized_and_zero_lengths() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_BYTES as u32 + 1).to_le_bytes());
        assert!(read_frame(&mut &wire[..]).is_err(), "over-cap length must not allocate");
        let zero = 0u32.to_le_bytes();
        assert!(read_frame(&mut &zero[..]).is_err(), "zero length has no tag byte");
        // EOF inside the header is an error, not a clean close.
        let partial = [1u8, 0];
        assert!(read_frame(&mut &partial[..]).is_err());
    }

    #[test]
    fn hello_welcome_roundtrip() {
        assert_eq!(decode_hello(&encode_hello(7)), Some(7));
        let mut bad = encode_hello(0);
        bad[0] ^= 0xFF; // wrong magic
        assert_eq!(decode_hello(&bad), None);
        let spec = RemoteModelSpec::paper_default(6, 42, TileGrid::new(2, 2));
        let welcome = encode_welcome(3, &spec);
        assert_eq!(decode_welcome(&welcome), Some((3, spec)));
        assert_eq!(decode_welcome(&welcome[..welcome.len() - 1]), None, "truncated");
    }

    #[test]
    fn spec_codec_rejects_out_of_domain_values() {
        let mut spec = RemoteModelSpec::paper_default(6, 1, TileGrid::new(2, 2));
        spec.crelu = Some((2.0, 0.0)); // lo >= hi
        let mut b = Vec::new();
        spec.encode_into(&mut b);
        assert_eq!(RemoteModelSpec::decode(&mut &b[..]), None);
        let mut spec = RemoteModelSpec::paper_default(6, 1, TileGrid::new(2, 2));
        spec.quant_bits = 0;
        let mut b = Vec::new();
        spec.encode_into(&mut b);
        assert_eq!(RemoteModelSpec::decode(&mut &b[..]), None);
        // No compression: quant_bits is unconstrained and preserved.
        let spec = RemoteModelSpec {
            classes: 4,
            seed: 9,
            grid_rows: 1,
            grid_cols: 2,
            crelu: None,
            quant_bits: 0,
        };
        let mut b = Vec::new();
        spec.encode_into(&mut b);
        assert_eq!(RemoteModelSpec::decode(&mut &b[..]), Some(spec));
    }

    #[test]
    fn spec_builds_identical_models_on_both_sides() {
        let spec = RemoteModelSpec::paper_default(6, 11, TileGrid::new(2, 2));
        let central_side = spec.build();
        let worker_side = spec.build();
        let (prefix_a, comp_a) = prefix_and_compression(&central_side);
        let (prefix_b, comp_b) = prefix_and_compression(&worker_side);
        let x = Tensor::full([1, 3, 16, 16], 0.3);
        let ya = prefix_a.clone().forward_range(&x, 0..prefix_a.len(), false).0;
        let yb = prefix_b.clone().forward_range(&x, 0..prefix_b.len(), false).0;
        assert!(ya.approx_eq(&yb, 0.0), "same seed must rebuild identical weights");
        let (ca, cb) = (comp_a.unwrap(), comp_b.unwrap());
        assert_eq!(
            (ca.quantizer.bits, ca.quantizer.range),
            (cb.quantizer.bits, cb.quantizer.range)
        );
    }

    #[test]
    fn event_codec_roundtrips_every_variant() {
        let evs = [
            Event::TileDelivered { tile: 3 },
            Event::SendComplete { at: 0.12345678901234 },
            Event::ResultArrived { at: 1.5, tile: 7, worker: 2, ok: false },
            Event::ResultArrived { at: 2.25, tile: 0, worker: 0, ok: true },
            Event::DeadlineFired { at: 9.875 },
            Event::WorkerDied { worker: 5 },
            Event::SendRejected { tile: 1, worker: 4 },
            Event::Abort,
        ];
        for ev in &evs {
            assert_eq!(decode_event(&encode_event(ev)), Some(*ev), "{ev:?}");
        }
        assert_eq!(decode_event(&[99]), None, "unknown discriminant");
        assert_eq!(decode_event(&encode_event(&evs[2])[..5]), None, "truncated");
        let mut padded = encode_event(&Event::Abort);
        padded.push(0);
        assert_eq!(decode_event(&padded), None, "trailing bytes rejected");
    }

    #[test]
    fn result_body_roundtrips_timing_and_payload() {
        let key = TileKey { image_id: 8, tile_id: 1 };
        let t = Tensor::full([1, 2, 4, 4], 0.5);
        let q = Quantizer::new(4, 2.0);
        let compressed = adcnn_core::compress::compress(t.as_slice(), q);
        let res =
            adcnn_core::wire::make_result_from_parts(key, [1, 2, 4, 4], 32, &compressed.payload, q);
        let body = encode_result_body(&res, 1234, 567);
        let (compute_ns, compress_ns, back) = decode_result_body(&body).unwrap();
        assert_eq!((compute_ns, compress_ns), (1234, 567));
        assert_eq!(back.key, key);
        assert_eq!(back.to_tensor().unwrap().as_slice(), res.to_tensor().unwrap().as_slice());
        assert!(decode_result_body(&body[..10]).is_none(), "truncated timing header");
    }

    #[test]
    fn loopback_replay_matches_the_central_driver() {
        let policy = LifecyclePolicy { t_l: 0.030, ..Default::default() };
        let alloc = [2u32, 2];
        let speeds = [1.0, 1.0];
        let live = [true, true];
        let trace = vec![
            Event::TileDelivered { tile: 0 },
            Event::TileDelivered { tile: 1 },
            Event::TileDelivered { tile: 2 },
            Event::TileDelivered { tile: 3 },
            Event::SendComplete { at: 0.001 },
            Event::ResultArrived { at: 0.010, tile: 0, worker: 0, ok: true },
            Event::ResultArrived { at: 0.012, tile: 2, worker: 1, ok: true },
            Event::DeadlineFired { at: 0.080 },
            Event::ResultArrived { at: 0.090, tile: 1, worker: 0, ok: true },
            Event::ResultArrived { at: 0.095, tile: 3, worker: 0, ok: true },
        ];
        let over_wire = replay_lifecycle_trace_loopback(policy, 4, &alloc, &speeds, &live, &trace);
        let in_process =
            crate::central::replay_lifecycle_trace(policy, 4, &alloc, &speeds, &live, &trace);
        assert_eq!(over_wire, in_process, "the wire must not perturb a single decision");
        assert!(!over_wire.is_empty());
    }
}
