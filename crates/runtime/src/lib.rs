//! # adcnn-runtime
//!
//! The real, multi-threaded ADCNN system (§6, Figure 8): a Central node and
//! K Conv-node workers connected by channels, executing *actual* CNN
//! inference with the same scheduler ([`adcnn_core::sched`]), the same FDSP
//! geometry ([`adcnn_core::fdsp`]) and the same compression pipeline
//! ([`adcnn_core::compress`]) as the paper describes.
//!
//! Workers are OS threads standing in for edge devices; per-worker
//! artificial delays and failure injection reproduce the heterogeneity and
//! fault-tolerance scenarios of §7.3 in-process. Alternatively
//! [`central::AdcnnRuntime::launch_remote`] serves the same scheduler over
//! a real transport ([`transport`]): Conv workers as separate OS processes
//! (`adcnn-conv-worker`) connected by length-prefixed TCP or Unix-domain
//! sockets, with `kill -9` recovery by re-dispatch.

pub mod central;
pub mod transport;
pub mod worker;

pub use adcnn_core::config::ConfigError;
pub use adcnn_core::lifecycle::{LifecyclePolicy, TimerPolicy};
pub use adcnn_core::obs::SinkHandle;
pub use adcnn_core::report::{AttributionSink, FlightRecorderSink, ImageReport};
pub use central::{AdcnnRuntime, InferHandle, InferOutcome, RuntimeConfig, RuntimeConfigBuilder};
pub use transport::{run_worker, Endpoint, RemoteModelSpec, WorkerListener};
pub use worker::{WorkerOptions, WorkerOptionsBuilder, WorkerStats, WorkerStatsSnapshot};
