//! Standalone Conv-node worker process.
//!
//! Connects to a Central node ([`adcnn_runtime::AdcnnRuntime::launch_remote`])
//! at the given endpoint, handshakes, rebuilds its separable prefix from
//! the model spec in the `WELCOME` frame, and serves tiles until the
//! Central node shuts it down or the connection closes. One process per
//! Conv node — `kill -9` this process and the lifecycle manager recovers
//! its in-flight tiles by re-dispatch.

use adcnn_runtime::transport::{run_worker_retry, Endpoint};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: adcnn-conv-worker --connect <tcp://host:port | uds:///path> \
                     [--retries <n>]";

fn main() -> ExitCode {
    let mut endpoint = None;
    let mut retries: u32 = 50;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next().as_deref().map(Endpoint::parse) {
                Some(Ok(ep)) => endpoint = Some(ep),
                Some(Err(e)) => {
                    eprintln!("adcnn-conv-worker: {e}");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("adcnn-conv-worker: --connect needs an endpoint\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--retries" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => retries = n,
                None => {
                    eprintln!("adcnn-conv-worker: --retries needs a number\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("adcnn-conv-worker: unknown argument '{other}'\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(endpoint) = endpoint else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match run_worker_retry(&endpoint, retries, Duration::from_millis(100)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("adcnn-conv-worker: {endpoint}: {e}");
            ExitCode::FAILURE
        }
    }
}
